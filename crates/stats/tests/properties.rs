//! Property-based tests for the statistics substrate.

use webiq_rng::prop;
use webiq_stats::{bayes::NaiveBayes, entropy, outlier, pmi, types};

/// Entropy is within [0, 1] for any counts.
#[test]
fn entropy_bounded() {
    prop::cases(prop::CASES, |rng| {
        let pos = rng.gen_range(0usize..100);
        let extra = rng.gen_range(0usize..100);
        let total = pos + extra;
        let e = entropy::binary_entropy(pos, total);
        assert!((0.0..=1.0 + 1e-12).contains(&e));
    });
}

fn score_examples(rng: &mut webiq_rng::StdRng, max_len: usize) -> Vec<(f64, bool)> {
    let n = rng.gen_range(1..=max_len);
    (0..n)
        .map(|_| (rng.gen_range(0.0f64..1.0), rng.gen_bool(0.5)))
        .collect()
}

/// Information gain is non-negative and at most the parent entropy.
#[test]
fn gain_bounded() {
    prop::cases(prop::CASES, |rng| {
        let examples = score_examples(rng, 39);
        let threshold = rng.gen_range(0.0f64..1.0);
        let pos = examples.iter().filter(|(_, p)| *p).count();
        let parent = entropy::binary_entropy(pos, examples.len());
        let g = entropy::information_gain(&examples, threshold);
        assert!(g >= -1e-12, "gain {g}");
        assert!(g <= parent + 1e-12, "gain {g} parent {parent}");
    });
}

/// best_threshold always lies within the score range.
#[test]
fn threshold_in_range() {
    prop::cases(prop::CASES, |rng| {
        let examples = score_examples(rng, 39);
        let t = entropy::best_threshold(&examples);
        let lo = examples
            .iter()
            .map(|(s, _)| *s)
            .fold(f64::INFINITY, f64::min);
        let hi = examples
            .iter()
            .map(|(s, _)| *s)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            t >= lo - 1e-12 && t <= hi + 1e-12,
            "t = {t} not in [{lo}, {hi}]"
        );
    });
}

/// A perfectly separable training set is classified perfectly by NB.
#[test]
fn nb_learns_separable_data() {
    prop::cases(prop::CASES, |rng| {
        let npos = rng.gen_range(2usize..20);
        let nneg = rng.gen_range(2usize..20);
        let mut ex = Vec::new();
        for _ in 0..npos {
            ex.push((vec![true, true, true], true));
        }
        for _ in 0..nneg {
            ex.push((vec![false, false, false], false));
        }
        let nb = NaiveBayes::train(&ex).expect("train");
        assert!(nb.classify(&[true, true, true]));
        assert!(!nb.classify(&[false, false, false]));
    });
}

/// NB posterior is a valid probability for arbitrary boolean data.
#[test]
fn nb_posterior_valid() {
    prop::cases(prop::CASES, |rng| {
        let n = rng.gen_range(1usize..30);
        let ex: Vec<(Vec<bool>, bool)> = (0..n)
            .map(|_| {
                (
                    (0..3).map(|_| rng.gen_bool(0.5)).collect(),
                    rng.gen_bool(0.5),
                )
            })
            .collect();
        let probe: Vec<bool> = (0..3).map(|_| rng.gen_bool(0.5)).collect();
        let nb = NaiveBayes::train(&ex).expect("train");
        let p = nb.posterior_pos(&probe);
        assert!((0.0..=1.0).contains(&p), "p = {p}");
    });
}

/// PMI is non-negative and zero iff numerator or a marginal is zero.
#[test]
fn pmi_nonnegative() {
    prop::cases(prop::CASES, |rng| {
        let j = rng.gen_range(0u64..1000);
        let a = rng.gen_range(0u64..1000);
        let b = rng.gen_range(0u64..1000);
        let v = pmi::pmi(j, a, b);
        assert!(v >= 0.0);
        if j > 0 && a > 0 && b > 0 {
            assert!(v > 0.0);
        } else {
            assert_eq!(v, 0.0);
        }
    });
}

/// Outlier removal partitions the input: kept + removed == input (as
/// multisets, order preserved within each part).
#[test]
fn outlier_partition() {
    prop::cases(prop::CASES, |rng| {
        let values = prop::string_vec(
            rng,
            prop::charset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 $.,"),
            0,
            29,
            0,
            20,
        );
        let r = outlier::remove_outliers(&values);
        assert_eq!(r.kept.len() + r.removed.len(), values.len());
        let mut all: Vec<String> = r.kept.clone();
        all.extend(r.removed.clone());
        all.sort();
        let mut orig = values.clone();
        orig.sort();
        assert_eq!(all, orig);
    });
}

/// Identical values are never outliers.
#[test]
fn identical_values_all_kept() {
    prop::cases(prop::CASES, |rng| {
        let v = rng.gen_string(
            prop::charset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"),
            1,
            10,
        );
        let n = rng.gen_range(1usize..20);
        let values = vec![v; n];
        let r = outlier::remove_outliers(&values);
        assert!(r.removed.is_empty());
    });
}

/// Type inference is total and consistent with the numeric parser:
/// whenever `numeric_value` parses, the inferred type is numeric.
#[test]
fn type_inference_consistent() {
    prop::cases(prop::CASES, |rng| {
        let s = rng.gen_string(prop::any_char(), 0, 20);
        let t = types::infer_type(&s);
        if types::numeric_value(&s).is_some() {
            // Dates like 1/5 don't parse as numeric; numeric parses must be
            // numeric or date (e.g. "2006" is an integer even if year-like).
            assert!(t.is_numeric() || t == types::ValueType::Date, "{s} → {t:?}");
        }
    });
}
