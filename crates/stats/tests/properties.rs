//! Property-based tests for the statistics substrate.

use proptest::prelude::*;
use webiq_stats::{bayes::NaiveBayes, entropy, outlier, pmi, types};

proptest! {
    /// Entropy is within [0, 1] for any counts.
    #[test]
    fn entropy_bounded(pos in 0usize..100, extra in 0usize..100) {
        let total = pos + extra;
        let e = entropy::binary_entropy(pos, total);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&e));
    }

    /// Information gain is non-negative and at most the parent entropy.
    #[test]
    fn gain_bounded(
        examples in proptest::collection::vec((0.0f64..1.0, any::<bool>()), 1..40),
        threshold in 0.0f64..1.0,
    ) {
        let pos = examples.iter().filter(|(_, p)| *p).count();
        let parent = entropy::binary_entropy(pos, examples.len());
        let g = entropy::information_gain(&examples, threshold);
        prop_assert!(g >= -1e-12, "gain {g}");
        prop_assert!(g <= parent + 1e-12, "gain {g} parent {parent}");
    }

    /// best_threshold always lies within the score range.
    #[test]
    fn threshold_in_range(
        examples in proptest::collection::vec((0.0f64..1.0, any::<bool>()), 1..40),
    ) {
        let t = entropy::best_threshold(&examples);
        let lo = examples.iter().map(|(s, _)| *s).fold(f64::INFINITY, f64::min);
        let hi = examples.iter().map(|(s, _)| *s).fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(t >= lo - 1e-12 && t <= hi + 1e-12, "t = {t} not in [{lo}, {hi}]");
    }

    /// A perfectly separable training set is classified perfectly by NB.
    #[test]
    fn nb_learns_separable_data(npos in 2usize..20, nneg in 2usize..20) {
        let mut ex = Vec::new();
        for _ in 0..npos { ex.push((vec![true, true, true], true)); }
        for _ in 0..nneg { ex.push((vec![false, false, false], false)); }
        let nb = NaiveBayes::train(&ex).expect("train");
        prop_assert!(nb.classify(&[true, true, true]));
        prop_assert!(!nb.classify(&[false, false, false]));
    }

    /// NB posterior is a valid probability for arbitrary boolean data.
    #[test]
    fn nb_posterior_valid(
        ex in proptest::collection::vec(
            (proptest::collection::vec(any::<bool>(), 3), any::<bool>()), 1..30),
        probe in proptest::collection::vec(any::<bool>(), 3),
    ) {
        let nb = NaiveBayes::train(&ex).expect("train");
        let p = nb.posterior_pos(&probe);
        prop_assert!((0.0..=1.0).contains(&p), "p = {p}");
    }

    /// PMI is non-negative and zero iff numerator or a marginal is zero.
    #[test]
    fn pmi_nonnegative(j in 0u64..1000, a in 0u64..1000, b in 0u64..1000) {
        let v = pmi::pmi(j, a, b);
        prop_assert!(v >= 0.0);
        if j > 0 && a > 0 && b > 0 {
            prop_assert!(v > 0.0);
        } else {
            prop_assert_eq!(v, 0.0);
        }
    }

    /// Outlier removal partitions the input: kept + removed == input (as
    /// multisets, order preserved within each part).
    #[test]
    fn outlier_partition(values in proptest::collection::vec("[a-zA-Z0-9 $.,]{0,20}", 0..30)) {
        let r = outlier::remove_outliers(&values);
        prop_assert_eq!(r.kept.len() + r.removed.len(), values.len());
        let mut all: Vec<String> = r.kept.clone();
        all.extend(r.removed.clone());
        all.sort();
        let mut orig = values.clone();
        orig.sort();
        prop_assert_eq!(all, orig);
    }

    /// Identical values are never outliers.
    #[test]
    fn identical_values_all_kept(v in "[a-zA-Z]{1,10}", n in 1usize..20) {
        let values = vec![v; n];
        let r = outlier::remove_outliers(&values);
        prop_assert!(r.removed.is_empty());
    }

    /// Type inference is total and consistent with the numeric parser:
    /// whenever `numeric_value` parses, the inferred type is numeric.
    #[test]
    fn type_inference_consistent(s in ".{0,20}") {
        let t = types::infer_type(&s);
        if types::numeric_value(&s).is_some() {
            // Dates like 1/5 don't parse as numeric; numeric parses must be
            // numeric or date (e.g. "2006" is an integer even if year-like).
            prop_assert!(t.is_numeric() || t == types::ValueType::Date, "{s} → {t:?}");
        }
    }
}
