//! Discordancy-test outlier removal (§2.2, "Remove Outlier Instance
//! Candidates").
//!
//! The paper performs discordancy tests [Barnett & Lewis] with a set of
//! test statistics, all assumed normally distributed: "An instance candidate
//! is considered to be an outlier if its test statistic is at least three
//! standard deviations away from the average over all the candidates."
//!
//! - numeric domains: the test statistic is the value itself;
//! - string domains: word count, capital-letter count, character length,
//!   and percentage of numeric characters.

use crate::types::{domain_type, numeric_value, DomainType, NUMERIC_MAJORITY};

/// Number of standard deviations beyond which a candidate is discordant.
pub const SIGMA_CUTOFF: f64 = 3.0;

/// Which discordancy test to run (both from Barnett & Lewis, the paper's
/// citation [4]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiscordancyTest {
    /// The paper's operational rule: a candidate is discordant when its
    /// test statistic is ≥ 3 standard deviations from the sample mean.
    #[default]
    ThreeSigma,
    /// Grubbs' test at α = 0.05: iteratively remove the most extreme value
    /// while its studentised deviation exceeds the critical value for the
    /// current sample size. Sample-size-aware, so it keeps its false-alarm
    /// rate on small candidate sets where a fixed 3σ rule cannot fire at
    /// all (max deviation is (n−1)/√n).
    Grubbs,
}

/// Two-sided Grubbs critical values at α = 0.05, indexed by sample size
/// (standard tables; n ≤ 30 covers candidate sets, larger n extrapolates).
fn grubbs_critical(n: usize) -> f64 {
    const TABLE: &[(usize, f64)] = &[
        (3, 1.153),
        (4, 1.463),
        (5, 1.672),
        (6, 1.822),
        (7, 1.938),
        (8, 2.032),
        (9, 2.110),
        (10, 2.176),
        (12, 2.285),
        (14, 2.371),
        (16, 2.443),
        (18, 2.504),
        (20, 2.557),
        (25, 2.663),
        (30, 2.745),
        (40, 2.866),
        (50, 2.956),
        (100, 3.207),
    ];
    if n < 3 {
        return f64::INFINITY;
    }
    // linear interpolation between table rows; clamp beyond the table
    let mut prev = TABLE[0];
    for &(size, crit) in TABLE {
        if n == size {
            return crit;
        }
        if n < size {
            let (n0, c0) = prev;
            let t = (n - n0) as f64 / (size - n0) as f64;
            return c0 + t * (crit - c0);
        }
        prev = (size, crit);
    }
    TABLE.last().map_or(0.0, |&(_, c)| c)
}

/// Indices discordant under Grubbs' test (iterative, two-sided, α = 0.05).
fn grubbs_indices(stats: &[f64]) -> Vec<usize> {
    let mut active: Vec<usize> = (0..stats.len()).collect();
    let mut removed = Vec::new();
    loop {
        if active.len() < 3 {
            break;
        }
        let values: Vec<f64> = active.iter().map(|&i| stats[i]).collect();
        let (mean, std) = mean_std(&values);
        if std == 0.0 {
            break;
        }
        let Some((pos, g)) = active
            .iter()
            .enumerate()
            .filter_map(|(k, &i)| stats.get(i).map(|v| (k, (v - mean).abs() / std)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
        else {
            break;
        };
        if g > grubbs_critical(active.len()) {
            removed.push(active.swap_remove(pos));
        } else {
            break;
        }
    }
    removed.sort_unstable();
    removed
}

/// Mean and (population) standard deviation of a sample.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// The string-domain test statistics of §2.2 for one candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StringStats {
    /// Number of whitespace-separated words.
    pub words: f64,
    /// Number of ASCII capital letters.
    pub capitals: f64,
    /// Number of characters.
    pub length: f64,
    /// Percentage (0–100) of numeric characters.
    pub numeric_pct: f64,
}

/// Compute the string test statistics for a candidate.
pub fn string_stats(s: &str) -> StringStats {
    let words = s.split_whitespace().count() as f64;
    let capitals = s.chars().filter(char::is_ascii_uppercase).count() as f64;
    let total = s.chars().count();
    let digits = s.chars().filter(char::is_ascii_digit).count();
    let numeric_pct = if total == 0 {
        0.0
    } else {
        100.0 * digits as f64 / total as f64
    };
    StringStats {
        words,
        capitals,
        length: total as f64,
        numeric_pct,
    }
}

/// Outcome of outlier detection: retained candidates and removed outliers,
/// both in the original order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutlierResult {
    /// Candidates that passed all discordancy tests.
    pub kept: Vec<String>,
    /// Candidates removed as discordant (or, for numeric domains,
    /// non-numeric values removed by pre-processing).
    pub removed: Vec<String>,
    /// The domain type the pre-processing step determined.
    pub domain: DomainType,
}

/// Indices discordant under `test`. With fewer than 3 samples or zero
/// spread, nothing is discordant.
fn discordant_indices_with(stats: &[f64], test: DiscordancyTest) -> Vec<usize> {
    match test {
        DiscordancyTest::ThreeSigma => {
            if stats.len() < 3 {
                return Vec::new();
            }
            let (mean, std) = mean_std(stats);
            if std == 0.0 {
                return Vec::new();
            }
            stats
                .iter()
                .enumerate()
                .filter(|(_, &x)| (x - mean).abs() >= SIGMA_CUTOFF * std)
                .map(|(i, _)| i)
                .collect()
        }
        DiscordancyTest::Grubbs => grubbs_indices(stats),
    }
}

/// Run the full §2.2 outlier-removal step on a candidate set.
///
/// 1. *Pre-processing*: determine the domain type ([`NUMERIC_MAJORITY`]
///    rule) and, for numeric domains, drop candidates that are not numeric.
/// 2. *Type-specific detection*: remove candidates discordant on any test
///    statistic.
///
/// ```
/// use webiq_stats::outlier::remove_outliers;
/// // the paper's example: a $10,000 book price is discordant
/// let prices = ["$12", "$15", "$9", "$14", "$11", "$13", "$10",
///               "$12", "$15", "$14", "$11", "$10,000"];
/// let result = remove_outliers(&prices);
/// assert!(result.removed.contains(&"$10,000".to_string()));
/// ```
pub fn remove_outliers<S: AsRef<str>>(candidates: &[S]) -> OutlierResult {
    remove_outliers_with(candidates, DiscordancyTest::ThreeSigma)
}

/// [`remove_outliers`] with an explicit [`DiscordancyTest`].
pub fn remove_outliers_with<S: AsRef<str>>(
    candidates: &[S],
    test: DiscordancyTest,
) -> OutlierResult {
    let domain = domain_type(candidates, NUMERIC_MAJORITY);
    let mut kept: Vec<String> = Vec::new();
    let mut removed: Vec<String> = Vec::new();

    match domain {
        DomainType::Numeric => {
            // Pre-processing drops the non-numeric minority outright.
            let mut values: Vec<(String, f64)> = Vec::new();
            for c in candidates {
                let s = c.as_ref().to_string();
                match numeric_value(&s) {
                    Some(v) => values.push((s, v)),
                    None => removed.push(s),
                }
            }
            let stats: Vec<f64> = values.iter().map(|(_, v)| *v).collect();
            let bad = discordant_indices_with(&stats, test);
            for (i, (s, _)) in values.into_iter().enumerate() {
                if bad.contains(&i) {
                    removed.push(s);
                } else {
                    kept.push(s);
                }
            }
        }
        DomainType::Textual => {
            let all: Vec<StringStats> = candidates
                .iter()
                .map(|c| string_stats(c.as_ref()))
                .collect();
            let columns: [Vec<f64>; 4] = [
                all.iter().map(|s| s.words).collect(),
                all.iter().map(|s| s.capitals).collect(),
                all.iter().map(|s| s.length).collect(),
                all.iter().map(|s| s.numeric_pct).collect(),
            ];
            let mut bad = vec![false; candidates.len()];
            for col in &columns {
                for i in discordant_indices_with(col, test) {
                    bad[i] = true;
                }
            }
            for (i, c) in candidates.iter().enumerate() {
                let s = c.as_ref().to_string();
                if bad[i] {
                    removed.push(s);
                } else {
                    kept.push(s);
                }
            }
        }
    }
    OutlierResult {
        kept,
        removed,
        domain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basic() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mean_std_empty() {
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn numeric_domain_removes_extreme_price() {
        // book prices with one absurd value; $10,000 for a book is the
        // paper's own example of a numeric outlier.
        let candidates = [
            "$12", "$15", "$9", "$14", "$11", "$13", "$10", "$12", "$15", "$14", "$11", "$10,000",
        ];
        let r = remove_outliers(&candidates);
        assert_eq!(r.domain, DomainType::Numeric);
        assert!(
            r.removed.contains(&"$10,000".to_string()),
            "removed: {:?}",
            r.removed
        );
        assert_eq!(r.kept.len(), candidates.len() - 1);
    }

    #[test]
    fn numeric_domain_drops_non_numeric_minority() {
        let candidates = ["1", "2", "3", "4", "5", "6", "7", "8", "9", "Boston"];
        let r = remove_outliers(&candidates);
        assert_eq!(r.domain, DomainType::Numeric);
        assert!(r.removed.contains(&"Boston".to_string()));
    }

    #[test]
    fn string_domain_removes_overlong_name() {
        // city names plus one sentence-length snippet artifact
        let long = "the following is a list of destinations served from this airport hub";
        let mut candidates: Vec<&str> = vec![
            "Boston", "Chicago", "Denver", "Seattle", "Atlanta", "Portland", "Houston", "Phoenix",
            "Dallas", "Miami", "Austin", "Boise",
        ];
        candidates.push(long);
        let r = remove_outliers(&candidates);
        assert_eq!(r.domain, DomainType::Textual);
        assert!(
            r.removed.contains(&long.to_string()),
            "removed: {:?}",
            r.removed
        );
        assert!(r.kept.len() >= 11);
    }

    #[test]
    fn string_domain_removes_digit_heavy_value() {
        let mut candidates: Vec<&str> = vec![
            "Honda", "Toyota", "Nissan", "Mazda", "Subaru", "Lexus", "Acura", "Jeep", "Dodge",
            "Buick", "Chevy", "Saturn",
        ];
        candidates.push("0471975444"); // an ISBN among car makes
        let r = remove_outliers(&candidates);
        assert!(
            r.removed.contains(&"0471975444".to_string()),
            "removed: {:?}",
            r.removed
        );
    }

    #[test]
    fn uniform_values_have_no_outliers() {
        let candidates = ["Delta", "United", "American", "Southwest", "Alaska"];
        let r = remove_outliers(&candidates);
        assert!(r.removed.is_empty());
        assert_eq!(r.kept.len(), 5);
    }

    #[test]
    fn tiny_sets_are_untouched() {
        let r = remove_outliers(&["a", "bbbbbbbbbbbbbbbbbbbbbbbb"]);
        assert!(r.removed.is_empty());
    }

    #[test]
    fn empty_set() {
        let r = remove_outliers::<&str>(&[]);
        assert!(r.kept.is_empty());
        assert!(r.removed.is_empty());
    }

    #[test]
    fn string_stats_values() {
        let s = string_stats("Air Canada 747");
        assert_eq!(s.words, 3.0);
        assert_eq!(s.capitals, 2.0);
        assert_eq!(s.length, 14.0);
        assert!((s.numeric_pct - 100.0 * 3.0 / 14.0).abs() < 1e-9);
    }

    #[test]
    fn grubbs_catches_small_sample_outliers_three_sigma_cannot() {
        // with n = 6 the maximum possible z is (n−1)/√n ≈ 2.04 < 3, so the
        // 3σ rule can never fire; Grubbs' critical value at n = 6 is 1.822
        let candidates = ["$10", "$12", "$11", "$13", "$12", "$500"];
        let sigma = remove_outliers_with(&candidates, DiscordancyTest::ThreeSigma);
        assert!(sigma.removed.is_empty(), "{:?}", sigma.removed);
        let grubbs = remove_outliers_with(&candidates, DiscordancyTest::Grubbs);
        assert_eq!(grubbs.removed, vec!["$500"], "{:?}", grubbs.removed);
    }

    #[test]
    fn grubbs_is_iterative() {
        // two extremes, removed one at a time
        let candidates = [
            "10", "12", "11", "13", "12", "11", "10", "13", "12", "11", "900", "1000",
        ];
        let grubbs = remove_outliers_with(&candidates, DiscordancyTest::Grubbs);
        assert!(
            grubbs.removed.contains(&"900".to_string()),
            "{:?}",
            grubbs.removed
        );
        assert!(
            grubbs.removed.contains(&"1000".to_string()),
            "{:?}",
            grubbs.removed
        );
    }

    #[test]
    fn grubbs_keeps_clean_samples() {
        let candidates = ["10", "12", "11", "13", "12", "11", "10", "13"];
        let grubbs = remove_outliers_with(&candidates, DiscordancyTest::Grubbs);
        assert!(grubbs.removed.is_empty(), "{:?}", grubbs.removed);
    }

    #[test]
    fn grubbs_critical_values_interpolate() {
        assert!(grubbs_critical(2).is_infinite());
        assert!((grubbs_critical(10) - 2.176).abs() < 1e-9);
        let c11 = grubbs_critical(11);
        assert!(c11 > 2.176 && c11 < 2.285, "c11 = {c11}");
        assert!((grubbs_critical(500) - 3.207).abs() < 1e-9); // clamped
    }

    #[test]
    fn order_is_preserved() {
        let candidates = ["Boston", "Chicago", "Denver", "Seattle"];
        let r = remove_outliers(&candidates);
        assert_eq!(r.kept, vec!["Boston", "Chicago", "Denver", "Seattle"]);
    }
}
