//! Entropy and information-gain threshold estimation (§3.2, step 2).
//!
//! The validation-based classifier thresholds each validation score; the
//! threshold tᵢ is chosen to maximise information gain over the T₁ split of
//! the training set: `E(T₁) − (|T₁₁|/|T₁| · E(T₁₁) + |T₁₂|/|T₁| · E(T₁₂))`
//! where T₁₁ = {fᵢ < tᵢ} and T₁₂ = {fᵢ ≥ tᵢ}.

/// Binary entropy of a set with `pos` positive out of `total` examples,
/// in bits. Empty sets have zero entropy.
pub fn binary_entropy(pos: usize, total: usize) -> f64 {
    if total == 0 || pos == 0 || pos == total {
        return 0.0;
    }
    let p = pos as f64 / total as f64;
    let q = 1.0 - p;
    -(p * p.log2() + q * q.log2())
}

/// Information gain of splitting `examples` (score, is_positive) at
/// `threshold` into `< threshold` and `≥ threshold` halves.
pub fn information_gain(examples: &[(f64, bool)], threshold: f64) -> f64 {
    let total = examples.len();
    if total == 0 {
        return 0.0;
    }
    let pos_total = examples.iter().filter(|(_, p)| *p).count();
    let (mut lo_n, mut lo_pos, mut hi_n, mut hi_pos) = (0usize, 0usize, 0usize, 0usize);
    for &(score, positive) in examples {
        if score < threshold {
            lo_n += 1;
            lo_pos += usize::from(positive);
        } else {
            hi_n += 1;
            hi_pos += usize::from(positive);
        }
    }
    let e = binary_entropy(pos_total, total);
    let e_lo = binary_entropy(lo_pos, lo_n);
    let e_hi = binary_entropy(hi_pos, hi_n);
    e - (lo_n as f64 / total as f64) * e_lo - (hi_n as f64 / total as f64) * e_hi
}

/// Choose the threshold with maximal information gain.
///
/// Candidate thresholds are midpoints between consecutive distinct sorted
/// scores (the standard C4.5 candidate set). Ties prefer the **larger**
/// threshold, which separates positives (high validation scores) from
/// negatives more conservatively. Returns the midpoint of all scores when
/// the input is empty or single-class-separable trivially.
///
/// ```
/// use webiq_stats::entropy::best_threshold;
/// // Figure 5.f of the paper: t1 = .45
/// let t = best_threshold(&[(0.2, false), (0.4, false), (0.5, true), (0.8, true)]);
/// assert!((t - 0.45).abs() < 1e-12);
/// ```
pub fn best_threshold(examples: &[(f64, bool)]) -> f64 {
    if examples.is_empty() {
        return 0.0;
    }
    let mut scores: Vec<f64> = examples.iter().map(|(s, _)| *s).collect();
    scores.sort_by(f64::total_cmp);
    scores.dedup();
    if scores.len() == 1 {
        return scores[0];
    }
    let mut best = (f64::NEG_INFINITY, scores[0]);
    for w in scores.windows(2) {
        let mid = (w[0] + w[1]) / 2.0;
        let gain = information_gain(examples, mid);
        if gain >= best.0 {
            best = (gain, mid);
        }
    }
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_bounds() {
        assert_eq!(binary_entropy(0, 10), 0.0);
        assert_eq!(binary_entropy(10, 10), 0.0);
        assert!((binary_entropy(5, 10) - 1.0).abs() < 1e-12);
        assert_eq!(binary_entropy(0, 0), 0.0);
    }

    #[test]
    fn entropy_is_symmetric() {
        assert!((binary_entropy(3, 10) - binary_entropy(7, 10)).abs() < 1e-12);
    }

    #[test]
    fn paper_example_thresholds() {
        // Figure 5.f: T1 scores for phrase 1: (.2,−) (.4,−) (.5,+) (.8,+)
        // → t1 = .45; for phrase 2: (.03,−) (.05,−) (.1,+) (.3,+) → t2 = .075.
        let t1 = best_threshold(&[(0.2, false), (0.4, false), (0.5, true), (0.8, true)]);
        assert!((t1 - 0.45).abs() < 1e-12, "t1 = {t1}");
        let t2 = best_threshold(&[(0.03, false), (0.05, false), (0.1, true), (0.3, true)]);
        assert!((t2 - 0.075).abs() < 1e-12, "t2 = {t2}");
    }

    #[test]
    fn perfect_split_has_full_gain() {
        let ex = [(0.1, false), (0.2, false), (0.8, true), (0.9, true)];
        let g = information_gain(&ex, 0.5);
        assert!((g - 1.0).abs() < 1e-12);
    }

    #[test]
    fn useless_split_has_zero_gain() {
        let ex = [(0.1, false), (0.2, true), (0.8, false), (0.9, true)];
        let g = information_gain(&ex, 0.05); // everything on one side
        assert!(g.abs() < 1e-12);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert_eq!(best_threshold(&[]), 0.0);
        assert_eq!(best_threshold(&[(0.5, true)]), 0.5);
        assert_eq!(best_threshold(&[(0.5, true), (0.5, false)]), 0.5);
    }

    #[test]
    fn overlapping_classes_still_pick_reasonable_cut() {
        let ex = [
            (0.1, false),
            (0.3, false),
            (0.35, true), // overlap
            (0.4, false),
            (0.5, true),
            (0.9, true),
        ];
        let t = best_threshold(&ex);
        assert!(t > 0.3 && t < 0.9, "t = {t}");
    }
}
