//! # webiq-stats — statistics substrate for WebIQ
//!
//! The verification and classification machinery of the paper, independent
//! of where the numbers come from:
//!
//! - [`types`] — type-recognizing scanners (integer / real / monetary /
//!   date) and the 80 %-majority numeric-domain rule of §2.2;
//! - [`outlier`] — discordancy tests over the §2.2 test statistics
//!   (value; word count, capital count, length, numeric-character share);
//! - [`pmi`] — pointwise mutual information over hit counts;
//! - [`entropy`] — entropy and information-gain threshold estimation for
//!   the validation-based classifier (§3.2);
//! - [`bayes`] — Laplace-smoothed binary naive Bayes (Formula 1).
#![forbid(unsafe_code)]

pub mod bayes;
pub mod entropy;
pub mod outlier;
pub mod pmi;
pub mod types;

pub use bayes::{NaiveBayes, TrainError};
pub use entropy::{best_threshold, binary_entropy, information_gain};
pub use outlier::{
    remove_outliers, remove_outliers_with, DiscordancyTest, OutlierResult, SIGMA_CUTOFF,
};
pub use pmi::pmi;
pub use types::{domain_type, infer_type, numeric_value, DomainType, ValueType};
