//! Binary naive Bayes with Laplacean smoothing (§3.1–3.2).
//!
//! The validation-based classifier represents an object by thresholded
//! validation scores — a boolean feature vector — and predicts membership
//! with Formula 1 of the paper:
//!
//! ```text
//! P(c|x) = P(c) Πᵢ P(fᵢ|c) / (P(c) Πᵢ P(fᵢ|c) + P(¬c) Πᵢ P(fᵢ|¬c))
//! ```
//!
//! Probabilities are estimated from counts with Laplacean smoothing, e.g.
//! `P(f₁=1|+) = (2+1)/(2+2) = 3/4` in the paper's Figure 5.h.

/// A trained binary naive Bayes classifier over boolean feature vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveBayes {
    n_features: usize,
    prior_pos: f64,
    /// `p_true[c][i]` = P(fᵢ = 1 | class c), c ∈ {0 = neg, 1 = pos}.
    p_true: [Vec<f64>; 2],
}

/// Per-feature likelihood evidence behind one posterior evaluation
/// (see [`NaiveBayes::posterior_explained`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureEvidence {
    /// Feature index.
    pub index: usize,
    /// Whether the feature was observed on.
    pub on: bool,
    /// Smoothed P(fᵢ = observed | +).
    pub p_pos: f64,
    /// Smoothed P(fᵢ = observed | −).
    pub p_neg: f64,
}

/// Errors from training.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// No training examples were supplied.
    Empty,
    /// Feature vectors have inconsistent lengths.
    RaggedFeatures {
        /// Length of the first example's feature vector.
        expected: usize,
        /// The offending length encountered.
        got: usize,
    },
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::Empty => write!(f, "cannot train on an empty example set"),
            TrainError::RaggedFeatures { expected, got } => {
                write!(
                    f,
                    "inconsistent feature vector lengths: expected {expected}, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for TrainError {}

impl NaiveBayes {
    /// Train from `(features, is_positive)` examples with Laplacean
    /// smoothing on both the class-conditional probabilities and the prior.
    pub fn train(examples: &[(Vec<bool>, bool)]) -> Result<Self, TrainError> {
        let Some(first) = examples.first() else {
            return Err(TrainError::Empty);
        };
        let n_features = first.0.len();
        let mut class_count = [0usize; 2];
        let mut true_count = [vec![0usize; n_features], vec![0usize; n_features]];
        for (features, positive) in examples {
            if features.len() != n_features {
                return Err(TrainError::RaggedFeatures {
                    expected: n_features,
                    got: features.len(),
                });
            }
            let c = usize::from(*positive);
            class_count[c] += 1;
            for (i, &f) in features.iter().enumerate() {
                true_count[c][i] += usize::from(f);
            }
        }
        let total = examples.len();
        let prior_pos = (class_count[1] as f64 + 1.0) / (total as f64 + 2.0);
        let p_true = [0, 1].map(|c| {
            (0..n_features)
                .map(|i| (true_count[c][i] as f64 + 1.0) / (class_count[c] as f64 + 2.0))
                .collect()
        });
        Ok(NaiveBayes {
            n_features,
            prior_pos,
            p_true,
        })
    }

    /// Rebuild a classifier from previously extracted parameters — the
    /// persistence path: a trained model round-trips through
    /// `(prior_pos, p_true_neg, p_true_pos)` and classifies bit-equal to
    /// the original. Returns `None` when the parameters cannot have come
    /// from [`NaiveBayes::train`]: ragged likelihood vectors, or any
    /// probability outside the open interval `(0, 1)` (Laplacean
    /// smoothing never produces 0 or 1, and log-space evaluation needs
    /// strictly interior values).
    pub fn from_params(prior_pos: f64, p_true_neg: Vec<f64>, p_true_pos: Vec<f64>) -> Option<Self> {
        let interior = |p: f64| p.is_finite() && p > 0.0 && p < 1.0;
        if p_true_neg.len() != p_true_pos.len() || !interior(prior_pos) {
            return None;
        }
        if !p_true_neg.iter().chain(&p_true_pos).all(|&p| interior(p)) {
            return None;
        }
        Some(NaiveBayes {
            n_features: p_true_pos.len(),
            prior_pos,
            p_true: [p_true_neg, p_true_pos],
        })
    }

    /// The smoothed per-feature likelihood vector P(fᵢ = 1 | class),
    /// `positive` selecting the class — with [`NaiveBayes::prior_pos`],
    /// the classifier's complete parameter set.
    pub fn p_true(&self, positive: bool) -> &[f64] {
        &self.p_true[usize::from(positive)]
    }

    /// Number of features the classifier was trained with.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The smoothed class prior P(+).
    pub fn prior_pos(&self) -> f64 {
        self.prior_pos
    }

    /// Smoothed P(fᵢ = 1 | class), `positive` selecting the class.
    pub fn p_feature_true(&self, i: usize, positive: bool) -> f64 {
        self.p_true[usize::from(positive)][i]
    }

    /// Posterior probability of the positive class (Formula 1).
    ///
    /// # Panics
    /// Panics if `features.len()` differs from the training dimensionality.
    pub fn posterior_pos(&self, features: &[bool]) -> f64 {
        assert_eq!(
            features.len(),
            self.n_features,
            "feature vector length must match training data"
        );
        // Work in log space to avoid underflow with many features.
        let mut log_pos = self.prior_pos.ln();
        let mut log_neg = (1.0 - self.prior_pos).ln();
        for (i, &f) in features.iter().enumerate() {
            let pp = if f {
                self.p_true[1][i]
            } else {
                1.0 - self.p_true[1][i]
            };
            let pn = if f {
                self.p_true[0][i]
            } else {
                1.0 - self.p_true[0][i]
            };
            log_pos += pp.ln();
            log_neg += pn.ln();
        }
        // logistic of the log-odds
        1.0 / (1.0 + (log_neg - log_pos).exp())
    }

    /// Classify: positive iff the posterior exceeds ½.
    pub fn classify(&self, features: &[bool]) -> bool {
        self.posterior_pos(features) > 0.5
    }

    /// [`NaiveBayes::posterior_pos`] plus the per-feature likelihoods
    /// behind it — the evidence the provenance layer records for each
    /// accept/reject. Panic-free: a feature vector of the wrong arity
    /// returns `None` instead of panicking (explaining a decision must
    /// never crash the run it explains). The posterior is computed with
    /// the identical log-space operations in the identical order, so it
    /// is bit-equal to [`NaiveBayes::posterior_pos`].
    pub fn posterior_explained(&self, features: &[bool]) -> Option<(f64, Vec<FeatureEvidence>)> {
        if features.len() != self.n_features {
            return None;
        }
        let mut log_pos = self.prior_pos.ln();
        let mut log_neg = (1.0 - self.prior_pos).ln();
        let mut evidence = Vec::with_capacity(self.n_features);
        for (i, &f) in features.iter().enumerate() {
            let (Some(&pt_pos), Some(&pt_neg)) = (self.p_true[1].get(i), self.p_true[0].get(i))
            else {
                return None;
            };
            let pp = if f { pt_pos } else { 1.0 - pt_pos };
            let pn = if f { pt_neg } else { 1.0 - pt_neg };
            log_pos += pp.ln();
            log_neg += pn.ln();
            evidence.push(FeatureEvidence {
                index: i,
                on: f,
                p_pos: pp,
                p_neg: pn,
            });
        }
        Some((1.0 / (1.0 + (log_neg - log_pos).exp()), evidence))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The training set T₂′ of Figure 5.g and probabilities of Figure 5.h.
    fn paper_t2() -> Vec<(Vec<bool>, bool)> {
        vec![
            (vec![true, true], true),    // Delta
            (vec![true, true], true),    // United
            (vec![false, false], false), // Jan
            (vec![false, true], false),  // 1
        ]
    }

    #[test]
    fn paper_probability_estimates() {
        let nb = NaiveBayes::train(&paper_t2()).expect("train");
        assert!((nb.prior_pos() - 0.5).abs() < 1e-12);
        // P(f1=1|+) = (2+1)/(2+2) = 3/4
        assert!((nb.p_feature_true(0, true) - 0.75).abs() < 1e-12);
        // P(f1=1|−) = (0+1)/(2+2) = 1/4
        assert!((nb.p_feature_true(0, false) - 0.25).abs() < 1e-12);
        // P(f2=1|+) = (2+1)/(2+2) = 3/4
        assert!((nb.p_feature_true(1, true) - 0.75).abs() < 1e-12);
        // P(f2=1|−) = (1+1)/(2+2) = 1/2
        assert!((nb.p_feature_true(1, false) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn classifies_paper_examples() {
        let nb = NaiveBayes::train(&paper_t2()).expect("train");
        assert!(nb.classify(&[true, true]));
        assert!(!nb.classify(&[false, false]));
    }

    #[test]
    fn posterior_matches_hand_computation() {
        let nb = NaiveBayes::train(&paper_t2()).expect("train");
        // x = <1,1>: P(+)∏ = .5*.75*.75 = .28125 ; P(−)∏ = .5*.25*.5 = .0625
        let expected = 0.28125 / (0.28125 + 0.0625);
        assert!((nb.posterior_pos(&[true, true]) - expected).abs() < 1e-12);
    }

    #[test]
    fn empty_training_set_errors() {
        assert_eq!(NaiveBayes::train(&[]), Err(TrainError::Empty));
    }

    #[test]
    fn ragged_features_error() {
        let ex = vec![(vec![true], true), (vec![true, false], false)];
        assert_eq!(
            NaiveBayes::train(&ex),
            Err(TrainError::RaggedFeatures {
                expected: 1,
                got: 2
            })
        );
    }

    #[test]
    fn single_class_training_is_smoothed() {
        // All positives: smoothing keeps the negative prior nonzero.
        let ex = vec![(vec![true], true), (vec![true], true)];
        let nb = NaiveBayes::train(&ex).expect("train");
        assert!(nb.prior_pos() < 1.0);
        assert!(nb.posterior_pos(&[true]) > 0.5);
    }

    #[test]
    fn zero_feature_classifier_uses_prior() {
        let ex = vec![(vec![], true), (vec![], true), (vec![], false)];
        let nb = NaiveBayes::train(&ex).expect("train");
        let p = nb.posterior_pos(&[]);
        assert!((p - 0.6).abs() < 1e-12); // (2+1)/(3+2)
        assert!(nb.classify(&[]));
    }

    #[test]
    #[should_panic(expected = "feature vector length")]
    fn wrong_arity_panics() {
        let nb = NaiveBayes::train(&paper_t2()).expect("train");
        let _ = nb.posterior_pos(&[true]);
    }

    #[test]
    fn posterior_explained_is_bit_equal_and_panic_free() {
        let nb = NaiveBayes::train(&paper_t2()).expect("train");
        for features in [[true, true], [true, false], [false, false]] {
            let (p, ev) = nb.posterior_explained(&features).expect("explained");
            assert_eq!(p.to_bits(), nb.posterior_pos(&features).to_bits());
            assert_eq!(ev.len(), 2);
            assert_eq!(ev[0].on, features[0]);
        }
        // per-feature likelihoods match the accessors for an observed-on
        // feature, and their complements for an observed-off one
        let (_, ev) = nb.posterior_explained(&[true, false]).expect("explained");
        assert_eq!(ev[0].p_pos, nb.p_feature_true(0, true));
        assert_eq!(ev[1].p_pos, 1.0 - nb.p_feature_true(1, true));
        // wrong arity: None, not a panic
        assert_eq!(nb.posterior_explained(&[true]), None);
        assert_eq!(nb.posterior_explained(&[true, true, true]), None);
    }

    #[test]
    fn zero_count_smoothing_keeps_likelihoods_off_the_floor() {
        // f0 is never true in the negative class and always true in the
        // positive class: Laplace smoothing must keep both conditionals
        // strictly inside (0, 1) so the log-space posterior stays finite.
        let ex = vec![
            (vec![true], true),
            (vec![true], true),
            (vec![false], false),
            (vec![false], false),
        ];
        let nb = NaiveBayes::train(&ex).expect("train");
        // P(f0=1|−) = (0+1)/(2+2) = 1/4, P(f0=1|+) = (2+1)/(2+2) = 3/4
        assert!((nb.p_feature_true(0, false) - 0.25).abs() < 1e-12);
        assert!((nb.p_feature_true(0, true) - 0.75).abs() < 1e-12);
        for f in [true, false] {
            let p = nb.posterior_pos(&[f]);
            assert!(p.is_finite() && p > 0.0 && p < 1.0, "p = {p}");
        }
    }

    #[test]
    fn all_features_absent_posterior_is_finite_and_sensible() {
        // An all-false vector exercises every 1−p complement branch; the
        // posterior must stay finite and favour the class that was
        // trained on all-false examples.
        let n = 8;
        let ex = vec![
            (vec![true; n], true),
            (vec![true; n], true),
            (vec![false; n], false),
            (vec![false; n], false),
        ];
        let nb = NaiveBayes::train(&ex).expect("train");
        let p = nb.posterior_pos(&vec![false; n]);
        assert!(p.is_finite(), "p = {p}");
        assert!(p < 0.5, "all-absent vector should look negative: {p}");
        let (pe, ev) = nb.posterior_explained(&vec![false; n]).expect("explained");
        assert_eq!(pe.to_bits(), p.to_bits());
        assert!(ev.iter().all(|e| !e.on && e.p_pos > 0.0 && e.p_neg > 0.0));
    }

    #[test]
    fn from_params_roundtrips_bit_equal() {
        let nb = NaiveBayes::train(&paper_t2()).expect("train");
        let rebuilt = NaiveBayes::from_params(
            nb.prior_pos(),
            nb.p_true(false).to_vec(),
            nb.p_true(true).to_vec(),
        )
        .expect("rebuild");
        assert_eq!(rebuilt, nb);
        for features in [[true, true], [true, false], [false, false]] {
            assert_eq!(
                rebuilt.posterior_pos(&features).to_bits(),
                nb.posterior_pos(&features).to_bits()
            );
        }
    }

    #[test]
    fn from_params_rejects_impossible_parameters() {
        // ragged likelihood vectors
        assert_eq!(
            NaiveBayes::from_params(0.5, vec![0.5], vec![0.5, 0.5]),
            None
        );
        // probabilities on or outside the open interval (0, 1)
        for bad in [0.0, 1.0, -0.1, 1.5, f64::NAN, f64::INFINITY] {
            assert_eq!(NaiveBayes::from_params(bad, vec![0.5], vec![0.5]), None);
            assert_eq!(NaiveBayes::from_params(0.5, vec![bad], vec![0.5]), None);
            assert_eq!(NaiveBayes::from_params(0.5, vec![0.5], vec![bad]), None);
        }
        // zero features is a valid (prior-only) classifier
        let nb = NaiveBayes::from_params(0.6, vec![], vec![]).expect("prior-only");
        assert!(nb.classify(&[]));
    }

    #[test]
    fn many_features_do_not_underflow() {
        let n = 500;
        let ex = vec![
            (vec![true; n], true),
            (vec![true; n], true),
            (vec![false; n], false),
            (vec![false; n], false),
        ];
        let nb = NaiveBayes::train(&ex).expect("train");
        let p = nb.posterior_pos(&vec![true; n]);
        assert!(p > 0.99, "p = {p}");
        assert!(p.is_finite());
    }
}
