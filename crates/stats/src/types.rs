//! Type recognition for instance values.
//!
//! §2.2 (pre-processing): "employs a set of type-recognizing regular
//! expressions to determine the type of the instance domain. … If the
//! majority of instance candidates (e.g., 80% in our experiment) are either
//! monetary values, integers, or real numbers, the instance domain will be
//! determined to be numeric; otherwise it is string."
//!
//! IceQ's domain similarity additionally distinguishes integer, real,
//! monetary, and date types (§5), so the recognizer is shared between the
//! verification phase and the matcher. Recognisers are hand-rolled scanners
//! equivalent to the regular expressions the paper describes.

/// The fine-grained type of a single value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// `42`, `1,200`
    Integer,
    /// `3.14`, `1,200.50`
    Real,
    /// `$15,200`, `$9.99`, `15 USD`
    Monetary,
    /// `01/31/2006`, `2006-01-31`, `Jan 31`, `January`
    Date,
    /// anything else
    Text,
}

impl ValueType {
    /// True for the types the paper's pre-processing step calls "numeric".
    pub fn is_numeric(self) -> bool {
        matches!(
            self,
            ValueType::Integer | ValueType::Real | ValueType::Monetary
        )
    }
}

/// Coarse domain type used by the outlier-detection phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DomainType {
    /// The majority of candidates parse as numbers/money.
    Numeric,
    /// Everything else.
    Textual,
}

static MONTHS: &[&str] = &[
    "january",
    "february",
    "march",
    "april",
    "may",
    "june",
    "july",
    "august",
    "september",
    "october",
    "november",
    "december",
    "jan",
    "feb",
    "mar",
    "apr",
    "jun",
    "jul",
    "aug",
    "sep",
    "sept",
    "oct",
    "nov",
    "dec",
];

/// Scan a digit run with optional `,` thousands grouping; returns byte index
/// after the run or `None` if no digit at `i`.
fn scan_int(s: &[u8], mut i: usize) -> Option<usize> {
    let start = i;
    while i < s.len() {
        let c = s[i];
        let grouping = c == b',' && i + 1 < s.len() && s[i + 1].is_ascii_digit() && i > start;
        if c.is_ascii_digit() || grouping {
            i += 1;
        } else {
            break;
        }
    }
    (i > start).then_some(i)
}

/// Is `s` an integer (optionally signed, `,`-grouped)?
pub fn is_integer(s: &str) -> bool {
    let b = s.trim().as_bytes();
    let mut i = 0;
    if b.first() == Some(&b'-') || b.first() == Some(&b'+') {
        i = 1;
    }
    matches!(scan_int(b, i), Some(end) if end == b.len())
}

/// Is `s` a real number (requires a decimal point)?
pub fn is_real(s: &str) -> bool {
    let t = s.trim();
    let Some(dot) = t.find('.') else { return false };
    let (int_part, frac_part) = (&t[..dot], &t[dot + 1..]);
    let frac_ok = !frac_part.is_empty() && frac_part.bytes().all(|c| c.is_ascii_digit());
    let int_ok =
        int_part.is_empty() || is_integer(int_part) || (int_part == "-" || int_part == "+");
    frac_ok && int_ok
}

/// Is `s` a monetary value (`$…`, or a number followed by `usd`/`dollars`)?
pub fn is_monetary(s: &str) -> bool {
    let t = s.trim();
    if let Some(rest) = t.strip_prefix('$') {
        let rest = rest.trim();
        return is_integer(rest) || is_real(rest);
    }
    let lower = t.to_ascii_lowercase();
    for suffix in [" usd", " dollars", " dollar"] {
        if let Some(prefix) = lower.strip_suffix(suffix) {
            return is_integer(prefix.trim()) || is_real(prefix.trim());
        }
    }
    false
}

/// Is `s` a date (`mm/dd/yyyy`, `yyyy-mm-dd`, month names, `Jan 31`,
/// `January 2006`)?
pub fn is_date(s: &str) -> bool {
    let t = s.trim().to_ascii_lowercase();
    if t.is_empty() {
        return false;
    }
    // Numeric dates with / or - separators: 2 or 3 components, each 1-4 digits.
    for sep in ['/', '-'] {
        if t.contains(sep) {
            let parts: Vec<&str> = t.split(sep).collect();
            if (2..=3).contains(&parts.len())
                && parts
                    .iter()
                    .all(|p| !p.is_empty() && p.len() <= 4 && p.bytes().all(|c| c.is_ascii_digit()))
            {
                return true;
            }
        }
    }
    // Month name, optionally followed by a day and/or year.
    let words: Vec<&str> = t.split_whitespace().collect();
    if words.is_empty() || words.len() > 3 {
        return false;
    }
    let Some((first, rest)) = words.split_first() else {
        return false;
    };
    let first = first.trim_end_matches(['.', ',']);
    if !MONTHS.contains(&first) {
        return false;
    }
    rest.iter().all(|w| {
        let w = w.trim_end_matches([',', '.']);
        w.len() <= 4 && !w.is_empty() && w.bytes().all(|c| c.is_ascii_digit())
    })
}

/// Infer the fine-grained type of one value.
pub fn infer_type(s: &str) -> ValueType {
    if is_monetary(s) {
        ValueType::Monetary
    } else if is_date(s) {
        ValueType::Date
    } else if is_integer(s) {
        ValueType::Integer
    } else if is_real(s) {
        ValueType::Real
    } else {
        ValueType::Text
    }
}

/// Fraction threshold above which a candidate set is declared numeric
/// (the paper uses 80 %).
pub const NUMERIC_MAJORITY: f64 = 0.8;

/// Determine the coarse domain type of a candidate set: numeric iff at least
/// `majority` (default [`NUMERIC_MAJORITY`]) of values are
/// integer/real/monetary.
pub fn domain_type<S: AsRef<str>>(values: &[S], majority: f64) -> DomainType {
    if values.is_empty() {
        return DomainType::Textual;
    }
    let numeric = values
        .iter()
        .filter(|v| infer_type(v.as_ref()).is_numeric())
        .count();
    if (numeric as f64) / (values.len() as f64) >= majority {
        DomainType::Numeric
    } else {
        DomainType::Textual
    }
}

/// Parse a numeric value (integer, real, or monetary) to `f64`.
/// Returns `None` for non-numeric strings.
pub fn numeric_value(s: &str) -> Option<f64> {
    let t = s.trim();
    let t = t.strip_prefix('$').unwrap_or(t).trim();
    let lower = t.to_ascii_lowercase();
    let t = lower
        .strip_suffix("usd")
        .or_else(|| lower.strip_suffix("dollars"))
        .or_else(|| lower.strip_suffix("dollar"))
        .unwrap_or(&lower)
        .trim();
    if !is_integer(t) && !is_real(t) {
        return None;
    }
    t.replace(',', "").parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers() {
        assert!(is_integer("42"));
        assert!(is_integer("1,200"));
        assert!(is_integer("-7"));
        assert!(!is_integer("3.14"));
        assert!(!is_integer("abc"));
        assert!(!is_integer(""));
        assert!(!is_integer("1,,2"));
    }

    #[test]
    fn reals() {
        assert!(is_real("3.14"));
        assert!(is_real("-0.5"));
        assert!(is_real(".75"));
        assert!(is_real("1,200.50"));
        assert!(!is_real("42"));
        assert!(!is_real("3."));
        assert!(!is_real("a.b"));
    }

    #[test]
    fn monetary() {
        assert!(is_monetary("$15,200"));
        assert!(is_monetary("$9.99"));
        assert!(is_monetary("$ 25"));
        assert!(is_monetary("15 USD"));
        assert!(is_monetary("200 dollars"));
        assert!(!is_monetary("15"));
        assert!(!is_monetary("$"));
        assert!(!is_monetary("USD"));
    }

    #[test]
    fn dates() {
        assert!(is_date("01/31/2006"));
        assert!(is_date("2006-01-31"));
        assert!(is_date("1/5"));
        assert!(is_date("January"));
        assert!(is_date("Jan 31"));
        assert!(is_date("January 31, 2006"));
        assert!(is_date("Sept. 2006"));
        assert!(!is_date("Boston"));
        assert!(!is_date("31"));
        assert!(!is_date("12/34/56/78"));
        assert!(!is_date(""));
    }

    #[test]
    fn may_is_a_month() {
        // `May` is both a modal and a month; type inference sides with date,
        // which matches interface instance lists (month dropdowns).
        assert!(is_date("May"));
    }

    #[test]
    fn infer_priorities() {
        assert_eq!(infer_type("$5"), ValueType::Monetary);
        assert_eq!(infer_type("01/31/2006"), ValueType::Date);
        assert_eq!(infer_type("42"), ValueType::Integer);
        assert_eq!(infer_type("4.2"), ValueType::Real);
        assert_eq!(infer_type("Boston"), ValueType::Text);
    }

    #[test]
    fn majority_rule() {
        let mostly_num = ["1", "2", "3", "4", "Boston"];
        assert_eq!(domain_type(&mostly_num, 0.8), DomainType::Numeric);
        let half = ["1", "2", "Boston", "Chicago"];
        assert_eq!(domain_type(&half, 0.8), DomainType::Textual);
        let empty: [&str; 0] = [];
        assert_eq!(domain_type(&empty, 0.8), DomainType::Textual);
    }

    #[test]
    fn numeric_parse() {
        assert_eq!(numeric_value("$15,200"), Some(15200.0));
        assert_eq!(numeric_value("2.75"), Some(2.75));
        assert_eq!(numeric_value("1,200"), Some(1200.0));
        assert_eq!(numeric_value("15 USD"), Some(15.0));
        assert_eq!(numeric_value("Boston"), None);
    }
}
