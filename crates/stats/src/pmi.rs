//! Pointwise mutual information over search-engine hit counts (§2.2).
//!
//! The paper adapts PMI to measure the co-occurrence of a validation phrase
//! `V` and an instance candidate `x`:
//!
//! ```text
//! PMI(V, x) = NumHits(V + x) / (NumHits(V) * NumHits(x))
//! ```
//!
//! where `V + x` is the validation query combining the two. Using PMI rather
//! than raw hits avoids biasing toward popular instances.

/// PMI between a validation phrase and a candidate, from hit counts.
///
/// Returns 0 when either marginal count is zero (no evidence) — this keeps
/// scores well-defined for candidates the simulated search engine has never
/// seen, mirroring how a zero-hit Google query contributes no support.
pub fn pmi(hits_joint: u64, hits_phrase: u64, hits_candidate: u64) -> f64 {
    if hits_phrase == 0 || hits_candidate == 0 {
        return 0.0;
    }
    hits_joint as f64 / (hits_phrase as f64 * hits_candidate as f64)
}

/// Average PMI across several validation phrases — the paper's confidence
/// score for a candidate (Σᵢ PMI(Vᵢ, x) / n). Empty input scores 0.
pub fn average(scores: &[f64]) -> f64 {
    if scores.is_empty() {
        return 0.0;
    }
    scores.iter().sum::<f64>() / scores.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ratio() {
        assert!((pmi(10, 100, 50) - 10.0 / 5000.0).abs() < 1e-12);
    }

    #[test]
    fn zero_marginals_yield_zero() {
        assert_eq!(pmi(5, 0, 10), 0.0);
        assert_eq!(pmi(5, 10, 0), 0.0);
        assert_eq!(pmi(0, 0, 0), 0.0);
    }

    #[test]
    fn zero_denominator_with_nonzero_joint_is_never_infinite() {
        // NumHits(V)·NumHits(x) = 0 while the joint query somehow hit —
        // an engine inconsistency (cache skew, quota degradation) must
        // score 0.0, not ±inf or NaN: the provenance layer forwards PMI
        // terms onto the wire, which carries finite floats only.
        for (joint, v, x) in [(u64::MAX, 0, 0), (1, 0, u64::MAX), (7, u64::MAX, 0)] {
            let score = pmi(joint, v, x);
            assert_eq!(score, 0.0, "pmi({joint}, {v}, {x})");
            assert!(score.is_finite());
        }
    }

    #[test]
    fn huge_counts_stay_finite() {
        // f64 products of u64::MAX-scale marginals must not overflow to
        // inf and must stay usable as averaged confidence evidence.
        let tiny = pmi(u64::MAX, u64::MAX, u64::MAX);
        assert!(tiny.is_finite() && tiny > 0.0);
        assert!(average(&[tiny, 0.0]).is_finite());
    }

    #[test]
    fn zero_joint_is_zero() {
        assert_eq!(pmi(0, 10, 10), 0.0);
    }

    #[test]
    fn popularity_bias_is_normalized() {
        // A popular non-instance co-occurs more in absolute terms but less
        // relative to its own popularity.
        let popular = pmi(20, 100, 10_000); // 20 joint hits, hugely popular word
        let niche = pmi(10, 100, 50); // 10 joint hits, rare word
        assert!(niche > popular);
    }

    #[test]
    fn average_of_scores() {
        assert_eq!(average(&[]), 0.0);
        assert!((average(&[0.1, 0.3]) - 0.2).abs() < 1e-12);
    }
}
