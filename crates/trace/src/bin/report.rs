//! `webiq-report` — render JSONL traces into per-stage funnel summaries.
//!
//! Usage: `webiq-report TRACE.jsonl [MORE.jsonl ...]`
//!
//! Each file is parsed as one event stream; the report prints one funnel
//! per root span (one per traced acquisition run, labelled by domain)
//! plus an overall aggregate when there is more than one root.
#![forbid(unsafe_code)]

use std::process::ExitCode;

use webiq_trace::event::Event;
use webiq_trace::report;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() || paths.iter().any(|p| p == "--help" || p == "-h") {
        eprintln!("usage: webiq-report TRACE.jsonl [MORE.jsonl ...]");
        eprintln!("renders a JSONL trace into per-domain funnel summaries");
        return if paths.is_empty() {
            ExitCode::from(2)
        } else {
            ExitCode::SUCCESS
        };
    }
    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("webiq-report: {path}: {e}");
                failed = true;
                continue;
            }
        };
        let mut events = Vec::new();
        let mut bad_lines = 0usize;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match Event::parse(line) {
                Some(e) => events.push(e),
                None => bad_lines += 1,
            }
        }
        if bad_lines > 0 {
            eprintln!("webiq-report: {path}: skipped {bad_lines} unparseable line(s)");
        }
        let groups = report::aggregate_by_root(&events);
        if groups.is_empty() {
            println!("{path}: no root spans found ({} events)", events.len());
            continue;
        }
        println!("== {path} ==");
        for (label, m) in &groups {
            print!("{}", report::render_funnel(label, m));
        }
        if groups.len() > 1 {
            print!(
                "{}",
                report::render_funnel("all runs", &report::aggregate(&events))
            );
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
