//! Typed counters, gauges, and histograms with deterministic merge.
//!
//! Every metric in the pipeline is named by a closed enum rather than a
//! string, so recording is an array index (no hashing, no allocation) and
//! the serialized order is fixed by the enum declaration — a prerequisite
//! for byte-identical traces. Three metric kinds exist:
//!
//! - [`Counter`]: monotonic event tallies in a [`MetricSet`]. Merging adds,
//!   and the *delta* of a thread-local set around a work item is a
//!   deterministic measure of that item's activity, independent of cache
//!   state, scheduling, or worker count.
//! - [`Gauge`]: last-known magnitudes (dataset sizes). Merging takes the
//!   maximum, which is order-independent and therefore deterministic.
//! - [`HistKey`]: power-of-two bucketed histograms in a [`HistSet`].
//!   Merging adds bucket-wise.
//!
//! [`SharedMetrics`] is the atomic variant used for per-instance state
//! shared across threads (e.g. a search engine's cache hit/miss tallies).
//! Those tallies depend on scheduling (racing threads may both count a
//! miss on the same fresh query), which is exactly why the deterministic
//! trace-event stream is built from thread-local [`MetricSet`] deltas and
//! never from [`SharedMetrics`].

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of [`Counter`] variants (the fixed size of a [`MetricSet`]).
pub const NUM_COUNTERS: usize = 49;

/// Every counter the pipeline records, in serialization order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Counter {
    /// `search` calls issued (cache hits and misses alike).
    EngineSearchIssued,
    /// `num_hits` calls issued (cache hits and misses alike).
    EngineHitIssued,
    /// Snippet-cache lookups served from the LRU (per-engine only).
    SearchCacheHit,
    /// Snippet-cache lookups that missed (per-engine only).
    SearchCacheMiss,
    /// Hit-count-cache lookups served from the sharded map (per-engine only).
    HitCacheHit,
    /// Hit-count-cache lookups that missed (per-engine only).
    HitCacheMiss,
    /// Attributes visited by the acquisition strategy.
    AttrsTotal,
    /// Attributes with no pre-defined instances (§5 case 1).
    AttrsNoInstance,
    /// Attributes with pre-defined instances run through Attr-Surface.
    AttrsPredefined,
    /// Pre-defined attributes skipped because Attr-Surface was disabled.
    AttrsSkipped,
    /// Instance-less attributes that reached k with Surface alone.
    SurfaceSuccess,
    /// Instance-less attributes that reached k after Surface + Attr-Deep.
    SurfaceDeepSuccess,
    /// Pre-defined attributes that gained borrowed instances.
    AttrSurfaceEnriched,
    /// Engine queries attributed to the Surface component.
    SurfaceQueries,
    /// Engine queries attributed to the Attr-Surface component.
    AttrSurfaceQueries,
    /// Deep-Web probes attributed to the Attr-Deep component.
    AttrDeepProbes,
    /// Extraction queries sent by the Surface component.
    ExtractQueries,
    /// Candidate instances extracted from snippets.
    CandidatesExtracted,
    /// Candidates removed by the statistical outlier phase (§2.2).
    OutliersRemoved,
    /// Candidates accepted by PMI Web validation.
    ValidationAccepted,
    /// Candidates rejected by PMI Web validation.
    ValidationRejected,
    /// Case-1 borrow candidates considered.
    BorrowCandidates,
    /// Case-1 candidates borrowed without re-probing (domain already validated).
    BorrowReused,
    /// Case-1 candidates skipped (domain already failed probing).
    BorrowSkipped,
    /// Case-1 candidate domains actually probed.
    BorrowProbed,
    /// Case-1 probed domains accepted.
    BorrowAccepted,
    /// Case-1 probed domains rejected.
    BorrowRejected,
    /// Attr-Surface validation classifiers that failed to train.
    BayesTrainFailed,
    /// Borrowed values accepted by the naive-Bayes classifier (§3).
    BayesAccepted,
    /// Borrowed values rejected by the naive-Bayes classifier (§3).
    BayesRejected,
    /// Deep-Web probe submissions issued.
    ProbesIssued,
    /// Probes whose response page contained result records.
    ProbeMatched,
    /// Probes that came back with zero records.
    ProbeEmpty,
    /// Probes rejected by the source (missing/invalid parameter).
    ProbeRejected,
    /// Probes that failed with a simulated server error.
    ProbeServerError,
    /// Agglomerative clustering iterations run by the matcher.
    ClusterIterations,
    /// Cluster merges performed by the matcher.
    ClusterMerges,
    /// Faults injected by the seeded fault plan (all kinds).
    FaultInjected,
    /// Retries attempted after an injected fault.
    FaultRetryAttempt,
    /// Calls abandoned after the retry policy/budget ran out.
    FaultRetryExhausted,
    /// Calls fast-failed by an open circuit breaker.
    FaultBreakerOpen,
    /// Engine calls denied by the daily-quota tracker.
    FaultQuotaDenied,
    /// Attributes that finished in a degraded state (partial results).
    FaultAttrsDegraded,
    /// Attributes served from the persistent store (acquisition skipped).
    StoreWarmHit,
    /// Attributes acquired fresh because the store had no usable entry.
    StoreWarmMiss,
    /// Log records replayed over a snapshot during store recovery.
    StoreLogReplay,
    /// Log records discarded as torn/corrupt during store recovery.
    StoreTruncatedRecords,
    /// Committed bytes recovered from the store's snapshot + log.
    StoreRecoveredBytes,
    /// Records appended to the store's log.
    StoreRecordsWritten,
}

impl Counter {
    /// All counters, in serialization order.
    pub const ALL: [Counter; NUM_COUNTERS] = [
        Counter::EngineSearchIssued,
        Counter::EngineHitIssued,
        Counter::SearchCacheHit,
        Counter::SearchCacheMiss,
        Counter::HitCacheHit,
        Counter::HitCacheMiss,
        Counter::AttrsTotal,
        Counter::AttrsNoInstance,
        Counter::AttrsPredefined,
        Counter::AttrsSkipped,
        Counter::SurfaceSuccess,
        Counter::SurfaceDeepSuccess,
        Counter::AttrSurfaceEnriched,
        Counter::SurfaceQueries,
        Counter::AttrSurfaceQueries,
        Counter::AttrDeepProbes,
        Counter::ExtractQueries,
        Counter::CandidatesExtracted,
        Counter::OutliersRemoved,
        Counter::ValidationAccepted,
        Counter::ValidationRejected,
        Counter::BorrowCandidates,
        Counter::BorrowReused,
        Counter::BorrowSkipped,
        Counter::BorrowProbed,
        Counter::BorrowAccepted,
        Counter::BorrowRejected,
        Counter::BayesTrainFailed,
        Counter::BayesAccepted,
        Counter::BayesRejected,
        Counter::ProbesIssued,
        Counter::ProbeMatched,
        Counter::ProbeEmpty,
        Counter::ProbeRejected,
        Counter::ProbeServerError,
        Counter::ClusterIterations,
        Counter::ClusterMerges,
        Counter::FaultInjected,
        Counter::FaultRetryAttempt,
        Counter::FaultRetryExhausted,
        Counter::FaultBreakerOpen,
        Counter::FaultQuotaDenied,
        Counter::FaultAttrsDegraded,
        Counter::StoreWarmHit,
        Counter::StoreWarmMiss,
        Counter::StoreLogReplay,
        Counter::StoreTruncatedRecords,
        Counter::StoreRecoveredBytes,
        Counter::StoreRecordsWritten,
    ];

    /// The counter's stable snake_case name (the JSONL key).
    pub fn name(self) -> &'static str {
        match self {
            Counter::EngineSearchIssued => "engine_search_issued",
            Counter::EngineHitIssued => "engine_hit_issued",
            Counter::SearchCacheHit => "search_cache_hit",
            Counter::SearchCacheMiss => "search_cache_miss",
            Counter::HitCacheHit => "hit_cache_hit",
            Counter::HitCacheMiss => "hit_cache_miss",
            Counter::AttrsTotal => "attrs_total",
            Counter::AttrsNoInstance => "attrs_no_instance",
            Counter::AttrsPredefined => "attrs_predefined",
            Counter::AttrsSkipped => "attrs_skipped",
            Counter::SurfaceSuccess => "surface_success",
            Counter::SurfaceDeepSuccess => "surface_deep_success",
            Counter::AttrSurfaceEnriched => "attr_surface_enriched",
            Counter::SurfaceQueries => "surface_queries",
            Counter::AttrSurfaceQueries => "attr_surface_queries",
            Counter::AttrDeepProbes => "attr_deep_probes",
            Counter::ExtractQueries => "extract_queries",
            Counter::CandidatesExtracted => "candidates_extracted",
            Counter::OutliersRemoved => "outliers_removed",
            Counter::ValidationAccepted => "validation_accepted",
            Counter::ValidationRejected => "validation_rejected",
            Counter::BorrowCandidates => "borrow_candidates",
            Counter::BorrowReused => "borrow_reused",
            Counter::BorrowSkipped => "borrow_skipped",
            Counter::BorrowProbed => "borrow_probed",
            Counter::BorrowAccepted => "borrow_accepted",
            Counter::BorrowRejected => "borrow_rejected",
            Counter::BayesTrainFailed => "bayes_train_failed",
            Counter::BayesAccepted => "bayes_accepted",
            Counter::BayesRejected => "bayes_rejected",
            Counter::ProbesIssued => "probes_issued",
            Counter::ProbeMatched => "probe_matched",
            Counter::ProbeEmpty => "probe_empty",
            Counter::ProbeRejected => "probe_rejected",
            Counter::ProbeServerError => "probe_server_error",
            Counter::ClusterIterations => "cluster_iterations",
            Counter::ClusterMerges => "cluster_merges",
            Counter::FaultInjected => "fault_injected",
            Counter::FaultRetryAttempt => "fault_retry_attempt",
            Counter::FaultRetryExhausted => "fault_retry_exhausted",
            Counter::FaultBreakerOpen => "fault_breaker_open",
            Counter::FaultQuotaDenied => "fault_quota_denied",
            Counter::FaultAttrsDegraded => "fault_attrs_degraded",
            Counter::StoreWarmHit => "store_warm_hit",
            Counter::StoreWarmMiss => "store_warm_miss",
            Counter::StoreLogReplay => "store_log_replay",
            Counter::StoreTruncatedRecords => "store_truncated_records",
            Counter::StoreRecoveredBytes => "store_recovered_bytes",
            Counter::StoreRecordsWritten => "store_records_written",
        }
    }

    /// Inverse of [`Counter::name`].
    pub fn from_name(name: &str) -> Option<Counter> {
        Counter::ALL.iter().copied().find(|c| c.name() == name)
    }

    fn idx(self) -> usize {
        self as usize
    }
}

/// A fixed-size, copyable set of counter values. The unit of deterministic
/// aggregation: thread-local sets are snapshotted around each work item
/// and the deltas merged in item order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricSet {
    counts: [u64; NUM_COUNTERS],
}

impl Default for MetricSet {
    fn default() -> Self {
        MetricSet::new()
    }
}

impl MetricSet {
    /// An all-zero set.
    pub const fn new() -> Self {
        MetricSet {
            counts: [0; NUM_COUNTERS],
        }
    }

    /// Current value of `c`.
    pub fn get(&self, c: Counter) -> u64 {
        self.counts[c.idx()]
    }

    /// Add `n` to `c` (saturating).
    pub fn add(&mut self, c: Counter, n: u64) {
        self.counts[c.idx()] = self.counts[c.idx()].saturating_add(n);
    }

    /// Element-wise add of `other` into `self`.
    pub fn merge(&mut self, other: &MetricSet) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
        }
    }

    /// Element-wise `self - earlier` (saturating). With a monotonic
    /// thread-local set, this is the activity between two snapshots.
    pub fn diff(&self, earlier: &MetricSet) -> MetricSet {
        let mut out = MetricSet::new();
        for (o, (a, b)) in out
            .counts
            .iter_mut()
            .zip(self.counts.iter().zip(earlier.counts.iter()))
        {
            *o = a.saturating_sub(*b);
        }
        out
    }

    /// The non-zero entries, in declaration order.
    pub fn nonzero(&self) -> Vec<(Counter, u64)> {
        Counter::ALL
            .iter()
            .filter_map(|&c| {
                let v = self.get(c);
                (v > 0).then_some((c, v))
            })
            .collect()
    }

    /// True when every counter is zero.
    pub fn is_zero(&self) -> bool {
        self.counts.iter().all(|&v| v == 0)
    }
}

/// Atomic counter array for state shared across threads (per-engine cache
/// statistics). Values here may depend on scheduling; they feed run
/// summaries, never the deterministic event stream.
#[derive(Debug)]
pub struct SharedMetrics {
    counts: [AtomicU64; NUM_COUNTERS],
}

impl Default for SharedMetrics {
    fn default() -> Self {
        SharedMetrics {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl SharedMetrics {
    /// An all-zero set.
    pub fn new() -> Self {
        SharedMetrics::default()
    }

    /// Add `n` to `c`.
    pub fn add(&self, c: Counter, n: u64) {
        self.counts[c.idx()].fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of `c`.
    pub fn get(&self, c: Counter) -> u64 {
        self.counts[c.idx()].load(Ordering::Relaxed)
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricSet {
        let mut out = MetricSet::new();
        for &c in &Counter::ALL {
            out.add(c, self.get(c));
        }
        out
    }

    /// Bulk-add a deterministic delta set into the shared counters — the
    /// publish hook a live metrics registry uses to fold per-item
    /// [`MetricSet`] deltas in as work items complete.
    pub fn merge(&self, delta: &MetricSet) {
        for &c in &Counter::ALL {
            let v = delta.get(c);
            if v > 0 {
                self.add(c, v);
            }
        }
    }

    /// Reset every counter to zero.
    pub fn reset(&self) {
        for a in &self.counts {
            a.store(0, Ordering::Relaxed);
        }
    }
}

/// Number of [`Gauge`] variants.
pub const NUM_GAUGES: usize = 3;

/// Last-known magnitudes of the run's inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gauge {
    /// Query interfaces in the dataset.
    Interfaces,
    /// Attributes across all interfaces.
    Attributes,
    /// Documents in the simulated Surface-Web corpus.
    CorpusDocs,
}

impl Gauge {
    /// All gauges, in serialization order.
    pub const ALL: [Gauge; NUM_GAUGES] = [Gauge::Interfaces, Gauge::Attributes, Gauge::CorpusDocs];

    /// The gauge's stable snake_case name.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::Interfaces => "interfaces",
            Gauge::Attributes => "attributes",
            Gauge::CorpusDocs => "corpus_docs",
        }
    }

    fn idx(self) -> usize {
        self as usize
    }
}

/// A fixed-size set of gauge values; merging takes the element-wise
/// maximum (order-independent, hence deterministic at scope-join).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GaugeSet {
    values: [u64; NUM_GAUGES],
}

impl GaugeSet {
    /// An all-zero set.
    pub const fn new() -> Self {
        GaugeSet {
            values: [0; NUM_GAUGES],
        }
    }

    /// Record `v` for `g`, keeping the maximum seen.
    pub fn set(&mut self, g: Gauge, v: u64) {
        self.values[g.idx()] = self.values[g.idx()].max(v);
    }

    /// Current value of `g`.
    pub fn get(&self, g: Gauge) -> u64 {
        self.values[g.idx()]
    }

    /// Element-wise maximum of `other` into `self`.
    pub fn merge(&mut self, other: &GaugeSet) {
        for (a, b) in self.values.iter_mut().zip(other.values.iter()) {
            *a = (*a).max(*b);
        }
    }
}

/// Number of [`HistKey`] variants.
pub const NUM_HISTS: usize = 2;

/// Number of buckets per histogram.
pub const NUM_BUCKETS: usize = 8;

/// Human-readable bucket bounds: value `v` lands in bucket
/// `bit_length(v)` capped at the last bucket.
pub const BUCKET_LABELS: [&str; NUM_BUCKETS] =
    ["0", "1", "2-3", "4-7", "8-15", "16-31", "32-63", "64+"];

/// Bucketed distributions of per-item magnitudes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HistKey {
    /// Candidate instances extracted per instance-less attribute.
    CandidatesPerAttr,
    /// Deep-Web probes issued per instance-less attribute.
    ProbesPerAttr,
}

impl HistKey {
    /// All histograms, in serialization order.
    pub const ALL: [HistKey; NUM_HISTS] = [HistKey::CandidatesPerAttr, HistKey::ProbesPerAttr];

    /// The histogram's stable snake_case name.
    pub fn name(self) -> &'static str {
        match self {
            HistKey::CandidatesPerAttr => "candidates_per_attr",
            HistKey::ProbesPerAttr => "probes_per_attr",
        }
    }

    /// Inverse of [`HistKey::name`].
    pub fn from_name(name: &str) -> Option<HistKey> {
        HistKey::ALL.iter().copied().find(|h| h.name() == name)
    }

    fn idx(self) -> usize {
        self as usize
    }
}

/// Which bucket a value lands in: 0, then one bucket per power of two.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(NUM_BUCKETS - 1)
    }
}

/// The inclusive value range of bucket `b`: `(lower, Some(upper))`, or
/// `(lower, None)` for the open-ended last bucket. Out-of-range buckets
/// report the last bucket's bounds.
pub fn bucket_bounds(b: usize) -> (u64, Option<u64>) {
    match b {
        0 => (0, Some(0)),
        1..=6 => (1 << (b - 1), Some((1 << b) - 1)),
        _ => (64, None),
    }
}

/// A fixed-size set of power-of-two-bucketed histograms; merging adds
/// bucket-wise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSet {
    buckets: [[u64; NUM_BUCKETS]; NUM_HISTS],
}

impl Default for HistSet {
    fn default() -> Self {
        HistSet::new()
    }
}

impl HistSet {
    /// An all-zero set.
    pub const fn new() -> Self {
        HistSet {
            buckets: [[0; NUM_BUCKETS]; NUM_HISTS],
        }
    }

    /// Record one observation of `v` under `h`.
    pub fn observe(&mut self, h: HistKey, v: u64) {
        let b = bucket_index(v);
        self.buckets[h.idx()][b] = self.buckets[h.idx()][b].saturating_add(1);
    }

    /// The count in bucket `b` of `h` (0 for an out-of-range bucket).
    pub fn bucket(&self, h: HistKey, b: usize) -> u64 {
        self.buckets[h.idx()].get(b).copied().unwrap_or(0)
    }

    /// Total observations recorded under `h`.
    pub fn count(&self, h: HistKey) -> u64 {
        self.buckets[h.idx()].iter().sum()
    }

    /// Bucket-wise add of `other` into `self`.
    pub fn merge(&mut self, other: &HistSet) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            for (a, b) in mine.iter_mut().zip(theirs.iter()) {
                *a = a.saturating_add(*b);
            }
        }
    }

    /// Bucket-wise `self - earlier` (saturating).
    pub fn diff(&self, earlier: &HistSet) -> HistSet {
        let mut out = HistSet::new();
        for (o, (a, b)) in out
            .buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(earlier.buckets.iter()))
        {
            for (ov, (av, bv)) in o.iter_mut().zip(a.iter().zip(b.iter())) {
                *ov = av.saturating_sub(*bv);
            }
        }
        out
    }

    /// Add `n` observations directly into bucket `b` of `h` (saturating);
    /// out-of-range buckets are ignored. The deserialization hook for
    /// histogram deltas read back from a trace stream.
    pub fn add_bucket(&mut self, h: HistKey, b: usize, n: u64) {
        if let Some(slot) = self.buckets[h.idx()].get_mut(b) {
            *slot = slot.saturating_add(n);
        }
    }

    /// The raw bucket counts of `h`, in bucket order.
    pub fn buckets_of(&self, h: HistKey) -> [u64; NUM_BUCKETS] {
        self.buckets[h.idx()]
    }

    /// The histograms with at least one observation, as
    /// `(key, bucket counts)` pairs in declaration order.
    pub fn nonzero(&self) -> Vec<(HistKey, [u64; NUM_BUCKETS])> {
        HistKey::ALL
            .iter()
            .filter(|&&h| self.count(h) > 0)
            .map(|&h| (h, self.buckets_of(h)))
            .collect()
    }

    /// Estimate the `p`-quantile of `h` from its power-of-two buckets.
    ///
    /// Uses the nearest-rank method at bucket resolution: the estimate is
    /// the inclusive *upper bound* of the bucket containing the rank
    /// `ceil(p·n)` observation (clamped to `[1, n]`, so `p = 0` selects
    /// the first observation and `p = 1` the last). The open-ended last
    /// bucket reports its lower bound, 64. `p` outside `[0, 1]` (or NaN)
    /// is clamped. Returns `None` for an empty histogram.
    pub fn quantile(&self, h: HistKey, p: f64) -> Option<f64> {
        let n = self.count(h);
        if n == 0 {
            return None;
        }
        let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 1.0) };
        // f64 -> u64 `as` casts saturate, so huge products stay safe.
        let rank = ((p * n as f64).ceil() as u64).clamp(1, n);
        let mut cum = 0u64;
        for (b, &count) in self.buckets[h.idx()].iter().enumerate() {
            cum = cum.saturating_add(count);
            if cum >= rank {
                let (lo, hi) = bucket_bounds(b);
                return Some(hi.unwrap_or(lo) as f64);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_names_roundtrip_and_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for &c in &Counter::ALL {
            assert!(seen.insert(c.name()), "duplicate name {}", c.name());
            assert_eq!(Counter::from_name(c.name()), Some(c));
        }
        assert_eq!(Counter::ALL.len(), NUM_COUNTERS);
        assert_eq!(Counter::from_name("nope"), None);
    }

    #[test]
    fn metric_set_add_merge_diff() {
        let mut a = MetricSet::new();
        a.add(Counter::EngineHitIssued, 3);
        a.add(Counter::ProbesIssued, 1);
        let mut b = MetricSet::new();
        b.add(Counter::EngineHitIssued, 2);
        let mut m = a;
        m.merge(&b);
        assert_eq!(m.get(Counter::EngineHitIssued), 5);
        assert_eq!(m.get(Counter::ProbesIssued), 1);
        let d = m.diff(&b);
        assert_eq!(d.get(Counter::EngineHitIssued), 3);
        assert_eq!(
            d.nonzero(),
            vec![(Counter::EngineHitIssued, 3), (Counter::ProbesIssued, 1)]
        );
        assert!(!d.is_zero());
        assert!(MetricSet::new().is_zero());
    }

    #[test]
    fn metric_set_diff_saturates_on_underflow() {
        // `diff` promises `self - earlier` saturating at zero: a counter
        // that is *smaller* in `self` (only possible when the operands are
        // not snapshots of one monotonic set) must clamp, not wrap.
        let mut small = MetricSet::new();
        small.add(Counter::ProbesIssued, 2);
        let mut big = MetricSet::new();
        big.add(Counter::ProbesIssued, 7);
        big.add(Counter::AttrsTotal, 1);
        let d = small.diff(&big);
        assert_eq!(d.get(Counter::ProbesIssued), 0);
        assert_eq!(d.get(Counter::AttrsTotal), 0);
        assert!(d.is_zero());
        // and the well-ordered direction still subtracts exactly
        assert_eq!(big.diff(&small).get(Counter::ProbesIssued), 5);
    }

    #[test]
    fn shared_metrics_snapshot() {
        let s = SharedMetrics::new();
        s.add(Counter::SearchCacheHit, 4);
        assert_eq!(s.get(Counter::SearchCacheHit), 4);
        assert_eq!(s.snapshot().get(Counter::SearchCacheHit), 4);
        s.reset();
        assert!(s.snapshot().is_zero());
    }

    #[test]
    fn shared_metrics_merge_folds_deltas() {
        let s = SharedMetrics::new();
        let mut d = MetricSet::new();
        d.add(Counter::ProbesIssued, 3);
        d.add(Counter::AttrsTotal, 1);
        s.merge(&d);
        s.merge(&d);
        assert_eq!(s.get(Counter::ProbesIssued), 6);
        assert_eq!(s.get(Counter::AttrsTotal), 2);
        assert_eq!(s.get(Counter::EngineHitIssued), 0);
    }

    #[test]
    fn gauges_merge_by_max() {
        let mut a = GaugeSet::new();
        a.set(Gauge::Interfaces, 20);
        a.set(Gauge::Interfaces, 5); // keeps max
        let mut b = GaugeSet::new();
        b.set(Gauge::Interfaces, 12);
        b.set(Gauge::Attributes, 80);
        a.merge(&b);
        assert_eq!(a.get(Gauge::Interfaces), 20);
        assert_eq!(a.get(Gauge::Attributes), 80);
    }

    #[test]
    fn histogram_buckets() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(63), 6);
        assert_eq!(bucket_index(64), 7);
        assert_eq!(bucket_index(u64::MAX), 7);
        let mut h = HistSet::new();
        h.observe(HistKey::CandidatesPerAttr, 0);
        h.observe(HistKey::CandidatesPerAttr, 5);
        h.observe(HistKey::ProbesPerAttr, 100);
        assert_eq!(h.count(HistKey::CandidatesPerAttr), 2);
        assert_eq!(h.bucket(HistKey::CandidatesPerAttr, 3), 1);
        let mut m = HistSet::new();
        m.merge(&h);
        m.merge(&h);
        assert_eq!(m.count(HistKey::CandidatesPerAttr), 4);
        assert_eq!(m.diff(&h), h);
    }

    #[test]
    fn hist_key_names_roundtrip() {
        for &h in &HistKey::ALL {
            assert_eq!(HistKey::from_name(h.name()), Some(h));
        }
        assert_eq!(HistKey::from_name("nope"), None);
    }

    #[test]
    fn bucket_bounds_cover_the_range() {
        assert_eq!(bucket_bounds(0), (0, Some(0)));
        assert_eq!(bucket_bounds(1), (1, Some(1)));
        assert_eq!(bucket_bounds(2), (2, Some(3)));
        assert_eq!(bucket_bounds(6), (32, Some(63)));
        assert_eq!(bucket_bounds(7), (64, None));
        // every value's bucket contains it
        for v in [0u64, 1, 2, 3, 4, 63, 64, 1000] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v, "{v}");
            assert!(hi.is_none_or(|h| v <= h), "{v}");
        }
    }

    #[test]
    fn quantile_empty_histogram_is_none() {
        let h = HistSet::new();
        for p in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(HistKey::ProbesPerAttr, p), None);
        }
    }

    #[test]
    fn quantile_at_pinned_ranks() {
        // Values 1..=10 land in buckets: [1]=1, [2-3]=2, [4-7]=4, [8-15]=3.
        let mut h = HistSet::new();
        for v in 1..=10 {
            h.observe(HistKey::CandidatesPerAttr, v);
        }
        let q = |p| h.quantile(HistKey::CandidatesPerAttr, p);
        assert_eq!(q(0.0), Some(1.0)); // rank 1 -> bucket [1]
        assert_eq!(q(0.5), Some(7.0)); // rank 5 -> bucket [4-7]
        assert_eq!(q(0.99), Some(15.0)); // rank 10 -> bucket [8-15]
        assert_eq!(q(1.0), Some(15.0)); // rank 10, same bucket
                                        // out-of-range and NaN p are clamped, not panicking
        assert_eq!(q(-3.0), Some(1.0));
        assert_eq!(q(7.0), Some(15.0));
        assert_eq!(q(f64::NAN), Some(1.0));
    }

    #[test]
    fn quantile_single_bucket_collapses_every_p() {
        // All mass in one bucket: every quantile is that bucket's upper
        // bound, regardless of p.
        let mut h = HistSet::new();
        for _ in 0..7 {
            h.observe(HistKey::CandidatesPerAttr, 5); // bucket [4-7]
        }
        for p in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(HistKey::CandidatesPerAttr, p), Some(7.0), "{p}");
        }
    }

    #[test]
    fn quantile_p99_on_two_samples_selects_the_upper_one() {
        // n = 2: rank ceil(0.99 * 2) = 2, so p99 is the larger sample's
        // bucket — the tail sample must not be averaged away.
        let mut h = HistSet::new();
        h.observe(HistKey::ProbesPerAttr, 1); // bucket [1]
        h.observe(HistKey::ProbesPerAttr, 40); // bucket [32-63]
        assert_eq!(h.quantile(HistKey::ProbesPerAttr, 0.99), Some(63.0));
        // ...while the median lands on the lower sample (rank 1).
        assert_eq!(h.quantile(HistKey::ProbesPerAttr, 0.5), Some(1.0));
    }

    #[test]
    fn quantile_open_last_bucket_reports_lower_bound() {
        let mut h = HistSet::new();
        h.observe(HistKey::ProbesPerAttr, 100);
        h.observe(HistKey::ProbesPerAttr, 5000);
        assert_eq!(h.quantile(HistKey::ProbesPerAttr, 0.5), Some(64.0));
        assert_eq!(h.quantile(HistKey::ProbesPerAttr, 1.0), Some(64.0));
    }

    #[test]
    fn hist_nonzero_and_add_bucket_roundtrip() {
        let mut h = HistSet::new();
        h.observe(HistKey::ProbesPerAttr, 6);
        h.observe(HistKey::ProbesPerAttr, 6);
        let nz = h.nonzero();
        assert_eq!(nz.len(), 1);
        let (key, buckets) = nz[0];
        assert_eq!(key, HistKey::ProbesPerAttr);
        let mut rebuilt = HistSet::new();
        for (b, &n) in buckets.iter().enumerate() {
            rebuilt.add_bucket(key, b, n);
        }
        assert_eq!(rebuilt, h);
        rebuilt.add_bucket(key, NUM_BUCKETS + 5, 9); // out of range: ignored
        assert_eq!(rebuilt, h);
    }
}
