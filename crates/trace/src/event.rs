//! Trace events and their JSONL wire format.
//!
//! An event stream is a sequence of span opens and closes keyed by a
//! *logical clock*: `seq` is the global event index assigned at merge
//! time, never a wall-clock reading, so the stream is byte-identical
//! across runs and worker counts. A close event carries the non-zero
//! counter deltas observed inside the span (see
//! [`crate::metrics::MetricSet::diff`]).
//!
//! The wire format is one flat JSON object per line, emitted by
//! [`Event::to_jsonl`] and parsed back by [`Event::parse`]:
//!
//! ```text
//! {"ev":"open","seq":0,"id":0,"name":"acquire","attr":"book"}
//! {"ev":"open","seq":1,"id":1,"parent":0,"name":"attribute","attr":"0/0 Title"}
//! {"ev":"decision","seq":2,"id":1,"kind":"instance_validate","subject":"rome","verdict":"accept","t":{"pmi":0.0042,"threshold":0}}
//! {"ev":"close","seq":3,"id":1,"m":{"engine_hit_issued":42,"attrs_total":1}}
//! {"ev":"close","seq":4,"id":0,"m":{"engine_hit_issued":42,"attrs_total":1},"h":{"probes_per_attr":[0,0,0,1,0,0,0,0]}}
//! ```
//!
//! A *decision* line records one match-relevant judgment — an instance
//! validated, a borrowed lender probed, a cluster pair merged — with the
//! evidence terms behind it (`"t"`: name → finite float, in recording
//! order). Its `id` is the *enclosing span's* id, anchoring the decision
//! in the provenance tree that `webiq-report explain` renders. Floats
//! are written with Rust's shortest-roundtrip `Display`, so decision
//! streams share the byte-identity guarantee of the rest of the trace.
//!
//! Work-item root closes and scope closes additionally carry the
//! histogram deltas observed inside them (`"h"`: bucket-count arrays per
//! [`HistKey`]), so a trace file is sufficient to rebuild the run's
//! latency/size distributions — the basis of `webiq-report diff`'s
//! quantile comparison.
//!
//! The encoder writes keys in a fixed order and omits absent optional
//! fields, so equality of two streams is byte equality. The parser
//! accepts exactly this shape (it is a reader for traces this module
//! wrote, not a general JSON parser); unknown counter and histogram
//! names inside `"m"`/`"h"` are skipped so old reports can read newer
//! traces.

use crate::metrics::{Counter, HistKey, NUM_BUCKETS};

/// One trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A span opened.
    Open {
        /// Logical-clock position (global event index).
        seq: u64,
        /// Span id, unique within the trace.
        id: u64,
        /// Enclosing span id, if any.
        parent: Option<u64>,
        /// The span's stage name (e.g. `"surface"`).
        name: String,
        /// Free-form subject (attribute label, domain name).
        attr: Option<String>,
    },
    /// A span closed.
    Close {
        /// Logical-clock position (global event index).
        seq: u64,
        /// Id of the span being closed.
        id: u64,
        /// Non-zero counter deltas observed inside the span.
        metrics: Vec<(Counter, u64)>,
        /// Histogram deltas observed inside the span (bucket counts per
        /// key; empty for spans that carry none — only work-item roots
        /// and tracer scopes do).
        hists: Vec<(HistKey, [u64; NUM_BUCKETS])>,
    },
    /// A match-relevant judgment and the evidence terms behind it.
    Decision {
        /// Logical-clock position (global event index).
        seq: u64,
        /// Id of the *enclosing span* — the decision's provenance anchor.
        id: u64,
        /// Decision family (e.g. `"instance_validate"`, `"cluster_merge"`).
        kind: String,
        /// What was decided about (an instance, a lender, an attribute pair).
        subject: String,
        /// The outcome (`"accept"`, `"reject"`, `"merge"`, ...).
        verdict: String,
        /// Evidence terms in recording order: name → finite value.
        terms: Vec<(String, f64)>,
    },
}

impl Event {
    /// The event's logical-clock position.
    pub fn seq(&self) -> u64 {
        match self {
            Event::Open { seq, .. } | Event::Close { seq, .. } | Event::Decision { seq, .. } => {
                *seq
            }
        }
    }

    /// The event's span id (for a decision, the enclosing span's id).
    pub fn id(&self) -> u64 {
        match self {
            Event::Open { id, .. } | Event::Close { id, .. } | Event::Decision { id, .. } => *id,
        }
    }

    /// Serialize to one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        match self {
            Event::Open {
                seq,
                id,
                parent,
                name,
                attr,
            } => {
                let mut s = format!("{{\"ev\":\"open\",\"seq\":{seq},\"id\":{id}");
                if let Some(p) = parent {
                    s.push_str(",\"parent\":");
                    s.push_str(&p.to_string());
                }
                s.push_str(",\"name\":\"");
                push_escaped(&mut s, name);
                s.push('"');
                if let Some(a) = attr {
                    s.push_str(",\"attr\":\"");
                    push_escaped(&mut s, a);
                    s.push('"');
                }
                s.push('}');
                s
            }
            Event::Close {
                seq,
                id,
                metrics,
                hists,
            } => {
                let mut s = format!("{{\"ev\":\"close\",\"seq\":{seq},\"id\":{id},\"m\":{{");
                for (i, (c, v)) in metrics.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push('"');
                    s.push_str(c.name());
                    s.push_str("\":");
                    s.push_str(&v.to_string());
                }
                s.push('}');
                if !hists.is_empty() {
                    s.push_str(",\"h\":{");
                    for (i, (h, buckets)) in hists.iter().enumerate() {
                        if i > 0 {
                            s.push(',');
                        }
                        s.push('"');
                        s.push_str(h.name());
                        s.push_str("\":[");
                        for (b, n) in buckets.iter().enumerate() {
                            if b > 0 {
                                s.push(',');
                            }
                            s.push_str(&n.to_string());
                        }
                        s.push(']');
                    }
                    s.push('}');
                }
                s.push('}');
                s
            }
            Event::Decision {
                seq,
                id,
                kind,
                subject,
                verdict,
                terms,
            } => {
                let mut s = format!("{{\"ev\":\"decision\",\"seq\":{seq},\"id\":{id},\"kind\":\"");
                push_escaped(&mut s, kind);
                s.push_str("\",\"subject\":\"");
                push_escaped(&mut s, subject);
                s.push_str("\",\"verdict\":\"");
                push_escaped(&mut s, verdict);
                s.push_str("\",\"t\":{");
                for (i, (k, v)) in terms.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push('"');
                    push_escaped(&mut s, k);
                    s.push_str("\":");
                    // shortest-roundtrip Display: deterministic for a
                    // given bit pattern, parses back exactly
                    s.push_str(&v.to_string());
                }
                s.push_str("}}");
                s
            }
        }
    }

    /// Parse one JSONL line produced by [`Event::to_jsonl`]. Returns
    /// `None` on any malformed input instead of panicking.
    pub fn parse(line: &str) -> Option<Event> {
        let mut cur = Cur::new(line.trim());
        cur.eat(b'{')?;
        let mut ev: Option<String> = None;
        let mut seq: Option<u64> = None;
        let mut id: Option<u64> = None;
        let mut parent: Option<u64> = None;
        let mut name: Option<String> = None;
        let mut attr: Option<String> = None;
        let mut kind: Option<String> = None;
        let mut subject: Option<String> = None;
        let mut verdict: Option<String> = None;
        let mut terms: Vec<(String, f64)> = Vec::new();
        let mut metrics: Vec<(Counter, u64)> = Vec::new();
        let mut hists: Vec<(HistKey, [u64; NUM_BUCKETS])> = Vec::new();
        loop {
            let key = cur.string()?;
            cur.eat(b':')?;
            match key.as_str() {
                "ev" => ev = Some(cur.string()?),
                "seq" => seq = Some(cur.number()?),
                "id" => id = Some(cur.number()?),
                "parent" => parent = Some(cur.number()?),
                "name" => name = Some(cur.string()?),
                "attr" => attr = Some(cur.string()?),
                "kind" => kind = Some(cur.string()?),
                "subject" => subject = Some(cur.string()?),
                "verdict" => verdict = Some(cur.string()?),
                "t" => {
                    cur.eat(b'{')?;
                    if !cur.try_eat(b'}') {
                        loop {
                            let tk = cur.string()?;
                            cur.eat(b':')?;
                            let v = cur.float()?;
                            terms.push((tk, v));
                            if cur.try_eat(b'}') {
                                break;
                            }
                            cur.eat(b',')?;
                        }
                    }
                }
                "m" => {
                    cur.eat(b'{')?;
                    if !cur.try_eat(b'}') {
                        loop {
                            let ck = cur.string()?;
                            cur.eat(b':')?;
                            let v = cur.number()?;
                            if let Some(c) = Counter::from_name(&ck) {
                                metrics.push((c, v));
                            }
                            if cur.try_eat(b'}') {
                                break;
                            }
                            cur.eat(b',')?;
                        }
                    }
                }
                "h" => {
                    cur.eat(b'{')?;
                    if !cur.try_eat(b'}') {
                        loop {
                            let hk = cur.string()?;
                            cur.eat(b':')?;
                            cur.eat(b'[')?;
                            let mut buckets = [0u64; NUM_BUCKETS];
                            let mut count = 0usize;
                            if !cur.try_eat(b']') {
                                loop {
                                    let v = cur.number()?;
                                    if let Some(slot) = buckets.get_mut(count) {
                                        *slot = v;
                                    } else {
                                        return None; // too many buckets
                                    }
                                    count += 1;
                                    if cur.try_eat(b']') {
                                        break;
                                    }
                                    cur.eat(b',')?;
                                }
                            }
                            if count != NUM_BUCKETS {
                                return None;
                            }
                            if let Some(h) = HistKey::from_name(&hk) {
                                hists.push((h, buckets));
                            }
                            if cur.try_eat(b'}') {
                                break;
                            }
                            cur.eat(b',')?;
                        }
                    }
                }
                _ => return None,
            }
            if cur.try_eat(b'}') {
                break;
            }
            cur.eat(b',')?;
        }
        if !cur.at_end() {
            return None;
        }
        match ev?.as_str() {
            "open" => Some(Event::Open {
                seq: seq?,
                id: id?,
                parent,
                name: name?,
                attr,
            }),
            "close" => Some(Event::Close {
                seq: seq?,
                id: id?,
                metrics,
                hists,
            }),
            "decision" => Some(Event::Decision {
                seq: seq?,
                id: id?,
                kind: kind?,
                subject: subject?,
                verdict: verdict?,
                terms,
            }),
            _ => None,
        }
    }
}

/// Append `s` with JSON string escaping (quotes, backslashes, control
/// characters).
fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u");
                let v = c as u32;
                for shift in [12u32, 8, 4, 0] {
                    let d = (v >> shift) & 0xf;
                    out.push(char::from_digit(d, 16).unwrap_or('0'));
                }
            }
            c => out.push(c),
        }
    }
}

/// A tiny byte cursor over one line.
struct Cur<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Cur<'a> {
    fn new(s: &'a str) -> Self {
        Cur {
            b: s.as_bytes(),
            i: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.i += 1;
        Some(c)
    }

    fn eat(&mut self, c: u8) -> Option<()> {
        if self.peek() == Some(c) {
            self.i += 1;
            Some(())
        } else {
            None
        }
    }

    fn try_eat(&mut self, c: u8) -> bool {
        self.eat(c).is_some()
    }

    fn at_end(&self) -> bool {
        self.i >= self.b.len()
    }

    /// A quoted JSON string with basic escapes (`\" \\ \/ \n \t \r \uXXXX`).
    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.i;
            match self.bump()? {
                b'"' => return Some(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'u' => {
                        let mut v: u32 = 0;
                        for _ in 0..4 {
                            let d = (self.bump()? as char).to_digit(16)?;
                            v = v * 16 + d;
                        }
                        out.push(char::from_u32(v)?);
                    }
                    _ => return None,
                },
                c if c < 0x80 => out.push(c as char),
                c => {
                    // Re-assemble a multi-byte UTF-8 sequence from the
                    // source slice (the input is a &str, so it is valid).
                    let len = match c {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.b.len());
                    out.push_str(std::str::from_utf8(self.b.get(start..end)?).ok()?);
                    self.i = end;
                }
            }
        }
    }

    /// An unsigned decimal integer.
    fn number(&mut self) -> Option<u64> {
        let mut v: u64 = 0;
        let mut any = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                v = v.checked_mul(10)?.checked_add(u64::from(c - b'0'))?;
                any = true;
                self.i += 1;
            } else {
                break;
            }
        }
        any.then_some(v)
    }

    /// A finite JSON number (decision evidence terms). Scans the JSON
    /// number alphabet and defers to `str::parse`, which round-trips the
    /// shortest-roundtrip `Display` encoding exactly.
    fn float(&mut self) -> Option<f64> {
        let start = self.i;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.i += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(self.b.get(start..self.i)?).ok()?;
        let v: f64 = text.parse().ok()?;
        v.is_finite().then_some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_roundtrip() {
        let e = Event::Open {
            seq: 7,
            id: 3,
            parent: Some(1),
            name: "surface".into(),
            attr: Some("0/2 From \"city\"".into()),
        };
        let line = e.to_jsonl();
        assert_eq!(Event::parse(&line), Some(e));
    }

    #[test]
    fn open_without_optionals_roundtrip() {
        let e = Event::Open {
            seq: 0,
            id: 0,
            parent: None,
            name: "acquire".into(),
            attr: None,
        };
        let line = e.to_jsonl();
        assert!(!line.contains("parent"));
        assert!(!line.contains("attr"));
        assert_eq!(Event::parse(&line), Some(e));
    }

    #[test]
    fn close_roundtrip() {
        let e = Event::Close {
            seq: 9,
            id: 3,
            metrics: vec![
                (Counter::EngineHitIssued, 42),
                (Counter::CandidatesExtracted, 7),
            ],
            hists: vec![],
        };
        let line = e.to_jsonl();
        assert_eq!(Event::parse(&line), Some(e));
    }

    #[test]
    fn close_with_hists_roundtrip() {
        let e = Event::Close {
            seq: 4,
            id: 0,
            metrics: vec![(Counter::ProbesIssued, 6)],
            hists: vec![
                (HistKey::CandidatesPerAttr, [0, 1, 2, 0, 0, 0, 0, 3]),
                (HistKey::ProbesPerAttr, [1, 0, 0, 0, 0, 0, 0, 0]),
            ],
        };
        let line = e.to_jsonl();
        assert!(line.contains(r#""h":{"candidates_per_attr":[0,1,2,0,0,0,0,3]"#));
        assert_eq!(Event::parse(&line), Some(e));
    }

    #[test]
    fn hists_with_wrong_bucket_count_are_rejected() {
        let short = r#"{"ev":"close","seq":1,"id":0,"m":{},"h":{"probes_per_attr":[1,2,3]}}"#;
        assert_eq!(Event::parse(short), None);
        let long =
            r#"{"ev":"close","seq":1,"id":0,"m":{},"h":{"probes_per_attr":[1,2,3,4,5,6,7,8,9]}}"#;
        assert_eq!(Event::parse(long), None);
    }

    #[test]
    fn unknown_hist_names_are_skipped() {
        let line = r#"{"ev":"close","seq":1,"id":0,"m":{},"h":{"future_hist":[1,0,0,0,0,0,0,0]}}"#;
        assert_eq!(
            Event::parse(line),
            Some(Event::Close {
                seq: 1,
                id: 0,
                metrics: vec![],
                hists: vec![],
            })
        );
    }

    #[test]
    fn close_with_empty_metrics_roundtrip() {
        let e = Event::Close {
            seq: 1,
            id: 0,
            metrics: vec![],
            hists: vec![],
        };
        assert_eq!(Event::parse(&e.to_jsonl()), Some(e));
    }

    #[test]
    fn escaping_of_special_and_unicode_chars() {
        let e = Event::Open {
            seq: 1,
            id: 1,
            parent: None,
            name: "n".into(),
            attr: Some("a\\b\"c\nd\té—\u{1}".into()),
        };
        assert_eq!(Event::parse(&e.to_jsonl()), Some(e));
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "",
            "{",
            "{}",
            "not json",
            r#"{"ev":"open","seq":1}"#,         // missing id
            r#"{"ev":"weird","seq":1,"id":2}"#, // unknown ev
            r#"{"ev":"open","seq":1,"id":2,"name":"x"} trailing"#,
            r#"{"unknown":1}"#,
        ] {
            assert_eq!(Event::parse(bad), None, "accepted: {bad}");
        }
    }

    #[test]
    fn decision_roundtrip() {
        let e = Event::Decision {
            seq: 5,
            id: 2,
            kind: "instance_validate".into(),
            subject: "rome".into(),
            verdict: "accept".into(),
            terms: vec![
                ("pmi".into(), 0.004_2),
                ("joint".into(), 17.0),
                ("threshold".into(), 0.0),
            ],
        };
        let line = e.to_jsonl();
        assert!(line.starts_with(r#"{"ev":"decision","seq":5,"id":2,"kind":"instance_validate""#));
        assert!(line.contains(r#""t":{"pmi":0.0042,"joint":17,"threshold":0}"#));
        assert_eq!(Event::parse(&line), Some(e));
    }

    #[test]
    fn decision_with_no_terms_roundtrip() {
        let e = Event::Decision {
            seq: 0,
            id: 0,
            kind: "borrow_reuse".into(),
            subject: "(a, b)".into(),
            verdict: "reuse".into(),
            terms: vec![],
        };
        assert_eq!(Event::parse(&e.to_jsonl()), Some(e));
    }

    #[test]
    fn decision_float_edge_values_roundtrip() {
        for v in [-3.5, 1e-9, 123_456_789.25, f64::MIN_POSITIVE, -0.0] {
            let e = Event::Decision {
                seq: 1,
                id: 1,
                kind: "k".into(),
                subject: "s".into(),
                verdict: "v".into(),
                terms: vec![("x".into(), v)],
            };
            let parsed = Event::parse(&e.to_jsonl());
            let Some(Event::Decision { terms, .. }) = parsed else {
                panic!("decision failed to parse for {v}");
            };
            assert_eq!(terms[0].1.to_bits(), v.to_bits(), "value {v}");
        }
    }

    #[test]
    fn malformed_decisions_are_rejected() {
        for bad in [
            // missing verdict
            r#"{"ev":"decision","seq":1,"id":0,"kind":"k","subject":"s","t":{}}"#,
            // non-finite term
            r#"{"ev":"decision","seq":1,"id":0,"kind":"k","subject":"s","verdict":"v","t":{"x":inf}}"#,
            // unterminated terms map
            r#"{"ev":"decision","seq":1,"id":0,"kind":"k","subject":"s","verdict":"v","t":{"x":1"#,
        ] {
            assert_eq!(Event::parse(bad), None, "accepted: {bad}");
        }
    }

    #[test]
    fn unknown_counter_names_are_skipped() {
        let line = r#"{"ev":"close","seq":1,"id":0,"m":{"future_counter":3,"probes_issued":2}}"#;
        assert_eq!(
            Event::parse(line),
            Some(Event::Close {
                seq: 1,
                id: 0,
                metrics: vec![(Counter::ProbesIssued, 2)],
                hists: vec![],
            })
        );
    }
}
