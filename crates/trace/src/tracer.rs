//! The [`Tracer`]: hierarchical spans on a logical clock, per-work-item
//! event buffers, and deterministic scope-join merging.
//!
//! ## Determinism model
//!
//! The parallel acquisition executor steals work items (attributes) off
//! an atomic index, so *which thread* runs an item — and in what real
//! order — is nondeterministic. The tracer therefore never assigns
//! global ids or sequence numbers on worker threads. Instead:
//!
//! 1. A worker starts a work item with [`Tracer::item`], which installs
//!    an *ambient* buffer in thread-local storage. Library code anywhere
//!    below records spans ([`span`]) and counters ([`add`]) into that
//!    buffer with ids local to the item.
//! 2. [`ItemTrace::finish`] detaches the buffer as an [`ItemBuf`].
//! 3. The merge loop — which already walks outcomes in attribute order
//!    to keep results byte-identical — calls [`Tracer::submit`] on each
//!    buffer *in item order*. Only here are the logical clock (`seq`)
//!    and global span ids assigned and events pushed to the sink.
//!
//! Because every event is produced from thread-local state and
//! serialized in item order, the stream is byte-identical for any
//! worker count.
//!
//! ## Always-on counters
//!
//! The thread-local counter set ([`add`] / [`snapshot`]) is active even
//! when no tracer is installed: per-item [`MetricSet`] deltas are how
//! `AcquisitionReport` is derived, tracing or not. Only the event
//! buffer (span records) is gated on an enabled tracer.

use std::cell::RefCell;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::event::Event;
use crate::metrics::{Counter, Gauge, GaugeSet, HistKey, HistSet, MetricSet};
use crate::sink::{JsonlSink, MemoryHandle, MemorySink, NoopSink, TraceSink};

/// Recover a mutex guard even if a panicking thread poisoned the lock.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

// ---------------------------------------------------------------------------
// Thread-local ambient state
// ---------------------------------------------------------------------------

/// A span record local to one work item; ids are item-local and remapped
/// to global ids at [`Tracer::submit`] time.
#[derive(Debug, Clone)]
pub(crate) enum LocalEvent {
    Open {
        id: u32,
        parent: Option<u32>,
        name: &'static str,
        attr: Option<String>,
    },
    Close {
        id: u32,
        delta: Vec<(Counter, u64)>,
    },
    Decision {
        /// Enclosing span's local id.
        parent: u32,
        kind: &'static str,
        subject: String,
        verdict: &'static str,
        terms: Vec<(String, f64)>,
    },
}

/// The ambient event buffer installed by [`Tracer::item`].
struct ActiveItem {
    events: Vec<LocalEvent>,
    /// Open spans: local id plus the counter snapshot taken at open.
    stack: Vec<(u32, MetricSet)>,
    next_id: u32,
}

struct LocalState {
    metrics: MetricSet,
    hists: HistSet,
    item: Option<ActiveItem>,
}

thread_local! {
    static LOCAL: RefCell<LocalState> = const {
        RefCell::new(LocalState {
            metrics: MetricSet::new(),
            hists: HistSet::new(),
            item: None,
        })
    };
}

/// Run `f` against the calling thread's state. Returns `None` only on
/// reentrant access (impossible through the public API), keeping the
/// crate panic-free.
fn with_local<R>(f: impl FnOnce(&mut LocalState) -> R) -> Option<R> {
    LOCAL.with(|l| match l.try_borrow_mut() {
        Ok(mut s) => Some(f(&mut s)),
        Err(_) => None,
    })
}

/// Add `n` to the calling thread's counter `c`. Always on; see the
/// module docs.
pub fn add(c: Counter, n: u64) {
    let _ = with_local(|s| s.metrics.add(c, n));
}

/// Add 1 to the calling thread's counter `c`.
pub fn incr(c: Counter) {
    add(c, 1);
}

/// Record one observation of `v` in the calling thread's histogram `h`.
pub fn observe(h: HistKey, v: u64) {
    let _ = with_local(|s| s.hists.observe(h, v));
}

/// A point-in-time copy of the calling thread's counters. The diff of
/// two snapshots around a call is that call's deterministic activity.
pub fn snapshot() -> MetricSet {
    with_local(|s| s.metrics).unwrap_or_default()
}

/// A point-in-time copy of the calling thread's histograms.
pub fn hist_snapshot() -> HistSet {
    with_local(|s| s.hists).unwrap_or_default()
}

// ---------------------------------------------------------------------------
// Ambient spans
// ---------------------------------------------------------------------------

/// Closes its span when dropped (RAII). Obtained from [`span`] /
/// [`span_attr`]; inert when no work item is being traced.
#[must_use = "a span closes when its guard drops; binding it to _ closes it immediately"]
#[derive(Debug)]
pub struct SpanGuard {
    id: Option<u32>,
}

/// Open a span named `name` in the ambient work-item buffer, if one is
/// installed. The returned guard closes the span on drop, recording the
/// counter deltas observed in between.
pub fn span(name: &'static str) -> SpanGuard {
    open_ambient(name, None)
}

/// Like [`span`], with a free-form subject string.
pub fn span_attr(name: &'static str, attr: impl Into<String>) -> SpanGuard {
    open_ambient(name, Some(attr.into()))
}

fn open_ambient(name: &'static str, attr: Option<String>) -> SpanGuard {
    let id = with_local(|s| {
        let snap = s.metrics;
        s.item.as_mut().map(|it| {
            let id = it.next_id;
            it.next_id += 1;
            let parent = it.stack.last().map(|&(p, _)| p);
            it.events.push(LocalEvent::Open {
                id,
                parent,
                name,
                attr,
            });
            it.stack.push((id, snap));
            id
        })
    })
    .flatten();
    SpanGuard { id }
}

/// Record a decision — a match-relevant judgment plus its evidence
/// terms — into the ambient work-item buffer, anchored to the innermost
/// open span. A no-op when no traced item is installed (tracer disabled
/// or outside an item), so call sites cost one thread-local borrow when
/// tracing is off. Non-finite terms are dropped at record time: the
/// wire format carries finite floats only.
pub fn decision(
    kind: &'static str,
    subject: impl Into<String>,
    verdict: &'static str,
    terms: &[(&str, f64)],
) {
    let _ = with_local(|s| {
        if let Some(it) = s.item.as_mut() {
            let parent = it.stack.last().map_or(0, |&(p, _)| p);
            it.events.push(LocalEvent::Decision {
                parent,
                kind,
                subject: subject.into(),
                verdict,
                terms: terms
                    .iter()
                    .filter(|(_, v)| v.is_finite())
                    .map(|&(k, v)| (k.to_string(), v))
                    .collect(),
            });
        }
    });
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(id) = self.id.take() else { return };
        let _ = with_local(|s| {
            let now = s.metrics;
            if let Some(it) = s.item.as_mut() {
                // Close up to and including `id`; the item root (bottom
                // of the stack) belongs to ItemTrace::finish.
                while it.stack.len() > 1 {
                    let Some((top, base)) = it.stack.pop() else {
                        break;
                    };
                    it.events.push(LocalEvent::Close {
                        id: top,
                        delta: now.diff(&base).nonzero(),
                    });
                    if top == id {
                        break;
                    }
                }
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Work items
// ---------------------------------------------------------------------------

/// Tracks one work item on the thread that runs it. Created by
/// [`Tracer::item`]; call [`ItemTrace::finish`] when the item is done
/// and hand the returned [`ItemBuf`] to [`Tracer::submit`] from the
/// deterministic merge loop.
///
/// Counter deltas are tracked even with a disabled tracer (they feed
/// `AcquisitionReport`); only span events are tracer-gated.
#[derive(Debug)]
pub struct ItemTrace {
    base: MetricSet,
    hist_base: HistSet,
    installed: bool,
}

impl ItemTrace {
    /// Close the item's root span, detach the buffer, and return it.
    pub fn finish(mut self) -> ItemBuf {
        let now = snapshot();
        let totals = now.diff(&self.base);
        let hists = hist_snapshot().diff(&self.hist_base);
        let mut events = Vec::new();
        let mut next_id = 0;
        if self.installed {
            self.installed = false;
            if let Some(Some(mut it)) = with_local(|s| s.item.take()) {
                // Close anything left open, the root last.
                while let Some((top, base)) = it.stack.pop() {
                    it.events.push(LocalEvent::Close {
                        id: top,
                        delta: now.diff(&base).nonzero(),
                    });
                }
                events = it.events;
                next_id = it.next_id;
            }
        }
        ItemBuf {
            events,
            next_id,
            totals,
            hists,
        }
    }
}

impl Drop for ItemTrace {
    fn drop(&mut self) {
        if self.installed {
            // finish() was skipped; uninstall so the thread is reusable.
            let _ = with_local(|s| s.item = None);
        }
    }
}

/// A finished work item's detached trace: its span events (empty when
/// the tracer was disabled) plus its deterministic metric deltas.
#[derive(Debug)]
pub struct ItemBuf {
    pub(crate) events: Vec<LocalEvent>,
    pub(crate) next_id: u32,
    totals: MetricSet,
    hists: HistSet,
}

impl ItemBuf {
    /// The item's counter deltas — deterministic regardless of worker
    /// count or cache state.
    pub fn totals(&self) -> &MetricSet {
        &self.totals
    }

    /// The item's histogram deltas.
    pub fn hists(&self) -> &HistSet {
        &self.hists
    }

    /// True when span events were recorded (tracer enabled).
    pub fn is_traced(&self) -> bool {
        !self.events.is_empty()
    }
}

// ---------------------------------------------------------------------------
// The tracer
// ---------------------------------------------------------------------------

/// Aggregated run totals: merged counters, gauges, and histograms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Totals {
    /// Sum of all submitted items' counter deltas.
    pub counters: MetricSet,
    /// Gauges recorded via [`Tracer::gauge`] (max-merged).
    pub gauges: GaugeSet,
    /// Merged histograms from all submitted items.
    pub hists: HistSet,
}

struct TracerState {
    sink: Box<dyn TraceSink>,
    next_seq: u64,
    next_id: u64,
    /// Open tracer-level scopes: global id plus the counters and
    /// histograms accumulated from items submitted while the scope was
    /// open.
    open: Vec<(u64, MetricSet, HistSet)>,
    totals: Totals,
}

/// The trace collector. `Clone` is cheap (an `Arc`), [`Default`] is
/// disabled; a disabled tracer makes every operation a no-op, so it can
/// sit in `WebIQConfig` unconditionally.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Mutex<TracerState>>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Tracer {
    /// A tracer that records nothing (the default).
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// An enabled tracer emitting into `sink`.
    pub fn with_sink(sink: Box<dyn TraceSink>) -> Self {
        Tracer {
            inner: Some(Arc::new(Mutex::new(TracerState {
                sink,
                next_seq: 0,
                next_id: 0,
                open: Vec::new(),
                totals: Totals::default(),
            }))),
        }
    }

    /// An enabled tracer that discards events but still aggregates
    /// totals — the overhead-measurement configuration.
    pub fn noop() -> Self {
        Tracer::with_sink(Box::new(NoopSink))
    }

    /// An enabled tracer collecting into memory, plus its read handle.
    pub fn memory() -> (Self, MemoryHandle) {
        let (sink, handle) = MemorySink::new();
        (Tracer::with_sink(Box::new(sink)), handle)
    }

    /// An enabled tracer writing JSONL into `w`.
    pub fn jsonl(w: Box<dyn std::io::Write + Send>) -> Self {
        Tracer::with_sink(Box::new(JsonlSink::new(w)))
    }

    /// Whether events are being recorded.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn with_state<R>(&self, f: impl FnOnce(&mut TracerState) -> R) -> Option<R> {
        let inner = self.inner.as_ref()?;
        Some(f(&mut lock(inner)))
    }

    /// Record a run-level gauge (max-merged into the totals).
    pub fn gauge(&self, g: Gauge, v: u64) {
        let _ = self.with_state(|s| s.totals.gauges.set(g, v));
    }

    /// Open a tracer-level scope (e.g. one whole acquisition run) that
    /// groups subsequently submitted items. Must be opened and closed on
    /// the merge thread; the guard closes the scope on drop, emitting
    /// the counters accumulated from everything submitted inside it.
    pub fn scope(&self, name: &'static str, attr: impl Into<String>) -> TraceScope {
        let attr = attr.into();
        let id = self.with_state(|s| {
            let id = s.next_id;
            s.next_id += 1;
            let parent = s.open.last().map(|&(p, ..)| p);
            let seq = s.next_seq;
            s.next_seq += 1;
            s.sink.event(&Event::Open {
                seq,
                id,
                parent,
                name: name.to_string(),
                attr: Some(attr),
            });
            s.open.push((id, MetricSet::new(), HistSet::new()));
            id
        });
        TraceScope {
            tracer: self.clone(),
            id,
        }
    }

    /// Start tracking a work item on the calling thread. Installs the
    /// ambient event buffer when enabled; always snapshots the
    /// thread-local counters so [`ItemTrace::finish`] yields the item's
    /// deltas either way. Nested items on one thread are not supported:
    /// the inner item records deltas but no events of its own.
    pub fn item(&self, name: &'static str, attr: impl Into<String>) -> ItemTrace {
        let base = snapshot();
        let hist_base = hist_snapshot();
        let mut installed = false;
        if self.enabled() {
            let attr = attr.into();
            installed = with_local(|s| {
                if s.item.is_some() {
                    return false;
                }
                let snap = s.metrics;
                s.item = Some(ActiveItem {
                    events: vec![LocalEvent::Open {
                        id: 0,
                        parent: None,
                        name,
                        attr: Some(attr),
                    }],
                    stack: vec![(0, snap)],
                    next_id: 1,
                });
                true
            })
            .unwrap_or(false);
        }
        ItemTrace {
            base,
            hist_base,
            installed,
        }
    }

    /// Merge a finished item into the trace: assign logical-clock
    /// sequence numbers and global span ids, parent the item under the
    /// innermost open scope, emit its events, and fold its deltas into
    /// the totals. Call in deterministic item order.
    pub fn submit(&self, buf: ItemBuf) {
        let _ = self.with_state(|s| {
            s.totals.counters.merge(&buf.totals);
            s.totals.hists.merge(&buf.hists);
            if let Some(top) = s.open.last_mut() {
                top.1.merge(&buf.totals);
                top.2.merge(&buf.hists);
            }
            if buf.events.is_empty() {
                return;
            }
            let base = s.next_id;
            s.next_id += u64::from(buf.next_id.max(1));
            let scope_parent = s.open.last().map(|&(p, ..)| p);
            for ev in &buf.events {
                let seq = s.next_seq;
                s.next_seq += 1;
                let e = match ev {
                    LocalEvent::Open {
                        id,
                        parent,
                        name,
                        attr,
                    } => Event::Open {
                        seq,
                        id: base + u64::from(*id),
                        parent: parent.map(|p| base + u64::from(p)).or(scope_parent),
                        name: (*name).to_string(),
                        attr: attr.clone(),
                    },
                    // the item root (local id 0) carries the item's
                    // histogram deltas; nested spans carry none
                    LocalEvent::Close { id, delta } => Event::Close {
                        seq,
                        id: base + u64::from(*id),
                        metrics: delta.clone(),
                        hists: if *id == 0 {
                            buf.hists.nonzero()
                        } else {
                            Vec::new()
                        },
                    },
                    LocalEvent::Decision {
                        parent,
                        kind,
                        subject,
                        verdict,
                        terms,
                    } => Event::Decision {
                        seq,
                        id: base + u64::from(*parent),
                        kind: (*kind).to_string(),
                        subject: subject.clone(),
                        verdict: (*verdict).to_string(),
                        terms: terms.clone(),
                    },
                };
                s.sink.event(&e);
            }
        });
    }

    /// A copy of the aggregated totals so far.
    pub fn totals(&self) -> Totals {
        self.with_state(|s| s.totals.clone()).unwrap_or_default()
    }

    /// Flush the sink.
    pub fn flush(&self) {
        let _ = self.with_state(|s| s.sink.flush());
    }
}

/// Closes its tracer-level scope when dropped (RAII). Obtained from
/// [`Tracer::scope`]; inert for a disabled tracer.
#[must_use = "a scope closes when its guard drops; binding it to _ closes it immediately"]
#[derive(Debug)]
pub struct TraceScope {
    tracer: Tracer,
    id: Option<u64>,
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        let Some(id) = self.id.take() else { return };
        let _ = self.tracer.with_state(|s| {
            while let Some((top, acc, acc_h)) = s.open.pop() {
                let seq = s.next_seq;
                s.next_seq += 1;
                s.sink.event(&Event::Close {
                    seq,
                    id: top,
                    metrics: acc.nonzero(),
                    hists: acc_h.nonzero(),
                });
                if let Some(parent) = s.open.last_mut() {
                    parent.1.merge(&acc);
                    parent.2.merge(&acc_h);
                }
                if top == id {
                    break;
                }
            }
        });
    }
}
