//! # webiq-trace — deterministic structured tracing and pipeline metrics
//!
//! Observability for the WebIQ acquisition stack, built around one hard
//! requirement: **a trace must be byte-identical across runs and across
//! worker counts**, exactly like the acquisition output itself. That
//! rules out wall-clock timestamps and per-thread aggregation; instead:
//!
//! - spans are keyed by a *logical clock* — monotonic event sequence
//!   numbers assigned when work items are merged in deterministic
//!   (attribute) order, never on the worker threads that raced to
//!   produce them ([`tracer`]);
//! - metrics are typed [`Counter`]s / [`Gauge`]s / [`HistKey`]s recorded
//!   in thread-local [`MetricSet`]s whose per-item *deltas* are merged at
//!   scope-join ([`metrics`]);
//! - sinks are pluggable: [`NoopSink`] (tracing off costs nothing —
//!   guarded by the `trace_overhead` bench), [`MemorySink`] for tests,
//!   and [`JsonlSink`] for durable traces ([`sink`]);
//! - [`report`] renders a trace into the per-domain funnel summary
//!   (attrs in → candidates → verified → borrowed → probed → matched),
//!   also available via the workspace's `webiq-report` binary;
//! - wall-clock readings exist only in the sanctioned [`timing`] module,
//!   for report-only durations and benches (enforced by `webiq-lint`'s
//!   `wall-clock` and `trace-hygiene` rules).
//!
//! The crate is dependency-free and panic-free, and sits below every
//! pipeline crate in the workspace graph so all of them can record into
//! it.
#![forbid(unsafe_code)]

pub mod event;
pub mod metrics;
pub mod report;
pub mod sink;
pub mod timing;
pub mod tracer;

pub use event::Event;
pub use metrics::{Counter, Gauge, GaugeSet, HistKey, HistSet, MetricSet, SharedMetrics};
pub use sink::{JsonlSink, MemoryHandle, MemorySink, NoopSink, SharedBuf, TraceSink};
pub use tracer::{
    add, decision, hist_snapshot, incr, observe, snapshot, span, span_attr, ItemBuf, ItemTrace,
    SpanGuard, Totals, TraceScope, Tracer,
};
