//! `webiq-report`: turn a trace into a per-domain, per-stage funnel.
//!
//! The funnel follows an attribute through the acquisition pipeline —
//! attrs in → candidates → verified → borrowed → probed → matched — and
//! its totals are, by construction, the same counters
//! `AcquisitionReport` is derived from (asserted by
//! `crates/core/tests/trace_report.rs`).
//!
//! Aggregation works from close events of *root* spans only (spans with
//! no parent): a span's close delta already includes everything nested
//! inside it, so summing every close would double-count.

use std::collections::HashMap;

use crate::event::Event;
use crate::metrics::{Counter, Gauge, HistKey, MetricSet, BUCKET_LABELS};
use crate::tracer::Totals;

/// The per-stage funnel totals extracted from a counter set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Funnel {
    /// Attributes entering the strategy.
    pub attrs_total: u64,
    /// Of those, instance-less (§5 case 1).
    pub no_instance: u64,
    /// Of those, pre-defined and run through Attr-Surface (§5 case 2).
    pub predefined: u64,
    /// Candidate instances extracted from snippets.
    pub candidates: u64,
    /// Candidates surviving outlier removal + PMI validation.
    pub verified: u64,
    /// Borrowings accepted (case-1 probed domains + case-2 Bayes values).
    pub borrowed: u64,
    /// Deep-Web probes issued.
    pub probed: u64,
    /// Cluster merges performed by the matcher.
    pub matched: u64,
    /// Instance-less attributes that reached k with Surface alone.
    pub surface_success: u64,
    /// Instance-less attributes that reached k after Surface + Deep.
    pub surface_deep_success: u64,
    /// Pre-defined attributes enriched by Attr-Surface.
    pub attr_surface_enriched: u64,
    /// Engine queries attributed to the Surface component.
    pub surface_queries: u64,
    /// Engine queries attributed to the Attr-Surface component.
    pub attr_surface_queries: u64,
    /// Probes attributed to the Attr-Deep component.
    pub attr_deep_probes: u64,
}

/// Extract the funnel stages from a counter set.
pub fn funnel(m: &MetricSet) -> Funnel {
    Funnel {
        attrs_total: m.get(Counter::AttrsTotal),
        no_instance: m.get(Counter::AttrsNoInstance),
        predefined: m.get(Counter::AttrsPredefined),
        candidates: m.get(Counter::CandidatesExtracted),
        verified: m.get(Counter::ValidationAccepted),
        borrowed: m.get(Counter::BorrowAccepted) + m.get(Counter::BayesAccepted),
        probed: m.get(Counter::ProbesIssued),
        matched: m.get(Counter::ClusterMerges),
        surface_success: m.get(Counter::SurfaceSuccess),
        surface_deep_success: m.get(Counter::SurfaceDeepSuccess),
        attr_surface_enriched: m.get(Counter::AttrSurfaceEnriched),
        surface_queries: m.get(Counter::SurfaceQueries),
        attr_surface_queries: m.get(Counter::AttrSurfaceQueries),
        attr_deep_probes: m.get(Counter::AttrDeepProbes),
    }
}

/// Sum the counter deltas of all root spans (parent-less) in an event
/// stream. This equals the merged totals of everything the trace saw.
pub fn aggregate(events: &[Event]) -> MetricSet {
    aggregate_run(events).counters
}

/// Aggregate a full event stream into run [`Totals`]: the counter *and*
/// histogram deltas of all root spans (parent-less). Gauges are not part
/// of the wire format and stay zero. This is what `webiq-report diff`
/// compares two runs by.
pub fn aggregate_run(events: &[Event]) -> Totals {
    let mut roots: HashMap<u64, bool> = HashMap::new();
    for e in events {
        if let Event::Open { id, parent, .. } = e {
            roots.insert(*id, parent.is_none());
        }
    }
    let mut out = Totals::default();
    for e in events {
        if let Event::Close {
            id, metrics, hists, ..
        } = e
        {
            if roots.get(id).copied().unwrap_or(false) {
                for &(c, v) in metrics {
                    out.counters.add(c, v);
                }
                for &(h, buckets) in hists {
                    for (b, &n) in buckets.iter().enumerate() {
                        out.hists.add_bucket(h, b, n);
                    }
                }
            }
        }
    }
    out
}

/// Group an event stream by its root spans, in stream order: one
/// `(label, counters)` entry per parent-less span, labelled
/// `name · attr`. A multi-domain run produces one entry per domain.
pub fn aggregate_by_root(events: &[Event]) -> Vec<(String, MetricSet)> {
    let mut order: Vec<u64> = Vec::new();
    let mut labels: HashMap<u64, String> = HashMap::new();
    for e in events {
        if let Event::Open {
            id,
            parent: None,
            name,
            attr,
            ..
        } = e
        {
            order.push(*id);
            let label = match attr {
                Some(a) => format!("{name} · {a}"),
                None => name.clone(),
            };
            labels.insert(*id, label);
        }
    }
    let mut sums: HashMap<u64, MetricSet> = HashMap::new();
    for e in events {
        if let Event::Close { id, metrics, .. } = e {
            if labels.contains_key(id) {
                let m = sums.entry(*id).or_default();
                for &(c, v) in metrics {
                    m.add(c, v);
                }
            }
        }
    }
    order
        .into_iter()
        .map(|id| {
            (
                labels.remove(&id).unwrap_or_default(),
                sums.remove(&id).unwrap_or_default(),
            )
        })
        .collect()
}

/// Render one labelled funnel as aligned text.
pub fn render_funnel(label: &str, m: &MetricSet) -> String {
    let f = funnel(m);
    let mut out = String::new();
    out.push_str(&format!("acquisition funnel — {label}\n"));
    out.push_str(&format!(
        "  attrs in      {:>8}   ({} instance-less, {} pre-defined)\n",
        f.attrs_total, f.no_instance, f.predefined
    ));
    out.push_str(&format!(
        "  candidates    {:>8}   (extraction queries {})\n",
        f.candidates,
        m.get(Counter::ExtractQueries)
    ));
    out.push_str(&format!(
        "  verified      {:>8}   (outliers removed {}, validation rejected {})\n",
        f.verified,
        m.get(Counter::OutliersRemoved),
        m.get(Counter::ValidationRejected)
    ));
    out.push_str(&format!(
        "  borrowed      {:>8}   (case-1 domains {}, bayes values {}; rejected {} + {})\n",
        f.borrowed,
        m.get(Counter::BorrowAccepted),
        m.get(Counter::BayesAccepted),
        m.get(Counter::BorrowRejected),
        m.get(Counter::BayesRejected)
    ));
    out.push_str(&format!(
        "  probed        {:>8}   (matched {}, empty {}, rejected {}, server errors {})\n",
        f.probed,
        m.get(Counter::ProbeMatched),
        m.get(Counter::ProbeEmpty),
        m.get(Counter::ProbeRejected),
        m.get(Counter::ProbeServerError)
    ));
    out.push_str(&format!(
        "  matched       {:>8}   (cluster merges)\n",
        f.matched
    ));
    out.push_str(&format!(
        "  success: surface {}/{}, surface+deep {}/{}, attr-surface enriched {}\n",
        f.surface_success,
        f.no_instance,
        f.surface_deep_success,
        f.no_instance,
        f.attr_surface_enriched
    ));
    out.push_str(&format!(
        "  cost: engine queries {} (surface {}, attr-surface {}), probes {}\n",
        f.surface_queries + f.attr_surface_queries,
        f.surface_queries,
        f.attr_surface_queries,
        f.attr_deep_probes
    ));
    out
}

/// Render a full run summary: funnel, gauges, and histograms.
pub fn render(totals: &Totals) -> String {
    let mut out = render_funnel("run totals", &totals.counters);
    let gauges: Vec<String> = Gauge::ALL
        .iter()
        .filter(|&&g| totals.gauges.get(g) > 0)
        .map(|&g| format!("{} {}", g.name(), totals.gauges.get(g)))
        .collect();
    if !gauges.is_empty() {
        out.push_str(&format!("  gauges: {}\n", gauges.join(", ")));
    }
    for &h in &HistKey::ALL {
        if totals.hists.count(h) == 0 {
            continue;
        }
        out.push_str(&format!("  {} (n={}):", h.name(), totals.hists.count(h)));
        for (b, label) in BUCKET_LABELS.iter().enumerate() {
            let n = totals.hists.bucket(h, b);
            if n > 0 {
                out.push_str(&format!(" [{label}]={n}"));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistSet;

    fn counters(entries: &[(Counter, u64)]) -> MetricSet {
        let mut m = MetricSet::new();
        for &(c, v) in entries {
            m.add(c, v);
        }
        m
    }

    #[test]
    fn funnel_maps_counters_to_stages() {
        let m = counters(&[
            (Counter::AttrsTotal, 10),
            (Counter::AttrsNoInstance, 6),
            (Counter::AttrsPredefined, 4),
            (Counter::CandidatesExtracted, 120),
            (Counter::ValidationAccepted, 50),
            (Counter::BorrowAccepted, 3),
            (Counter::BayesAccepted, 14),
            (Counter::ProbesIssued, 40),
            (Counter::ClusterMerges, 9),
        ]);
        let f = funnel(&m);
        assert_eq!(f.attrs_total, 10);
        assert_eq!(f.candidates, 120);
        assert_eq!(f.verified, 50);
        assert_eq!(f.borrowed, 17);
        assert_eq!(f.probed, 40);
        assert_eq!(f.matched, 9);
    }

    #[test]
    fn aggregate_counts_root_closes_only() {
        let events = vec![
            Event::Open {
                seq: 0,
                id: 0,
                parent: None,
                name: "acquire".into(),
                attr: Some("book".into()),
            },
            Event::Open {
                seq: 1,
                id: 1,
                parent: Some(0),
                name: "attribute".into(),
                attr: None,
            },
            // nested close: must NOT be double-counted
            Event::Close {
                seq: 2,
                id: 1,
                metrics: vec![(Counter::ProbesIssued, 5)],
                hists: vec![],
            },
            Event::Close {
                seq: 3,
                id: 0,
                metrics: vec![(Counter::ProbesIssued, 5)],
                hists: vec![],
            },
        ];
        let m = aggregate(&events);
        assert_eq!(m.get(Counter::ProbesIssued), 5);
    }

    #[test]
    fn aggregate_run_sums_root_hists_only() {
        let events = vec![
            Event::Open {
                seq: 0,
                id: 0,
                parent: None,
                name: "acquire".into(),
                attr: Some("book".into()),
            },
            Event::Open {
                seq: 1,
                id: 1,
                parent: Some(0),
                name: "attribute".into(),
                attr: None,
            },
            // nested close with hists: must NOT be double-counted
            Event::Close {
                seq: 2,
                id: 1,
                metrics: vec![(Counter::ProbesIssued, 5)],
                hists: vec![(HistKey::ProbesPerAttr, [0, 0, 0, 1, 0, 0, 0, 0])],
            },
            Event::Close {
                seq: 3,
                id: 0,
                metrics: vec![(Counter::ProbesIssued, 5)],
                hists: vec![(HistKey::ProbesPerAttr, [0, 0, 0, 1, 0, 0, 0, 0])],
            },
        ];
        let t = aggregate_run(&events);
        assert_eq!(t.counters.get(Counter::ProbesIssued), 5);
        assert_eq!(t.hists.count(HistKey::ProbesPerAttr), 1);
        assert_eq!(t.hists.bucket(HistKey::ProbesPerAttr, 3), 1);
        assert_eq!(t.hists.quantile(HistKey::ProbesPerAttr, 0.5), Some(7.0));
    }

    #[test]
    fn aggregate_by_root_groups_per_domain() {
        let mk = |seq, id, attr: &str| Event::Open {
            seq,
            id,
            parent: None,
            name: "acquire".into(),
            attr: Some(attr.into()),
        };
        let close = |seq, id, v| Event::Close {
            seq,
            id,
            metrics: vec![(Counter::AttrsTotal, v)],
            hists: vec![],
        };
        let events = vec![
            mk(0, 0, "book"),
            close(1, 0, 3),
            mk(2, 1, "auto"),
            close(3, 1, 7),
        ];
        let groups = aggregate_by_root(&events);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, "acquire · book");
        assert_eq!(groups[0].1.get(Counter::AttrsTotal), 3);
        assert_eq!(groups[1].0, "acquire · auto");
        assert_eq!(groups[1].1.get(Counter::AttrsTotal), 7);
    }

    #[test]
    fn render_includes_all_stages() {
        let mut totals = Totals::default();
        totals.counters.add(Counter::AttrsTotal, 5);
        totals.gauges.set(crate::metrics::Gauge::Interfaces, 20);
        let mut h = HistSet::new();
        h.observe(HistKey::CandidatesPerAttr, 12);
        totals.hists.merge(&h);
        let text = render(&totals);
        for needle in [
            "attrs in",
            "candidates",
            "verified",
            "borrowed",
            "probed",
            "matched",
            "gauges: interfaces 20",
            "candidates_per_attr (n=1)",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
