//! Pluggable trace sinks.
//!
//! A [`TraceSink`] receives the merged, logical-clock-ordered event
//! stream from the [`crate::tracer::Tracer`]. Three implementations
//! cover the pipeline's needs:
//!
//! - [`NoopSink`]: discards everything. A disabled tracer never reaches
//!   a sink at all, so tracing costs nothing when off (the
//!   `trace_overhead` bench guards this).
//! - [`MemorySink`]: collects events behind a shared handle, for tests.
//! - [`JsonlSink`]: serializes each event as one JSON line into any
//!   writer (a file, or a [`SharedBuf`] for in-process inspection).

use std::io::Write;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::event::Event;

/// Recover a mutex guard even if a panicking thread poisoned the lock —
/// metric state stays usable (the library itself never panics).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Receives merged trace events in logical-clock order.
pub trait TraceSink: Send {
    /// Record one event.
    fn event(&mut self, e: &Event);

    /// Flush any buffered output (a no-op by default).
    fn flush(&mut self) {}
}

/// Discards every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn event(&mut self, _e: &Event) {}
}

/// Collects events in memory; read them back through the
/// [`MemoryHandle`] returned by [`MemorySink::new`].
#[derive(Debug)]
pub struct MemorySink {
    events: Arc<Mutex<Vec<Event>>>,
}

impl MemorySink {
    /// A fresh sink plus the handle that observes it.
    pub fn new() -> (MemorySink, MemoryHandle) {
        let events = Arc::new(Mutex::new(Vec::new()));
        (
            MemorySink {
                events: Arc::clone(&events),
            },
            MemoryHandle { events },
        )
    }
}

impl TraceSink for MemorySink {
    fn event(&mut self, e: &Event) {
        lock(&self.events).push(e.clone());
    }
}

/// Reads back what a [`MemorySink`] collected.
#[derive(Debug, Clone)]
pub struct MemoryHandle {
    events: Arc<Mutex<Vec<Event>>>,
}

impl MemoryHandle {
    /// A copy of every event recorded so far.
    pub fn events(&self) -> Vec<Event> {
        lock(&self.events).clone()
    }

    /// The recorded events rendered as JSONL (one line per event).
    pub fn jsonl(&self) -> String {
        let mut out = String::new();
        for e in lock(&self.events).iter() {
            out.push_str(&e.to_jsonl());
            out.push('\n');
        }
        out
    }
}

/// Serializes each event as one JSON line into a writer. I/O errors are
/// swallowed (tracing must never fail the pipeline); call
/// [`TraceSink::flush`] before reading the output.
pub struct JsonlSink {
    w: Box<dyn Write + Send>,
}

impl JsonlSink {
    /// Wrap any writer (e.g. a `std::fs::File` or a [`SharedBuf`]).
    pub fn new(w: Box<dyn Write + Send>) -> Self {
        JsonlSink { w }
    }
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl TraceSink for JsonlSink {
    fn event(&mut self, e: &Event) {
        let _ = writeln!(self.w, "{}", e.to_jsonl());
    }

    fn flush(&mut self) {
        let _ = self.w.flush();
    }
}

/// A clonable in-memory byte buffer implementing [`Write`] — hand one
/// clone to a [`JsonlSink`] and keep another to read the bytes back.
/// This is how the determinism tests compare two JSONL streams byte for
/// byte.
#[derive(Debug, Clone, Default)]
pub struct SharedBuf {
    buf: Arc<Mutex<Vec<u8>>>,
}

impl SharedBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        SharedBuf::default()
    }

    /// A copy of the bytes written so far.
    pub fn contents(&self) -> Vec<u8> {
        lock(&self.buf).clone()
    }

    /// The bytes written so far, as UTF-8 (lossy).
    pub fn contents_string(&self) -> String {
        String::from_utf8_lossy(&self.contents()).into_owned()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        lock(&self.buf).extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Event {
        Event::Open {
            seq: 0,
            id: 0,
            parent: None,
            name: "t".into(),
            attr: None,
        }
    }

    #[test]
    fn noop_discards() {
        let mut s = NoopSink;
        s.event(&sample());
        s.flush();
    }

    #[test]
    fn memory_sink_records_in_order() {
        let (mut s, h) = MemorySink::new();
        s.event(&sample());
        s.event(&Event::Close {
            seq: 1,
            id: 0,
            metrics: vec![],
            hists: vec![],
        });
        let got = h.events();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].seq(), 0);
        assert_eq!(got[1].seq(), 1);
        assert_eq!(h.jsonl().lines().count(), 2);
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let buf = SharedBuf::new();
        let mut s = JsonlSink::new(Box::new(buf.clone()));
        s.event(&sample());
        s.flush();
        let text = buf.contents_string();
        assert_eq!(text, format!("{}\n", sample().to_jsonl()));
    }
}
