//! The sanctioned wall-clock module.
//!
//! Everything else in `webiq-trace` — and in the `// lint:deterministic`
//! pipeline modules that use it — runs on the logical clock, so traces
//! are byte-identical across runs. Real durations are still wanted in
//! two places: the report-only `secs` fields of `ComponentCost` and the
//! benches. Both go through [`Stopwatch`], and `webiq-lint` confines
//! `Instant`/`SystemTime` to this file (the `wall-clock` and
//! `trace-hygiene` rules), so a wall-clock reading can never leak into
//! the deterministic event stream by accident.

use std::time::Instant;

/// Measures elapsed wall-clock time. Report-only: never feed this into
/// trace events or anything compared across runs.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start measuring now.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic_nonnegative() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_secs();
        let b = sw.elapsed_secs();
        assert!(a >= 0.0);
        assert!(b >= a);
    }
}
