//! Integration tests for webiq-trace: span nesting, deterministic
//! counter merge, sink behavior, and the work-item buffer lifecycle.

use webiq_trace::{
    add, incr, snapshot, span, span_attr, Counter, Event, Gauge, HistKey, JsonlSink, MetricSet,
    SharedBuf, Tracer,
};

/// Simulate one traced work item: a root "attribute" span containing a
/// nested "surface" span and some counter activity.
fn run_item(tracer: &Tracer, label: &str, hits: u64) -> webiq_trace::ItemBuf {
    let item = tracer.item("attribute", label);
    {
        let _surface = span("surface");
        add(Counter::EngineHitIssued, hits);
        {
            let _extract = span_attr("extract", "cue-phrase");
            incr(Counter::CandidatesExtracted);
        }
    }
    incr(Counter::AttrsTotal);
    item.finish()
}

#[test]
fn span_nesting_parents_are_correct() {
    let (tracer, handle) = Tracer::memory();
    let scope = tracer.scope("acquire", "book");
    tracer.submit(run_item(&tracer, "a1", 3));
    drop(scope);

    let events = handle.events();
    // scope open, item open, surface open, extract open, extract close,
    // surface close, item close, scope close
    assert_eq!(events.len(), 8);
    // seq is the logical clock: 0..n in order
    for (i, e) in events.iter().enumerate() {
        assert_eq!(e.seq(), i as u64, "seq gap at {e:?}");
    }
    let (scope_id, item_id, surface_id, extract_id) = (
        events[0].id(),
        events[1].id(),
        events[2].id(),
        events[3].id(),
    );
    let parent_of = |i: usize| match &events[i] {
        Event::Open { parent, .. } => *parent,
        _ => panic!("expected open"),
    };
    assert_eq!(parent_of(0), None, "scope is a root");
    assert_eq!(parent_of(1), Some(scope_id), "item nests under scope");
    assert_eq!(parent_of(2), Some(item_id), "surface nests under item");
    assert_eq!(
        parent_of(3),
        Some(surface_id),
        "extract nests under surface"
    );
    // closes come innermost-first
    assert_eq!(events[4].id(), extract_id);
    assert_eq!(events[5].id(), surface_id);
    assert_eq!(events[6].id(), item_id);
    assert_eq!(events[7].id(), scope_id);
}

#[test]
fn span_close_deltas_nest_correctly() {
    let (tracer, handle) = Tracer::memory();
    tracer.submit(run_item(&tracer, "a1", 3));
    let events = handle.events();
    let close_metrics = |id: u64| -> MetricSet {
        let mut m = MetricSet::new();
        for e in &events {
            if let Event::Close {
                id: cid, metrics, ..
            } = e
            {
                if *cid == id {
                    for &(c, v) in metrics {
                        m.add(c, v);
                    }
                }
            }
        }
        m
    };
    let (item_id, surface_id, extract_id) = (events[0].id(), events[1].id(), events[2].id());
    // extract saw only the candidate counter
    assert_eq!(
        close_metrics(extract_id).get(Counter::CandidatesExtracted),
        1
    );
    assert_eq!(close_metrics(extract_id).get(Counter::EngineHitIssued), 0);
    // surface saw its own hits plus the nested extract activity
    assert_eq!(close_metrics(surface_id).get(Counter::EngineHitIssued), 3);
    assert_eq!(
        close_metrics(surface_id).get(Counter::CandidatesExtracted),
        1
    );
    // the item root additionally saw the counter bumped outside the spans
    assert_eq!(close_metrics(item_id).get(Counter::AttrsTotal), 1);
    assert_eq!(close_metrics(item_id).get(Counter::EngineHitIssued), 3);
}

#[test]
fn counter_merge_is_deterministic_across_submit_threads() {
    // Build items on four racing threads, then submit in item order —
    // the JSONL stream must be byte-identical to a sequential build.
    let streams: Vec<String> = [1usize, 4]
        .iter()
        .map(|&threads| {
            let buf = SharedBuf::new();
            let tracer = Tracer::jsonl(Box::new(buf.clone()));
            let scope = tracer.scope("acquire", "test");
            let labels: Vec<String> = (0..8).map(|i| format!("attr{i}")).collect();
            let mut bufs: Vec<(usize, webiq_trace::ItemBuf)> = if threads == 1 {
                labels
                    .iter()
                    .enumerate()
                    .map(|(i, l)| (i, run_item(&tracer, l, i as u64)))
                    .collect()
            } else {
                std::thread::scope(|s| {
                    let handles: Vec<_> = labels
                        .iter()
                        .enumerate()
                        .map(|(i, l)| {
                            let tracer = &tracer;
                            s.spawn(move || (i, run_item(tracer, l, i as u64)))
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("worker"))
                        .collect()
                })
            };
            bufs.sort_by_key(|&(i, _)| i);
            for (_, b) in bufs {
                tracer.submit(b);
            }
            drop(scope);
            tracer.flush();
            buf.contents_string()
        })
        .collect();
    assert!(!streams[0].is_empty());
    assert_eq!(
        streams[0], streams[1],
        "streams differ across thread counts"
    );
}

#[test]
fn totals_accumulate_and_scope_close_carries_rollup() {
    let (tracer, handle) = Tracer::memory();
    let scope = tracer.scope("acquire", "book");
    tracer.submit(run_item(&tracer, "a", 2));
    tracer.submit(run_item(&tracer, "b", 5));
    drop(scope);
    let totals = tracer.totals();
    assert_eq!(totals.counters.get(Counter::EngineHitIssued), 7);
    assert_eq!(totals.counters.get(Counter::AttrsTotal), 2);
    // the scope close event carries the same rollup
    let events = handle.events();
    let Some(Event::Close { metrics, .. }) = events.last() else {
        panic!("expected close last");
    };
    let hits = metrics
        .iter()
        .find(|(c, _)| *c == Counter::EngineHitIssued)
        .map(|&(_, v)| v);
    assert_eq!(hits, Some(7));
}

#[test]
fn disabled_tracer_still_yields_item_deltas() {
    let tracer = Tracer::disabled();
    assert!(!tracer.enabled());
    let buf = run_item(&tracer, "a", 4);
    assert!(!buf.is_traced(), "no events expected when disabled");
    assert_eq!(buf.totals().get(Counter::EngineHitIssued), 4);
    assert_eq!(buf.totals().get(Counter::AttrsTotal), 1);
    // submitting is a no-op, and totals stay empty
    tracer.submit(buf);
    assert!(tracer.totals().counters.is_zero());
}

#[test]
fn gauges_and_histograms_reach_totals() {
    let (tracer, _handle) = Tracer::memory();
    tracer.gauge(Gauge::Interfaces, 20);
    tracer.gauge(Gauge::Interfaces, 7); // max wins
    let item = tracer.item("attribute", "a");
    webiq_trace::observe(HistKey::CandidatesPerAttr, 12);
    tracer.submit(item.finish());
    let totals = tracer.totals();
    assert_eq!(totals.gauges.get(Gauge::Interfaces), 20);
    assert_eq!(totals.hists.count(HistKey::CandidatesPerAttr), 1);
}

#[test]
fn jsonl_stream_roundtrips_through_the_parser() {
    let buf = SharedBuf::new();
    let tracer = Tracer::with_sink(Box::new(JsonlSink::new(Box::new(buf.clone()))));
    let scope = tracer.scope("acquire", "book");
    tracer.submit(run_item(&tracer, "label with \"quotes\"", 1));
    drop(scope);
    tracer.flush();
    let text = buf.contents_string();
    let events: Vec<Event> = text
        .lines()
        .map(|l| Event::parse(l).expect("parse"))
        .collect();
    assert_eq!(events.len(), 8);
    let m = webiq_trace::report::aggregate(&events);
    assert_eq!(m.get(Counter::EngineHitIssued), 1);
}

#[test]
fn dropped_unfinished_item_leaves_thread_reusable() {
    let (tracer, handle) = Tracer::memory();
    {
        let _item = tracer.item("attribute", "abandoned");
        incr(Counter::AttrsTotal);
        // dropped without finish(): events discarded, ambient slot freed
    }
    tracer.submit(run_item(&tracer, "next", 1));
    let events = handle.events();
    assert_eq!(events.len(), 6, "only the finished item's events remain");
    // thread-local counters are global to the thread, not reset by drops
    let before = snapshot();
    incr(Counter::AttrsTotal);
    assert_eq!(snapshot().diff(&before).get(Counter::AttrsTotal), 1);
}

#[test]
fn out_of_order_guard_drop_is_forgiving() {
    let (tracer, handle) = Tracer::memory();
    let item = tracer.item("attribute", "a");
    let outer = span("outer");
    let inner = span("inner");
    drop(outer); // closes inner too (forgiving close-to-target)
    drop(inner); // already closed: no-op
    tracer.submit(item.finish());
    let events = handle.events();
    // item open, outer open, inner open, inner close, outer close, item close
    assert_eq!(events.len(), 6);
    assert_eq!(events[3].id(), events[2].id());
    assert_eq!(events[4].id(), events[1].id());
    assert_eq!(events[5].id(), events[0].id());
}

#[test]
fn ambient_span_without_item_is_inert() {
    let before = snapshot();
    {
        let _s = span("orphan");
        incr(Counter::ClusterMerges);
    }
    assert_eq!(snapshot().diff(&before).get(Counter::ClusterMerges), 1);
}

#[test]
fn decisions_anchor_to_the_enclosing_span_and_remap_on_submit() {
    let (tracer, handle) = Tracer::memory();
    let scope = tracer.scope("acquire", "book");
    let item = tracer.item("attribute", "0/0 Title");
    {
        let _verify = span("verify");
        webiq_trace::decision(
            "instance_validate",
            "rome",
            "accept",
            &[("pmi", 0.25), ("joint", 17.0), ("bad", f64::NAN)],
        );
    }
    tracer.submit(item.finish());
    drop(scope);

    let events = handle.events();
    // scope open, item open, verify open, decision, verify close,
    // item close, scope close
    assert_eq!(events.len(), 7);
    let verify_id = events[2].id();
    let Event::Decision {
        seq,
        id,
        kind,
        subject,
        verdict,
        terms,
    } = &events[3]
    else {
        panic!("expected decision, got {:?}", events[3]);
    };
    assert_eq!(*seq, 3);
    assert_eq!(*id, verify_id, "decision anchors to the verify span");
    assert_eq!(kind, "instance_validate");
    assert_eq!(subject, "rome");
    assert_eq!(verdict, "accept");
    // the NaN term was dropped at record time
    assert_eq!(
        terms,
        &vec![("pmi".to_string(), 0.25), ("joint".to_string(), 17.0)]
    );
}

#[test]
fn decisions_outside_a_traced_item_are_noops() {
    // no tracer installed at all
    webiq_trace::decision("instance_validate", "x", "accept", &[("pmi", 1.0)]);
    // enabled tracer, but no item on this thread
    let (tracer, handle) = Tracer::memory();
    let scope = tracer.scope("acquire", "book");
    webiq_trace::decision("instance_validate", "y", "reject", &[]);
    drop(scope);
    drop(tracer);
    assert_eq!(handle.events().len(), 2, "only scope open/close emitted");
}
