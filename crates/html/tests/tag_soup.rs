//! Tag-soup torture tests: constructs observed on real 2006-era query
//! interfaces that a forgiving parser must survive.

use webiq_html::form::{extract_forms, FieldKind};
use webiq_html::parse_document;

#[test]
fn table_soup_with_unclosed_cells() {
    let html = r#"
        <form action=search.cgi>
        <table border=1>
          <tr><td>From<td><input name=from>
          <tr><td>To<td><input name=to>
        </table>
        </form>"#;
    let forms = extract_forms(html);
    assert_eq!(forms.len(), 1);
    let labels: Vec<&str> = forms[0].fields.iter().map(|f| f.label.as_str()).collect();
    assert_eq!(labels, vec!["From", "To"]);
}

#[test]
fn font_and_bold_wrapped_labels() {
    let html = r#"<form><font size=2><b>Departure city:</b></font>
        <input name=dep></form>"#;
    let forms = extract_forms(html);
    assert_eq!(forms[0].fields[0].label, "Departure city");
}

#[test]
fn uppercase_everything() {
    let html = r#"<FORM METHOD=GET><B>AIRLINE:</B>
        <SELECT NAME=AL><OPTION>Delta<OPTION SELECTED>United</SELECT></FORM>"#;
    let forms = extract_forms(html);
    let f = &forms[0].fields[0];
    assert_eq!(f.name, "AL");
    assert_eq!(f.kind, FieldKind::Select);
    assert_eq!(f.options, vec!["Delta", "United"]);
    assert_eq!(f.default.as_deref(), Some("United"));
}

#[test]
fn comments_and_scripts_do_not_leak_labels() {
    let html = r#"<form>
        <!-- label: Bogus -->
        <script>var label = "Fake<input name=ghost>";</script>
        Real label: <input name=real>
        </form>"#;
    let forms = extract_forms(html);
    assert_eq!(forms[0].fields.len(), 1);
    assert_eq!(forms[0].fields[0].name, "real");
    assert_eq!(forms[0].fields[0].label, "Real label");
}

#[test]
fn nested_forms_are_tolerated() {
    // illegal HTML, seen in the wild; the inner form is treated as part of
    // the outer one by our lenient parser and also extracted on its own
    let html = r#"<form><input name=a><form><input name=b></form></form>"#;
    let forms = extract_forms(html);
    assert!(!forms.is_empty());
    let all_names: Vec<String> = forms
        .iter()
        .flat_map(|f| f.fields.iter().map(|x| x.name.clone()))
        .collect();
    assert!(all_names.contains(&"a".to_string()));
    assert!(all_names.contains(&"b".to_string()));
}

#[test]
fn entities_in_labels_and_options() {
    let html = r#"<form>Price&nbsp;range: <select name=p>
        <option>&lt; $10</option><option>$10 &amp; up</option></select></form>"#;
    let forms = extract_forms(html);
    let f = &forms[0].fields[0];
    assert_eq!(f.label, "Price range");
    assert_eq!(f.options, vec!["< $10", "$10 & up"]);
}

#[test]
fn attribute_values_with_spaces_unquoted_stop_at_whitespace() {
    // unquoted value stops at whitespace; the rest parses as attributes
    let html = r#"<form><input name=city value=New York></form>"#;
    let forms = extract_forms(html);
    let f = &forms[0].fields[0];
    assert_eq!(f.default.as_deref(), Some("New"));
}

#[test]
fn deeply_nested_markup_terminates() {
    let mut html = String::from("<form>");
    for _ in 0..200 {
        html.push_str("<div><span>");
    }
    html.push_str("Label: <input name=deep>");
    html.push_str("</form>");
    let forms = extract_forms(&html);
    assert_eq!(forms[0].fields[0].name, "deep");
}

#[test]
fn document_text_ignores_style_blocks() {
    let doc = parse_document("<style>td { color: red }</style><p>visible</p>");
    let p = doc.find_first("p").expect("p");
    assert_eq!(p.text(), "visible");
    // style contents exist in the tree but as the style element's text
    let style = doc.find_first("style").expect("style");
    assert!(style.text().contains("color"));
}

#[test]
fn malformed_doctype_and_pi_skipped() {
    let doc = parse_document("<?xml version=\"1.0\"?><!DOCTYPE html><p>x</p>");
    assert_eq!(doc.find_first("p").expect("p").text(), "x");
}

#[test]
fn select_multiple_and_optgroups() {
    let html = r#"<form>States: <select name=st multiple>
        <optgroup label="West"><option>Oregon<option>Nevada</optgroup>
        <optgroup label="East"><option>Maine</optgroup>
        </select></form>"#;
    let forms = extract_forms(html);
    let f = &forms[0].fields[0];
    assert_eq!(f.options, vec!["Oregon", "Nevada", "Maine"]);
}

#[test]
fn whitespace_heavy_layout() {
    let html = "<form>\n\n\t  Make \u{a0}: \n\t<input\n\tname=mk\n>\n</form>";
    let forms = extract_forms(html);
    assert_eq!(forms[0].fields[0].name, "mk");
    assert!(forms[0].fields[0].label.starts_with("Make"));
}
