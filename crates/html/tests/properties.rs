//! Property-based tests for the HTML substrate.

use webiq_html::{dom, entities, form, lexer};
use webiq_rng::prop;

/// The tokenizer is total on arbitrary bytes-as-text.
#[test]
fn tokenizer_total() {
    prop::cases(prop::CASES, |rng| {
        let s = rng.gen_string(prop::any_char(), 0, 300);
        let _ = lexer::tokenize(&s);
    });
}

/// The DOM parser is total and produces a finite tree.
#[test]
fn parser_total() {
    prop::cases(prop::CASES, |rng| {
        let s = rng.gen_string(
            prop::charset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ<>/=\"' "),
            0,
            300,
        );
        let doc = dom::parse_document(&s);
        // walking the tree terminates
        fn count(n: &dom::Node) -> usize {
            1 + n.children().iter().map(count).sum::<usize>()
        }
        assert!(count(&doc) >= 1);
    });
}

/// Entity encode → decode round-trips arbitrary text.
#[test]
fn entity_roundtrip() {
    prop::cases(prop::CASES, |rng| {
        let s = rng.gen_string(prop::any_char(), 0, 200);
        assert_eq!(entities::decode(&entities::encode(&s)), s);
    });
}

/// Decoding never panics on malformed entity soup.
#[test]
fn decode_total() {
    prop::cases(prop::CASES, |rng| {
        let s = rng.gen_string(
            prop::charset("&#;abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"),
            0,
            100,
        );
        let _ = entities::decode(&s);
    });
}

/// Form extraction is total on arbitrary tag soup.
#[test]
fn form_extraction_total() {
    prop::cases(prop::CASES, |rng| {
        let s = rng.gen_string(
            prop::charset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ<>/=\"' :"),
            0,
            300,
        );
        let _ = form::extract_forms(&s);
    });
}

/// A generated well-formed form round-trips its field names.
#[test]
fn generated_form_roundtrip() {
    prop::cases(prop::CASES, |rng| {
        let names = prop::string_vec(rng, prop::lower(), 1, 7, 1, 10);
        if names.iter().collect::<std::collections::HashSet<_>>().len() != names.len() {
            return;
        }
        let mut html = String::from("<form>");
        for n in &names {
            html.push_str(&format!("Label {n}: <input type=text name={n}>"));
        }
        html.push_str("</form>");
        let forms = form::extract_forms(&html);
        assert_eq!(forms.len(), 1);
        let got: Vec<&str> = forms[0].fields.iter().map(|f| f.name.as_str()).collect();
        let want: Vec<&str> = names.iter().map(std::string::String::as_str).collect();
        assert_eq!(got, want);
    });
}

/// Text nodes in parsed output contain no raw markup delimiters from
/// well-formed input.
#[test]
fn text_has_no_tags() {
    prop::cases(prop::CASES, |rng| {
        let words = prop::string_vec(rng, prop::lower(), 1, 5, 1, 8);
        let html = format!("<div><p>{}</p></div>", words.join(" "));
        let doc = dom::parse_document(&html);
        let text = doc.text();
        assert!(!text.contains('<') && !text.contains('>'));
    });
}
