//! Query-interface extraction from HTML forms.
//!
//! A Deep-Web query interface is an HTML form; its *attributes* are the
//! form's controls, each with a human-readable label and (for `<select>`,
//! radio groups, …) a set of pre-defined instances. This module recovers
//! that schema from markup, handling the association styles of real pages:
//! `<label for=…>`, wrapping `<label>`, and plain text preceding the
//! control (`From city: <input name=from>`).

use crate::dom::{self, Node};

/// The kind of form control backing an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldKind {
    /// Free-text entry (`<input type=text>`, `<textarea>`).
    Text,
    /// Drop-down with pre-defined instances (`<select>`).
    Select,
    /// Radio-button group (pre-defined instances).
    Radio,
    /// Checkbox.
    Checkbox,
    /// Hidden field (carried along but not a matchable attribute).
    Hidden,
}

/// One extracted attribute of a query interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormField {
    /// The control's `name` attribute (the parameter submitted).
    pub name: String,
    /// Human-readable label associated with the control.
    pub label: String,
    /// Control kind.
    pub kind: FieldKind,
    /// Pre-defined instances (options of a `<select>` or values of a radio
    /// group); empty for free-text controls.
    pub options: Vec<String>,
    /// Default value, when one is marked (`selected`, `checked`, `value=`).
    pub default: Option<String>,
}

/// An extracted form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractedForm {
    /// The form's `action` attribute (empty if absent).
    pub action: String,
    /// The form's `method` attribute, lowercased (`get` if absent).
    pub method: String,
    /// The matchable attributes in document order.
    pub fields: Vec<FormField>,
}

/// Flattened traversal event within a form.
enum Event<'a> {
    Text(String),
    Control(&'a Node),
}

/// Collect text and control events in document order. Text inside `<label>`,
/// `<b>`, `<td>`, etc. all flattens to plain text events.
fn collect_events<'a>(node: &'a Node, events: &mut Vec<Event<'a>>) {
    match node {
        Node::Text(t) => {
            let t = dom::normalize_ws(t);
            if !t.is_empty() {
                events.push(Event::Text(t));
            }
        }
        Node::Element { name, .. } => {
            match name.as_str() {
                "input" | "textarea" | "select" => {
                    events.push(Event::Control(node));
                    // do not descend into selects — options are read later
                }
                "script" | "style" => {}
                _ => {
                    for c in node.children() {
                        collect_events(c, events);
                    }
                }
            }
        }
    }
}

/// Map of `<label for=ID>` → label text, collected across the form.
fn label_for_map(form: &Node) -> Vec<(String, String)> {
    let mut labels = Vec::new();
    form.find_all("label", &mut labels);
    labels
        .into_iter()
        .filter_map(|l| {
            let id = l.attr("for")?.to_string();
            let text = clean_label(&l.text());
            (!text.is_empty()).then_some((id, text))
        })
        .collect()
}

/// Trim trailing separators commonly stuck to label text.
fn clean_label(s: &str) -> String {
    s.trim()
        .trim_end_matches([':', '*', '?'])
        .trim()
        .to_string()
}

/// Options (and default) of a `<select>` node.
fn select_options(select: &Node) -> (Vec<String>, Option<String>) {
    let mut opts = Vec::new();
    let mut nodes = Vec::new();
    select.find_all("option", &mut nodes);
    let mut default = None;
    for o in nodes {
        let text = o.text();
        let value = o.attr("value").map_or_else(|| text.clone(), str::to_string);
        // skip placeholder entries like "-- select --", "any", ""
        let is_placeholder = {
            let t = text.to_ascii_lowercase();
            t.is_empty()
                || t.starts_with('-')
                || t.starts_with("select")
                || t.starts_with("choose")
                || t == "any"
                || t == "all"
                || t == "no preference"
        };
        if o.attr("selected").is_some() && !is_placeholder {
            default = Some(value.clone());
        }
        if !is_placeholder {
            opts.push(value);
        }
    }
    (opts, default)
}

/// Extract all forms in an HTML document.
pub fn extract_forms(html: &str) -> Vec<ExtractedForm> {
    let doc = dom::parse_document(html);
    let mut forms = Vec::new();
    doc.find_all("form", &mut forms);
    forms.iter().map(|f| extract_form(f)).collect()
}

/// Extract one `<form>` element's schema.
pub fn extract_form(form: &Node) -> ExtractedForm {
    let action = form.attr("action").unwrap_or("").to_string();
    let method = form.attr("method").unwrap_or("get").to_ascii_lowercase();
    let for_labels = label_for_map(form);

    let mut events = Vec::new();
    for c in form.children() {
        collect_events(c, &mut events);
    }

    let mut fields: Vec<FormField> = Vec::new();
    let mut pending_text: Option<String> = None;

    for event in &events {
        match event {
            Event::Text(t) => {
                pending_text = Some(t.clone());
            }
            Event::Control(node) => {
                let Some(field) = build_field(node, &for_labels, &mut pending_text, &mut fields)
                else {
                    continue;
                };
                fields.push(field);
            }
        }
    }
    ExtractedForm {
        action,
        method,
        fields,
    }
}

/// Build a field from a control node; radio buttons merge into an existing
/// group when one with the same name exists.
fn build_field(
    node: &Node,
    for_labels: &[(String, String)],
    pending_text: &mut Option<String>,
    fields: &mut [FormField],
) -> Option<FormField> {
    let tag = node.name()?;
    let name = node.attr("name").unwrap_or("").to_string();
    if name.is_empty() {
        return None;
    }

    let label_from_id = node
        .attr("id")
        .and_then(|id| for_labels.iter().find(|(k, _)| k == id))
        .map(|(_, v)| v.clone());

    let take_label = |pending: &mut Option<String>| {
        label_from_id
            .clone()
            .or_else(|| pending.take().map(|t| clean_label(&t)))
            .unwrap_or_default()
    };

    match tag {
        "select" => {
            let (options, default) = select_options(node);
            let label = take_label(pending_text);
            Some(FormField {
                name,
                label,
                kind: FieldKind::Select,
                options,
                default,
            })
        }
        "textarea" => {
            let label = take_label(pending_text);
            Some(FormField {
                name,
                label,
                kind: FieldKind::Text,
                options: Vec::new(),
                default: None,
            })
        }
        "input" => {
            let ty = node.attr("type").unwrap_or("text").to_ascii_lowercase();
            match ty.as_str() {
                "submit" | "reset" | "button" | "image" => None,
                "hidden" => Some(FormField {
                    name,
                    label: String::new(),
                    kind: FieldKind::Hidden,
                    options: Vec::new(),
                    default: node.attr("value").map(str::to_string),
                }),
                "radio" => {
                    let value = node.attr("value").unwrap_or("").to_string();
                    let checked = node.attr("checked").is_some();
                    if let Some(group) = fields
                        .iter_mut()
                        .find(|f| f.kind == FieldKind::Radio && f.name == name)
                    {
                        // The text before a later radio is that radio's value
                        // caption, not a new attribute label; drop it.
                        let _ = pending_text.take();
                        if !value.is_empty() {
                            group.options.push(value.clone());
                        }
                        if checked {
                            group.default = Some(value);
                        }
                        None
                    } else {
                        let label = take_label(pending_text);
                        let mut options = Vec::new();
                        if !value.is_empty() {
                            options.push(value.clone());
                        }
                        Some(FormField {
                            name,
                            label,
                            kind: FieldKind::Radio,
                            options,
                            default: checked.then_some(value),
                        })
                    }
                }
                "checkbox" => {
                    let label = take_label(pending_text);
                    let value = node.attr("value").unwrap_or("on").to_string();
                    Some(FormField {
                        name,
                        label,
                        kind: FieldKind::Checkbox,
                        options: vec![value.clone()],
                        default: node.attr("checked").is_some().then_some(value),
                    })
                }
                _ => {
                    // text, search, date, number, … all behave as free text
                    let label = take_label(pending_text);
                    Some(FormField {
                        name,
                        label,
                        kind: FieldKind::Text,
                        options: Vec::new(),
                        default: node
                            .attr("value")
                            .filter(|v| !v.is_empty())
                            .map(str::to_string),
                    })
                }
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_text_input_with_preceding_text_label() {
        let html = r#"<form action="/search">From city: <input type=text name=from></form>"#;
        let forms = extract_forms(html);
        assert_eq!(forms.len(), 1);
        let f = &forms[0].fields[0];
        assert_eq!(f.label, "From city");
        assert_eq!(f.name, "from");
        assert_eq!(f.kind, FieldKind::Text);
        assert!(f.options.is_empty());
    }

    #[test]
    fn extracts_select_with_options() {
        let html = r#"<form>Airline:
            <select name=airline>
              <option>-- select --</option>
              <option>Air Canada</option>
              <option selected>American</option>
              <option value="DL">Delta</option>
            </select></form>"#;
        let forms = extract_forms(html);
        let f = &forms[0].fields[0];
        assert_eq!(f.label, "Airline");
        assert_eq!(f.kind, FieldKind::Select);
        assert_eq!(f.options, vec!["Air Canada", "American", "DL"]);
        assert_eq!(f.default.as_deref(), Some("American"));
    }

    #[test]
    fn label_for_association_wins() {
        let html = r#"<form>
            <label for=dep>Departure date</label>
            irrelevant text
            <input type=text id=dep name=depdate>
        </form>"#;
        let forms = extract_forms(html);
        assert_eq!(forms[0].fields[0].label, "Departure date");
    }

    #[test]
    fn wrapping_label_text_is_used() {
        let html = r#"<form><label>Carrier: <select name=c><option>Aer Lingus</option></select></label></form>"#;
        let forms = extract_forms(html);
        let f = &forms[0].fields[0];
        assert_eq!(f.label, "Carrier");
        assert_eq!(f.options, vec!["Aer Lingus"]);
    }

    #[test]
    fn radio_group_merges() {
        let html = r#"<form>Trip type:
            <input type=radio name=trip value="round trip" checked> Round trip
            <input type=radio name=trip value="one way"> One way
        </form>"#;
        let forms = extract_forms(html);
        assert_eq!(forms[0].fields.len(), 1);
        let f = &forms[0].fields[0];
        assert_eq!(f.kind, FieldKind::Radio);
        assert_eq!(f.label, "Trip type");
        assert_eq!(f.options, vec!["round trip", "one way"]);
        assert_eq!(f.default.as_deref(), Some("round trip"));
    }

    #[test]
    fn submit_buttons_skipped() {
        let html =
            r#"<form><input type=text name=q><input type=submit name=go value=Search></form>"#;
        let forms = extract_forms(html);
        assert_eq!(forms[0].fields.len(), 1);
        assert_eq!(forms[0].fields[0].name, "q");
    }

    #[test]
    fn hidden_fields_kept_as_hidden() {
        let html = r#"<form><input type=hidden name=sid value=abc123></form>"#;
        let forms = extract_forms(html);
        let f = &forms[0].fields[0];
        assert_eq!(f.kind, FieldKind::Hidden);
        assert_eq!(f.default.as_deref(), Some("abc123"));
    }

    #[test]
    fn table_layout_labels() {
        let html = r#"<form><table>
            <tr><td>Title</td><td><input name=title></td></tr>
            <tr><td>Author</td><td><input name=author></td></tr>
        </table></form>"#;
        let forms = extract_forms(html);
        let labels: Vec<&str> = forms[0].fields.iter().map(|f| f.label.as_str()).collect();
        assert_eq!(labels, vec!["Title", "Author"]);
    }

    #[test]
    fn unnamed_controls_skipped() {
        let html = r#"<form><input type=text></form>"#;
        assert!(extract_forms(html)[0].fields.is_empty());
    }

    #[test]
    fn method_and_action() {
        let html = r#"<form action="/q" method=POST><input name=x></form>"#;
        let f = &extract_forms(html)[0];
        assert_eq!(f.action, "/q");
        assert_eq!(f.method, "post");
    }

    #[test]
    fn multiple_forms() {
        let html = r#"<form><input name=a></form><form><input name=b></form>"#;
        let forms = extract_forms(html);
        assert_eq!(forms.len(), 2);
    }

    #[test]
    fn textarea_is_text_field() {
        let html = r#"<form>Description: <textarea name=desc></textarea></form>"#;
        let f = &extract_forms(html)[0].fields[0];
        assert_eq!(f.kind, FieldKind::Text);
        assert_eq!(f.label, "Description");
    }

    #[test]
    fn default_value_of_text_input() {
        let html = r#"<form>Zip: <input name=zip value="60601"></form>"#;
        let f = &extract_forms(html)[0].fields[0];
        assert_eq!(f.default.as_deref(), Some("60601"));
    }

    #[test]
    fn no_forms_in_plain_page() {
        assert!(extract_forms("<html><body><p>hi</p></body></html>").is_empty());
    }
}
