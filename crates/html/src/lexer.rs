//! HTML tokenizer.
//!
//! Splits raw HTML into start tags (with attributes), end tags, text,
//! comments, and doctype declarations. Lenient in the ways real-world 2006
//! query-interface pages require: unquoted attribute values, valueless
//! attributes (`selected`), mixed case, stray `<` in text.

use crate::entities;

/// One attribute: lowercase name, decoded value (empty for valueless).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attr {
    /// Attribute name, lowercased.
    pub name: String,
    /// Attribute value with entities decoded; `""` for valueless attrs.
    pub value: String,
}

/// A lexical HTML token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HtmlToken {
    /// `<name attr=value …>`; `self_closing` for `<input/>`.
    StartTag {
        /// Tag name, lowercased.
        name: String,
        /// Attributes in source order.
        attrs: Vec<Attr>,
        /// True when the tag ends with `/>`.
        self_closing: bool,
    },
    /// `</name>`.
    EndTag {
        /// Tag name, lowercased.
        name: String,
    },
    /// Character data between tags, entities decoded, whitespace preserved.
    Text(String),
    /// `<!-- … -->` contents.
    Comment(String),
    /// `<!DOCTYPE …>` contents.
    Doctype(String),
}

/// Tokenize an HTML document.
pub fn tokenize(html: &str) -> Vec<HtmlToken> {
    let b = html.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut text_start = 0;

    // Inside <script> or <style>, text runs to the matching close tag.
    let mut raw_text_until: Option<&'static str> = None;

    while i < b.len() {
        if let Some(close) = raw_text_until {
            let rest = &html[i..];
            let pos = find_ci(rest, close).unwrap_or(rest.len());
            if i + pos > text_start {
                out.push(HtmlToken::Text(html[text_start..i + pos].to_string()));
            }
            i += pos;
            text_start = i;
            raw_text_until = None;
            continue;
        }
        if b[i] != b'<' {
            i += 1;
            continue;
        }
        // Decide what the '<' introduces *before* flushing text, so a stray
        // '<' stays part of the surrounding text run.
        let flush = |out: &mut Vec<HtmlToken>, upto: usize, from: usize| {
            if upto > from {
                out.push(HtmlToken::Text(entities::decode(&html[from..upto])));
            }
        };
        if html[i..].starts_with("<!--") {
            flush(&mut out, i, text_start);
            let end = html[i + 4..].find("-->").map(|p| i + 4 + p);
            match end {
                Some(e) => {
                    out.push(HtmlToken::Comment(html[i + 4..e].to_string()));
                    i = e + 3;
                }
                None => {
                    out.push(HtmlToken::Comment(html[i + 4..].to_string()));
                    i = b.len();
                }
            }
            text_start = i;
            continue;
        }
        if i + 1 < b.len() && (b[i + 1] == b'!' || b[i + 1] == b'?') {
            // doctype or processing instruction
            flush(&mut out, i, text_start);
            let end = html[i..].find('>').map_or(b.len(), |p| i + p);
            out.push(HtmlToken::Doctype(html[i + 2..end].trim().to_string()));
            i = (end + 1).min(b.len());
            text_start = i;
            continue;
        }
        match lex_tag(html, i) {
            Some((token, next)) => {
                flush(&mut out, i, text_start);
                if let HtmlToken::StartTag { name, .. } = &token {
                    if name == "script" {
                        raw_text_until = Some("</script");
                    } else if name == "style" {
                        raw_text_until = Some("</style");
                    }
                }
                out.push(token);
                i = next;
                text_start = i;
            }
            None => {
                // stray '<' — stays inside the current text run
                i += 1;
            }
        }
    }
    if b.len() > text_start {
        out.push(HtmlToken::Text(entities::decode(&html[text_start..])));
    }
    out
}

/// Case-insensitive substring search.
fn find_ci(haystack: &str, needle: &str) -> Option<usize> {
    let h = haystack.as_bytes();
    let n = needle.as_bytes();
    if n.is_empty() || h.len() < n.len() {
        return None;
    }
    (0..=h.len() - n.len()).find(|&i| {
        h[i..i + n.len()]
            .iter()
            .zip(n)
            .all(|(a, b)| a.eq_ignore_ascii_case(b))
    })
}

/// Lex a tag starting at `<`; returns the token and the index after `>`.
fn lex_tag(html: &str, start: usize) -> Option<(HtmlToken, usize)> {
    let b = html.as_bytes();
    let mut i = start + 1;
    let closing = b.get(i) == Some(&b'/');
    if closing {
        i += 1;
    }
    let name_start = i;
    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'-') {
        i += 1;
    }
    if i == name_start {
        return None; // not a tag
    }
    let name = html[name_start..i].to_ascii_lowercase();
    if closing {
        let end = html[i..].find('>').map(|p| i + p)?;
        return Some((HtmlToken::EndTag { name }, end + 1));
    }
    let mut attrs = Vec::new();
    let mut self_closing = false;
    loop {
        while i < b.len() && b[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= b.len() {
            return Some((
                HtmlToken::StartTag {
                    name,
                    attrs,
                    self_closing,
                },
                i,
            ));
        }
        match b[i] {
            b'>' => {
                return Some((
                    HtmlToken::StartTag {
                        name,
                        attrs,
                        self_closing,
                    },
                    i + 1,
                ));
            }
            b'/' => {
                self_closing = true;
                i += 1;
            }
            _ => {
                // attribute name
                let an_start = i;
                while i < b.len()
                    && !b[i].is_ascii_whitespace()
                    && b[i] != b'='
                    && b[i] != b'>'
                    && b[i] != b'/'
                {
                    i += 1;
                }
                let an = html[an_start..i].to_ascii_lowercase();
                while i < b.len() && b[i].is_ascii_whitespace() {
                    i += 1;
                }
                let mut value = String::new();
                if i < b.len() && b[i] == b'=' {
                    i += 1;
                    while i < b.len() && b[i].is_ascii_whitespace() {
                        i += 1;
                    }
                    if i < b.len() && (b[i] == b'"' || b[i] == b'\'') {
                        let quote = b[i];
                        i += 1;
                        let v_start = i;
                        while i < b.len() && b[i] != quote {
                            i += 1;
                        }
                        value = entities::decode(&html[v_start..i]);
                        i = (i + 1).min(b.len());
                    } else {
                        let v_start = i;
                        while i < b.len() && !b[i].is_ascii_whitespace() && b[i] != b'>' {
                            i += 1;
                        }
                        value = entities::decode(&html[v_start..i]);
                    }
                }
                if !an.is_empty() {
                    attrs.push(Attr { name: an, value });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(tok: &HtmlToken) -> (&str, &[Attr]) {
        match tok {
            HtmlToken::StartTag { name, attrs, .. } => (name, attrs),
            other => panic!("expected start tag, got {other:?}"),
        }
    }

    #[test]
    fn simple_document() {
        let toks = tokenize("<html><body>Hi</body></html>");
        assert_eq!(toks.len(), 5);
        assert_eq!(start(&toks[0]).0, "html");
        assert_eq!(toks[2], HtmlToken::Text("Hi".into()));
        assert_eq!(
            toks[4],
            HtmlToken::EndTag {
                name: "html".into()
            }
        );
    }

    #[test]
    fn attributes_quoted_and_unquoted() {
        let toks = tokenize(r#"<input type="text" name=city value='Boston' disabled>"#);
        let (name, attrs) = start(&toks[0]);
        assert_eq!(name, "input");
        assert_eq!(attrs.len(), 4);
        assert_eq!(
            attrs[0],
            Attr {
                name: "type".into(),
                value: "text".into()
            }
        );
        assert_eq!(
            attrs[1],
            Attr {
                name: "name".into(),
                value: "city".into()
            }
        );
        assert_eq!(
            attrs[2],
            Attr {
                name: "value".into(),
                value: "Boston".into()
            }
        );
        assert_eq!(
            attrs[3],
            Attr {
                name: "disabled".into(),
                value: "".into()
            }
        );
    }

    #[test]
    fn self_closing() {
        let toks = tokenize("<br/><input type=text />");
        match &toks[0] {
            HtmlToken::StartTag { self_closing, .. } => assert!(self_closing),
            other => panic!("{other:?}"),
        }
        match &toks[1] {
            HtmlToken::StartTag {
                name,
                self_closing,
                attrs,
            } => {
                assert_eq!(name, "input");
                assert!(self_closing);
                assert_eq!(attrs.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn case_is_normalized() {
        let toks = tokenize("<SELECT NAME=airline><OPTION>Delta</OPTION></SELECT>");
        assert_eq!(start(&toks[0]).0, "select");
        assert_eq!(start(&toks[0]).1[0].name, "name");
        assert_eq!(
            toks.last(),
            Some(&HtmlToken::EndTag {
                name: "select".into()
            })
        );
    }

    #[test]
    fn entities_in_text_and_attrs() {
        let toks = tokenize(r#"<a title="Barnes &amp; Noble">R&amp;D</a>"#);
        assert_eq!(start(&toks[0]).1[0].value, "Barnes & Noble");
        assert_eq!(toks[1], HtmlToken::Text("R&D".into()));
    }

    #[test]
    fn comments_and_doctype() {
        let toks = tokenize("<!DOCTYPE html><!-- hidden --><p>x</p>");
        assert_eq!(toks[0], HtmlToken::Doctype("DOCTYPE html".into()));
        assert_eq!(toks[1], HtmlToken::Comment(" hidden ".into()));
    }

    #[test]
    fn stray_lt_is_text() {
        let toks = tokenize("a < b");
        // "a " text, stray '<' consumed as text, " b"
        let text: String = toks
            .iter()
            .filter_map(|t| match t {
                HtmlToken::Text(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(text, "a < b");
    }

    #[test]
    fn script_contents_not_parsed() {
        let toks = tokenize("<script>if (a<b) {}</script><p>after</p>");
        assert_eq!(start(&toks[0]).0, "script");
        assert_eq!(toks[1], HtmlToken::Text("if (a<b) {}".into()));
        assert_eq!(
            toks[2],
            HtmlToken::EndTag {
                name: "script".into()
            }
        );
    }

    #[test]
    fn unterminated_tag_at_eof() {
        let toks = tokenize("<input type=text");
        match &toks[0] {
            HtmlToken::StartTag { name, attrs, .. } => {
                assert_eq!(name, "input");
                assert_eq!(attrs.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unterminated_comment() {
        let toks = tokenize("<!-- open");
        assert_eq!(toks[0], HtmlToken::Comment(" open".into()));
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
    }
}
