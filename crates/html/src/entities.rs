//! HTML character-reference (entity) decoding.

/// Named entities that appear in query-interface pages.
static NAMED: &[(&str, &str)] = &[
    ("amp", "&"),
    ("lt", "<"),
    ("gt", ">"),
    ("quot", "\""),
    ("apos", "'"),
    ("nbsp", " "),
    ("copy", "©"),
    ("reg", "®"),
    ("trade", "™"),
    ("mdash", "—"),
    ("ndash", "–"),
    ("hellip", "…"),
];

/// Decode HTML entities in `s`. Unknown or malformed references are left
/// verbatim (browser-like leniency).
pub fn decode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'&' {
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&s[i..i + ch_len]);
            i += ch_len;
            continue;
        }
        // find terminating ';' within a sane distance
        let end = s[i + 1..].char_indices().take(10).find(|(_, c)| *c == ';');
        let Some((off, _)) = end else {
            out.push('&');
            i += 1;
            continue;
        };
        let name = &s[i + 1..i + 1 + off];
        if let Some(stripped) = name.strip_prefix('#') {
            let code = if let Some(hex) = stripped.strip_prefix(['x', 'X']) {
                u32::from_str_radix(hex, 16).ok()
            } else {
                stripped.parse::<u32>().ok()
            };
            match code.and_then(char::from_u32) {
                Some(c) => {
                    out.push(c);
                    i += 2 + off;
                }
                None => {
                    out.push('&');
                    i += 1;
                }
            }
        } else if let Some((_, repl)) = NAMED.iter().find(|(n, _)| *n == name) {
            out.push_str(repl);
            i += 2 + off;
        } else {
            out.push('&');
            i += 1;
        }
    }
    out
}

/// Encode the five XML-significant characters.
pub fn encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            other => out.push(other),
        }
    }
    out
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_entities() {
        assert_eq!(decode("Barnes &amp; Noble"), "Barnes & Noble");
        assert_eq!(decode("&lt;b&gt;bold&lt;/b&gt;"), "<b>bold</b>");
        assert_eq!(decode("no&nbsp;break"), "no break");
    }

    #[test]
    fn numeric_entities() {
        assert_eq!(decode("&#65;&#66;"), "AB");
        assert_eq!(decode("&#x41;"), "A");
        assert_eq!(decode("&#X41;"), "A");
    }

    #[test]
    fn malformed_left_verbatim() {
        assert_eq!(decode("AT&T"), "AT&T");
        assert_eq!(decode("&unknown;"), "&unknown;");
        assert_eq!(decode("&;"), "&;");
        assert_eq!(decode("tail&"), "tail&");
        assert_eq!(decode("&#zzz;"), "&#zzz;");
        assert_eq!(decode("&#x110000;"), "&#x110000;"); // beyond char range
    }

    #[test]
    fn encode_roundtrip() {
        let original = "a<b> & \"c\" 'd'";
        assert_eq!(decode(&encode(original)), original);
    }

    #[test]
    fn multibyte_passthrough() {
        assert_eq!(decode("café — naïve"), "café — naïve");
    }

    #[test]
    fn empty() {
        assert_eq!(decode(""), "");
        assert_eq!(encode(""), "");
    }
}
