//! DOM-lite tree construction over the token stream.
//!
//! A forgiving tree builder: void elements never take children, a handful
//! of implicit-close rules handle the tag-soup constructs common on
//! query-interface pages (`<option>` without `</option>`, unclosed `<p>`,
//! `<li>`, `<tr>`, `<td>`), and unmatched end tags are ignored.

use crate::lexer::{self, Attr, HtmlToken};

/// A DOM node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// An element with lowercase tag name, attributes, and children.
    Element {
        /// Lowercased tag name.
        name: String,
        /// Attributes in source order.
        attrs: Vec<Attr>,
        /// Child nodes in document order.
        children: Vec<Node>,
    },
    /// A text node (entities already decoded).
    Text(String),
}

impl Node {
    /// The tag name if this is an element.
    pub fn name(&self) -> Option<&str> {
        match self {
            Node::Element { name, .. } => Some(name),
            Node::Text(_) => None,
        }
    }

    /// Attribute lookup (case-insensitive name, first match).
    pub fn attr(&self, attr_name: &str) -> Option<&str> {
        match self {
            Node::Element { attrs, .. } => attrs
                .iter()
                .find(|a| a.name.eq_ignore_ascii_case(attr_name))
                .map(|a| a.value.as_str()),
            Node::Text(_) => None,
        }
    }

    /// Children slice (empty for text nodes).
    pub fn children(&self) -> &[Node] {
        match self {
            Node::Element { children, .. } => children,
            Node::Text(_) => &[],
        }
    }

    /// Concatenated descendant text, whitespace-normalized.
    pub fn text(&self) -> String {
        let mut buf = String::new();
        self.collect_text(&mut buf);
        normalize_ws(&buf)
    }

    fn collect_text(&self, buf: &mut String) {
        match self {
            Node::Text(t) => {
                buf.push_str(t);
                buf.push(' ');
            }
            Node::Element { children, .. } => {
                for c in children {
                    c.collect_text(buf);
                }
            }
        }
    }

    /// Depth-first search for all elements named `tag` (lowercase).
    pub fn find_all<'a>(&'a self, tag: &str, out: &mut Vec<&'a Node>) {
        if self.name() == Some(tag) {
            out.push(self);
        }
        for c in self.children() {
            c.find_all(tag, out);
        }
    }

    /// First descendant element named `tag`, depth-first.
    pub fn find_first<'a>(&'a self, tag: &str) -> Option<&'a Node> {
        if self.name() == Some(tag) {
            return Some(self);
        }
        self.children().iter().find_map(|c| c.find_first(tag))
    }
}

/// Collapse runs of whitespace to single spaces and trim.
pub fn normalize_ws(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Tags that never have children.
fn is_void(name: &str) -> bool {
    matches!(
        name,
        "input"
            | "br"
            | "hr"
            | "img"
            | "meta"
            | "link"
            | "area"
            | "base"
            | "col"
            | "embed"
            | "source"
            | "track"
            | "wbr"
    )
}

/// Does opening `incoming` implicitly close an open `open_tag`?
fn implicitly_closes(open_tag: &str, incoming: &str) -> bool {
    match open_tag {
        "option" => matches!(incoming, "option" | "optgroup" | "select"),
        "li" => incoming == "li",
        "p" => matches!(
            incoming,
            "p" | "div" | "table" | "form" | "ul" | "ol" | "h1" | "h2" | "h3" | "h4"
        ),
        "tr" => matches!(incoming, "tr" | "tbody" | "thead"),
        "td" | "th" => matches!(incoming, "td" | "th" | "tr" | "tbody" | "thead" | "table"),
        _ => false,
    }
}

/// Parse HTML into a forest of top-level nodes.
pub fn parse(html: &str) -> Vec<Node> {
    #[derive(Debug)]
    struct Open {
        name: String,
        attrs: Vec<Attr>,
        children: Vec<Node>,
    }

    let mut stack: Vec<Open> = Vec::new();
    let mut roots: Vec<Node> = Vec::new();

    fn push_node(stack: &mut [Open], roots: &mut Vec<Node>, node: Node) {
        match stack.last_mut() {
            Some(open) => open.children.push(node),
            None => roots.push(node),
        }
    }

    fn close_one(stack: &mut Vec<Open>, roots: &mut Vec<Node>) {
        if let Some(open) = stack.pop() {
            let node = Node::Element {
                name: open.name,
                attrs: open.attrs,
                children: open.children,
            };
            push_node(stack, roots, node);
        }
    }

    for token in lexer::tokenize(html) {
        match token {
            HtmlToken::Text(t) => {
                if !t.trim().is_empty() {
                    push_node(&mut stack, &mut roots, Node::Text(t));
                }
            }
            HtmlToken::Comment(_) | HtmlToken::Doctype(_) => {}
            HtmlToken::StartTag {
                name,
                attrs,
                self_closing,
            } => {
                while stack
                    .last()
                    .is_some_and(|open| implicitly_closes(&open.name, &name))
                {
                    close_one(&mut stack, &mut roots);
                }
                if self_closing || is_void(&name) {
                    push_node(
                        &mut stack,
                        &mut roots,
                        Node::Element {
                            name,
                            attrs,
                            children: Vec::new(),
                        },
                    );
                } else {
                    stack.push(Open {
                        name,
                        attrs,
                        children: Vec::new(),
                    });
                }
            }
            HtmlToken::EndTag { name } => {
                // Find the matching open element; ignore the end tag if none.
                if let Some(pos) = stack.iter().rposition(|open| open.name == name) {
                    while stack.len() > pos {
                        close_one(&mut stack, &mut roots);
                    }
                }
            }
        }
    }
    // close anything left open at EOF
    while !stack.is_empty() {
        close_one(&mut stack, &mut roots);
    }
    roots
}

/// Parse and wrap in a synthetic root element for uniform traversal.
pub fn parse_document(html: &str) -> Node {
    Node::Element {
        name: "#document".to_string(),
        attrs: Vec::new(),
        children: parse(html),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_tree() {
        let doc = parse_document("<html><body><p>Hello</p></body></html>");
        let p = doc.find_first("p").expect("p");
        assert_eq!(p.text(), "Hello");
    }

    #[test]
    fn void_elements_take_no_children() {
        let doc = parse_document("<div><input name=a>text after</div>");
        let input = doc.find_first("input").expect("input");
        assert!(input.children().is_empty());
        let div = doc.find_first("div").expect("div");
        assert_eq!(div.children().len(), 2);
    }

    #[test]
    fn options_without_close_tags() {
        let html =
            "<select name=airline><option>Delta<option>United<option selected>American</select>";
        let doc = parse_document(html);
        let mut options = Vec::new();
        doc.find_all("option", &mut options);
        assert_eq!(options.len(), 3);
        assert_eq!(options[0].text(), "Delta");
        assert_eq!(options[2].text(), "American");
        assert!(options[2].attr("selected").is_some());
    }

    #[test]
    fn unmatched_end_tag_ignored() {
        let doc = parse_document("<div>a</span>b</div>");
        let div = doc.find_first("div").expect("div");
        assert_eq!(div.text(), "a b");
    }

    #[test]
    fn eof_closes_open_elements() {
        let doc = parse_document("<div><p>unclosed");
        assert_eq!(doc.find_first("p").expect("p").text(), "unclosed");
    }

    #[test]
    fn end_tag_closes_intervening_elements() {
        // </table> closes the open <td> and <tr> too
        let doc = parse_document("<table><tr><td>x</table>");
        let td = doc.find_first("td").expect("td");
        assert_eq!(td.text(), "x");
        let table = doc.find_first("table").expect("table");
        assert_eq!(table.children().len(), 1); // tr
    }

    #[test]
    fn text_normalization() {
        let doc = parse_document("<p>  spaced \n out  </p>");
        assert_eq!(doc.find_first("p").expect("p").text(), "spaced out");
    }

    #[test]
    fn attr_lookup_case_insensitive() {
        let doc = parse_document(r#"<input NAME="city">"#);
        let input = doc.find_first("input").expect("input");
        assert_eq!(input.attr("name"), Some("city"));
        assert_eq!(input.attr("NAME"), Some("city"));
        assert_eq!(input.attr("value"), None);
    }

    #[test]
    fn find_all_collects_in_document_order() {
        let doc = parse_document("<div><p>1</p><span><p>2</p></span><p>3</p></div>");
        let mut ps = Vec::new();
        doc.find_all("p", &mut ps);
        let texts: Vec<String> = ps.iter().map(|p| p.text()).collect();
        assert_eq!(texts, vec!["1", "2", "3"]);
    }

    #[test]
    fn whitespace_only_text_dropped() {
        let doc = parse_document("<div>  \n  </div>");
        assert!(doc.find_first("div").expect("div").children().is_empty());
    }

    #[test]
    fn nested_paragraph_implicit_close() {
        let doc = parse_document("<p>one<p>two");
        assert_eq!(doc.children().len(), 2);
    }
}
