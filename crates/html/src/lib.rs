//! # webiq-html — HTML substrate for WebIQ
//!
//! Deep-Web query interfaces are HTML forms; WebIQ's input is the schema
//! extracted from them, and the Attr-Deep component reads the *response
//! pages* sources return to probing queries. This crate provides the full
//! path from markup to schema:
//!
//! - [`entities`] — character-reference decoding/encoding;
//! - [`lexer`] — a lenient tag/text/comment tokenizer;
//! - [`dom`] — a forgiving DOM-lite tree builder (void elements,
//!   implicit closes, tag-soup recovery);
//! - [`form`] — query-interface extraction: controls, labels (via
//!   `label[for]`, wrapping labels, or preceding text), `<select>`
//!   options as pre-defined instances, radio-group merging.
#![forbid(unsafe_code)]

pub mod dom;
pub mod entities;
pub mod form;
pub mod lexer;

pub use dom::{parse, parse_document, Node};
pub use form::{extract_forms, ExtractedForm, FieldKind, FormField};
pub use lexer::{Attr, HtmlToken};
