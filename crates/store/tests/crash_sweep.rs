//! The crash-point sweep: the store's prefix-consistency invariant,
//! checked exhaustively.
//!
//! A cold run writes a realistic record mix through a real `Store`.
//! Then, for **every byte-length truncation** of the resulting log, a
//! fresh store directory is built holding that truncated log, opened,
//! and its recovered state compared against the state of the matching
//! committed record prefix. The same sweep runs against a torn
//! snapshot. Finally a chaos run drives appends through an injected
//! [`DiskFaultPlan`] and checks that reopening recovers exactly the
//! successful appends — injected damage never corrupts committed data.

use std::path::{Path, PathBuf};

use webiq_fault::DiskFaultPlan;
use webiq_rng::StdRng;
use webiq_store::{
    frame_record, fsck, scan, BorrowRecord, InstanceRecord, ModelRecord, Record, RunCompleteRecord,
    State, Store, SNAPSHOT_FILE, SNAPSHOT_TMP, WAL_FILE,
};

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("webiq-store-sweep-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("mkdir");
    d
}

/// A realistic record mix, deterministic in `seed`.
fn record_mix(seed: u64, n: usize) -> Vec<Record> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for i in 0..n {
        let rec = match rng.next_u64() % 4 {
            0 => Record::Instances(InstanceRecord {
                domain: "books".into(),
                fingerprint: 0xFEED,
                iface: (i / 3) as u32,
                attr: i as u32,
                values: (0..(rng.next_u64() % 4))
                    .map(|v| format!("value-{i}-{v}"))
                    .collect(),
                degraded: rng.gen_bool(0.2),
            }),
            1 => Record::Borrow(BorrowRecord {
                domain: "books".into(),
                attr: format!("attr{i}"),
                lender: format!("lender{}", rng.next_u64() % 5),
                accepted: rng.gen_bool(0.7),
            }),
            2 => Record::Model(ModelRecord {
                domain: "books".into(),
                attr: format!("attr{i}"),
                n_features: 8,
                prior_pos: rng.next_f64(),
                p_true_pos: (0..8).map(|_| rng.next_f64()).collect(),
                p_true_neg: (0..8).map(|_| rng.next_f64()).collect(),
            }),
            _ => Record::RunComplete(RunCompleteRecord {
                domain: "books".into(),
                fingerprint: i as u64,
                counters: vec![("engine_queries".into(), rng.next_u64() % 100)],
            }),
        };
        out.push(rec);
    }
    out
}

/// The state a committed record prefix yields.
fn state_of(records: &[Record]) -> State {
    let mut s = State::default();
    for r in records {
        s.apply(r.clone());
    }
    s
}

/// Build a store dir whose `file` holds exactly `bytes` (other stream
/// copied verbatim from `src` when present).
fn dir_with(src: &Path, file: &str, bytes: &[u8], tag: &str) -> PathBuf {
    let d = tmp_dir(tag);
    for f in [SNAPSHOT_FILE, WAL_FILE] {
        if f == file {
            std::fs::write(d.join(f), bytes).expect("write stream");
        } else if src.join(f).exists() {
            std::fs::copy(src.join(f), d.join(f)).expect("copy stream");
        }
    }
    d
}

#[test]
fn every_wal_truncation_recovers_a_committed_prefix() {
    let cold = tmp_dir("cold");
    let records = record_mix(42, 24);
    {
        let store = Store::open(&cold).expect("open cold");
        for r in &records {
            store.put(r.clone()).expect("put");
        }
    }
    let wal = std::fs::read(cold.join(WAL_FILE)).expect("read wal");

    // Frame end offsets: cut at byte k commits the records whose frames
    // end at or before k.
    let mut ends = vec![0usize];
    for r in &records {
        let last = *ends.last().expect("nonempty");
        ends.push(last + frame_record(r).len());
    }
    assert_eq!(*ends.last().expect("nonempty"), wal.len());

    for cut in 0..=wal.len() {
        let n = ends.iter().filter(|&&e| e > 0 && e <= cut).count();
        let d = dir_with(&cold, WAL_FILE, &wal[..cut], "wal-cut");
        let store = Store::open(&d).expect("recover");
        assert_eq!(
            store.state_snapshot(),
            state_of(&records[..n]),
            "cut at byte {cut} is not the state of the {n}-record prefix"
        );
        let stats = store.recovery_stats();
        assert_eq!(stats.wal_records, n as u64, "cut at {cut}");
        let committed = ends[n] as u64;
        assert_eq!(stats.recovered_bytes, committed, "cut at {cut}");
        assert_eq!(
            stats.truncated_bytes,
            cut as u64 - committed,
            "cut at {cut}"
        );
        // Recovery physically rolled the log back to its committed
        // prefix, so a reopen sees a clean stream.
        drop(store);
        let report = fsck(&d).expect("fsck");
        assert!(report.clean(), "cut at {cut} left damage after recovery");
        let again = Store::open(&d).expect("reopen");
        assert_eq!(again.state_snapshot(), state_of(&records[..n]));
        assert_eq!(again.recovery_stats().truncated_files, 0);
        let _ = std::fs::remove_dir_all(&d);
    }
    let _ = std::fs::remove_dir_all(&cold);
}

#[test]
fn every_snapshot_truncation_recovers_a_committed_prefix() {
    // Compact first so the records live in the snapshot stream, then
    // sweep cuts over the snapshot itself: the atomic-rename discipline
    // means a torn snapshot is still just a record stream with a torn
    // tail, recovered by the same scanner.
    let cold = tmp_dir("snap-cold");
    let records = record_mix(7, 12);
    {
        let store = Store::open(&cold).expect("open");
        for r in &records {
            store.put(r.clone()).expect("put");
        }
        store.compact().expect("compact");
    }
    let snap = std::fs::read(cold.join(SNAPSHOT_FILE)).expect("read snapshot");

    // The snapshot is the canonical (BTreeMap-ordered) stream, not the
    // append order — recompute its own record list and frame ends.
    let full = scan(&snap);
    assert!(full.clean());
    let mut ends = vec![0usize];
    for r in &full.records {
        let last = *ends.last().expect("nonempty");
        ends.push(last + frame_record(r).len());
    }

    for cut in 0..=snap.len() {
        let n = ends.iter().filter(|&&e| e > 0 && e <= cut).count();
        let d = dir_with(&cold, SNAPSHOT_FILE, &snap[..cut], "snap-cut");
        let store = Store::open(&d).expect("recover");
        assert_eq!(
            store.state_snapshot(),
            state_of(&full.records[..n]),
            "snapshot cut at byte {cut}"
        );
        let _ = std::fs::remove_dir_all(&d);
    }
    let _ = std::fs::remove_dir_all(&cold);
}

#[test]
fn chaos_appends_recover_exactly_the_successful_ones() {
    // Drive appends through an aggressive fault plan. Failed puts roll
    // back; successful puts are fsync'd. Reopening with clean IO must
    // recover exactly the successes — no more, no fewer.
    for seed in [1u64, 17, 99] {
        let d = tmp_dir(&format!("chaos-{seed}"));
        let records = record_mix(seed, 40);
        let mut succeeded = Vec::new();
        let mut failed = 0usize;
        {
            let store = Store::open_with(&d, DiskFaultPlan::chaos(seed, 0.3)).expect("open");
            for r in &records {
                match store.put(r.clone()) {
                    Ok(()) => succeeded.push(r.clone()),
                    Err(_) => failed += 1,
                }
            }
        }
        assert!(failed > 0, "seed {seed}: chaos plan never fired");
        assert!(!succeeded.is_empty(), "seed {seed}: nothing succeeded");
        let store = Store::open(&d).expect("recover");
        assert_eq!(
            store.state_snapshot(),
            state_of(&succeeded),
            "seed {seed}: recovery does not match the successful appends"
        );
        let _ = std::fs::remove_dir_all(&d);
    }
}

#[test]
fn torn_append_rolls_back_and_the_log_stays_appendable() {
    let d = tmp_dir("rollback");
    let records = record_mix(3, 6);
    let store = Store::open_with(&d, DiskFaultPlan::torn_only(13, 0.5)).expect("open");
    let mut succeeded = Vec::new();
    for r in &records {
        if store.put(r.clone()).is_ok() {
            succeeded.push(r.clone());
        }
    }
    assert!(
        succeeded.len() < records.len(),
        "torn plan at rate 0.5 never fired"
    );
    // Every successful append after a torn one proves the rollback left
    // the log appendable; the on-disk stream must scan clean.
    let wal = std::fs::read(d.join(WAL_FILE)).expect("read wal");
    let s = scan(&wal);
    assert!(s.clean(), "rollback left a torn tail");
    assert_eq!(s.records, succeeded);
    let _ = std::fs::remove_dir_all(&d);
}

#[test]
fn compact_reopen_roundtrips_and_is_crash_safe_at_the_rename() {
    let d = tmp_dir("compact");
    let records = record_mix(5, 10);
    {
        let store = Store::open(&d).expect("open");
        for r in &records {
            store.put(r.clone()).expect("put");
        }
        store.compact().expect("compact");
        assert_eq!(store.state_snapshot(), state_of(&records));
    }
    // After compaction the log is empty and the snapshot carries all.
    assert_eq!(
        std::fs::read(d.join(WAL_FILE)).expect("wal"),
        Vec::<u8>::new()
    );
    let store = Store::open(&d).expect("reopen");
    assert_eq!(store.state_snapshot(), state_of(&records));
    assert_eq!(store.recovery_stats().wal_records, 0);
    drop(store);

    // Simulate a crash between writing snapshot.tmp and the rename: the
    // orphan tmp must be discarded and the committed snapshot wins.
    std::fs::write(d.join(SNAPSHOT_TMP), b"half-written garbage").expect("tmp");
    let report = fsck(&d).expect("fsck");
    assert!(!report.clean(), "orphan tmp not reported");
    assert!(report.orphan_tmp);
    let store = Store::open(&d).expect("reopen with orphan");
    assert_eq!(store.state_snapshot(), state_of(&records));
    assert!(!d.join(SNAPSHOT_TMP).exists(), "orphan tmp survived open");
    let _ = std::fs::remove_dir_all(&d);
}

#[test]
fn warm_run_requires_the_commit_marker() {
    let d = tmp_dir("warm");
    let store = Store::open(&d).expect("open");
    store
        .put(Record::Instances(InstanceRecord {
            domain: "books".into(),
            fingerprint: 9,
            iface: 0,
            attr: 1,
            values: vec!["a".into(), "b".into()],
            degraded: false,
        }))
        .expect("put");
    // Instances alone — a partially persisted run — are never served.
    assert!(store.warm_run("books", 9).is_none());
    store
        .put(Record::RunComplete(RunCompleteRecord {
            domain: "books".into(),
            fingerprint: 9,
            counters: vec![("engine_queries".into(), 12)],
        }))
        .expect("put");
    let warm = store.warm_run("books", 9).expect("warm run");
    assert_eq!(
        warm.attrs,
        vec![(0, 1, vec!["a".into(), "b".into()], false)]
    );
    assert_eq!(warm.counters, vec![("engine_queries".into(), 12)]);
    // A different fingerprint (changed inputs) misses.
    assert!(store.warm_run("books", 10).is_none());
    let _ = std::fs::remove_dir_all(&d);
}

#[test]
fn fsck_reports_damage_without_repairing_it() {
    let d = tmp_dir("fsck");
    {
        let store = Store::open(&d).expect("open");
        for r in record_mix(2, 5) {
            store.put(r).expect("put");
        }
    }
    let clean = fsck(&d).expect("fsck");
    assert!(clean.clean());
    assert_eq!(clean.total_records(), 5);
    let text = clean.render_text();
    assert!(text.contains("verdict: clean"), "{text}");

    // Tear the log tail by hand.
    let mut wal = std::fs::read(d.join(WAL_FILE)).expect("wal");
    let torn_len = wal.len() - 3;
    wal.truncate(torn_len);
    wal.extend_from_slice(&[0xDE, 0xAD]);
    std::fs::write(d.join(WAL_FILE), &wal).expect("write");
    let damaged = fsck(&d).expect("fsck");
    assert!(!damaged.clean());
    assert_eq!(damaged.total_records(), 4);
    assert!(
        damaged.render_text().contains("recoverable damage"),
        "{}",
        damaged.render_text()
    );
    // fsck did not touch the file.
    assert_eq!(std::fs::read(d.join(WAL_FILE)).expect("wal"), wal);
    let _ = std::fs::remove_dir_all(&d);
}
