//! Record framing and the prefix scan.
//!
//! On disk, a record stream is a sequence of frames:
//!
//! ```text
//! [len: u32 LE][crc32(payload): u32 LE][payload: len bytes]
//! ```
//!
//! Both the snapshot and the write-ahead log use this one format — a
//! snapshot is just a compacted stream — so a single scanner defines
//! what "committed" means everywhere. [`scan`] walks frames from the
//! start and stops at the first invalid one (truncated header, length
//! out of bounds, CRC mismatch, or undecodable payload); everything
//! before the stop point is the *committed prefix*, everything after is
//! a torn tail. This is the mechanical core of the store's invariant:
//! recovery from any byte-length truncation of a stream yields the
//! state of some committed record prefix.

use crate::crc::crc32;
use crate::record::{Record, MAX_PAYLOAD};

/// Frame one payload for appending.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len().saturating_add(8));
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Frame one record for appending.
pub fn frame_record(rec: &Record) -> Vec<u8> {
    frame(&rec.encode())
}

/// What scanning a stream found.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Scan {
    /// The committed records, in stream order.
    pub records: Vec<Record>,
    /// Bytes of the committed prefix (frames included).
    pub committed_bytes: u64,
    /// Bytes past the committed prefix (the torn tail; 0 for a clean
    /// stream).
    pub truncated_bytes: u64,
}

impl Scan {
    /// Was the stream clean (no torn tail)?
    pub fn clean(&self) -> bool {
        self.truncated_bytes == 0
    }
}

/// Read a u32 LE at `off`, if all four bytes are present.
fn u32_at(bytes: &[u8], off: usize) -> Option<u32> {
    let end = off.checked_add(4)?;
    let b = bytes.get(off..end)?;
    Some(u32::from_le_bytes([
        b.first().copied()?,
        b.get(1).copied()?,
        b.get(2).copied()?,
        b.get(3).copied()?,
    ]))
}

/// Walk the stream from the start, collecting committed records and
/// stopping at the first invalid frame.
pub fn scan(bytes: &[u8]) -> Scan {
    let mut out = Scan::default();
    let mut off = 0usize;
    while let Some(len) = u32_at(bytes, off) {
        let len = len as usize;
        if len > MAX_PAYLOAD {
            break;
        }
        let Some(expected_crc) = u32_at(bytes, off.saturating_add(4)) else {
            break;
        };
        let start = off.saturating_add(8);
        let Some(end) = start.checked_add(len) else {
            break;
        };
        let Some(payload) = bytes.get(start..end) else {
            break;
        };
        if crc32(payload) != expected_crc {
            break;
        }
        let Some(rec) = Record::decode(payload) else {
            break;
        };
        out.records.push(rec);
        off = end;
        out.committed_bytes = off as u64;
    }
    out.truncated_bytes = (bytes.len() as u64).saturating_sub(out.committed_bytes);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::BorrowRecord;

    fn rec(i: u32) -> Record {
        Record::Borrow(BorrowRecord {
            domain: format!("domain{i}"),
            attr: format!("attr{i}"),
            lender: format!("lender{i}"),
            accepted: i % 2 == 0,
        })
    }

    fn stream(n: u32) -> (Vec<u8>, Vec<Record>, Vec<usize>) {
        let mut bytes = Vec::new();
        let mut records = Vec::new();
        let mut ends = vec![0usize];
        for i in 0..n {
            let r = rec(i);
            bytes.extend_from_slice(&frame_record(&r));
            records.push(r);
            ends.push(bytes.len());
        }
        (bytes, records, ends)
    }

    #[test]
    fn clean_stream_scans_fully() {
        let (bytes, records, _) = stream(5);
        let s = scan(&bytes);
        assert!(s.clean());
        assert_eq!(s.records, records);
        assert_eq!(s.committed_bytes, bytes.len() as u64);
    }

    #[test]
    fn empty_stream_is_clean_and_empty() {
        let s = scan(&[]);
        assert!(s.clean());
        assert!(s.records.is_empty());
        assert_eq!(s.committed_bytes, 0);
    }

    #[test]
    fn every_byte_truncation_recovers_a_committed_prefix() {
        // The invariant, mechanically: cutting the stream at ANY byte
        // recovers exactly the records whose frames fit before the cut.
        let (bytes, records, ends) = stream(6);
        for cut in 0..=bytes.len() {
            let s = scan(bytes.get(..cut).unwrap_or(&[]));
            let expect_n = ends.iter().filter(|&&e| e > 0 && e <= cut).count();
            assert_eq!(
                s.records,
                records.get(..expect_n).unwrap_or(&[]),
                "cut at {cut}"
            );
            let expect_committed = ends.get(expect_n).copied().unwrap_or(0) as u64;
            assert_eq!(s.committed_bytes, expect_committed, "cut at {cut}");
            assert_eq!(
                s.truncated_bytes,
                cut as u64 - expect_committed,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn bit_flips_anywhere_stop_the_scan_at_a_record_boundary() {
        let (bytes, records, ends) = stream(4);
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            if let Some(b) = corrupt.get_mut(i) {
                *b ^= 0x40;
            }
            let s = scan(&corrupt);
            // The scan stops somewhere at or before the flipped frame;
            // whatever it returns must be a prefix of the true records.
            assert!(s.records.len() <= records.len());
            assert_eq!(
                s.records,
                records.get(..s.records.len()).unwrap_or(&[]),
                "flip at {i} produced a non-prefix"
            );
            assert!(
                ends.contains(&(s.committed_bytes as usize)),
                "flip at {i} committed a non-boundary"
            );
        }
    }

    #[test]
    fn absurd_length_header_stops_the_scan() {
        let (mut bytes, records, _) = stream(2);
        // Append a frame header claiming 2 GiB.
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&[0; 16]);
        let s = scan(&bytes);
        assert_eq!(s.records, records);
        assert!(!s.clean());
    }

    #[test]
    fn garbage_between_records_hides_later_ones() {
        // A torn frame mid-stream costs the records after it — that is
        // the deal prefix consistency makes (no resync heuristics that
        // could resurrect uncommitted bytes).
        let (mut bytes, records, _) = stream(2);
        bytes.push(0xEE);
        bytes.extend_from_slice(&frame_record(&rec(9)));
        let s = scan(&bytes);
        assert_eq!(s.records, records);
        assert!(!s.clean());
    }
}
