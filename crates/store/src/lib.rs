#![forbid(unsafe_code)]
//! webiq-store: the crash-safe persistent knowledge store.
//!
//! WebIQ's expensive artefacts — acquired instances, verified
//! borrowings, trained validation models — survive the process here so
//! a second run over the same inputs warm-starts instead of re-querying
//! engines. The store is dependency-free (`std::fs` only), panic-free
//! in library code, and built from two record streams per directory:
//!
//! - **`snapshot.log`** — the compacted state, replaced atomically by
//!   write-tmp → fsync → rename;
//! - **`wal.log`** — checksummed, length-prefixed append-log records
//!   (`[len: u32][crc32: u32][payload]`, hand-rolled IEEE CRC32).
//!
//! Durability is group commit: ordinary appends ride the OS page cache
//! and the run's `RunComplete` commit marker fsyncs the log, so a
//! completed run is durable as a unit at the cost of one fsync, and a
//! crash mid-run loses only records the warm path (which requires the
//! marker) would never have served.
//!
//! Recovery replays the snapshot then the log, truncating each stream
//! at its first invalid frame. The invariant is **prefix consistency**:
//! for every byte-length truncation of a stream, recovery yields
//! exactly the state of some committed record prefix — verified
//! exhaustively by a crash-point sweep in this crate's tests and by the
//! `experiments store` harness.
//!
//! All IO flows through a store-owned [`io::Shim`] that consults
//! webiq-fault's [`webiq_fault::DiskFaultPlan`], so torn writes, short
//! reads, ENOSPC, and failed rename/fsync are injected deterministically
//! in `(path, op, attempt)` — the damage is physical (real prefixes on
//! real files), not mocked. [`fsck`] reports damage without repairing
//! it; [`Store::open`] repairs. Recovery and append activity surfaces
//! through `webiq_store_*` trace counters in the observability diff
//! gate.

pub mod crc;
pub mod error;
pub mod io;
pub mod log;
pub mod record;
pub mod store;

pub use crc::crc32;
pub use error::StoreError;
pub use log::{frame, frame_record, scan, Scan};
pub use record::{
    BorrowRecord, InstanceRecord, ModelRecord, Record, RunCompleteRecord, MAX_PAYLOAD,
};
pub use store::{
    fsck, FsckReport, RecoveryStats, State, Store, StreamCheck, WarmRun, SNAPSHOT_FILE,
    SNAPSHOT_TMP, WAL_FILE,
};
