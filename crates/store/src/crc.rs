//! Hand-rolled CRC-32 (IEEE 802.3 polynomial, the `zlib`/`gzip` one).
//!
//! The store frames every log record with a CRC so recovery can tell a
//! committed record from a torn tail. A table-driven implementation is
//! plenty: the store writes kilobytes, not gigabytes, and the table is
//! computed once in a `const` context so there is no runtime init, no
//! locking, and no dependency.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// One 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut n = 0usize;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
};

/// CRC-32 of `bytes` (init `!0`, final xor `!0` — the standard check
/// value of `"123456789"` is `0xCBF43926`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c: u32 = !0;
    for &b in bytes {
        let idx = ((c ^ u32::from(b)) & 0xFF) as usize;
        c = TABLE.get(idx).map_or(0, |t| *t) ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_check_values() {
        // The canonical CRC-32 check vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flip_changes_the_checksum() {
        let base = b"webiq store record".to_vec();
        let c0 = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8u8 {
                let mut flipped = base.clone();
                if let Some(byte) = flipped.get_mut(i) {
                    *byte ^= 1 << bit;
                }
                assert_ne!(crc32(&flipped), c0, "flip at byte {i} bit {bit} undetected");
            }
        }
    }

    #[test]
    fn truncation_changes_the_checksum() {
        let base = b"prefix consistency".to_vec();
        let c0 = crc32(&base);
        for cut in 0..base.len() {
            assert_ne!(crc32(base.get(..cut).unwrap_or(&[])), c0, "cut {cut}");
        }
    }
}
