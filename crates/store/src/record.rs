//! Typed store records and their binary codec.
//!
//! Every fact the store persists is one [`Record`], serialized with a
//! tiny hand-rolled binary format (little-endian fixed-width integers,
//! length-prefixed UTF-8 strings, `f64::to_bits` floats). The codec is
//! total in both directions: encoding cannot fail, and decoding returns
//! `None` — never panics — on any truncated, oversized, or malformed
//! payload, which is exactly what log recovery needs to classify a torn
//! tail as "not a committed record".
//!
//! Four record kinds cover the knowledge WebIQ accumulates:
//!
//! - [`InstanceRecord`] — the instances acquired for one attribute of
//!   one run, keyed by `(domain, fingerprint, interface, attribute)`;
//! - [`BorrowRecord`] — a Deep-Web probe verdict on one lender domain
//!   (the §5 case-1 accept/reject memory);
//! - [`ModelRecord`] — a trained validation naive-Bayes model (§3), the
//!   per-attribute classifier a serving tier can reuse without
//!   retraining;
//! - [`RunCompleteRecord`] — the commit marker: a run's instances are
//!   only served warm once this record (carrying the run's merged
//!   counter totals) is durably in the stream.

/// Upper bound on one record's payload; anything larger is corrupt by
/// definition (the store holds instance lists, not blobs).
pub const MAX_PAYLOAD: usize = 1 << 24;

/// Instances acquired for one attribute in one fingerprinted run.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct InstanceRecord {
    /// Domain name (`book`, `airfare`, …).
    pub domain: String,
    /// Run fingerprint: hash of the dataset, components, and config.
    pub fingerprint: u64,
    /// Interface index within the dataset.
    pub iface: u32,
    /// Attribute index within the interface.
    pub attr: u32,
    /// Acquired instances, in acquisition order.
    pub values: Vec<String>,
    /// Did this attribute finish degraded (partial results)?
    pub degraded: bool,
}

/// A Deep-Web probe verdict on one borrow-candidate lender.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct BorrowRecord {
    /// Domain name the verdict belongs to.
    pub domain: String,
    /// The borrowing attribute (label or reference).
    pub attr: String,
    /// The lender attribute (reference + label).
    pub lender: String,
    /// Probing accepted the lender's domain.
    pub accepted: bool,
}

/// A trained §3 validation naive-Bayes model for one attribute.
#[derive(Debug, Clone, PartialEq, PartialOrd)]
pub struct ModelRecord {
    /// Domain name the model belongs to.
    pub domain: String,
    /// The attribute the classifier validates borrowed values for.
    pub attr: String,
    /// Feature count.
    pub n_features: u32,
    /// P(positive) prior.
    pub prior_pos: f64,
    /// P(feature=true | positive), one per feature.
    pub p_true_pos: Vec<f64>,
    /// P(feature=true | negative), one per feature.
    pub p_true_neg: Vec<f64>,
}

/// The commit marker for one fingerprinted run.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RunCompleteRecord {
    /// Domain name.
    pub domain: String,
    /// Run fingerprint the marker commits.
    pub fingerprint: u64,
    /// The run's merged counter totals, `(name, value)` nonzero pairs in
    /// declaration order — enough to rebuild the acquisition report.
    pub counters: Vec<(String, u64)>,
}

/// One persisted fact.
#[derive(Debug, Clone, PartialEq, PartialOrd)]
pub enum Record {
    /// Instances acquired for one attribute.
    Instances(InstanceRecord),
    /// A probe verdict on a lender domain.
    Borrow(BorrowRecord),
    /// A trained validation-Bayes model.
    Model(ModelRecord),
    /// A run's commit marker.
    RunComplete(RunCompleteRecord),
}

const TAG_INSTANCES: u8 = 1;
const TAG_BORROW: u8 = 2;
const TAG_MODEL: u8 = 3;
const TAG_RUN_COMPLETE: u8 = 4;

impl Record {
    /// Serialize to the binary payload (without framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Record::Instances(r) => {
                out.push(TAG_INSTANCES);
                put_str(&mut out, &r.domain);
                put_u64(&mut out, r.fingerprint);
                put_u32(&mut out, r.iface);
                put_u32(&mut out, r.attr);
                put_u32(&mut out, r.values.len() as u32);
                for v in &r.values {
                    put_str(&mut out, v);
                }
                out.push(u8::from(r.degraded));
            }
            Record::Borrow(r) => {
                out.push(TAG_BORROW);
                put_str(&mut out, &r.domain);
                put_str(&mut out, &r.attr);
                put_str(&mut out, &r.lender);
                out.push(u8::from(r.accepted));
            }
            Record::Model(r) => {
                out.push(TAG_MODEL);
                put_str(&mut out, &r.domain);
                put_str(&mut out, &r.attr);
                put_u32(&mut out, r.n_features);
                put_f64(&mut out, r.prior_pos);
                put_u32(&mut out, r.p_true_pos.len() as u32);
                for &p in &r.p_true_pos {
                    put_f64(&mut out, p);
                }
                put_u32(&mut out, r.p_true_neg.len() as u32);
                for &p in &r.p_true_neg {
                    put_f64(&mut out, p);
                }
            }
            Record::RunComplete(r) => {
                out.push(TAG_RUN_COMPLETE);
                put_str(&mut out, &r.domain);
                put_u64(&mut out, r.fingerprint);
                put_u32(&mut out, r.counters.len() as u32);
                for (name, value) in &r.counters {
                    put_str(&mut out, name);
                    put_u64(&mut out, *value);
                }
            }
        }
        out
    }

    /// Deserialize one payload; `None` on any malformation. Trailing
    /// bytes after a well-formed record also fail: a committed frame is
    /// exactly one record.
    pub fn decode(payload: &[u8]) -> Option<Record> {
        let mut r = Reader::new(payload);
        let rec = match r.u8()? {
            TAG_INSTANCES => {
                let domain = r.string()?;
                let fingerprint = r.u64()?;
                let iface = r.u32()?;
                let attr = r.u32()?;
                let n = r.len()?;
                let mut values = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    values.push(r.string()?);
                }
                let degraded = r.bool()?;
                Record::Instances(InstanceRecord {
                    domain,
                    fingerprint,
                    iface,
                    attr,
                    values,
                    degraded,
                })
            }
            TAG_BORROW => Record::Borrow(BorrowRecord {
                domain: r.string()?,
                attr: r.string()?,
                lender: r.string()?,
                accepted: r.bool()?,
            }),
            TAG_MODEL => {
                let domain = r.string()?;
                let attr = r.string()?;
                let n_features = r.u32()?;
                let prior_pos = r.f64()?;
                let np = r.len()?;
                let mut p_true_pos = Vec::with_capacity(np.min(1024));
                for _ in 0..np {
                    p_true_pos.push(r.f64()?);
                }
                let nn = r.len()?;
                let mut p_true_neg = Vec::with_capacity(nn.min(1024));
                for _ in 0..nn {
                    p_true_neg.push(r.f64()?);
                }
                Record::Model(ModelRecord {
                    domain,
                    attr,
                    n_features,
                    prior_pos,
                    p_true_pos,
                    p_true_neg,
                })
            }
            TAG_RUN_COMPLETE => {
                let domain = r.string()?;
                let fingerprint = r.u64()?;
                let n = r.len()?;
                let mut counters = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let name = r.string()?;
                    let value = r.u64()?;
                    counters.push((name, value));
                }
                Record::RunComplete(RunCompleteRecord {
                    domain,
                    fingerprint,
                    counters,
                })
            }
            _ => return None,
        };
        r.at_end().then_some(rec)
    }

    /// Short kind name (for fsck output).
    pub fn kind(&self) -> &'static str {
        match self {
            Record::Instances(_) => "instances",
            Record::Borrow(_) => "borrow",
            Record::Model(_) => "model",
            Record::RunComplete(_) => "run_complete",
        }
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked, panic-free byte reader.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).and_then(|b| b.first().copied())
    }

    fn bool(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    fn u32(&mut self) -> Option<u32> {
        let b = self.take(4)?;
        Some(u32::from_le_bytes([
            b.first().copied()?,
            b.get(1).copied()?,
            b.get(2).copied()?,
            b.get(3).copied()?,
        ]))
    }

    fn u64(&mut self) -> Option<u64> {
        let lo = self.u32()?;
        let hi = self.u32()?;
        Some(u64::from(lo) | (u64::from(hi) << 32))
    }

    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    /// A collection length, sanity-bounded by the bytes actually left
    /// (every element costs at least one byte).
    fn len(&mut self) -> Option<usize> {
        let n = self.u32()? as usize;
        (n <= self.buf.len().saturating_sub(self.pos)).then_some(n)
    }

    fn string(&mut self) -> Option<String> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        std::str::from_utf8(bytes).ok().map(str::to_string)
    }

    fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Record> {
        vec![
            Record::Instances(InstanceRecord {
                domain: "book".into(),
                fingerprint: 0xDEAD_BEEF_CAFE_F00D,
                iface: 3,
                attr: 7,
                values: vec!["Steinbeck".into(), "Hemingway".into(), "".into()],
                degraded: false,
            }),
            Record::Borrow(BorrowRecord {
                domain: "airfare".into(),
                attr: "From city".into(),
                lender: "1/0 Departure city".into(),
                accepted: true,
            }),
            Record::Model(ModelRecord {
                domain: "auto".into(),
                attr: "Make".into(),
                n_features: 3,
                prior_pos: 0.625,
                p_true_pos: vec![0.9, 0.1, 0.5],
                p_true_neg: vec![0.2, 0.8, 0.5],
            }),
            Record::RunComplete(RunCompleteRecord {
                domain: "book".into(),
                fingerprint: 42,
                counters: vec![("attrs_total".into(), 17), ("surface_success".into(), 9)],
            }),
        ]
    }

    #[test]
    fn roundtrip_every_kind() {
        for rec in samples() {
            let bytes = rec.encode();
            assert_eq!(Record::decode(&bytes), Some(rec.clone()), "{}", rec.kind());
        }
    }

    #[test]
    fn every_truncation_fails_to_decode() {
        for rec in samples() {
            let bytes = rec.encode();
            for cut in 0..bytes.len() {
                assert_eq!(
                    Record::decode(bytes.get(..cut).unwrap_or(&[])),
                    None,
                    "{} truncated to {cut} decoded",
                    rec.kind()
                );
            }
        }
    }

    #[test]
    fn trailing_garbage_fails_to_decode() {
        for rec in samples() {
            let mut bytes = rec.encode();
            bytes.push(0);
            assert_eq!(Record::decode(&bytes), None, "{}", rec.kind());
        }
    }

    #[test]
    fn unknown_tag_and_bad_bool_fail() {
        assert_eq!(Record::decode(&[99, 0, 0, 0, 0]), None);
        assert_eq!(Record::decode(&[]), None);
        // a borrow record with a 2 where a bool belongs
        let mut bytes = Record::Borrow(BorrowRecord {
            domain: "d".into(),
            attr: "a".into(),
            lender: "l".into(),
            accepted: true,
        })
        .encode();
        if let Some(last) = bytes.last_mut() {
            *last = 2;
        }
        assert_eq!(Record::decode(&bytes), None);
    }

    #[test]
    fn absurd_length_prefix_fails_fast() {
        // A string claiming 4 GiB in a 10-byte payload must fail without
        // attempting the allocation.
        let mut bytes = vec![TAG_BORROW];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0; 5]);
        assert_eq!(Record::decode(&bytes), None);
    }

    #[test]
    fn non_utf8_string_fails() {
        let mut bytes = vec![TAG_BORROW];
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        assert_eq!(Record::decode(&bytes), None);
    }

    #[test]
    fn nan_model_probabilities_roundtrip_bitwise() {
        let rec = Record::Model(ModelRecord {
            domain: "d".into(),
            attr: "a".into(),
            n_features: 1,
            prior_pos: f64::NAN,
            p_true_pos: vec![f64::INFINITY],
            p_true_neg: vec![-0.0],
        });
        let bytes = rec.encode();
        let Some(Record::Model(back)) = Record::decode(&bytes) else {
            panic!("model did not decode");
        };
        assert!(back.prior_pos.is_nan());
        assert_eq!(back.p_true_pos, vec![f64::INFINITY]);
        assert_eq!(
            back.p_true_neg.first().map(|p| p.to_bits()),
            Some((-0.0f64).to_bits())
        );
    }
}
