//! The store-owned IO shim: every byte the store reads or writes goes
//! through here, and here is where the deterministic disk-fault plan
//! bites.
//!
//! The shim's injected failures are *physical*: a torn write really
//! leaves the first `k` bytes in the file before returning an error, a
//! short read really hands the caller a prefix, a failed rename really
//! leaves the temporary behind. Recovery code therefore exercises the
//! same paths a genuine crash would produce — the tests don't mock the
//! damage, they inflict it.
//!
//! Attempt counting is per `(file name, operation)`: the first append to
//! the log is attempt 0, its retry attempt 1, and so on, so a
//! [`DiskFaultPlan`] decision replays exactly across runs while retries
//! can genuinely clear transient faults.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Mutex;
use std::sync::PoisonError;

use webiq_fault::{DiskFaultKind, DiskFaultPlan, DiskOp};

use crate::error::StoreError;

/// The fault-injecting filesystem facade.
#[derive(Debug)]
pub struct Shim {
    plan: DiskFaultPlan,
    attempts: Mutex<BTreeMap<(String, &'static str), u32>>,
}

impl Shim {
    /// A shim driving real IO under `plan`.
    pub fn new(plan: DiskFaultPlan) -> Self {
        Shim {
            plan,
            attempts: Mutex::new(BTreeMap::new()),
        }
    }

    /// A shim injecting nothing.
    pub fn real() -> Self {
        Shim::new(DiskFaultPlan::disabled())
    }

    /// The decision key for `path` — its file name, so decisions are
    /// stable across store directories (a sweep over temp dirs replays).
    fn key(path: &Path) -> String {
        path.file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default()
    }

    /// Draw the injected fault for this `(path, op)` call, bumping the
    /// attempt counter.
    fn decide(&self, path: &Path, op: DiskOp, len: usize) -> Option<DiskFaultKind> {
        if self.plan.is_disabled() {
            return None;
        }
        let key = (Self::key(path), op.name());
        let mut map = self.attempts.lock().unwrap_or_else(PoisonError::into_inner);
        let attempt = map.entry(key).or_insert(0);
        let n = *attempt;
        *attempt = attempt.saturating_add(1);
        drop(map);
        self.plan.decide(&Self::key(path), op, n, len)
    }

    /// Read a whole file. A missing file is `Ok(None)` — recovery treats
    /// it as an empty stream. An injected short read returns a prefix of
    /// the real contents.
    pub fn read(&self, path: &Path) -> Result<Option<Vec<u8>>, StoreError> {
        let mut data = match std::fs::read(path) {
            Ok(d) => d,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::io(path, "read", &e)),
        };
        if let Some(DiskFaultKind::ShortRead { at }) = self.decide(path, DiskOp::Read, data.len()) {
            data.truncate(at);
        }
        Ok(Some(data))
    }

    /// Append `bytes` to `path`, creating it if absent; with `durable`
    /// the append is fsync'd (group commit: ordinary records ride the
    /// page cache and the run's commit marker pays the one fsync). An
    /// injected torn write leaves a prefix of `bytes` in the file and
    /// errors; ENOSPC leaves the file untouched and errors; a failed
    /// fsync errors after the data was written (durability unknown).
    pub fn append(&self, path: &Path, bytes: &[u8], durable: bool) -> Result<(), StoreError> {
        let fault = self.decide(path, DiskOp::Append, bytes.len());
        let mut f = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| StoreError::io(path, "append", &e))?;
        match fault {
            Some(DiskFaultKind::TornWrite { at }) => {
                let prefix = bytes.get(..at).unwrap_or(&[]);
                let _ = f.write_all(prefix);
                let _ = f.sync_data();
                Err(StoreError::injected(path, "append", "torn_write"))
            }
            Some(DiskFaultKind::Enospc) => Err(StoreError::injected(path, "append", "enospc")),
            Some(other) => Err(StoreError::injected(path, "append", other.name())),
            None => {
                f.write_all(bytes)
                    .map_err(|e| StoreError::io(path, "append", &e))?;
                if durable {
                    self.sync(path, &f)
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Write `bytes` to a fresh file at `path` (truncating any previous
    /// contents), then fsync. Same torn-write/ENOSPC semantics as
    /// [`Shim::append`].
    pub fn write_file(&self, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
        let fault = self.decide(path, DiskOp::WriteFile, bytes.len());
        if matches!(fault, Some(DiskFaultKind::Enospc)) {
            return Err(StoreError::injected(path, "write_file", "enospc"));
        }
        let mut f = File::create(path).map_err(|e| StoreError::io(path, "write_file", &e))?;
        match fault {
            Some(DiskFaultKind::TornWrite { at }) => {
                let prefix = bytes.get(..at).unwrap_or(&[]);
                let _ = f.write_all(prefix);
                let _ = f.sync_data();
                Err(StoreError::injected(path, "write_file", "torn_write"))
            }
            Some(other) => Err(StoreError::injected(path, "write_file", other.name())),
            None => {
                f.write_all(bytes)
                    .map_err(|e| StoreError::io(path, "write_file", &e))?;
                self.sync(path, &f)
            }
        }
    }

    /// fsync an open file (fault-injectable).
    fn sync(&self, path: &Path, f: &File) -> Result<(), StoreError> {
        if matches!(
            self.decide(path, DiskOp::Sync, 0),
            Some(DiskFaultKind::SyncFailed)
        ) {
            return Err(StoreError::injected(path, "sync", "sync_failed"));
        }
        f.sync_data().map_err(|e| StoreError::io(path, "sync", &e))
    }

    /// Atomically rename `from` onto `to`. An injected failure leaves
    /// both files exactly as they were.
    pub fn rename(&self, from: &Path, to: &Path) -> Result<(), StoreError> {
        if matches!(
            self.decide(to, DiskOp::Rename, 0),
            Some(DiskFaultKind::RenameFailed)
        ) {
            return Err(StoreError::injected(to, "rename", "rename_failed"));
        }
        std::fs::rename(from, to).map_err(|e| StoreError::io(to, "rename", &e))
    }

    /// Truncate `path` back to `len` bytes — the rollback after a torn
    /// append, restoring the last committed prefix. Best-effort by
    /// design: if it fails the log merely keeps a torn tail that the
    /// next recovery truncates anyway.
    pub fn truncate(&self, path: &Path, len: u64) -> Result<(), StoreError> {
        let f = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| StoreError::io(path, "truncate", &e))?;
        f.set_len(len)
            .map_err(|e| StoreError::io(path, "truncate", &e))?;
        f.sync_data()
            .map_err(|e| StoreError::io(path, "truncate", &e))
    }

    /// Delete `path` if it exists (cleanup of abandoned temporaries).
    pub fn remove(&self, path: &Path) -> Result<(), StoreError> {
        match std::fs::remove_file(path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(StoreError::io(path, "remove", &e)),
        }
    }

    /// Current on-disk length of `path` (0 when absent).
    pub fn file_len(&self, path: &Path) -> u64 {
        std::fs::metadata(path).map_or(0, |m| m.len())
    }
}

/// Read a whole file without fault injection — the fsck path, which
/// inspects damage rather than simulating it.
pub fn read_raw(path: &Path) -> Result<Option<Vec<u8>>, StoreError> {
    let mut f = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StoreError::io(path, "read", &e)),
    };
    let mut data = Vec::new();
    f.read_to_end(&mut data)
        .map_err(|e| StoreError::io(path, "read", &e))?;
    Ok(Some(data))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("webiq-store-io-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).expect("mkdir");
        d
    }

    #[test]
    fn clean_shim_appends_and_reads_back() {
        let d = tmp_dir("clean");
        let shim = Shim::real();
        let p = d.join("wal.log");
        shim.append(&p, b"hello ", false).expect("append");
        shim.append(&p, b"world", true).expect("append");
        assert_eq!(shim.read(&p).expect("read"), Some(b"hello world".to_vec()));
        assert_eq!(shim.file_len(&p), 11);
        assert_eq!(shim.read(&d.join("missing")).expect("read"), None);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn torn_write_leaves_the_deterministic_prefix() {
        let d = tmp_dir("torn");
        // rate 1.0 → the first append tears at a plan-chosen point.
        let shim = Shim::new(DiskFaultPlan::torn_only(11, 1.0));
        let p = d.join("wal.log");
        let payload = vec![0xABu8; 100];
        let err = shim.append(&p, &payload, true).expect_err("must tear");
        assert!(err.detail.contains("torn_write"), "{err}");
        let on_disk = std::fs::read(&p).expect("read");
        assert!(on_disk.len() < payload.len(), "tear left a full write");
        assert_eq!(on_disk, payload.get(..on_disk.len()).expect("prefix"));
        // a second shim with the same plan tears at the same byte
        let d2 = tmp_dir("torn2");
        let shim2 = Shim::new(DiskFaultPlan::torn_only(11, 1.0));
        let p2 = d2.join("wal.log");
        let _ = shim2.append(&p2, &payload, true);
        assert_eq!(std::fs::read(&p2).expect("read"), on_disk);
        let _ = std::fs::remove_dir_all(&d);
        let _ = std::fs::remove_dir_all(&d2);
    }

    #[test]
    fn rename_failure_leaves_both_files_untouched() {
        let d = tmp_dir("rename");
        let shim = Shim::new(DiskFaultPlan::chaos(5, 1.0));
        let from = d.join("snapshot.tmp");
        std::fs::write(&from, b"new").expect("write");
        let to = d.join("snapshot.log");
        std::fs::write(&to, b"old").expect("write");
        let err = shim.rename(&from, &to).expect_err("must fail");
        assert!(err.detail.contains("rename_failed"), "{err}");
        assert_eq!(std::fs::read(&to).expect("read"), b"old");
        assert_eq!(std::fs::read(&from).expect("read"), b"new");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn truncate_rolls_back_a_torn_tail() {
        let d = tmp_dir("trunc");
        let shim = Shim::real();
        let p = d.join("wal.log");
        shim.append(&p, b"committed", true).expect("append");
        std::fs::OpenOptions::new()
            .append(true)
            .open(&p)
            .and_then(|mut f| f.write_all(b"TORN"))
            .expect("tear");
        shim.truncate(&p, 9).expect("truncate");
        assert_eq!(std::fs::read(&p).expect("read"), b"committed");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn short_read_returns_a_prefix() {
        let d = tmp_dir("short");
        std::fs::write(d.join("snapshot.log"), vec![7u8; 64]).expect("write");
        let shim = Shim::new(DiskFaultPlan::chaos(21, 1.0));
        let got = shim
            .read(&d.join("snapshot.log"))
            .expect("read")
            .expect("present");
        assert!(got.len() < 64, "short read returned everything");
        assert!(got.iter().all(|&b| b == 7));
        let _ = std::fs::remove_dir_all(&d);
    }
}
