//! The store's error type: every disk failure keeps its origin.

/// A failed store operation, carrying the file, the operation, and the
/// underlying cause (a real `std::io::Error` rendered to text, or an
/// injected fault's name). String-backed so it stays `Clone + Eq` —
/// the workspace's `WebIqError` wraps it without losing comparability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreError {
    /// The file the operation targeted (store-relative or absolute).
    pub path: String,
    /// The operation that failed (`append`, `read`, `rename`, …).
    pub op: &'static str,
    /// What went wrong.
    pub detail: String,
}

impl StoreError {
    /// Wrap a real `std::io::Error`.
    pub fn io(path: &std::path::Path, op: &'static str, e: &std::io::Error) -> Self {
        StoreError {
            path: path.display().to_string(),
            op,
            detail: e.to_string(),
        }
    }

    /// An injected fault (from the deterministic disk-fault plan).
    pub fn injected(path: &std::path::Path, op: &'static str, fault: &str) -> Self {
        StoreError {
            path: path.display().to_string(),
            op,
            detail: format!("injected fault: {fault}"),
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "store {} on {}: {}", self.op, self.path, self.detail)
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_path_op_and_cause() {
        let e = StoreError {
            path: "/tmp/s/wal.log".into(),
            op: "append",
            detail: "injected fault: torn_write".into(),
        };
        assert_eq!(
            e.to_string(),
            "store append on /tmp/s/wal.log: injected fault: torn_write"
        );
    }
}
