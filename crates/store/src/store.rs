//! The store proper: state, recovery, appends, compaction, and fsck.
//!
//! On disk a store is a directory with two record streams:
//!
//! - `snapshot.log` — the compacted state, replaced atomically
//!   (write `snapshot.tmp` → fsync → rename);
//! - `wal.log` — the append-only log of everything since the snapshot.
//!
//! Recovery replays the snapshot, then the log, truncating each stream
//! at its first invalid frame. A torn log tail is physically rolled
//! back (`set_len`) so subsequent appends extend a clean committed
//! prefix. The invariant — checked exhaustively by the crash-point
//! sweep — is *prefix consistency*: recovery from any byte-length
//! truncation of a stream yields exactly the state of some committed
//! record prefix, never a blend and never a half-applied record.
//!
//! All state lives behind one `Mutex` (a single lock class, so no lock
//! ordering exists to get wrong); methods take `&self` and are safe to
//! share across threads, though the deterministic pipeline only ever
//! writes from its single-threaded merge loop.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::sync::PoisonError;

use webiq_fault::DiskFaultPlan;
use webiq_trace::Counter;

use crate::error::StoreError;
use crate::io::{read_raw, Shim};
use crate::log::{frame_record, scan, Scan};
use crate::record::{BorrowRecord, InstanceRecord, ModelRecord, Record, RunCompleteRecord};

/// File name of the compacted snapshot stream.
pub const SNAPSHOT_FILE: &str = "snapshot.log";
/// File name of the snapshot's atomic-write temporary.
pub const SNAPSHOT_TMP: &str = "snapshot.tmp";
/// File name of the append log.
pub const WAL_FILE: &str = "wal.log";

/// Key of an acquired-instances entry: `(domain, fingerprint, iface, attr)`.
type InstanceKey = (String, u64, u32, u32);

/// The in-memory image of a store: last-writer-wins maps per record
/// kind, all `BTreeMap`s so every serialization is canonically ordered.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct State {
    /// Instance key → acquired values + degraded flag.
    instances: BTreeMap<InstanceKey, (Vec<String>, bool)>,
    /// `(domain, attr, lender)` → probe verdict.
    borrows: BTreeMap<(String, String, String), bool>,
    /// `(domain, attr)` → trained model.
    models: BTreeMap<(String, String), ModelRecord>,
    /// `(domain, fingerprint)` → the completed run's counter totals.
    complete: BTreeMap<(String, u64), Vec<(String, u64)>>,
}

impl State {
    /// Fold one record in (last writer wins per key).
    pub fn apply(&mut self, rec: Record) {
        match rec {
            Record::Instances(r) => {
                self.instances.insert(
                    (r.domain, r.fingerprint, r.iface, r.attr),
                    (r.values, r.degraded),
                );
            }
            Record::Borrow(r) => {
                self.borrows
                    .insert((r.domain, r.attr, r.lender), r.accepted);
            }
            Record::Model(r) => {
                self.models.insert((r.domain.clone(), r.attr.clone()), r);
            }
            Record::RunComplete(r) => {
                self.complete.insert((r.domain, r.fingerprint), r.counters);
            }
        }
    }

    /// The canonical record stream rebuilding this state — what a
    /// snapshot contains. Deterministic: `BTreeMap` order per kind,
    /// kinds in tag order.
    pub fn to_records(&self) -> Vec<Record> {
        let mut out = Vec::new();
        for ((domain, fingerprint, iface, attr), (values, degraded)) in &self.instances {
            out.push(Record::Instances(InstanceRecord {
                domain: domain.clone(),
                fingerprint: *fingerprint,
                iface: *iface,
                attr: *attr,
                values: values.clone(),
                degraded: *degraded,
            }));
        }
        for ((domain, attr, lender), accepted) in &self.borrows {
            out.push(Record::Borrow(BorrowRecord {
                domain: domain.clone(),
                attr: attr.clone(),
                lender: lender.clone(),
                accepted: *accepted,
            }));
        }
        for model in self.models.values() {
            out.push(Record::Model(model.clone()));
        }
        for ((domain, fingerprint), counters) in &self.complete {
            out.push(Record::RunComplete(RunCompleteRecord {
                domain: domain.clone(),
                fingerprint: *fingerprint,
                counters: counters.clone(),
            }));
        }
        out
    }

    /// Total facts held (for reports).
    pub fn len(&self) -> usize {
        self.instances
            .len()
            .saturating_add(self.borrows.len())
            .saturating_add(self.models.len())
            .saturating_add(self.complete.len())
    }

    /// No facts at all?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// What recovery found at open time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Records replayed from the snapshot stream.
    pub snapshot_records: u64,
    /// Records replayed from the append log.
    pub wal_records: u64,
    /// Streams whose tail was truncated at an invalid frame (0–2).
    pub truncated_files: u64,
    /// Torn-tail bytes discarded across both streams.
    pub truncated_bytes: u64,
    /// Committed bytes recovered across both streams.
    pub recovered_bytes: u64,
}

/// A run's warm-start payload: everything needed to rebuild the
/// acquisition result without touching an engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarmRun {
    /// `(iface, attr, values, degraded)` per acquired attribute, in
    /// `(iface, attr)` order.
    pub attrs: Vec<(u32, u32, Vec<String>, bool)>,
    /// The cold run's merged counter totals (nonzero, by name).
    pub counters: Vec<(String, u64)>,
}

struct Inner {
    state: State,
    /// Committed byte length of the append log.
    wal_len: u64,
}

/// A crash-safe persistent knowledge store.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    shim: Shim,
    inner: Mutex<Inner>,
    recovery: RecoveryStats,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("facts", &self.state.len())
            .field("wal_len", &self.wal_len)
            .finish()
    }
}

impl Store {
    /// Open (or create) the store at `dir` with real, un-faulted IO.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Store, StoreError> {
        Store::open_with(dir, DiskFaultPlan::disabled())
    }

    /// Open (or create) the store at `dir`, with every filesystem
    /// operation subject to `plan`'s injected faults.
    pub fn open_with(dir: impl Into<PathBuf>, plan: DiskFaultPlan) -> Result<Store, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| StoreError::io(&dir, "create_dir", &e))?;
        let shim = Shim::new(plan);
        // An abandoned snapshot temporary is a crash artefact of a
        // previous compaction; the committed snapshot is authoritative.
        shim.remove(&dir.join(SNAPSHOT_TMP))?;

        let mut state = State::default();
        let mut stats = RecoveryStats::default();

        let snap_path = dir.join(SNAPSHOT_FILE);
        if let Some(bytes) = shim.read(&snap_path)? {
            let s = scan(&bytes);
            stats.snapshot_records = s.records.len() as u64;
            stats.recovered_bytes = stats.recovered_bytes.saturating_add(s.committed_bytes);
            stats.truncated_bytes = stats.truncated_bytes.saturating_add(s.truncated_bytes);
            if !s.clean() {
                stats.truncated_files = stats.truncated_files.saturating_add(1);
            }
            for rec in s.records {
                state.apply(rec);
            }
        }

        let wal_path = dir.join(WAL_FILE);
        let mut wal_len = 0u64;
        if let Some(bytes) = shim.read(&wal_path)? {
            let s = scan(&bytes);
            stats.wal_records = s.records.len() as u64;
            stats.recovered_bytes = stats.recovered_bytes.saturating_add(s.committed_bytes);
            stats.truncated_bytes = stats.truncated_bytes.saturating_add(s.truncated_bytes);
            wal_len = s.committed_bytes;
            if !s.clean() {
                stats.truncated_files = stats.truncated_files.saturating_add(1);
                // Physically roll the log back to its committed prefix so
                // the next append extends clean bytes. Best effort: if the
                // rollback itself fails, the next recovery truncates the
                // same tail again.
                let _ = shim.truncate(&wal_path, s.committed_bytes);
            }
            for rec in s.records {
                state.apply(rec);
            }
        }

        webiq_trace::add(Counter::StoreLogReplay, stats.wal_records);
        webiq_trace::add(Counter::StoreTruncatedRecords, stats.truncated_files);
        webiq_trace::add(Counter::StoreRecoveredBytes, stats.recovered_bytes);

        Ok(Store {
            dir,
            shim,
            inner: Mutex::new(Inner { state, wal_len }),
            recovery: stats,
        })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// What recovery found when this handle was opened.
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Append one record: framed, CRC'd, and applied to the in-memory
    /// state only after the bytes are written. Durability is group
    /// commit: ordinary records ride the OS page cache, and the
    /// [`Record::RunComplete`] commit marker fsyncs the log — so a
    /// completed run is durable as a unit, while a crash mid-run loses
    /// at most unmarked records that recovery (which truncates to a
    /// committed prefix, and whose warm lookup requires the marker)
    /// would never have served anyway. On failure the log is rolled
    /// back to its previous committed length (best effort) and the
    /// state is untouched.
    pub fn put(&self, rec: Record) -> Result<(), StoreError> {
        let wal_path = self.dir.join(WAL_FILE);
        let bytes = frame_record(&rec);
        let durable = matches!(rec, Record::RunComplete(_));
        let mut inner = self.lock();
        match self.shim.append(&wal_path, &bytes, durable) {
            Ok(()) => {
                inner.wal_len = inner.wal_len.saturating_add(bytes.len() as u64);
                inner.state.apply(rec);
                webiq_trace::incr(Counter::StoreRecordsWritten);
                Ok(())
            }
            Err(e) => {
                let _ = self.shim.truncate(&wal_path, inner.wal_len);
                Err(e)
            }
        }
    }

    /// Compact: write the whole state as a fresh snapshot (write-tmp +
    /// fsync + rename) and reset the log. A crash or injected fault at
    /// any point leaves either the old snapshot + old log or the new
    /// snapshot — never a blend.
    pub fn compact(&self) -> Result<(), StoreError> {
        let mut inner = self.lock();
        let mut bytes = Vec::new();
        for rec in inner.state.to_records() {
            bytes.extend_from_slice(&frame_record(&rec));
        }
        let tmp = self.dir.join(SNAPSHOT_TMP);
        let snap = self.dir.join(SNAPSHOT_FILE);
        let wal = self.dir.join(WAL_FILE);
        self.shim.write_file(&tmp, &bytes)?;
        self.shim.rename(&tmp, &snap)?;
        // The snapshot now holds everything; an empty log completes the
        // cycle. If this truncation fails the log merely replays over
        // the snapshot to the same state (apply is idempotent per key).
        self.shim.write_file(&wal, &[])?;
        inner.wal_len = 0;
        Ok(())
    }

    /// The warm-start payload for a run, present only when its
    /// [`RunCompleteRecord`] commit marker was recovered — a partially
    /// persisted run is never served.
    pub fn warm_run(&self, domain: &str, fingerprint: u64) -> Option<WarmRun> {
        let inner = self.lock();
        let counters = inner
            .state
            .complete
            .get(&(domain.to_string(), fingerprint))?
            .clone();
        let attrs = inner
            .state
            .instances
            .range(
                (domain.to_string(), fingerprint, 0, 0)
                    ..=(domain.to_string(), fingerprint, u32::MAX, u32::MAX),
            )
            .map(|((_, _, iface, attr), (values, degraded))| {
                (*iface, *attr, values.clone(), *degraded)
            })
            .collect();
        Some(WarmRun { attrs, counters })
    }

    /// The stored probe verdict on a lender, if any.
    pub fn borrow_verdict(&self, domain: &str, attr: &str, lender: &str) -> Option<bool> {
        self.lock()
            .state
            .borrows
            .get(&(domain.to_string(), attr.to_string(), lender.to_string()))
            .copied()
    }

    /// The stored validation model for an attribute, if any.
    pub fn model(&self, domain: &str, attr: &str) -> Option<ModelRecord> {
        self.lock()
            .state
            .models
            .get(&(domain.to_string(), attr.to_string()))
            .cloned()
    }

    /// Total facts currently held.
    pub fn facts(&self) -> usize {
        self.lock().state.len()
    }

    /// A deep copy of the current state (the sweep harness compares
    /// these for equality).
    pub fn state_snapshot(&self) -> State {
        self.lock().state.clone()
    }
}

/// One stream's fsck result.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamCheck {
    /// File name (`snapshot.log` / `wal.log`).
    pub file: String,
    /// Does the file exist?
    pub present: bool,
    /// Committed records.
    pub records: u64,
    /// Committed bytes.
    pub committed_bytes: u64,
    /// Torn-tail bytes past the committed prefix.
    pub truncated_bytes: u64,
    /// Records per kind, `(kind, count)` in kind order.
    pub kinds: Vec<(String, u64)>,
}

/// A read-only integrity report over a store directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FsckReport {
    /// The directory checked.
    pub dir: String,
    /// Snapshot and log checks, in that order.
    pub streams: Vec<StreamCheck>,
    /// Was an abandoned `snapshot.tmp` present?
    pub orphan_tmp: bool,
}

impl FsckReport {
    /// Clean means: every stream scans to its end and no crash
    /// artefacts are lying around.
    pub fn clean(&self) -> bool {
        !self.orphan_tmp && self.streams.iter().all(|s| s.truncated_bytes == 0)
    }

    /// Total committed records across streams.
    pub fn total_records(&self) -> u64 {
        self.streams.iter().map(|s| s.records).sum()
    }

    /// Deterministic human-readable rendering.
    pub fn render_text(&self) -> String {
        let mut out = format!("store fsck: {}\n", self.dir);
        for s in &self.streams {
            if !s.present {
                out.push_str(&format!("  {:<14} absent\n", s.file));
                continue;
            }
            out.push_str(&format!(
                "  {:<14} {} records, {} committed bytes, {} torn bytes\n",
                s.file, s.records, s.committed_bytes, s.truncated_bytes
            ));
            for (kind, n) in &s.kinds {
                out.push_str(&format!("    {kind:<14} {n}\n"));
            }
        }
        if self.orphan_tmp {
            out.push_str("  snapshot.tmp   orphaned (crash artefact)\n");
        }
        out.push_str(&format!(
            "  verdict: {}\n",
            if self.clean() {
                "clean"
            } else {
                "recoverable damage"
            }
        ));
        out
    }
}

fn check_stream(dir: &Path, file: &str) -> Result<StreamCheck, StoreError> {
    let mut out = StreamCheck {
        file: file.to_string(),
        ..StreamCheck::default()
    };
    let Some(bytes) = read_raw(&dir.join(file))? else {
        return Ok(out);
    };
    out.present = true;
    let s: Scan = scan(&bytes);
    out.records = s.records.len() as u64;
    out.committed_bytes = s.committed_bytes;
    out.truncated_bytes = s.truncated_bytes;
    let mut kinds: BTreeMap<&'static str, u64> = BTreeMap::new();
    for rec in &s.records {
        let n = kinds.entry(rec.kind()).or_insert(0);
        *n = n.saturating_add(1);
    }
    out.kinds = kinds.into_iter().map(|(k, n)| (k.to_string(), n)).collect();
    Ok(out)
}

/// Check a store directory without opening (or mutating) it: scan both
/// streams, count committed records per kind, and report torn tails and
/// crash artefacts. Damage is *reported*, never repaired — recovery
/// belongs to [`Store::open`].
pub fn fsck(dir: &Path) -> Result<FsckReport, StoreError> {
    Ok(FsckReport {
        dir: dir.display().to_string(),
        streams: vec![
            check_stream(dir, SNAPSHOT_FILE)?,
            check_stream(dir, WAL_FILE)?,
        ],
        orphan_tmp: dir.join(SNAPSHOT_TMP).exists(),
    })
}
