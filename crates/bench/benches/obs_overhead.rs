//! Observability-publish overhead on the fig-6 workload: full-domain
//! acquisition (all three WebIQ components) with and without a
//! [`webiq::obs::LiveRegistry`] installed in `WebIQConfig.obs`.
//!
//! The publish path runs once per work item in the deterministic merge
//! loop — far off the per-query hot path — so its cost should be
//! invisible. End-to-end timing at this workload size carries a few
//! percent of run-to-run jitter, so as in `trace_overhead` the headline
//! "<1%" claim is pinned by an analytic bound: the per-op cost of
//! `publish_item` (counter fold + histogram merge) is measured in a
//! tight loop, multiplied by the number of items a real run publishes
//! (plus one `end_epoch` and the three gauges), and expressed as a share
//! of the measured unobserved run time. Emits `BENCH_obs_overhead.json`
//! next to the workspace root.

use std::sync::Arc;

use webiq::core::{Components, WebIQConfig};
use webiq::obs::LiveRegistry;
use webiq::pipeline::DomainPipeline;
use webiq::trace::{Counter, HistKey, HistSet, MetricSet};
use webiq_bench::experiments::SEED;
use webiq_bench::json::{obj, Json};
use webiq_bench::timing::{fmt_time, time_once};

const OUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs_overhead.json");
const REPS: usize = 5;
const KEYS: [&str; 5] = ["airfare", "auto", "book", "job", "realestate"];

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Median wall-clock of a full acquisition, optionally publishing into a
/// live registry.
fn run_mode(key: &'static str, observed: bool) -> f64 {
    let mut times = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        // fresh pipeline per rep: cold engine caches, so both modes pay
        // the identical workload
        let p = DomainPipeline::build(key, SEED).expect("domain");
        let cfg = WebIQConfig {
            obs: observed.then(|| Arc::new(LiveRegistry::new())),
            threads: Some(1),
            ..WebIQConfig::default()
        };
        let (_, secs) = time_once(|| p.acquire(Components::ALL, &cfg).expect("acquisition"));
        times.push(secs);
    }
    median(times)
}

const OP_REPS: u64 = 200_000;

/// Per-op cost (ns) of `publish_item` with a representative payload: a
/// handful of nonzero counters plus one histogram observation, like a
/// real per-attribute delta.
fn publish_ns() -> f64 {
    let reg = LiveRegistry::new();
    let mut m = MetricSet::new();
    m.add(Counter::AttrsTotal, 1);
    m.add(Counter::ExtractQueries, 12);
    m.add(Counter::CandidatesExtracted, 30);
    m.add(Counter::ValidationAccepted, 9);
    m.add(Counter::ProbesIssued, 6);
    let mut h = HistSet::new();
    h.observe(HistKey::CandidatesPerAttr, 30);
    h.observe(HistKey::ProbesPerAttr, 6);
    let (_, secs) = time_once(|| {
        for _ in 0..OP_REPS {
            reg.publish_item(&m, &h);
        }
        reg.items()
    });
    secs * 1e9 / OP_REPS as f64
}

/// Items one acquisition publishes (= attributes in the dataset).
fn items_per_run(key: &'static str) -> u64 {
    let p = DomainPipeline::build(key, SEED).expect("domain");
    let reg = Arc::new(LiveRegistry::new());
    let cfg = WebIQConfig {
        obs: Some(Arc::clone(&reg)),
        threads: Some(1),
        ..WebIQConfig::default()
    };
    p.acquire(Components::ALL, &cfg).expect("acquisition");
    reg.items()
}

fn main() {
    let publish = publish_ns();
    println!("obs_overhead: publish_item cost {publish:.1} ns/item");

    let mut domain_objs = Vec::new();
    let mut totals = [0.0f64; 2];
    let mut bound_pct_max = 0.0f64;

    for key in KEYS {
        let off = run_mode(key, false);
        let on = run_mode(key, true);
        totals[0] += off;
        totals[1] += on;
        let rel = 100.0 * (on - off) / off;
        let items = items_per_run(key);
        // +4: one end_epoch and three gauge sets, each charged a full
        // publish even though they are cheaper.
        let bound_pct = 100.0 * ((items + 4) as f64 * publish) / (off * 1e9);
        bound_pct_max = bound_pct_max.max(bound_pct);
        println!(
            "obs_overhead/{key:<11} off {:>10}   on {:>10} ({rel:>+6.2}%)   {items} publishes -> bound {bound_pct:.4}%",
            fmt_time(off),
            fmt_time(on),
        );
        domain_objs.push(obj([
            ("key", key.into()),
            ("unobserved_secs", off.into()),
            ("observed_secs", on.into()),
            ("observed_overhead_pct", rel.into()),
            ("items_published", items.into()),
            ("publish_bound_pct", bound_pct.into()),
        ]));
    }

    let rel_total = 100.0 * (totals[1] - totals[0]) / totals[0];
    let report = obj([
        ("seed", SEED.into()),
        ("reps", REPS.into()),
        (
            "workload",
            "full acquisition, all components, five domains".into(),
        ),
        ("publish_ns", publish.into()),
        ("domains", Json::Arr(domain_objs)),
        (
            "summary",
            obj([
                ("unobserved_secs", totals[0].into()),
                ("observed_secs", totals[1].into()),
                ("observed_overhead_pct", rel_total.into()),
                ("publish_bound_pct_max", bound_pct_max.into()),
                ("publish_overhead_under_1pct", (bound_pct_max < 1.0).into()),
            ]),
        ),
    ]);
    std::fs::write(OUT_PATH, report.pretty() + "\n").expect("write BENCH_obs_overhead.json");
    println!(
        "total: off {} | on {} ({rel_total:+.2}%)\n\
         publish-path bound: {bound_pct_max:.4}% worst domain (<1% target); wrote {OUT_PATH}",
        fmt_time(totals[0]),
        fmt_time(totals[1]),
    );
}
