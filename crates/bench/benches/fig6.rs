//! Figure 6 pipeline benchmark: the three matching configurations —
//! baseline IceQ, IceQ + WebIQ, and IceQ + WebIQ + thresholding — on the
//! book domain (acquisition is pre-computed once; the bars differ in what
//! the matcher consumes).

use webiq::core::{Components, WebIQConfig};
use webiq::matcher::MatchConfig;
use webiq::pipeline::{DomainPipeline, THRESHOLD};
use webiq_bench::timing::{black_box, Criterion};
use webiq_bench::{criterion_group, criterion_main};

fn bench_fig6(c: &mut Criterion) {
    let p = DomainPipeline::build("book", 0x1ce0).expect("domain");
    let acq = p
        .acquire(Components::ALL, &WebIQConfig::default())
        .expect("acquisition");
    let baseline_attrs = p.baseline_attributes();
    let enriched_attrs = p.enriched_attributes(&acq);

    let mut group = c.benchmark_group("fig6/book");
    group.sample_size(20);
    group.bench_function("baseline_match", |b| {
        b.iter(|| black_box(p.match_and_evaluate(&baseline_attrs, &MatchConfig::default())));
    });
    group.bench_function("webiq_match", |b| {
        b.iter(|| black_box(p.match_and_evaluate(&enriched_attrs, &MatchConfig::default())));
    });
    group.bench_function("webiq_threshold_match", |b| {
        b.iter(|| {
            black_box(
                p.match_and_evaluate(&enriched_attrs, &MatchConfig::with_threshold(THRESHOLD)),
            )
        });
    });
    group.finish();

    let mut group = c.benchmark_group("fig6/acquisition");
    group.sample_size(10);
    group.bench_function("book_full_webiq", |b| {
        b.iter(|| {
            black_box(
                p.acquire(Components::ALL, &WebIQConfig::default())
                    .expect("acquisition"),
            )
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_fig6
}
criterion_main!(benches);
