//! Profiling overhead on the fig-6 workload: the cost of the always-on
//! `webiq-prof` registry, pinned by an analytic bound.
//!
//! The registry is a fixed array of relaxed atomics; an increment is a
//! handful of nanoseconds and a stage timer adds one monotonic-clock
//! read on each side. End-to-end A/B timing cannot resolve costs that
//! small against run-to-run jitter — and profiling cannot be compiled
//! out, there is no "off" build — so as in `obs_overhead` the "<1%"
//! claim is an analytic bound: measure the per-op cost of a counter
//! increment and of a full stage timer in tight loops, count how many
//! of each a real single-threaded acquisition performs, and express the
//! product as a share of that run's wall-clock. The counter unit count
//! deliberately over-charges: every unit recorded via a batched `add`
//! (e.g. 30 cache hits folded into one atomic op) is billed as its own
//! increment. Emits `BENCH_prof_overhead.json` next to the workspace
//! root.

use webiq::core::{Components, WebIQConfig};
use webiq::pipeline::DomainPipeline;
use webiq::prof::{ProfCounter, Stage};
use webiq_bench::experiments::SEED;
use webiq_bench::json::{obj, Json};
use webiq_bench::timing::{black_box, fmt_time, time_once};

const OUT_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../BENCH_prof_overhead.json"
);
const REPS: usize = 5;
const KEYS: [&str; 5] = ["airfare", "auto", "book", "job", "realestate"];

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

const OP_REPS: u64 = 200_000;

/// Per-op cost (ns) of one profiling counter increment.
fn incr_ns() -> f64 {
    let (_, secs) = time_once(|| {
        for _ in 0..OP_REPS {
            webiq::prof::incr(black_box(ProfCounter::SearchCacheHit));
        }
    });
    secs * 1e9 / OP_REPS as f64
}

/// Per-op cost (ns) of one full stage timer (two clock reads plus two
/// atomic adds) around a trivial body.
fn stage_timer_ns() -> f64 {
    let (_, secs) = time_once(|| {
        for _ in 0..OP_REPS {
            webiq::prof::time(Stage::Extract, || black_box(1u64));
        }
    });
    secs * 1e9 / OP_REPS as f64
}

/// One profiled single-threaded acquisition: median wall-clock over
/// `REPS`, plus the counter units and stage-timer calls the run records
/// (identical every rep — the counting plane is deterministic).
fn run_domain(key: &'static str) -> (f64, u64, u64) {
    let mut times = Vec::with_capacity(REPS);
    let mut units = 0u64;
    let mut calls = 0u64;
    for _ in 0..REPS {
        // fresh pipeline per rep: cold engine caches, so every rep pays
        // the identical workload
        let p = DomainPipeline::build(key, SEED).expect("domain");
        let cfg = WebIQConfig {
            threads: Some(1),
            ..WebIQConfig::default()
        };
        webiq::prof::reset();
        let (_, secs) = time_once(|| p.acquire(Components::ALL, &cfg).expect("acquisition"));
        times.push(secs);
        let snap = webiq::prof::snapshot();
        units = ProfCounter::ALL
            .iter()
            .filter(|c| !c.is_peak())
            .map(|&c| snap.get(c))
            .sum();
        calls = Stage::ALL.iter().map(|&s| snap.stage_calls(s)).sum();
    }
    (median(times), units, calls)
}

fn main() {
    let incr = incr_ns();
    let timer = stage_timer_ns();
    println!("prof_overhead: counter incr {incr:.1} ns/op, stage timer {timer:.1} ns/call");

    let mut domain_objs = Vec::new();
    let mut wall_total = 0.0f64;
    let mut bound_pct_max = 0.0f64;

    for key in KEYS {
        let (wall, units, calls) = run_domain(key);
        wall_total += wall;
        let bound_pct = 100.0 * (units as f64 * incr + calls as f64 * timer) / (wall * 1e9);
        bound_pct_max = bound_pct_max.max(bound_pct);
        println!(
            "prof_overhead/{key:<11} wall {:>10}   {units} counter units + {calls} stage calls -> bound {bound_pct:.4}%",
            fmt_time(wall),
        );
        domain_objs.push(obj([
            ("key", key.into()),
            ("wall_secs", wall.into()),
            ("counter_units", units.into()),
            ("stage_calls", calls.into()),
            ("prof_bound_pct", bound_pct.into()),
        ]));
    }

    let report = obj([
        ("seed", SEED.into()),
        ("reps", REPS.into()),
        (
            "workload",
            "full acquisition, all components, five domains, 1 thread".into(),
        ),
        ("incr_ns", incr.into()),
        ("stage_timer_ns", timer.into()),
        ("domains", Json::Arr(domain_objs)),
        (
            "summary",
            obj([
                ("wall_secs", wall_total.into()),
                ("prof_bound_pct_max", bound_pct_max.into()),
                ("prof_overhead_under_1pct", (bound_pct_max < 1.0).into()),
            ]),
        ),
    ]);
    std::fs::write(OUT_PATH, report.pretty() + "\n").expect("write BENCH_prof_overhead.json");
    println!("profiling bound: {bound_pct_max:.4}% worst domain (<1% target); wrote {OUT_PATH}");
}
