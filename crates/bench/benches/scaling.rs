//! Scaling behaviour of the matcher: constrained average-link clustering
//! is the asymptotically expensive piece (O(n²) similarity matrix, then
//! up-to-O(n³) merge selection). This bench charts wall-clock against the
//! attribute count so downstream users know where the knee is — the
//! paper's workloads (≈100–220 attributes per domain) sit comfortably
//! below it.

use webiq::data::kb;
use webiq::matcher::{match_attributes, MatchAttribute, MatchConfig};
use webiq_bench::timing::{black_box, BenchmarkId, Criterion};
use webiq_bench::{criterion_group, criterion_main};

/// Synthesize `n` attributes across `n / 5` interfaces drawn from a few
/// concept archetypes, mimicking a domain's structure at scale.
fn synthetic_attributes(n: usize) -> Vec<MatchAttribute> {
    let archetypes: [(&str, &[&str]); 5] = [
        ("Departure city", kb::pools::CITIES),
        ("Airline", kb::pools::AIRLINES_NA),
        ("Departure date", kb::pools::MONTHS),
        ("Class of service", kb::pools::CABIN_CLASSES),
        ("Adults", kb::pools::PASSENGER_COUNTS),
    ];
    (0..n)
        .map(|i| {
            let (label, pool) = archetypes[i % archetypes.len()];
            let start = (i * 3) % pool.len();
            let values: Vec<String> = pool
                .iter()
                .cycle()
                .skip(start)
                .take(6)
                .map(|s| (*s).to_string())
                .collect();
            MatchAttribute {
                r: (i / archetypes.len(), i % archetypes.len()),
                label: label.into(),
                values,
            }
        })
        .collect()
}

fn bench_matcher_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/match_attributes");
    group.sample_size(10);
    for n in [50usize, 100, 200] {
        let attrs = synthetic_attributes(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &attrs, |b, attrs| {
            b.iter(|| black_box(match_attributes(attrs, &MatchConfig::default())));
        });
    }
    group.finish();
}

fn bench_engine_scaling(c: &mut Criterion) {
    use webiq::web::{gen, GenConfig, SearchEngine};
    let mut group = c.benchmark_group("scaling/search_engine_build");
    group.sample_size(10);
    for docs in [50usize, 150, 400] {
        let def = kb::domain("book").expect("domain");
        let specs = webiq::data::corpus::concept_specs(def);
        let cfg = GenConfig {
            docs_per_concept: docs,
            ..GenConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(docs), &cfg, |b, cfg| {
            b.iter(|| black_box(SearchEngine::new(gen::generate(&specs, cfg)).expect("engine")));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_matcher_scaling, bench_engine_scaling
}
criterion_main!(benches);
