//! Persistence overhead on the fig-6 workload: full-domain acquisition
//! with no store (the default — a `None` check per run is the only
//! added code) and with a cold store persisting every merged item
//! through the fsync'd append log plus one final compaction.
//!
//! End-to-end timing at this workload size carries a few percent of
//! run-to-run jitter, so as in `fault_overhead` the headline "<1%"
//! claim is pinned by an analytic bound: the cost of everything the
//! store adds to a cold run — the input fingerprint, one durable
//! append per persisted fact, and the final compaction — is measured
//! directly and expressed as a share of the measured store-less run
//! time. The bench also checks the persisting run acquires
//! byte-identical instances. Emits `BENCH_store_overhead.json` next to
//! the workspace root.

use std::path::PathBuf;
use std::sync::Arc;

use webiq::core::{persist, Acquisition, Components, WebIQConfig};
use webiq::pipeline::DomainPipeline;
use webiq::store::{BorrowRecord, Record, Store};
use webiq_bench::experiments::SEED;
use webiq_bench::json::{obj, Json};
use webiq_bench::timing::{fmt_time, time_once};

const OUT_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../BENCH_store_overhead.json"
);
const REPS: usize = 5;
const KEYS: [&str; 5] = ["airfare", "auto", "book", "job", "realestate"];

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("webiq-store-bench-{tag}-{}", std::process::id()))
}

/// Median wall-clock of a full acquisition; with `persist`, each rep
/// writes into a fresh store directory (a cold cache both ways).
fn run_mode(key: &'static str, persist: bool) -> f64 {
    let mut times = Vec::with_capacity(REPS);
    for rep in 0..REPS {
        let p = DomainPipeline::build(key, SEED).expect("domain");
        let dir = scratch(&format!("{key}-{rep}"));
        let _ = std::fs::remove_dir_all(&dir);
        let store = persist.then(|| Arc::new(Store::open(&dir).expect("open")));
        let cfg = WebIQConfig {
            threads: Some(1),
            store,
            ..WebIQConfig::default()
        };
        let (_, secs) = time_once(|| p.acquire(Components::ALL, &cfg).expect("acquisition"));
        times.push(secs);
        let _ = std::fs::remove_dir_all(&dir);
    }
    median(times)
}

/// One persisting acquisition's result plus the facts it stored.
fn run_once(key: &'static str) -> (Acquisition, usize) {
    let p = DomainPipeline::build(key, SEED).expect("domain");
    let dir = scratch(key);
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(Store::open(&dir).expect("open"));
    let handle = Arc::clone(&store);
    let cfg = WebIQConfig {
        threads: Some(1),
        store: Some(store),
        ..WebIQConfig::default()
    };
    let acq = p.acquire(Components::ALL, &cfg).expect("acquisition");
    let facts = handle.state_snapshot().len();
    let _ = std::fs::remove_dir_all(&dir);
    (acq, facts)
}

const PUT_REPS: u64 = 2_000;

/// Per-append cost (ns) of one durable `put`: frame + CRC + fsync'd
/// append + in-memory apply — what every persisted fact costs a cold
/// run. Measured against the real filesystem, fsync included.
fn put_ns() -> f64 {
    let dir = scratch("put");
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::open(&dir).expect("open");
    let (_, secs) = time_once(|| {
        for i in 0..PUT_REPS {
            store
                .put(Record::Borrow(BorrowRecord {
                    domain: "bench".to_string(),
                    attr: format!("attr{i}"),
                    lender: "lender".to_string(),
                    accepted: i % 2 == 0,
                }))
                .expect("put");
        }
    });
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    secs * 1e9 / PUT_REPS as f64
}

/// One-off store costs of a cold run for `key`: the input fingerprint
/// and the final compaction of its real fact set, in seconds.
fn fixed_secs(key: &'static str) -> f64 {
    let p = DomainPipeline::build(key, SEED).expect("domain");
    let cfg = WebIQConfig::default();
    let fault = cfg.resolved_fault();
    let (_, fp_secs) = time_once(|| {
        persist::run_fingerprint(
            &p.dataset,
            p.def,
            Components::ALL,
            &cfg,
            &fault,
            p.engine.doc_count() as u64,
        )
    });
    // Compact the run's real fact set once, from a replayed store.
    let dir = scratch(&format!("compact-{key}"));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(Store::open(&dir).expect("open"));
    let handle = Arc::clone(&store);
    let run_cfg = WebIQConfig {
        threads: Some(1),
        store: Some(store),
        ..WebIQConfig::default()
    };
    p.acquire(Components::ALL, &run_cfg).expect("acquisition");
    let (_, compact_secs) = time_once(|| handle.compact().expect("compact"));
    let _ = std::fs::remove_dir_all(&dir);
    fp_secs + compact_secs
}

fn main() {
    let put = put_ns();
    println!("store_overhead: durable append cost {put:.1} ns/record");

    let mut domain_objs = Vec::new();
    let mut totals = [0.0f64; 2];
    let mut bound_pct_max = 0.0f64;
    let mut outputs_identical = true;

    for key in KEYS {
        let off = run_mode(key, false);
        let on = run_mode(key, true);
        totals[0] += off;
        totals[1] += on;
        let rel = 100.0 * (on - off) / off;
        let (acq_on, facts) = run_once(key);
        let p = DomainPipeline::build(key, SEED).expect("domain");
        let acq_off = p
            .acquire(
                Components::ALL,
                &WebIQConfig {
                    threads: Some(1),
                    ..WebIQConfig::default()
                },
            )
            .expect("acquisition");
        let identical = acq_off.acquired == acq_on.acquired && acq_off.degraded == acq_on.degraded;
        outputs_identical = outputs_identical && identical;
        let fixed = fixed_secs(key);
        let bound_pct = 100.0 * (facts as f64 * put / 1e9 + fixed) / off;
        bound_pct_max = bound_pct_max.max(bound_pct);
        println!(
            "store_overhead/{key:<11} off {:>10}   store {:>10} ({rel:>+6.2}%)   {facts} facts -> bound {bound_pct:.4}%{}",
            fmt_time(off),
            fmt_time(on),
            if identical { "" } else { "   OUTPUT DIVERGED" },
        );
        domain_objs.push(obj([
            ("key", key.into()),
            ("disabled_secs", off.into()),
            ("store_secs", on.into()),
            ("store_overhead_pct", rel.into()),
            ("facts", facts.into()),
            ("store_bound_pct", bound_pct.into()),
            ("output_identical", identical.into()),
        ]));
    }

    let rel_total = 100.0 * (totals[1] - totals[0]) / totals[0];
    let report = obj([
        ("seed", SEED.into()),
        ("reps", REPS.into()),
        (
            "workload",
            "full acquisition, all components, five domains".into(),
        ),
        ("put_ns", put.into()),
        ("domains", Json::Arr(domain_objs)),
        (
            "summary",
            obj([
                ("disabled_secs", totals[0].into()),
                ("store_secs", totals[1].into()),
                ("store_overhead_pct", rel_total.into()),
                ("store_bound_pct_max", bound_pct_max.into()),
                ("store_overhead_under_1pct", (bound_pct_max < 1.0).into()),
                ("outputs_identical", outputs_identical.into()),
            ]),
        ),
    ]);
    std::fs::write(OUT_PATH, report.pretty() + "\n").expect("write BENCH_store_overhead.json");
    println!(
        "total: disabled {} | store {} ({rel_total:+.2}%)\n\
         store bound: {bound_pct_max:.4}% worst domain (<1% target); \
         outputs identical: {outputs_identical}; wrote {OUT_PATH}",
        fmt_time(totals[0]),
        fmt_time(totals[1]),
    );
}
