//! Micro-benchmarks of the hot substrate operations: POS tagging, label
//! classification, stemming, search-engine queries, PMI validation,
//! outlier removal, naive-Bayes training, HTML form extraction, and the
//! pairwise similarity the matcher computes O(n²) times.

use webiq::core::{patterns, verify};
use webiq::data::{corpus, kb};
use webiq::html::form::extract_forms;
use webiq::matcher::{similarity, MatchAttribute, MatchConfig};
use webiq::nlp::{chunk, pos, stem};
use webiq::stats::{bayes::NaiveBayes, outlier};
use webiq::web::{gen, GenConfig, SearchEngine};
use webiq_bench::timing::{black_box, Criterion};
use webiq_bench::{criterion_group, criterion_main};

fn engine() -> SearchEngine {
    let def = kb::domain("airfare").expect("domain");
    SearchEngine::new(gen::generate(
        &corpus::concept_specs(def),
        &GenConfig::default(),
    ))
    .expect("engine")
}

fn bench_nlp(c: &mut Criterion) {
    c.bench_function("nlp/pos_tag_sentence", |b| {
        b.iter(|| {
            pos::tag(black_box(
                "Popular departure cities such as Boston, Chicago, and LAX are listed on this page",
            ))
        });
    });
    c.bench_function("nlp/classify_label", |b| {
        b.iter(|| chunk::classify_label(black_box("Class of service")));
    });
    c.bench_function("nlp/porter_stem", |b| {
        b.iter(|| stem::stem(black_box("internationalization")));
    });
}

fn bench_engine(c: &mut Criterion) {
    let e = engine();
    c.bench_function("web/num_hits_keyword", |b| {
        // bypass the memo: alternate two queries
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            e.num_hits(black_box(if flip { "boston" } else { "chicago" }))
        });
    });
    c.bench_function("web/num_hits_phrase", |b| {
        b.iter(|| e.num_hits(black_box("\"departure cities such as\" +airfare")));
    });
    c.bench_function("web/search_top10", |b| {
        b.iter(|| e.search(black_box("\"cities such as\" +airfare"), 10));
    });
}

fn bench_verification(c: &mut Criterion) {
    let e = engine();
    let np = webiq::core::extract::primary_noun_phrase("Airline").expect("np");
    let phrases = patterns::validation_phrases("Airline", Some(&np));
    c.bench_function("core/validation_vector", |b| {
        b.iter(|| verify::validation_vector(&e, &phrases, black_box("Delta"), true));
    });

    let candidates: Vec<String> = kb::pools::CITIES.iter().map(|s| (*s).to_string()).collect();
    c.bench_function("stats/outlier_removal_45", |b| {
        b.iter(|| outlier::remove_outliers(black_box(&candidates)));
    });

    let examples: Vec<(Vec<bool>, bool)> = (0..40)
        .map(|i| (vec![i % 2 == 0, i % 3 == 0, i % 5 == 0], i % 2 == 0))
        .collect();
    c.bench_function("stats/naive_bayes_train_40", |b| {
        b.iter(|| NaiveBayes::train(black_box(&examples)).expect("train"));
    });
}

fn bench_html(c: &mut Criterion) {
    let def = kb::domain("airfare").expect("domain");
    let ds = webiq::data::generate_domain(def, &webiq::data::GenOptions::default());
    let html = ds.interfaces[0].to_html();
    c.bench_function("html/extract_form", |b| {
        b.iter(|| extract_forms(black_box(&html)));
    });
}

fn bench_similarity(c: &mut Criterion) {
    let a = MatchAttribute {
        r: (0, 0),
        label: "Departure city".into(),
        values: kb::pools::CITIES
            .iter()
            .take(10)
            .map(|s| (*s).to_string())
            .collect(),
    };
    let b_attr = MatchAttribute {
        r: (1, 0),
        label: "From city".into(),
        values: kb::pools::CITIES
            .iter()
            .skip(5)
            .take(10)
            .map(|s| (*s).to_string())
            .collect(),
    };
    let cfg = MatchConfig::default();
    c.bench_function("match/pairwise_similarity", |b| {
        b.iter(|| similarity(black_box(&a), black_box(&b_attr), &cfg));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_nlp, bench_engine, bench_verification, bench_html, bench_similarity
}
criterion_main!(benches);
