//! Retry-layer overhead on the fig-6 workload: full-domain acquisition
//! with the fault machinery disabled (the default — the per-item
//! `enabled()` check is the only added code) and armed-but-idle (a
//! never-exhausting daily quota and zero injection rates, so every call
//! runs through the resilient wrappers yet no fault ever fires).
//!
//! End-to-end timing at this workload size carries a few percent of
//! run-to-run jitter, so as in `obs_overhead` the headline "<1%" claim
//! is pinned by an analytic bound: the per-call cost of the wrapper's
//! no-fault path (plan draw + breaker gate + quota consume + success
//! record) is measured in a tight loop, multiplied by the number of
//! engine queries and probes a real run issues, and expressed as a share
//! of the measured disabled run time. The bench also checks the armed
//! run acquires byte-identical instances. Emits
//! `BENCH_fault_overhead.json` next to the workspace root.

use webiq::core::{Acquisition, Components, WebIQConfig};
use webiq::data::records::{build_deep_source, RecordOptions};
use webiq::fault::{CircuitBreaker, FaultConfig, FaultPlan, QuotaTracker, VirtualClock};
use webiq::pipeline::DomainPipeline;
use webiq_bench::experiments::SEED;
use webiq_bench::json::{obj, Json};
use webiq_bench::timing::{fmt_time, time_once};

const OUT_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../BENCH_fault_overhead.json"
);
const REPS: usize = 5;
const KEYS: [&str; 5] = ["airfare", "auto", "book", "job", "realestate"];

/// Armed but idle: the quota arms the wrappers on every call, yet with
/// all injection rates at zero and a quota no run can exhaust, no fault
/// ever fires. (A tiny nonzero rate would NOT be idle: the plan's draw
/// has 1/10\_000 granularity, so any positive rate fires on draw 0.)
fn idle_fault() -> FaultConfig {
    FaultConfig {
        daily_quota: u64::MAX,
        ..FaultConfig::default()
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// The pipeline with failure-free sources: the default pipeline's legacy
/// 5% request-keyed failures are permanent, so the armed wrapper would
/// retry them and trip circuit breakers — real resilience work, not
/// overhead. Clean sources make the two modes do identical work, which
/// is what an overhead comparison needs.
fn clean_pipeline(key: &'static str) -> DomainPipeline {
    let mut p = DomainPipeline::build(key, SEED).expect("domain");
    p.sources = p
        .dataset
        .interfaces
        .iter()
        .map(|i| {
            build_deep_source(
                p.def,
                i,
                &RecordOptions {
                    seed: SEED,
                    ..RecordOptions::default()
                },
            )
        })
        .collect();
    p
}

/// Median wall-clock of a full acquisition under `fault`.
fn run_mode(key: &'static str, fault: &FaultConfig) -> f64 {
    let mut times = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        // fresh pipeline per rep: cold engine caches, so both modes pay
        // the identical workload
        let p = clean_pipeline(key);
        let cfg = WebIQConfig {
            threads: Some(1),
            fault: fault.clone(),
            ..WebIQConfig::default()
        };
        let (_, secs) = time_once(|| p.acquire(Components::ALL, &cfg).expect("acquisition"));
        times.push(secs);
    }
    median(times)
}

/// One acquisition's result plus its query/probe volume.
fn run_once(key: &'static str, fault: &FaultConfig) -> (Acquisition, u64) {
    let p = clean_pipeline(key);
    let cfg = WebIQConfig {
        threads: Some(1),
        fault: fault.clone(),
        ..WebIQConfig::default()
    };
    let acq = p.acquire(Components::ALL, &cfg).expect("acquisition");
    let r = &acq.report;
    let ops = r.surface_cost.engine_queries
        + r.attr_surface_cost.engine_queries
        + r.attr_deep_cost.engine_queries
        + r.surface_cost.probes
        + r.attr_surface_cost.probes
        + r.attr_deep_cost.probes;
    (acq, ops)
}

const OP_REPS: u64 = 200_000;

/// Per-call cost (ns) of the wrapper's no-fault path: one plan draw, one
/// breaker gate, one quota consume, one success record — everything a
/// guarded call adds when nothing fires. The plan carries a live
/// transient rate so the draw pays its full mixing cost (the idle
/// config's disabled plan would short-circuit and under-count).
fn wrapper_ns() -> f64 {
    let cfg = FaultConfig::chaos(1, 1e-9);
    let plan = FaultPlan::from_config(&cfg);
    let clock = VirtualClock::new();
    let breaker = CircuitBreaker::from_config(&cfg);
    let quota = QuotaTracker::new(u64::MAX);
    let (hits, secs) = time_once(|| {
        let mut hits = 0u64;
        for i in 0..OP_REPS {
            if breaker.allow(&clock) && plan.decide("engine/search", i, 0).is_none() {
                quota.try_consume(1);
                breaker.record_success();
                hits += 1;
            }
        }
        hits
    });
    assert!(hits > 0, "the near-idle plan fired on every call");
    secs * 1e9 / OP_REPS as f64
}

fn main() {
    let wrapper = wrapper_ns();
    println!("fault_overhead: no-fault wrapper cost {wrapper:.1} ns/call");

    let idle = idle_fault();
    let mut domain_objs = Vec::new();
    let mut totals = [0.0f64; 2];
    let mut bound_pct_max = 0.0f64;
    let mut outputs_identical = true;

    for key in KEYS {
        let off = run_mode(key, &FaultConfig::default());
        let on = run_mode(key, &idle);
        totals[0] += off;
        totals[1] += on;
        let rel = 100.0 * (on - off) / off;
        let (acq_off, ops) = run_once(key, &FaultConfig::default());
        let (acq_on, _) = run_once(key, &idle);
        let identical = acq_off.acquired == acq_on.acquired && acq_off.degraded == acq_on.degraded;
        outputs_identical = outputs_identical && identical;
        let bound_pct = 100.0 * (ops as f64 * wrapper) / (off * 1e9);
        bound_pct_max = bound_pct_max.max(bound_pct);
        println!(
            "fault_overhead/{key:<11} off {:>10}   armed {:>10} ({rel:>+6.2}%)   {ops} guarded calls -> bound {bound_pct:.4}%{}",
            fmt_time(off),
            fmt_time(on),
            if identical { "" } else { "   OUTPUT DIVERGED" },
        );
        domain_objs.push(obj([
            ("key", key.into()),
            ("disabled_secs", off.into()),
            ("armed_idle_secs", on.into()),
            ("armed_overhead_pct", rel.into()),
            ("guarded_calls", ops.into()),
            ("wrapper_bound_pct", bound_pct.into()),
            ("output_identical", identical.into()),
        ]));
    }

    let rel_total = 100.0 * (totals[1] - totals[0]) / totals[0];
    let report = obj([
        ("seed", SEED.into()),
        ("reps", REPS.into()),
        (
            "workload",
            "full acquisition, all components, five domains".into(),
        ),
        ("wrapper_ns", wrapper.into()),
        ("domains", Json::Arr(domain_objs)),
        (
            "summary",
            obj([
                ("disabled_secs", totals[0].into()),
                ("armed_idle_secs", totals[1].into()),
                ("armed_overhead_pct", rel_total.into()),
                ("wrapper_bound_pct_max", bound_pct_max.into()),
                ("retry_overhead_under_1pct", (bound_pct_max < 1.0).into()),
                ("outputs_identical", outputs_identical.into()),
            ]),
        ),
    ]);
    std::fs::write(OUT_PATH, report.pretty() + "\n").expect("write BENCH_fault_overhead.json");
    println!(
        "total: disabled {} | armed {} ({rel_total:+.2}%)\n\
         wrapper bound: {bound_pct_max:.4}% worst domain (<1% target); \
         outputs identical: {outputs_identical}; wrote {OUT_PATH}",
        fmt_time(totals[0]),
        fmt_time(totals[1]),
    );
}
