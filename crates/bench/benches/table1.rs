//! Table 1 pipeline benchmark: dataset generation + characteristics
//! (columns 2–5) and the instance-acquisition passes behind columns 6–7.

use webiq::core::{Components, WebIQConfig};
use webiq::data::stats::characteristics;
use webiq::data::{generate_domain, kb, GenOptions};
use webiq::pipeline::DomainPipeline;
use webiq_bench::timing::{black_box, Criterion};
use webiq_bench::{criterion_group, criterion_main};

fn bench_characteristics(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/columns2-5");
    for key in ["airfare", "book"] {
        let def = kb::domain(key).expect("domain");
        group.bench_function(key, |b| {
            b.iter(|| {
                let ds = generate_domain(def, &GenOptions::default());
                black_box(characteristics(&ds, def))
            });
        });
    }
    group.finish();
}

fn bench_acquisition_success(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/columns6-7");
    group.sample_size(10);
    // one fast domain and one borrow-heavy domain
    for key in ["book", "auto"] {
        let p = DomainPipeline::build(key, 0x1ce0).expect("domain");
        let cfg = WebIQConfig::default();
        group.bench_function(format!("{key}/surface_only"), |b| {
            b.iter(|| black_box(p.acquire(Components::SURFACE, &cfg).expect("acquisition")));
        });
        group.bench_function(format!("{key}/surface_plus_deep"), |b| {
            b.iter(|| {
                black_box(
                    p.acquire(Components::SURFACE_DEEP, &cfg)
                        .expect("acquisition"),
                )
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_characteristics, bench_acquisition_success
}
criterion_main!(benches);
