//! Figure 8 benchmark: the per-component costs behind the overhead
//! analysis — one Surface discovery, one Attr-Surface verification, one
//! Attr-Deep probe round, and one full matching pass.

use std::collections::BTreeMap;

use webiq::core::{attr_deep, attr_surface, surface, Components, DomainInfo, WebIQConfig};
use webiq::matcher::MatchConfig;
use webiq::pipeline::DomainPipeline;
use webiq_bench::timing::{black_box, Criterion};
use webiq_bench::{criterion_group, criterion_main};

fn bench_components(c: &mut Criterion) {
    let p = DomainPipeline::build("airfare", 0x1ce0).expect("domain");
    let cfg = WebIQConfig::default();
    let info = DomainInfo {
        object: p.def.object.to_string(),
        domain_terms: p
            .def
            .domain_terms
            .iter()
            .map(|s| (*s).to_string())
            .collect(),
        sibling_terms: Vec::new(),
    };

    let mut group = c.benchmark_group("fig8/airfare");
    group.sample_size(10);

    group.bench_function("surface_discover_one_attr", |b| {
        b.iter(|| black_box(surface::discover(&p.engine, "Departure city", &info, &cfg)));
    });

    let positives: Vec<String> = ["Air Canada", "American", "Delta", "United"]
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    let negatives: Vec<String> = ["Economy", "First Class", "Jan", "1"]
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    let borrowed: Vec<String> = ["Aer Lingus", "Lufthansa", "Iberia"]
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    group.bench_function("attr_surface_verify_one_attr", |b| {
        b.iter(|| {
            black_box(attr_surface::verify_borrowed(
                &p.engine, "Airline", &positives, &negatives, &borrowed, &cfg,
            ))
        });
    });

    let source = &p.sources[0];
    let cities: Vec<String> = ["Chicago", "Boston", "Seattle"]
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    let param = p.dataset.interfaces[0].attributes[0].name.clone();
    group.bench_function("attr_deep_probe_round", |b| {
        b.iter(|| black_box(attr_deep::validate_borrowed(source, &param, &cities, &cfg)));
    });

    group.bench_function("deep_source_submit", |b| {
        let mut params = BTreeMap::new();
        params.insert(param.clone(), "Chicago".to_string());
        b.iter(|| black_box(source.submit(&params)));
    });

    // full matching over enriched attributes — the first bar of Fig. 8
    let acq = p.acquire(Components::ALL, &cfg).expect("acquisition");
    let attrs = p.enriched_attributes(&acq);
    group.bench_function("matching_enriched", |b| {
        b.iter(|| black_box(p.match_and_evaluate(&attrs, &MatchConfig::default())));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_components
}
criterion_main!(benches);
