//! Tracing overhead on the fig-6 workload: full-domain acquisition (all
//! three WebIQ components) under the three tracer modes —
//!
//!   * `disabled` — the default [`WebIQConfig`]: spans are never
//!     buffered, only the always-on thread-local counters run. This is
//!     the path every non-traced caller pays.
//!   * `noop`     — tracer enabled, events buffered and merged, then
//!     discarded by the sink. Isolates the span-buffering cost.
//!   * `jsonl`    — tracer enabled with the JSONL sink writing to
//!     `std::io::sink()`. Adds serialization but no real I/O.
//!
//! Each (domain, mode) pair is measured [`REPS`] times on a freshly
//! built pipeline (cold engine caches, like `scaling_threads`) with a
//! single worker thread — scheduler jitter from the parallel executor
//! would otherwise drown the sub-percent effect being measured — and
//! the median is kept. Emits `BENCH_trace_overhead.json` next to the
//! workspace root.
//!
//! End-to-end timing at this workload size carries a few percent of
//! run-to-run jitter, so the headline "<1% when disabled" claim is
//! pinned by an analytic bound instead: the per-op cost of the
//! disabled-path primitives (`span` + counter `incr`) is measured in a
//! tight loop, multiplied by an over-count of the instrumentation ops a
//! real run executes (every counter increment plus every span event),
//! and expressed as a share of the measured run time. That bound is
//! reported as `instrumentation_bound_pct` and is well under 1%.

use webiq::core::{Components, WebIQConfig};
use webiq::pipeline::DomainPipeline;
use webiq::trace::Tracer;
use webiq_bench::experiments::SEED;
use webiq_bench::json::{obj, Json};
use webiq_bench::timing::{fmt_time, time_once};

const OUT_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../BENCH_trace_overhead.json"
);
const REPS: usize = 5;
const KEYS: [&str; 5] = ["airfare", "auto", "book", "job", "realestate"];
const MODES: [&str; 3] = ["disabled", "noop", "jsonl"];

fn tracer_for(mode: &str) -> Tracer {
    match mode {
        "noop" => Tracer::noop(),
        "jsonl" => Tracer::jsonl(Box::new(std::io::sink())),
        _ => Tracer::disabled(),
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Median wall-clock of a full acquisition for one (domain, mode) pair.
fn run_mode(key: &'static str, mode: &str) -> f64 {
    let mut times = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        // fresh pipeline per rep: cold engine caches, so every rep and
        // every mode pays the identical workload
        let p = DomainPipeline::build(key, SEED).expect("domain");
        let cfg = WebIQConfig {
            tracer: tracer_for(mode),
            threads: Some(1),
            ..WebIQConfig::default()
        };
        let (_, secs) = time_once(|| p.acquire(Components::ALL, &cfg).expect("acquisition"));
        cfg.tracer.flush();
        times.push(secs);
    }
    median(times)
}

const OP_REPS: u64 = 1_000_000;

/// Per-op cost (ns) of an always-on counter increment.
fn incr_ns() -> f64 {
    let (_, secs) = time_once(|| {
        for _ in 0..OP_REPS {
            webiq::trace::incr(webiq::trace::Counter::AttrsTotal);
        }
        webiq::trace::snapshot()
    });
    secs * 1e9 / OP_REPS as f64
}

/// Per-op cost (ns) of an ambient span guard on the disabled path (no
/// item buffer active, so open and close both short-circuit).
fn span_ns() -> f64 {
    let (_, secs) = time_once(|| {
        let mut n = 0u64;
        for _ in 0..OP_REPS {
            let _s = webiq::trace::span("bench");
            n = n.wrapping_add(1);
        }
        n
    });
    secs * 1e9 / OP_REPS as f64
}

/// Over-count of the instrumentation ops one acquisition executes:
/// every counter unit (bulk `add`s over-count as one op per unit) and
/// every emitted span event (two per guard, each charged a full guard).
fn ops_per_run(key: &'static str) -> (u64, u64) {
    let p = DomainPipeline::build(key, SEED).expect("domain");
    let (tracer, handle) = Tracer::memory();
    let cfg = WebIQConfig {
        tracer: tracer.clone(),
        threads: Some(1),
        ..WebIQConfig::default()
    };
    p.acquire(Components::ALL, &cfg).expect("acquisition");
    let counter_units: u64 = tracer
        .totals()
        .counters
        .nonzero()
        .iter()
        .map(|(_, v)| v)
        .sum();
    (counter_units, handle.events().len() as u64)
}

fn main() {
    let mut domain_objs = Vec::new();
    let mut totals = [0.0f64; 3];

    let (incr, span) = (incr_ns(), span_ns());
    let mut bound_pct_max = 0.0f64;
    println!(
        "trace_overhead: disabled-path op costs — counter incr {incr:.1} ns, span guard {span:.1} ns"
    );

    for key in KEYS {
        let mut secs = [0.0f64; 3];
        for (i, mode) in MODES.iter().enumerate() {
            secs[i] = run_mode(key, mode);
            totals[i] += secs[i];
        }
        let rel = |i: usize| 100.0 * (secs[i] - secs[0]) / secs[0];
        let (counter_units, span_events) = ops_per_run(key);
        let bound_pct =
            100.0 * (counter_units as f64 * incr + span_events as f64 * span) / (secs[0] * 1e9);
        bound_pct_max = bound_pct_max.max(bound_pct);
        println!(
            "trace_overhead/{key:<11} disabled {:>10}   noop {:>10} ({:>+6.2}%)   jsonl {:>10} ({:>+6.2}%)   \
             {counter_units} incrs + {span_events} span events -> bound {bound_pct:.3}%",
            fmt_time(secs[0]),
            fmt_time(secs[1]),
            rel(1),
            fmt_time(secs[2]),
            rel(2),
        );
        domain_objs.push(obj([
            ("key", key.into()),
            ("disabled_secs", secs[0].into()),
            ("noop_secs", secs[1].into()),
            ("jsonl_secs", secs[2].into()),
            ("noop_overhead_pct", rel(1).into()),
            ("jsonl_overhead_pct", rel(2).into()),
            ("counter_units", counter_units.into()),
            ("span_events", span_events.into()),
            ("instrumentation_bound_pct", bound_pct.into()),
        ]));
    }

    let noop_pct = 100.0 * (totals[1] - totals[0]) / totals[0];
    let jsonl_pct = 100.0 * (totals[2] - totals[0]) / totals[0];
    let report = obj([
        ("seed", SEED.into()),
        ("reps", REPS.into()),
        (
            "workload",
            "full acquisition, all components, five domains".into(),
        ),
        ("domains", Json::Arr(domain_objs)),
        (
            "summary",
            obj([
                ("disabled_secs", totals[0].into()),
                ("noop_secs", totals[1].into()),
                ("jsonl_secs", totals[2].into()),
                ("noop_overhead_pct", noop_pct.into()),
                ("jsonl_overhead_pct", jsonl_pct.into()),
                ("incr_ns", incr.into()),
                ("span_ns", span.into()),
                ("instrumentation_bound_pct_max", bound_pct_max.into()),
                ("disabled_overhead_under_1pct", (bound_pct_max < 1.0).into()),
            ]),
        ),
    ]);
    std::fs::write(OUT_PATH, report.pretty() + "\n").expect("write BENCH_trace_overhead.json");
    println!(
        "total: disabled {} | noop {} ({noop_pct:+.2}%) | jsonl {} ({jsonl_pct:+.2}%)\n\
         disabled-tracer instrumentation bound: {bound_pct_max:.3}% worst domain (<1% target); wrote {OUT_PATH}",
        fmt_time(totals[0]),
        fmt_time(totals[1]),
        fmt_time(totals[2]),
    );
}
