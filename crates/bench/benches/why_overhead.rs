//! Decision-provenance overhead on the fig-6 workload: the cost of
//! `webiq-why` evidence recording, pinned by an analytic bound.
//!
//! Recording a decision is one thread-local borrow plus a buffer push;
//! when no traced item is installed it is the borrow alone. End-to-end
//! A/B timing cannot resolve costs that small against run-to-run
//! jitter, so as in `prof_overhead` the "<1%" claim is an analytic
//! bound: measure the per-op cost of an enabled record (inside a traced
//! item, four evidence terms) and of the disabled no-op in tight loops,
//! count how many decisions a real single-threaded traced acquisition +
//! matching pass records, and express the product as a share of that
//! run's wall-clock. Emits `BENCH_why_overhead.json` next to the
//! workspace root.

use webiq::core::{Components, WebIQConfig};
use webiq::matcher::MatchConfig;
use webiq::pipeline::{DomainPipeline, THRESHOLD};
use webiq::trace::{SharedBuf, Tracer};
use webiq_bench::experiments::SEED;
use webiq_bench::json::{obj, Json};
use webiq_bench::timing::{black_box, fmt_time, time_once};

const OUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_why_overhead.json");
const REPS: usize = 5;
const KEYS: [&str; 5] = ["airfare", "auto", "book", "job", "realestate"];

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

const OP_REPS: u64 = 50_000;

/// Per-op cost (ns) of one enabled decision record: a traced item is
/// installed, four evidence terms are copied into the item buffer.
fn record_ns() -> f64 {
    let (tracer, _handle) = Tracer::memory();
    let item = tracer.item("attribute", "bench");
    let (_, secs) = time_once(|| {
        for _ in 0..OP_REPS {
            webiq::why::record::instance_validate(
                black_box("candidate"),
                true,
                &[
                    ("joint_0", 17.0),
                    ("vhits_0", 120.0),
                    ("xhits_0", 350.0),
                    ("pmi_0", 0.0004),
                ],
            );
        }
    });
    tracer.submit(item.finish());
    secs * 1e9 / OP_REPS as f64
}

/// Per-op cost (ns) of the disabled path: no traced item installed, the
/// record is one thread-local borrow and returns.
fn noop_ns() -> f64 {
    let (_, secs) = time_once(|| {
        for _ in 0..OP_REPS {
            webiq::why::record::instance_validate(
                black_box("candidate"),
                true,
                &[
                    ("joint_0", 17.0),
                    ("vhits_0", 120.0),
                    ("xhits_0", 350.0),
                    ("pmi_0", 0.0004),
                ],
            );
        }
    });
    secs * 1e9 / OP_REPS as f64
}

/// One traced single-threaded acquisition + matching pass: median
/// wall-clock over `REPS`, plus the number of decisions it records
/// (identical every rep — the decision stream is deterministic).
fn run_domain(key: &'static str) -> (f64, u64) {
    let mut times = Vec::with_capacity(REPS);
    let mut decisions = 0u64;
    for _ in 0..REPS {
        // fresh pipeline per rep: cold engine caches, so every rep pays
        // the identical workload
        let p = DomainPipeline::build(key, SEED).expect("domain");
        let buf = SharedBuf::new();
        let tracer = Tracer::jsonl(Box::new(buf.clone()));
        let cfg = WebIQConfig {
            threads: Some(1),
            tracer: tracer.clone(),
            ..WebIQConfig::default()
        };
        let (_, secs) = time_once(|| {
            let acq = p.acquire(Components::ALL, &cfg).expect("acquisition");
            let attrs = p.enriched_attributes(&acq);
            p.match_and_evaluate_traced(&attrs, &MatchConfig::with_threshold(THRESHOLD), &tracer);
        });
        tracer.flush();
        times.push(secs);
        decisions = buf
            .contents_string()
            .lines()
            .filter(|l| l.starts_with("{\"ev\":\"decision\""))
            .count() as u64;
    }
    (median(times), decisions)
}

fn main() {
    let record = record_ns();
    let noop = noop_ns();
    println!("why_overhead: enabled record {record:.1} ns/op, disabled no-op {noop:.1} ns/op");

    let mut domain_objs = Vec::new();
    let mut wall_total = 0.0f64;
    let mut bound_pct_max = 0.0f64;

    for key in KEYS {
        let (wall, decisions) = run_domain(key);
        wall_total += wall;
        let bound_pct = 100.0 * (decisions as f64 * record) / (wall * 1e9);
        let noop_pct = 100.0 * (decisions as f64 * noop) / (wall * 1e9);
        bound_pct_max = bound_pct_max.max(bound_pct);
        println!(
            "why_overhead/{key:<11} wall {:>10}   {decisions} decisions -> enabled bound {bound_pct:.4}% (disabled {noop_pct:.5}%)",
            fmt_time(wall),
        );
        domain_objs.push(obj([
            ("key", key.into()),
            ("wall_secs", wall.into()),
            ("decisions", decisions.into()),
            ("why_bound_pct", bound_pct.into()),
            ("why_noop_pct", noop_pct.into()),
        ]));
    }

    let report = obj([
        ("seed", SEED.into()),
        ("reps", REPS.into()),
        (
            "workload",
            "traced acquisition + matching, all components, five domains, 1 thread".into(),
        ),
        ("record_ns", record.into()),
        ("noop_ns", noop.into()),
        ("domains", Json::Arr(domain_objs)),
        (
            "summary",
            obj([
                ("wall_secs", wall_total.into()),
                ("why_bound_pct_max", bound_pct_max.into()),
                ("why_overhead_under_1pct", (bound_pct_max < 1.0).into()),
            ]),
        ),
    ]);
    std::fs::write(OUT_PATH, report.pretty() + "\n").expect("write BENCH_why_overhead.json");
    println!(
        "decision-recording bound: {bound_pct_max:.4}% worst domain (<1% target); wrote {OUT_PATH}"
    );
}
