//! Parallel-acquisition scaling: full-domain acquisition (all three WebIQ
//! components) swept over 1/2/4/8 worker threads, one cold run per
//! configuration on a freshly built pipeline so every measurement pays the
//! same cache-empty cost. Emits `BENCH_parallel.json` next to the
//! workspace root with wall-clock per domain, queries served, and the
//! engine cache hit-rate, alongside the printed summary.
//!
//! Acquisition against the real Web is I/O-bound: the paper cites
//! 0.1-0.5 s of retrieval latency per Google query, dwarfing local
//! compute. To measure what the parallel executor buys in that regime,
//! each cache-missing engine query is charged a simulated round-trip of
//! [`LATENCY_US`] (a 1:300 scale-down of the paper's 0.3 s); cache hits
//! stay free, exactly as a local snippet cache would behave. Workers
//! overlap the round-trips, so wall-clock improves with the thread count
//! even though results are byte-identical.

use webiq::core::{Components, WebIQConfig};
use webiq::pipeline::DomainPipeline;
use webiq_bench::experiments::SEED;
use webiq_bench::json::{obj, Json};
use webiq_bench::timing::{fmt_time, time_once};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const OUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
/// Simulated round-trip per cache-missing query (1 ms = the paper's 0.3 s
/// per query scaled 1:300 to keep the sweep short).
const LATENCY_US: u64 = 1000;

struct Run {
    threads: usize,
    secs: f64,
    queries: u64,
    cache_hit_rate: f64,
}

fn run_domain(key: &'static str) -> (Vec<Run>, &'static str) {
    let mut runs = Vec::new();
    let mut display = "";
    for threads in THREAD_COUNTS {
        // a fresh pipeline per configuration: acquisition must start from
        // cold engine caches or later configurations would measure cache
        // warmth rather than parallelism
        let p = DomainPipeline::build(key, SEED).expect("domain");
        p.engine.set_simulated_latency_us(LATENCY_US);
        display = p.def.display;
        let cfg = WebIQConfig {
            threads: Some(threads),
            ..WebIQConfig::default()
        };
        let (acq, secs) = time_once(|| p.acquire(Components::ALL, &cfg).expect("acquisition"));
        let queries = p.engine.stats().total_issued() + acq.report.attr_deep_cost.probes;
        let cache_hit_rate = p.engine.stats().cache_hit_rate();
        println!(
            "scaling_threads/{key:<11} {threads} thread(s): {:>10}   {queries} queries   \
             cache hit-rate {:.1}%",
            fmt_time(secs),
            100.0 * cache_hit_rate,
        );
        runs.push(Run {
            threads,
            secs,
            queries,
            cache_hit_rate,
        });
    }
    (runs, display)
}

fn secs_at(runs: &[Run], threads: usize) -> f64 {
    runs.iter()
        .find(|r| r.threads == threads)
        .map_or(f64::NAN, |r| r.secs)
}

fn main() {
    let keys: [&'static str; 5] = ["airfare", "auto", "book", "job", "realestate"];
    let mut domain_objs = Vec::new();
    let mut total_1t = 0.0;
    let mut total_4t = 0.0;

    for key in keys {
        let (runs, display) = run_domain(key);
        let (t1, t4) = (secs_at(&runs, 1), secs_at(&runs, 4));
        total_1t += t1;
        total_4t += t4;
        println!(
            "scaling_threads/{key:<11} speedup at 4 threads: {:.2}x\n",
            t1 / t4
        );
        domain_objs.push(obj([
            ("domain", display.into()),
            ("key", key.into()),
            (
                "runs",
                Json::Arr(
                    runs.iter()
                        .map(|r| {
                            obj([
                                ("threads", r.threads.into()),
                                ("secs", r.secs.into()),
                                ("queries", r.queries.into()),
                                ("cache_hit_rate", r.cache_hit_rate.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("speedup_4t", (t1 / t4).into()),
        ]));
    }

    let report = obj([
        ("seed", SEED.into()),
        (
            "thread_counts",
            Json::Arr(THREAD_COUNTS.iter().map(|&t| t.into()).collect()),
        ),
        ("domains", Json::Arr(domain_objs)),
        (
            "summary",
            obj([
                ("total_secs_1t", total_1t.into()),
                ("total_secs_4t", total_4t.into()),
                ("speedup_4t", (total_1t / total_4t).into()),
            ]),
        ),
    ]);
    std::fs::write(OUT_PATH, report.pretty() + "\n").expect("write BENCH_parallel.json");
    println!(
        "total: {} (1 thread) -> {} (4 threads), {:.2}x; wrote {OUT_PATH}",
        fmt_time(total_1t),
        fmt_time(total_4t),
        total_1t / total_4t,
    );
}
