//! Figure 7 pipeline benchmark: acquisition cost as components are
//! consecutively enabled (the axis of the component-contribution figure).

use webiq::core::{Components, WebIQConfig};
use webiq::pipeline::DomainPipeline;
use webiq_bench::timing::{black_box, Criterion};
use webiq_bench::{criterion_group, criterion_main};

fn bench_components(c: &mut Criterion) {
    let p = DomainPipeline::build("auto", 0x1ce0).expect("domain");
    let cfg = WebIQConfig::default();
    let stages: [(&str, Components); 3] = [
        ("surface", Components::SURFACE),
        ("surface_deep", Components::SURFACE_DEEP),
        ("all", Components::ALL),
    ];
    let mut group = c.benchmark_group("fig7/auto");
    group.sample_size(10);
    for (name, components) in stages {
        group.bench_function(name, |b| {
            b.iter(|| black_box(p.acquire(components, &cfg).expect("acquisition")));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_components
}
criterion_main!(benches);
