//! Analyzer wall-clock for the webiq-flow passes: how long the
//! cross-crate flow analysis (walk + parse + call-graph + three passes)
//! takes over the real workspace, broken into its stages. The analyzer
//! runs in CI on every push, so its cost is a budget worth pinning —
//! a regression here means the parser or resolution grew superlinear.
//!
//! Each stage is measured [`REPS`] times and the median kept. Emits
//! `BENCH_flow.json` next to the workspace root.

use webiq_bench::json::obj;
use webiq_bench::timing::{fmt_time, time_once};
use webiq_lint::flow;
use webiq_lint::graph::{self, ParsedSource};
use webiq_lint::{parse, walk, Scope};

const OUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_flow.json");
const REPS: usize = 7;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn measure(f: impl Fn()) -> f64 {
    let mut times = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let ((), secs) = time_once(&f);
        times.push(secs);
    }
    median(times)
}

fn main() {
    let root = walk::find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");

    // stage inputs, computed once so each stage is timed in isolation
    let files = walk::workspace_sources(&root).expect("walk workspace");
    let closure = graph::dep_closure(&root);
    let sources: Vec<ParsedSource> = files
        .iter()
        .map(|f| ParsedSource {
            rel: f.rel.clone(),
            crate_name: f.crate_name.clone(),
            is_bin: f.is_bin,
            parsed: parse::parse_file(&f.text),
        })
        .collect();

    let walk_secs = measure(|| {
        let fs = walk::workspace_sources(&root).expect("walk");
        assert!(!fs.is_empty());
    });
    let parse_secs = measure(|| {
        for f in &files {
            let p = parse::parse_file(&f.text);
            std::hint::black_box(&p);
        }
    });
    let graph_secs = measure(|| {
        let g = graph::build(&sources, &closure);
        std::hint::black_box(g.nodes.len());
    });
    let full_secs = measure(|| {
        let r = flow::analyze_files(&files, &closure, &Scope::default());
        assert!(r.violations.is_empty());
    });
    let end_to_end_secs = measure(|| {
        let r = flow::flow_workspace(&root).expect("flow");
        assert!(r.violations.is_empty());
    });

    let report = flow::flow_workspace(&root).expect("flow");
    println!(
        "flow_overhead: walk {} | parse {} | graph {} | analyze {} | end-to-end {}  \
         ({} files, {} fns, {} edges)",
        fmt_time(walk_secs),
        fmt_time(parse_secs),
        fmt_time(graph_secs),
        fmt_time(full_secs),
        fmt_time(end_to_end_secs),
        report.stats.files,
        report.stats.functions,
        report.stats.edges,
    );

    let out = obj([
        ("reps", REPS.into()),
        ("files", report.stats.files.into()),
        ("functions", report.stats.functions.into()),
        ("edges", report.stats.edges.into()),
        ("walk_secs", walk_secs.into()),
        ("parse_secs", parse_secs.into()),
        ("graph_secs", graph_secs.into()),
        ("analyze_secs", full_secs.into()),
        ("end_to_end_secs", end_to_end_secs.into()),
    ]);
    std::fs::write(OUT_PATH, out.pretty() + "\n").expect("write BENCH_flow.json");
    println!("wrote {OUT_PATH}");
}
