//! Ablation benchmarks for the design choices DESIGN.md §5 calls out:
//! the two-phase verification (outlier removal before Web validation),
//! PMI vs. raw hit counts, and the borrow pre-filters. These time the
//! *cost* side of each choice; the `experiments ablations` binary reports
//! the accuracy side.

use webiq::core::{surface, Components, DomainInfo, WebIQConfig};
use webiq::pipeline::DomainPipeline;
use webiq_bench::timing::{black_box, Criterion};
use webiq_bench::{criterion_group, criterion_main};

fn bench_surface_ablations(c: &mut Criterion) {
    let p = DomainPipeline::build("auto", 0x1ce0).expect("domain");
    let info = DomainInfo {
        object: p.def.object.to_string(),
        domain_terms: p
            .def
            .domain_terms
            .iter()
            .map(|s| (*s).to_string())
            .collect(),
        sibling_terms: Vec::new(),
    };
    let variants: [(&str, WebIQConfig); 3] = [
        ("default", WebIQConfig::default()),
        (
            "no_outlier_phase",
            WebIQConfig {
                outlier_phase: false,
                ..WebIQConfig::default()
            },
        ),
        (
            "raw_hits",
            WebIQConfig {
                use_pmi: false,
                ..WebIQConfig::default()
            },
        ),
    ];
    let mut group = c.benchmark_group("ablation/surface_discover");
    group.sample_size(10);
    for (name, cfg) in &variants {
        group.bench_function(*name, |b| {
            b.iter(|| black_box(surface::discover(&p.engine, "Make", &info, cfg)));
        });
    }
    group.finish();
}

fn bench_prefilter_ablation(c: &mut Criterion) {
    let p = DomainPipeline::build("auto", 0x1ce0).expect("domain");
    let variants: [(&str, WebIQConfig); 2] = [
        ("prefilter_on", WebIQConfig::default()),
        (
            "prefilter_off",
            WebIQConfig {
                borrow_prefilter: false,
                ..WebIQConfig::default()
            },
        ),
    ];
    let mut group = c.benchmark_group("ablation/borrowing");
    group.sample_size(10);
    for (name, cfg) in &variants {
        group.bench_function(*name, |b| {
            b.iter(|| black_box(p.acquire(Components::ALL, cfg).expect("acquisition")));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_surface_ablations, bench_prefilter_ablation
}
criterion_main!(benches);
