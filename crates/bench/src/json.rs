//! A minimal JSON value model and pretty-printer for the experiment
//! artifacts (`--json` output and `BENCH_parallel.json`). Dependency-free
//! on purpose: the repo builds offline, so the usual serde stack is not
//! available.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (kept apart from floats so counters print exactly).
    Int(i64),
    /// A float; non-finite values render as `null` per RFC 8259.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        i64::try_from(v).map_or(Json::Num(v as f64), Json::Int)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::from(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

/// Build an object from `(key, value)` pairs, preserving order.
pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Types that know their JSON representation (the experiment row structs).
pub trait ToJson {
    /// Convert to a [`Json`] value.
    fn to_json(&self) -> Json;
}

/// Serialise a slice of rows to a JSON array.
pub fn rows<T: ToJson>(rows: &[T]) -> Json {
    Json::Arr(rows.iter().map(ToJson::to_json).collect())
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's shortest round-trip form is valid JSON, except that whole
        // floats print without a dot; add one so readers that distinguish
        // int from float see what was meant.
        let s = format!("{v}");
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

impl Json {
    fn write_into(&self, out: &mut String, indent: usize) {
        const PAD: &str = "  ";
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(v) => number(out, *v),
            Json::Str(s) => escape_into(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&PAD.repeat(indent + 1));
                    item.write_into(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&PAD.repeat(indent));
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&PAD.repeat(indent + 1));
                    escape_into(out, k);
                    out.push_str(": ");
                    v.write_into(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&PAD.repeat(indent));
                out.push('}');
            }
        }
    }

    /// Pretty-print with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out, 0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.pretty(), "null");
        assert_eq!(Json::Bool(true).pretty(), "true");
        assert_eq!(Json::Int(-7).pretty(), "-7");
        assert_eq!(Json::from(2.5).pretty(), "2.5");
        assert_eq!(Json::from(f64::NAN).pretty(), "null");
        assert_eq!(Json::from("a\"b\nc").pretty(), "\"a\\\"b\\nc\"");
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(Json::from(3.0).pretty(), "3.0");
        assert_eq!(Json::from(-10.0).pretty(), "-10.0");
        assert_eq!(Json::from(0.0).pretty(), "0.0");
    }

    #[test]
    fn nested_structure_renders() {
        let v = obj([
            ("name", Json::from("x")),
            ("runs", Json::from(vec![1i64, 2, 3])),
            ("empty", Json::Arr(Vec::new())),
            ("inner", obj([("ok", Json::from(true))])),
        ]);
        let s = v.pretty();
        assert!(s.starts_with("{\n  \"name\": \"x\""));
        assert!(s.contains("\"runs\": [\n    1,\n    2,\n    3\n  ]"));
        assert!(s.contains("\"empty\": []"));
        assert!(s.contains("\"inner\": {\n    \"ok\": true\n  }"));
    }

    #[test]
    fn control_chars_escape_as_unicode() {
        assert_eq!(Json::from("\u{1}").pretty(), "\"\\u0001\"");
    }

    #[test]
    fn big_u64_degrades_to_float() {
        // beyond i64: still serialises (as a float) rather than panicking
        let v = Json::from(u64::MAX);
        assert!(matches!(v, Json::Num(_)));
    }
}
