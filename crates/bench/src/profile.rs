//! The `profile` experiment: a thread-count sweep with full performance
//! attribution.
//!
//! For each worker count the sweep resets the process-wide profiling
//! registry ([`webiq::prof`]), runs a traced acquisition of every
//! domain, and records the wall-clock plus the registry's delta —
//! per-stage timings, lock contention, cache traffic, worker balance.
//! The points are serialized as `PROF_BASELINE.json` (the schema
//! [`webiq::obs::profile::parse_baseline`] reads) and rendered through
//! the same code path `webiq-report profile` uses, so the printed
//! report and the committed artifact can never drift apart.
//!
//! The sweep runs in the same regime as the `scaling_threads` bench
//! that produced `BENCH_parallel.json` — each cache-missing engine
//! query is charged a simulated round-trip of [`LATENCY_US`] — because
//! that is the curve whose losses this diagnosis exists to attribute:
//! real acquisition is I/O-bound, and workers buy their speedup by
//! overlapping round-trips.
//!
//! The sweep also re-checks the workspace's core determinism contract
//! from the best vantage point there is: the JSONL trace bytes of every
//! thread count are compared, and [`ProfileOutcome::deterministic`] is
//! only true when all of them are identical — always-on profiling must
//! not perturb the deterministic plane.

use webiq::core::{Components, WebIQConfig};
use webiq::obs::profile::{parse_baseline, render_profile};
use webiq::obs::ScalingFit;
use webiq::pipeline::DomainPipeline;
use webiq::prof::{ProfCounter, Stage};
use webiq::trace::{SharedBuf, Tracer};

use crate::json::{obj, Json};
use crate::timing::time_once;

/// Domains the full sweep acquires (the fig-6 workload).
pub const DOMAINS: [&str; 5] = ["airfare", "auto", "book", "job", "realestate"];

/// Domains the `--quick` sweep acquires.
pub const QUICK_DOMAINS: [&str; 1] = ["book"];

/// Worker counts of the full sweep — the BENCH_parallel grid.
pub const FULL_THREADS: [usize; 4] = [1, 2, 4, 8];

/// Worker counts of the `--quick` sweep (still enough for a fit: a
/// 1-thread baseline plus one parallel point).
pub const QUICK_THREADS: [usize; 2] = [1, 2];

/// Simulated round-trip per cache-missing engine query — the same
/// 1:300 scale-down of the paper's ~0.3 s Google latency the
/// `scaling_threads` bench uses, so the fitted curve is the
/// `BENCH_parallel.json` regime.
pub const LATENCY_US: u64 = 1000;

/// Everything one profile sweep produced.
#[derive(Debug)]
pub struct ProfileOutcome {
    /// The `PROF_BASELINE.json` document (pretty-printed, trailing
    /// newline included).
    pub baseline_json: String,
    /// The rendered attribution + scaling report.
    pub report: String,
    /// True when the JSONL trace bytes were identical at every thread
    /// count — the determinism contract held under profiling.
    pub deterministic: bool,
    /// The fit's dominant scaling limiter, when the sweep supports a
    /// fit.
    pub limiter: Option<String>,
}

/// Run the sweep: every domain at every worker count, profiling deltas
/// per point.
///
/// # Errors
///
/// Returns the pipeline's error string when a domain is unknown or
/// acquisition fails, and a schema error if the emitted baseline fails
/// to re-parse (a bug, but one this harness must surface rather than
/// commit).
pub fn sweep(domains: &[&str], seed: u64, threads: &[usize]) -> Result<ProfileOutcome, String> {
    let mut points: Vec<Json> = Vec::new();
    let mut reference_trace: Option<String> = None;
    let mut deterministic = true;

    for &t in threads {
        // Build the pipelines (dataset, corpus, engine) outside the
        // timed region: construction is inherently serial and identical
        // at every worker count, so timing it would drown the very
        // scaling signal the sweep exists to measure. Fresh pipelines
        // per point keep the engine caches cold, so every point pays
        // the identical workload.
        let mut pipelines = Vec::with_capacity(domains.len());
        for d in domains {
            let p = DomainPipeline::build(d, seed).map_err(|e| e.to_string())?;
            p.engine.set_simulated_latency_us(LATENCY_US);
            pipelines.push(p);
        }
        // The registry is process-global: start the point from zero so
        // its snapshot is this run's delta.
        webiq::prof::reset();
        let buf = SharedBuf::new();
        let tracer = Tracer::jsonl(Box::new(buf.clone()));
        let (result, wall_secs) = time_once(|| -> Result<(), String> {
            for p in &pipelines {
                let cfg = WebIQConfig {
                    threads: Some(t),
                    tracer: tracer.clone(),
                    ..WebIQConfig::default()
                };
                p.acquire(Components::ALL, &cfg)
                    .map_err(|e| e.to_string())?;
            }
            Ok(())
        });
        result?;
        tracer.flush();
        let prof = webiq::prof::snapshot();

        let trace = buf.contents_string();
        match &reference_trace {
            Some(r) => deterministic = deterministic && trace == *r,
            None => reference_trace = Some(trace),
        }

        let counters: Vec<(String, Json)> = ProfCounter::ALL
            .iter()
            .map(|&c| (c.name().to_string(), Json::from(prof.get(c))))
            .collect();
        let stages: Vec<(String, Json)> = Stage::ALL
            .iter()
            .map(|&s| {
                (
                    s.name().to_string(),
                    obj([
                        ("nanos", Json::from(prof.stage_nanos(s))),
                        ("calls", Json::from(prof.stage_calls(s))),
                    ]),
                )
            })
            .collect();
        points.push(Json::Obj(vec![
            ("threads".to_string(), Json::from(t)),
            ("wall_secs".to_string(), Json::from(wall_secs)),
            ("counters".to_string(), Json::Obj(counters)),
            ("stages".to_string(), Json::Obj(stages)),
        ]));
    }

    let baseline = obj([
        ("schema", Json::from("webiq-prof-baseline/v1")),
        ("seed", Json::from(seed)),
        (
            "domains",
            Json::Arr(domains.iter().map(|&d| Json::from(d)).collect()),
        ),
        ("deterministic_trace", Json::from(deterministic)),
        ("sweep", Json::Arr(points)),
    ]);
    let baseline_json = baseline.pretty() + "\n";

    // Round-trip through the exact reader the CLI uses: the printed
    // report is what `webiq-report profile PROF_BASELINE.json` prints.
    let parsed = parse_baseline("PROF_BASELINE.json", &baseline_json).map_err(|e| e.to_string())?;
    let report = render_profile(&parsed);
    let limiter = ScalingFit::fit(&parsed.sweep).map(|f| f.limiter.to_string());

    Ok(ProfileOutcome {
        baseline_json,
        report,
        deterministic,
        limiter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::SEED;

    #[test]
    fn quick_sweep_is_deterministic_and_diagnoses() {
        let out = sweep(&QUICK_DOMAINS, SEED, &QUICK_THREADS).expect("sweep");
        assert!(
            out.deterministic,
            "trace bytes must be identical across thread counts"
        );
        // The baseline re-parses through the CLI reader and fits.
        assert!(out.limiter.is_some(), "1+2 threads is enough for a fit");
        assert!(out.baseline_json.contains("\"webiq-prof-baseline/v1\""));
        assert!(out.report.contains("dominant limiter:"));
        assert!(out.report.contains("attribution at 2 thread(s)"));
        // The sweep actually profiled something: the serialized top
        // point carries nonzero worker accounting.
        let parsed = parse_baseline("t", &out.baseline_json).expect("reparse");
        let top = parsed.sweep.last().expect("points");
        assert!(top.prof.get(ProfCounter::WorkerItems) > 0);
        assert!(top.prof.stage_calls(Stage::Extract) > 0);
    }

    #[test]
    fn unknown_domain_is_an_error() {
        assert!(sweep(&["nope"], SEED, &[1]).is_err());
    }
}
