//! The §6 experiments: Table 1, Figures 6–8, and the design-choice
//! ablations.

use std::time::Instant;

use webiq::core::{Components, WebIQConfig};

use crate::json::{obj, Json, ToJson};
use webiq::data::stats::characteristics;
use webiq::data::{kb, Dataset, DomainDef};
use webiq::matcher::MatchConfig;
use webiq::pipeline::{DomainPipeline, THRESHOLD};

/// Default experiment seed (all experiments are deterministic in it).
pub const SEED: u64 = 0x1ce0;

/// Run `f` over the five domains in parallel (each domain's pipeline is
/// independent; results come back in the paper's domain order).
fn par_domains<T, F>(f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&'static DomainDef) -> T + Sync,
{
    let domains = kb::all_domains();
    std::thread::scope(|scope| {
        let handles: Vec<_> = domains
            .into_iter()
            .map(|def| scope.spawn(|| f(def)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("domain worker panicked"))
            .collect()
    })
}

/// Nominal per-query round-trip latency to a 2006 search engine, used to
/// express query counts on the paper's Fig.-8 time scale ("typical
/// retrieval time from Google for one query is 0.1–0.5 second").
pub const SIMULATED_QUERY_SECS: f64 = 0.3;

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Domain display name.
    pub domain: &'static str,
    /// Column 2: average number of attributes per interface.
    pub avg_attrs: f64,
    /// Column 3: % interfaces containing attributes without instances.
    pub int_no_inst: f64,
    /// Column 4: % attributes without instances (in those interfaces).
    pub attr_no_inst: f64,
    /// Column 5: % of instance-less attributes with instances expected on
    /// the Web.
    pub exp_inst: f64,
    /// Column 6: acquisition success rate, Surface only.
    pub surface: f64,
    /// Column 7: acquisition success rate, Surface + Deep borrowing.
    pub surface_deep: f64,
}

/// Regenerate Table 1.
pub fn table1(seed: u64) -> Vec<Table1Row> {
    par_domains(|def| {
        let p = DomainPipeline::from_def(def, seed).expect("pipeline");
        let c = characteristics(&p.dataset, def);
        let cfg = WebIQConfig::default();
        let surface_only = p.acquire(Components::SURFACE, &cfg).expect("acquisition");
        let with_deep = p
            .acquire(Components::SURFACE_DEEP, &cfg)
            .expect("acquisition");
        Table1Row {
            domain: def.display,
            avg_attrs: c.avg_attrs,
            int_no_inst: c.pct_interfaces_no_inst,
            attr_no_inst: c.pct_attrs_no_inst,
            exp_inst: c.pct_expected_on_web,
            surface: surface_only.report.surface_success_rate(),
            surface_deep: with_deep.report.surface_deep_success_rate(),
        }
    })
}

/// One row of Figure 6 (matching accuracy, F-1 %).
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Domain display name.
    pub domain: &'static str,
    /// IceQ baseline.
    pub baseline: f64,
    /// IceQ + WebIQ (τ = 0).
    pub webiq: f64,
    /// IceQ + WebIQ + thresholding.
    pub webiq_threshold: f64,
}

/// Regenerate Figure 6.
pub fn fig6(seed: u64) -> Vec<Fig6Row> {
    par_domains(|def| {
        let p = DomainPipeline::from_def(def, seed).expect("pipeline");
        Fig6Row {
            domain: def.display,
            baseline: p.baseline_f1().f1_pct(),
            webiq: p
                .webiq_f1(Components::ALL, 0.0)
                .expect("acquisition")
                .f1_pct(),
            webiq_threshold: p
                .webiq_f1(Components::ALL, THRESHOLD)
                .expect("acquisition")
                .f1_pct(),
        }
    })
}

/// One row of Figure 7 (component contributions, F-1 %).
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Domain display name.
    pub domain: &'static str,
    /// IceQ baseline.
    pub baseline: f64,
    /// + Surface.
    pub surface: f64,
    /// + Surface + Attr-Deep.
    pub surface_deep: f64,
    /// + Surface + Attr-Deep + Attr-Surface (full WebIQ).
    pub all: f64,
}

/// Regenerate Figure 7.
pub fn fig7(seed: u64) -> Vec<Fig7Row> {
    par_domains(|def| {
        let p = DomainPipeline::from_def(def, seed).expect("pipeline");
        Fig7Row {
            domain: def.display,
            baseline: p.baseline_f1().f1_pct(),
            surface: p
                .webiq_f1(Components::SURFACE, 0.0)
                .expect("acquisition")
                .f1_pct(),
            surface_deep: p
                .webiq_f1(Components::SURFACE_DEEP, 0.0)
                .expect("acquisition")
                .f1_pct(),
            all: p
                .webiq_f1(Components::ALL, 0.0)
                .expect("acquisition")
                .f1_pct(),
        }
    })
}

/// One row of Figure 8 (overhead analysis).
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Domain display name.
    pub domain: &'static str,
    /// Wall-clock seconds spent matching the enriched attributes.
    pub matching_secs: f64,
    /// Wall-clock seconds in the Surface component (in-process).
    pub surface_secs: f64,
    /// Wall-clock seconds in Attr-Surface.
    pub attr_surface_secs: f64,
    /// Wall-clock seconds in Attr-Deep.
    pub attr_deep_secs: f64,
    /// Search-engine queries issued by the Surface component.
    pub surface_queries: u64,
    /// Search-engine queries issued by Attr-Surface.
    pub attr_surface_queries: u64,
    /// Deep-Web probes issued by Attr-Deep.
    pub probes: u64,
}

impl Fig8Row {
    /// Surface time in minutes on the paper's scale (network latency ×
    /// query count — the in-process engine answers in microseconds, so
    /// the simulated round-trip dominates as it did for the authors).
    pub fn surface_simulated_mins(&self) -> f64 {
        self.surface_queries as f64 * SIMULATED_QUERY_SECS / 60.0
    }

    /// Attr-Surface time in simulated minutes.
    pub fn attr_surface_simulated_mins(&self) -> f64 {
        self.attr_surface_queries as f64 * SIMULATED_QUERY_SECS / 60.0
    }

    /// Attr-Deep time in simulated minutes.
    pub fn attr_deep_simulated_mins(&self) -> f64 {
        self.probes as f64 * SIMULATED_QUERY_SECS / 60.0
    }
}

/// Regenerate Figure 8.
pub fn fig8(seed: u64) -> Vec<Fig8Row> {
    par_domains(|def| {
        let p = DomainPipeline::from_def(def, seed).expect("pipeline");
        let acq = p
            .acquire(Components::ALL, &WebIQConfig::default())
            .expect("acquisition");
        let attrs = p.enriched_attributes(&acq);
        let t0 = Instant::now();
        let _ = p.match_and_evaluate(&attrs, &MatchConfig::with_threshold(THRESHOLD));
        let matching_secs = t0.elapsed().as_secs_f64();
        Fig8Row {
            domain: def.display,
            matching_secs,
            surface_secs: acq.report.surface_cost.secs,
            attr_surface_secs: acq.report.attr_surface_cost.secs,
            attr_deep_secs: acq.report.attr_deep_cost.secs,
            surface_queries: acq.report.surface_cost.engine_queries,
            attr_surface_queries: acq.report.attr_surface_cost.engine_queries,
            probes: acq.report.attr_deep_cost.probes,
        }
    })
}

/// How accurate is acquisition itself? An acquired instance is *correct*
/// when it belongs to the attribute's gold concept inventory.
pub fn acquisition_precision(ds: &Dataset, def: &DomainDef, acq: &webiq::core::Acquisition) -> f64 {
    let mut total = 0usize;
    let mut correct = 0usize;
    for (r, values) in &acq.acquired {
        let a = ds.attribute(*r).expect("acquired refs are valid");
        let Some(c) = def.concept(&a.concept) else {
            continue;
        };
        for v in values {
            total += 1;
            let hit = c
                .instances
                .iter()
                .chain(c.instances_alt)
                .any(|p| p.eq_ignore_ascii_case(v));
            correct += usize::from(hit);
        }
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

/// One row of the learned-threshold experiment (the interactive part of
/// IceQ the paper ran manually, §5).
#[derive(Debug, Clone)]
pub struct LearnedRow {
    /// Domain display name.
    pub domain: &'static str,
    /// τ learned from the oracle sample.
    pub threshold: f64,
    /// Oracle questions asked.
    pub questions: usize,
    /// F-1 % of IceQ + WebIQ clustered at the learned τ.
    pub f1_with_learned: f64,
}

/// Learn per-domain thresholds with a gold-backed oracle (20 questions,
/// the effort of one short interactive session) and evaluate matching at
/// the learned τ. The paper set its manual τ = 0.1 to "about the average
/// of the thresholds learned for the five domains" — this regenerates
/// those learned values on our similarity scale.
pub fn learned_thresholds(seed: u64) -> Vec<LearnedRow> {
    use webiq::data::gold;
    use webiq::matcher::{learn_threshold, GoldOracle};
    par_domains(|def| {
        let p = DomainPipeline::from_def(def, seed).expect("pipeline");
        let acq = p
            .acquire(Components::ALL, &WebIQConfig::default())
            .expect("acquisition");
        let attrs = p.enriched_attributes(&acq);
        let mut oracle = GoldOracle::new(gold::gold_pairs(&p.dataset));
        let learned = learn_threshold(&attrs, &MatchConfig::default(), &mut oracle, 20);
        let f1 = p
            .match_and_evaluate(&attrs, &MatchConfig::with_threshold(learned.threshold))
            .1
            .f1_pct();
        LearnedRow {
            domain: def.display,
            threshold: learned.threshold,
            questions: learned.questions,
            f1_with_learned: f1,
        }
    })
}

/// One row of the similarity-weight study.
#[derive(Debug, Clone)]
pub struct WeightsRow {
    /// Domain display name.
    pub domain: &'static str,
    /// Label similarity only (α=1, β=0) on the raw dataset.
    pub label_only: f64,
    /// Full Sim on the raw dataset (the Fig. 6 baseline).
    pub baseline: f64,
    /// Label similarity only on WebIQ-enriched attributes (instances
    /// acquired but ignored by the matcher — a control).
    pub label_only_enriched: f64,
    /// Full Sim on enriched attributes (the Fig. 6 WebIQ bar).
    pub webiq: f64,
}

/// The comparative study the paper cites from IceQ [28] ("instances
/// greatly improve matching accuracy"): how much of the accuracy comes
/// from instances, before and after acquisition.
pub fn weights(seed: u64) -> Vec<WeightsRow> {
    par_domains(|def| {
        let p = DomainPipeline::from_def(def, seed).expect("pipeline");
        let label_cfg = MatchConfig {
            alpha: 1.0,
            beta: 0.0,
            threshold: 0.0,
        };
        let full_cfg = MatchConfig::default();

        let raw = p.baseline_attributes();
        let acq = p
            .acquire(Components::ALL, &WebIQConfig::default())
            .expect("acquisition");
        let enriched = p.enriched_attributes(&acq);

        WeightsRow {
            domain: def.display,
            label_only: p.match_and_evaluate(&raw, &label_cfg).1.f1_pct(),
            baseline: p.match_and_evaluate(&raw, &full_cfg).1.f1_pct(),
            label_only_enriched: p.match_and_evaluate(&enriched, &label_cfg).1.f1_pct(),
            webiq: p.match_and_evaluate(&enriched, &full_cfg).1.f1_pct(),
        }
    })
}

/// One ablation outcome.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Ablation name.
    pub name: &'static str,
    /// Average F-1 % across the five domains.
    pub avg_f1: f64,
    /// Average acquisition precision across the five domains.
    pub acq_precision: f64,
    /// Total engine queries + probes across the five domains.
    pub total_queries: u64,
}

/// Run one configuration across all domains.
fn run_config(seed: u64, name: &'static str, cfg: &WebIQConfig) -> AblationRow {
    let per_domain = par_domains(|def| {
        let p = DomainPipeline::from_def(def, seed).expect("pipeline");
        let acq = p.acquire(Components::ALL, cfg).expect("acquisition");
        let prec = acquisition_precision(&p.dataset, def, &acq);
        let queries = acq.report.surface_cost.engine_queries
            + acq.report.attr_surface_cost.engine_queries
            + acq.report.attr_deep_cost.probes;
        let attrs = p.enriched_attributes(&acq);
        let f1 = p
            .match_and_evaluate(&attrs, &MatchConfig::with_threshold(THRESHOLD))
            .1
            .f1;
        (f1, prec, queries)
    });
    let f1_sum: f64 = per_domain.iter().map(|(f, _, _)| f).sum();
    let prec_sum: f64 = per_domain.iter().map(|(_, p, _)| p).sum();
    let queries: u64 = per_domain.iter().map(|(_, _, q)| q).sum();
    AblationRow {
        name,
        avg_f1: 100.0 * f1_sum / 5.0,
        acq_precision: 100.0 * prec_sum / 5.0,
        total_queries: queries,
    }
}

/// One row of the trace summary: a domain's merged run totals from a
/// traced full acquisition + matching pass.
#[derive(Debug, Clone)]
pub struct TraceRow {
    /// Domain display name.
    pub domain: &'static str,
    /// Merged counters, gauges, and histograms for the run.
    pub totals: webiq::trace::Totals,
}

/// Run every domain's full pipeline (acquisition + matching) under a
/// tracer and return the merged run totals — the `webiq-report` funnel
/// per domain. Deterministic in the seed like every other experiment.
pub fn trace_summary(seed: u64) -> Vec<TraceRow> {
    par_domains(|def| {
        let p = DomainPipeline::from_def(def, seed).expect("pipeline");
        let tracer = webiq::trace::Tracer::noop();
        let acq = p
            .acquire_traced(Components::ALL, tracer.clone())
            .expect("acquisition");
        // Fold the matcher pass into the same trace so the funnel's
        // `matched` stage (cluster merges) is populated too.
        let item = tracer.item("match", def.key);
        let attrs = p.enriched_attributes(&acq);
        let _ = p.match_and_evaluate(&attrs, &MatchConfig::with_threshold(THRESHOLD));
        tracer.submit(item.finish());
        TraceRow {
            domain: def.display,
            totals: tracer.totals(),
        }
    })
}

/// The design-choice ablations of DESIGN.md §5.
pub fn ablations(seed: u64) -> Vec<AblationRow> {
    let base = WebIQConfig::default();
    vec![
        run_config(seed, "full WebIQ (default)", &base),
        run_config(
            seed,
            "no outlier phase",
            &WebIQConfig {
                outlier_phase: false,
                ..base.clone()
            },
        ),
        run_config(
            seed,
            "raw hits instead of PMI",
            &WebIQConfig {
                use_pmi: false,
                ..base.clone()
            },
        ),
        run_config(
            seed,
            "midpoint thresholds (no info gain)",
            &WebIQConfig {
                info_gain_thresholds: false,
                ..base.clone()
            },
        ),
        run_config(
            seed,
            "no borrow pre-filter",
            &WebIQConfig {
                borrow_prefilter: false,
                ..base.clone()
            },
        ),
        run_config(
            seed,
            "sibling-keyword query scoping (+2)",
            &WebIQConfig {
                sibling_keywords: 2,
                ..base.clone()
            },
        ),
        run_config(
            seed,
            "Grubbs discordancy test",
            &WebIQConfig {
                discordancy: webiq::stats::DiscordancyTest::Grubbs,
                ..base.clone()
            },
        ),
    ]
}

impl ToJson for Table1Row {
    fn to_json(&self) -> Json {
        obj([
            ("domain", self.domain.into()),
            ("avg_attrs", self.avg_attrs.into()),
            ("int_no_inst", self.int_no_inst.into()),
            ("attr_no_inst", self.attr_no_inst.into()),
            ("exp_inst", self.exp_inst.into()),
            ("surface", self.surface.into()),
            ("surface_deep", self.surface_deep.into()),
        ])
    }
}

impl ToJson for Fig6Row {
    fn to_json(&self) -> Json {
        obj([
            ("domain", self.domain.into()),
            ("baseline", self.baseline.into()),
            ("webiq", self.webiq.into()),
            ("webiq_threshold", self.webiq_threshold.into()),
        ])
    }
}

impl ToJson for Fig7Row {
    fn to_json(&self) -> Json {
        obj([
            ("domain", self.domain.into()),
            ("baseline", self.baseline.into()),
            ("surface", self.surface.into()),
            ("surface_deep", self.surface_deep.into()),
            ("all", self.all.into()),
        ])
    }
}

impl ToJson for Fig8Row {
    fn to_json(&self) -> Json {
        obj([
            ("domain", self.domain.into()),
            ("matching_secs", self.matching_secs.into()),
            ("surface_secs", self.surface_secs.into()),
            ("attr_surface_secs", self.attr_surface_secs.into()),
            ("attr_deep_secs", self.attr_deep_secs.into()),
            ("surface_queries", self.surface_queries.into()),
            ("attr_surface_queries", self.attr_surface_queries.into()),
            ("probes", self.probes.into()),
        ])
    }
}

impl ToJson for LearnedRow {
    fn to_json(&self) -> Json {
        obj([
            ("domain", self.domain.into()),
            ("threshold", self.threshold.into()),
            ("questions", self.questions.into()),
            ("f1_with_learned", self.f1_with_learned.into()),
        ])
    }
}

impl ToJson for WeightsRow {
    fn to_json(&self) -> Json {
        obj([
            ("domain", self.domain.into()),
            ("label_only", self.label_only.into()),
            ("baseline", self.baseline.into()),
            ("label_only_enriched", self.label_only_enriched.into()),
            ("webiq", self.webiq.into()),
        ])
    }
}

impl ToJson for AblationRow {
    fn to_json(&self) -> Json {
        obj([
            ("name", self.name.into()),
            ("avg_f1", self.avg_f1.into()),
            ("acq_precision", self.acq_precision.into()),
            ("total_queries", self.total_queries.into()),
        ])
    }
}

impl ToJson for TraceRow {
    fn to_json(&self) -> Json {
        let f = webiq::trace::report::funnel(&self.totals.counters);
        obj([
            ("domain", self.domain.into()),
            ("attrs_total", f.attrs_total.into()),
            ("no_instance", f.no_instance.into()),
            ("predefined", f.predefined.into()),
            ("candidates", f.candidates.into()),
            ("verified", f.verified.into()),
            ("borrowed", f.borrowed.into()),
            ("probed", f.probed.into()),
            ("matched", f.matched.into()),
            ("surface_success", f.surface_success.into()),
            ("surface_deep_success", f.surface_deep_success.into()),
            ("attr_surface_enriched", f.attr_surface_enriched.into()),
            ("surface_queries", f.surface_queries.into()),
            ("attr_surface_queries", f.attr_surface_queries.into()),
            ("attr_deep_probes", f.attr_deep_probes.into()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_five_rows_in_paper_order() {
        let rows = table1(SEED);
        let names: Vec<&str> = rows.iter().map(|r| r.domain).collect();
        assert_eq!(names, vec!["Airfare", "Auto", "Book", "Job", "Real Estate"]);
        for r in &rows {
            assert!(r.avg_attrs > 2.0 && r.avg_attrs < 15.0);
            assert!((0.0..=100.0).contains(&r.surface));
            assert!(
                r.surface_deep >= r.surface - 1e-9,
                "{}: deep >= surface",
                r.domain
            );
        }
    }

    #[test]
    fn trace_summary_covers_all_domains_with_populated_funnels() {
        let rows = trace_summary(SEED);
        let names: Vec<&str> = rows.iter().map(|r| r.domain).collect();
        assert_eq!(names, vec!["Airfare", "Auto", "Book", "Job", "Real Estate"]);
        for r in &rows {
            let f = webiq::trace::report::funnel(&r.totals.counters);
            assert!(f.attrs_total > 0, "{}: no attributes traced", r.domain);
            assert!(f.candidates >= f.verified, "{}: funnel widens", r.domain);
            assert!(f.matched > 0, "{}: matcher pass untraced", r.domain);
        }
    }

    #[test]
    fn fig6_improves_over_baseline_on_average() {
        let rows = fig6(SEED);
        let base: f64 = rows.iter().map(|r| r.baseline).sum::<f64>() / 5.0;
        let webiq: f64 = rows.iter().map(|r| r.webiq).sum::<f64>() / 5.0;
        assert!(webiq > base + 3.0, "{base:.1} -> {webiq:.1}");
    }

    #[test]
    fn fig8_costs_are_positive() {
        let rows = fig8(SEED);
        for r in &rows {
            assert!(r.surface_queries > 0, "{}", r.domain);
            assert!(r.probes > 0 || r.domain == "Book", "{}", r.domain);
            assert!(r.matching_secs > 0.0);
        }
    }

    #[test]
    fn instances_matter_in_the_weight_study() {
        let rows = weights(SEED);
        let avg = |f: fn(&WeightsRow) -> f64| rows.iter().map(f).sum::<f64>() / 5.0;
        // the domain-similarity term must add accuracy on the raw dataset
        // (IceQ's comparative claim) and even more after acquisition
        assert!(avg(|r| r.baseline) > avg(|r| r.label_only), "{rows:?}");
        assert!(
            avg(|r| r.webiq) > avg(|r| r.label_only_enriched),
            "{rows:?}"
        );
        assert!(avg(|r| r.webiq) > avg(|r| r.baseline), "{rows:?}");
    }

    #[test]
    fn learned_thresholds_are_usable() {
        let rows = learned_thresholds(SEED);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(
                (0.0..1.0).contains(&r.threshold),
                "{}: τ={}",
                r.domain,
                r.threshold
            );
            assert!(
                r.f1_with_learned > 80.0,
                "{}: F1={}",
                r.domain,
                r.f1_with_learned
            );
        }
    }

    #[test]
    fn acquisition_precision_is_high_by_default() {
        let def = kb::domain("airfare").expect("domain");
        let p = DomainPipeline::from_def(def, SEED).expect("pipeline");
        let acq = p
            .acquire(Components::ALL, &WebIQConfig::default())
            .expect("acquisition");
        let prec = acquisition_precision(&p.dataset, def, &acq);
        assert!(prec > 0.9, "acquisition precision {prec:.3}");
    }
}
