//! A small wall-clock benchmarking harness with a Criterion-shaped API.
//!
//! The bench targets in `benches/` were written against Criterion; this
//! module provides the subset they use — [`Criterion`], benchmark groups,
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — backed by a simple calibrate-then-sample
//! timer, so the suite runs with no external dependencies.
//!
//! Methodology: each measurement first runs the closure once to estimate
//! its cost, picks an iteration count that makes one sample take roughly
//! [`TARGET_SAMPLE_SECS`], then records `sample_size` such samples and
//! reports the median and mean per-iteration time.

use std::time::Instant;

/// Target wall-clock duration of one sample batch.
const TARGET_SAMPLE_SECS: f64 = 0.01;

/// An opaque identity function that prevents the optimiser from deleting
/// benchmarked work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-measurement statistics, also returned to callers that want the
/// numbers rather than the printed line (e.g. the scaling-threads bench).
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Median per-iteration seconds.
    pub median_secs: f64,
    /// Mean per-iteration seconds.
    pub mean_secs: f64,
    /// Number of samples taken.
    pub samples: usize,
}

/// Format a duration in seconds with an auto-selected unit.
pub fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] does the timing.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<f64>,
}

impl Bencher {
    /// Measure `f`, calibrating the batch size first (see module docs).
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().as_secs_f64().max(1e-9);
        let iters = ((TARGET_SAMPLE_SECS / once).ceil() as u64).clamp(1, 1_000_000);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(t.elapsed().as_secs_f64() / iters as f64);
        }
    }
}

fn run_one(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) -> Option<Sample> {
    let mut b = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut b);
    let mut s = b.samples;
    if s.is_empty() {
        println!("{name:<50} (no measurement)");
        return None;
    }
    s.sort_by(f64::total_cmp);
    let median = s[s.len() / 2];
    let mean = s.iter().sum::<f64>() / s.len() as f64;
    println!(
        "{name:<50} median {:>10}   mean {:>10}   ({} samples)",
        fmt_time(median),
        fmt_time(mean),
        s.len()
    );
    Some(Sample {
        median_secs: median,
        mean_secs: mean,
        samples: s.len(),
    })
}

/// The harness entry point; mirrors Criterion's builder API.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of samples per measurement.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one named measurement.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Start a named group; measurements print as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            prefix: name.to_string(),
            sample_size,
        }
    }
}

/// A parameter tag for [`BenchmarkGroup::bench_with_input`].
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Use the parameter's `Display` form as the benchmark name.
    pub fn from_parameter<T: std::fmt::Display>(p: T) -> Self {
        BenchmarkId(p.to_string())
    }
}

/// A group of related measurements sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    prefix: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one measurement within the group.
    pub fn bench_function<S: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        name: S,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{name}", self.prefix), self.sample_size, &mut f);
        self
    }

    /// Run one measurement parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.prefix, id.0),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// End the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Time `f` once, returning its result and the elapsed wall-clock seconds.
/// For macro-benchmarks where a single cold run is the measurement.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// Declare a bench group function `$name` that applies `$config` and runs
/// each target. Criterion-macro compatible.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
}

/// Declare `main` running the given bench groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let s = run_one("test/noop", 5, &mut |b| b.iter(|| 1 + 1)).expect("samples");
        assert_eq!(s.samples, 5);
        assert!(s.median_secs >= 0.0 && s.median_secs.is_finite());
        assert!(s.mean_secs > 0.0);
    }

    #[test]
    fn time_formatting_picks_units() {
        assert!(fmt_time(3e-9).ends_with("ns"));
        assert!(fmt_time(3e-6).ends_with("µs"));
        assert!(fmt_time(3e-3).ends_with("ms"));
        assert!(fmt_time(3.0).ends_with('s'));
    }

    #[test]
    fn time_once_returns_value_and_duration() {
        let (v, secs) = time_once(|| 42);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}
