//! The `monitor` experiment: one fully-observed acquisition run.
//!
//! Runs a single domain's acquisition with every component enabled,
//! wired to the whole observability stack at once:
//!
//! - a JSONL [`webiq::trace::Tracer`] producing the deterministic trace
//!   (this is what `OBS_BASELINE.jsonl` is, and what CI diffs against it
//!   with `webiq-report diff`);
//! - a [`webiq::obs::LiveRegistry`] the pipeline publishes into, served
//!   over HTTP by a [`webiq::obs::MetricsServer`] on an ephemeral
//!   localhost port and scraped once after the run (`/metrics` and
//!   `/healthz`);
//! - a summary object (`OBS_BASELINE.json`) recording the funnel plus
//!   the scrape's health, written via the crate's [`crate::json`] model.
//!
//! Everything observable here is deterministic in the seed: the trace
//! bytes, the post-run `/metrics` body, and the summary are identical
//! run over run and at any worker count.

use std::sync::Arc;

use webiq::core::{Components, WebIQConfig};
use webiq::obs::server::http_get;
use webiq::obs::{LiveRegistry, MetricsServer};
use webiq::pipeline::DomainPipeline;
use webiq::trace::report::{aggregate_run, funnel};
use webiq::trace::{Event, SharedBuf, Tracer};

use crate::json::{obj, Json};

/// Everything one monitored run produced.
#[derive(Debug)]
pub struct MonitorOutcome {
    /// The deterministic JSONL trace.
    pub trace_jsonl: String,
    /// The post-run `/metrics` body (scraped over HTTP when the
    /// listener could bind, rendered directly otherwise).
    pub metrics_text: String,
    /// Whether the HTTP endpoint actually served the scrape (false when
    /// the sandbox forbids binding localhost).
    pub served_over_http: bool,
    /// The `/healthz` body when served over HTTP.
    pub healthz: String,
    /// The run summary (what `OBS_BASELINE.json` holds).
    pub summary: Json,
}

/// Run one monitored acquisition of `domain` at `seed`.
///
/// # Errors
///
/// Returns the pipeline's error string when the domain is unknown or
/// acquisition fails.
pub fn run(domain: &str, seed: u64) -> Result<MonitorOutcome, String> {
    let p = DomainPipeline::build(domain, seed).map_err(|e| e.to_string())?;

    let registry = Arc::new(LiveRegistry::new());
    let server = MetricsServer::start("127.0.0.1:0", Arc::clone(&registry)).ok();

    let buf = SharedBuf::new();
    let tracer = Tracer::jsonl(Box::new(buf.clone()));
    let cfg = WebIQConfig {
        tracer: tracer.clone(),
        obs: Some(Arc::clone(&registry)),
        ..WebIQConfig::default()
    };
    p.acquire(Components::ALL, &cfg)
        .map_err(|e| e.to_string())?;
    tracer.flush();
    let trace_jsonl = buf.contents_string();

    // Scrape the live endpoint; fall back to a direct render when the
    // environment refused the bind. The server serves
    // `registry.render_live()` — the deterministic render plus the
    // scheduling-dependent `webiq_prof_*` appendix — so the appendix is
    // stripped here: this artifact is compared byte-for-byte across
    // runs and worker counts, and after the strip both paths yield
    // exactly `registry.render()`.
    let (metrics_text, healthz, served_over_http) = match &server {
        Some(s) => {
            let m = http_get(s.local_addr(), "/metrics").map(|(_, body)| body);
            let h = http_get(s.local_addr(), "/healthz").map(|(_, body)| body);
            match (m, h) {
                (Ok(m), Ok(h)) => (strip_prof(&m), h, true),
                _ => (registry.render(), String::new(), false),
            }
        }
        None => (registry.render(), String::new(), false),
    };
    if let Some(s) = server {
        s.shutdown();
    }

    let snap = registry.snapshot();
    let events: Vec<Event> = trace_jsonl.lines().filter_map(Event::parse).collect();
    let totals = aggregate_run(&events);
    let f = funnel(&totals.counters);

    // The registry is fed from the same deterministic merge loop the
    // tracer is, so the scrape must agree with the trace.
    let consistent = snap.counters == totals.counters;

    let summary = obj([
        ("domain", Json::from(domain)),
        ("seed", Json::from(seed)),
        ("items", Json::from(snap.items)),
        ("epochs", Json::from(snap.epochs)),
        ("trace_events", Json::from(events.len())),
        ("metrics_consistent_with_trace", Json::from(consistent)),
        ("served_over_http", Json::from(served_over_http)),
        (
            "funnel",
            obj([
                ("attrs_total", Json::from(f.attrs_total)),
                ("no_instance", Json::from(f.no_instance)),
                ("candidates", Json::from(f.candidates)),
                ("verified", Json::from(f.verified)),
                ("borrowed", Json::from(f.borrowed)),
                ("probed", Json::from(f.probed)),
                ("surface_success", Json::from(f.surface_success)),
            ]),
        ),
    ]);

    Ok(MonitorOutcome {
        trace_jsonl,
        metrics_text,
        served_over_http,
        healthz,
        summary,
    })
}

/// Drop the `webiq_prof_*` families (values and `# TYPE` headers) from a
/// `/metrics` scrape, leaving the deterministic exposition.
fn strip_prof(scrape: &str) -> String {
    scrape
        .lines()
        .filter(|l| !l.contains("webiq_prof_"))
        .map(|l| format!("{l}\n"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monitor_run_is_deterministic_and_consistent() {
        let a = run("book", 0x1ce0).expect("monitor run");
        let b = run("book", 0x1ce0).expect("monitor run");
        assert_eq!(a.trace_jsonl, b.trace_jsonl);
        assert_eq!(a.metrics_text, b.metrics_text);
        assert_eq!(a.summary, b.summary);
        assert!(!a.trace_jsonl.is_empty());
        assert!(a.metrics_text.contains("webiq_attrs_total_total"));
        assert!(
            !a.metrics_text.contains("webiq_prof_"),
            "the scheduling-dependent prof appendix must be stripped"
        );
        if a.served_over_http {
            assert_eq!(a.healthz, "ok\n");
        }
        match &a.summary {
            Json::Obj(pairs) => {
                let get = |k: &str| pairs.iter().find(|(n, _)| n == k).map(|(_, v)| v.clone());
                assert_eq!(get("metrics_consistent_with_trace"), Some(Json::Bool(true)));
                assert_eq!(get("epochs"), Some(Json::Int(1)));
            }
            other => panic!("summary is not an object: {other:?}"),
        }
    }
}
