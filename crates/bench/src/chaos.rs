//! The `chaos` experiment: a fault-rate × worker-count resilience sweep.
//!
//! For each transient-fault rate the sweep runs one full acquisition per
//! worker count, with the same [`webiq::fault::FaultConfig`] threaded
//! through both injection boundaries (the sources run the attempt-aware
//! plan via [`DomainPipeline::build_with_faults`], the retry layer runs
//! it via [`WebIQConfig::fault`]), and checks the resilience contract:
//!
//! - the JSONL trace stream, acquired-instance map, and degraded set are
//!   byte-identical at every worker count (determinism under chaos);
//! - every run completes the domain — faults degrade attributes, never
//!   abort the run.
//!
//! The verdict object (`experiments chaos --json`) is what CI uploads:
//! `pass` is true only when every rate held both properties.

use webiq::core::{Acquisition, Components, WebIQConfig};
use webiq::fault::FaultConfig;
use webiq::pipeline::DomainPipeline;
use webiq::trace::{SharedBuf, Tracer};

use crate::json::{obj, Json};

/// One fault rate's sweep result.
#[derive(Debug, Clone)]
pub struct ChaosRow {
    /// Transient-fault probability per call attempt.
    pub rate: f64,
    /// Worker counts checked against the single-worker reference.
    pub threads: Vec<usize>,
    /// Trace stream, acquired map, and degraded set identical at every
    /// worker count.
    pub deterministic: bool,
    /// Faults injected during the reference run.
    pub faults_injected: u64,
    /// Retry attempts spent during the reference run.
    pub retries: u64,
    /// Attributes that exhausted their retry budget and degraded.
    pub degraded_attrs: usize,
    /// Total instances acquired (sum over attributes).
    pub instances: usize,
}

/// The whole sweep: per-rate rows plus the overall verdict.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// Domain swept.
    pub domain: String,
    /// Dataset seed.
    pub seed: u64,
    /// Fault-schedule seed.
    pub fault_seed: u64,
    /// One row per rate.
    pub rows: Vec<ChaosRow>,
    /// True when every rate was deterministic and completed.
    pub pass: bool,
}

impl ChaosOutcome {
    /// The verdict object CI uploads as an artifact.
    pub fn to_json(&self) -> Json {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                obj([
                    ("rate", Json::from(r.rate)),
                    (
                        "threads",
                        Json::Arr(r.threads.iter().map(|&t| Json::from(t)).collect()),
                    ),
                    ("deterministic", Json::from(r.deterministic)),
                    ("faults_injected", Json::from(r.faults_injected)),
                    ("retries", Json::from(r.retries)),
                    ("degraded_attrs", Json::from(r.degraded_attrs)),
                    ("instances", Json::from(r.instances)),
                ])
            })
            .collect();
        obj([
            ("domain", Json::from(self.domain.as_str())),
            ("seed", Json::from(self.seed)),
            ("fault_seed", Json::from(self.fault_seed)),
            ("rates", Json::Arr(rows)),
            ("pass", Json::from(self.pass)),
        ])
    }

    /// Deterministic one-screen text rendering.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "chaos sweep: domain {} (seed {:#x}, fault seed {})\n\
             rate    det  faults  retries  degraded  instances\n",
            self.domain, self.seed, self.fault_seed
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:<7.2} {:<4} {:<7} {:<8} {:<9} {}\n",
                r.rate,
                if r.deterministic { "yes" } else { "NO" },
                r.faults_injected,
                r.retries,
                r.degraded_attrs,
                r.instances
            ));
        }
        out.push_str(&format!(
            "verdict: {}\n",
            if self.pass { "PASS" } else { "FAIL" }
        ));
        out
    }
}

/// One traced acquisition run under `fault` with `threads` workers.
fn run_once(
    domain: &str,
    seed: u64,
    fault: &FaultConfig,
    threads: usize,
) -> Result<(Acquisition, String), String> {
    let p = DomainPipeline::build_with_faults(domain, seed, fault).map_err(|e| e.to_string())?;
    let buf = SharedBuf::new();
    let tracer = Tracer::jsonl(Box::new(buf.clone()));
    let cfg = WebIQConfig {
        threads: Some(threads),
        tracer: tracer.clone(),
        fault: fault.clone(),
        ..WebIQConfig::default()
    };
    let acq = p
        .acquire(Components::ALL, &cfg)
        .map_err(|e| e.to_string())?;
    tracer.flush();
    Ok((acq, buf.contents_string()))
}

/// Sweep `domain` over `rates` × `threads`. The first worker count is
/// the reference every other count is compared against.
///
/// # Errors
///
/// Returns the pipeline's error string when the domain is unknown or any
/// acquisition fails outright (which the resilience layer is supposed to
/// prevent — a hard error here is itself a chaos failure).
pub fn sweep(
    domain: &str,
    seed: u64,
    fault_seed: u64,
    rates: &[f64],
    threads: &[usize],
) -> Result<ChaosOutcome, String> {
    let mut rows = Vec::new();
    for &rate in rates {
        let fault = FaultConfig::chaos(fault_seed, rate);
        let (first, _) = threads.split_first().ok_or("no worker counts given")?;
        let (ref_acq, ref_trace) = run_once(domain, seed, &fault, *first)?;
        let mut deterministic = true;
        for &t in &threads[1..] {
            let (acq, trace) = run_once(domain, seed, &fault, t)?;
            deterministic = deterministic
                && trace == ref_trace
                && acq.acquired == ref_acq.acquired
                && acq.degraded == ref_acq.degraded;
        }
        rows.push(ChaosRow {
            rate,
            threads: threads.to_vec(),
            deterministic,
            faults_injected: ref_acq.report.faults_injected,
            retries: ref_acq.report.retries,
            degraded_attrs: ref_acq.report.degraded_attrs,
            instances: ref_acq.acquired.values().map(Vec::len).sum(),
        });
    }
    let pass = rows.iter().all(|r| r.deterministic);
    Ok(ChaosOutcome {
        domain: domain.to_string(),
        seed,
        fault_seed,
        rows,
        pass,
    })
}

/// The full sweep CI's scheduled job runs.
pub const FULL_RATES: [f64; 4] = [0.0, 0.05, 0.1, 0.2];
/// Worker counts for the full sweep.
pub const FULL_THREADS: [usize; 3] = [1, 2, 4];
/// The `--quick` sweep for per-PR CI.
pub const QUICK_RATES: [f64; 2] = [0.0, 0.1];
/// Worker counts for the `--quick` sweep.
pub const QUICK_THREADS: [usize; 2] = [1, 2];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_passes_and_serialises() {
        let out = sweep("book", 0x1ce0, 42, &QUICK_RATES, &QUICK_THREADS).expect("sweep");
        assert!(out.pass, "{}", out.render_text());
        assert_eq!(out.rows.len(), QUICK_RATES.len());
        assert_eq!(out.rows[0].faults_injected, 0, "0% rate injects nothing");
        assert!(
            out.rows[1].faults_injected > 0,
            "10% rate injected nothing:\n{}",
            out.render_text()
        );
        let json = out.to_json().pretty();
        assert!(json.contains("\"pass\": true"), "{json}");
        assert_eq!(json, out.to_json().pretty(), "rendering is deterministic");
    }
}
