//! The `store` experiment: cold run → crash-point sweep → warm run.
//!
//! One full acquisition persists through a [`webiq::store::Store`],
//! then the persisted streams are attacked three ways:
//!
//! - **snapshot sweep** — the compacted snapshot is truncated at every
//!   byte offset (stride sampling only past [`MAX_CUTS`], far beyond
//!   the streams this workload produces) and each cut is recovered
//!   into a fresh directory; the recovered state must equal the state
//!   of the cut's committed record prefix (*prefix consistency*);
//! - **wal sweep** — the same records are replayed through the append
//!   log without compaction and the log is truncated the same way; on
//!   top of prefix consistency, recovery must physically heal the torn
//!   tail (`fsck` reports the directory clean afterwards);
//! - **fault phase** — the records are appended under a seeded
//!   [`DiskFaultPlan`] injecting torn writes, short reads, and ENOSPC;
//!   a clean reopen must recover exactly the successful appends.
//!
//! Finally a warm run over the original directory must replay the cold
//! result byte-identically with zero engine queries.
//!
//! Every number in the verdict is deterministic in `(domain, seed,
//! fault_seed)` — no wall-clock, no paths — so CI diffs the emitted
//! JSON byte-for-byte against the committed `STORE_BASELINE.json`.

use std::path::PathBuf;
use std::sync::Arc;

use webiq::core::{Acquisition, AcquisitionReport, Components, WebIQConfig};
use webiq::fault::DiskFaultPlan;
use webiq::pipeline::DomainPipeline;
use webiq::store::{fsck, scan, Record, State, Store, SNAPSHOT_FILE, WAL_FILE};
use webiq::trace::Counter;

use crate::json::{obj, Json};

/// Upper bound on truncation points per stream. The book-domain
/// streams are well under this, so the stride is 1 and *every* byte
/// offset is a checked crash point; a pathologically larger stream
/// degrades to stride sampling instead of running unbounded.
const MAX_CUTS: usize = 65_536;

/// The sweep verdict CI uploads and diffs against `STORE_BASELINE.json`.
#[derive(Debug, Clone)]
pub struct StoreOutcome {
    /// Domain acquired.
    pub domain: String,
    /// Dataset seed.
    pub seed: u64,
    /// Disk-fault schedule seed.
    pub fault_seed: u64,
    /// Facts persisted by the cold run (instances + borrows + models +
    /// the commit marker).
    pub facts: usize,
    /// Bytes of the compacted snapshot stream.
    pub snapshot_bytes: u64,
    /// Engine queries the cold run issued (all components).
    pub cold_engine_queries: u64,
    /// Instances the cold run acquired (sum over attributes).
    pub instances: usize,
    /// Truncation points recovered in the snapshot sweep.
    pub snapshot_cuts: usize,
    /// Truncation points recovered in the wal sweep.
    pub wal_cuts: usize,
    /// Every cut recovered exactly its committed record prefix.
    pub prefix_consistent: bool,
    /// Every wal recovery left the directory fsck-clean (torn tail
    /// physically rolled back).
    pub healed_clean: bool,
    /// Appends attempted under the disk-fault plan.
    pub faulted_appends: usize,
    /// Appends the plan failed.
    pub faults_injected: usize,
    /// The faulted log recovered exactly the successful appends.
    pub fault_consistent: bool,
    /// The warm run issued zero engine queries.
    pub warm_engine_queries: u64,
    /// The warm run's instances, degraded set, and report matched the
    /// cold run's (wall-clock secs excluded).
    pub warm_identical: bool,
    /// All of the above held.
    pub pass: bool,
}

impl StoreOutcome {
    /// The verdict object CI diffs against the committed baseline.
    pub fn to_json(&self) -> Json {
        obj([
            ("domain", Json::from(self.domain.as_str())),
            ("seed", Json::from(self.seed)),
            ("fault_seed", Json::from(self.fault_seed)),
            (
                "cold",
                obj([
                    ("facts", Json::from(self.facts)),
                    ("snapshot_bytes", Json::from(self.snapshot_bytes)),
                    ("engine_queries", Json::from(self.cold_engine_queries)),
                    ("instances", Json::from(self.instances)),
                ]),
            ),
            (
                "sweep",
                obj([
                    ("snapshot_cuts", Json::from(self.snapshot_cuts)),
                    ("wal_cuts", Json::from(self.wal_cuts)),
                    ("prefix_consistent", Json::from(self.prefix_consistent)),
                    ("healed_clean", Json::from(self.healed_clean)),
                ]),
            ),
            (
                "faults",
                obj([
                    ("appends", Json::from(self.faulted_appends)),
                    ("injected", Json::from(self.faults_injected)),
                    ("consistent", Json::from(self.fault_consistent)),
                ]),
            ),
            (
                "warm",
                obj([
                    ("engine_queries", Json::from(self.warm_engine_queries)),
                    ("identical", Json::from(self.warm_identical)),
                ]),
            ),
            ("pass", Json::from(self.pass)),
        ])
    }

    /// Deterministic one-screen text rendering.
    pub fn render_text(&self) -> String {
        let yn = |b: bool| if b { "yes" } else { "NO" };
        format!(
            "store sweep: domain {} (seed {:#x}, fault seed {})\n\
             cold run:  {} facts, {} snapshot bytes, {} engine queries, {} instances\n\
             crash sweep: {} snapshot cuts + {} wal cuts -> prefix consistent {}, healed clean {}\n\
             disk faults: {} appends, {} injected -> consistent {}\n\
             warm run:  {} engine queries, identical {}\n\
             verdict: {}\n",
            self.domain,
            self.seed,
            self.fault_seed,
            self.facts,
            self.snapshot_bytes,
            self.cold_engine_queries,
            self.instances,
            self.snapshot_cuts,
            self.wal_cuts,
            yn(self.prefix_consistent),
            yn(self.healed_clean),
            self.faulted_appends,
            self.faults_injected,
            yn(self.fault_consistent),
            self.warm_engine_queries,
            yn(self.warm_identical),
            if self.pass { "PASS" } else { "FAIL" }
        )
    }
}

/// A scratch directory unique to this process and phase.
fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("webiq-store-exp-{tag}-{}", std::process::id()))
}

/// The state a committed record prefix folds into.
fn state_of(records: &[Record]) -> State {
    let mut s = State::default();
    for r in records {
        s.apply(r.clone());
    }
    s
}

/// Deterministic cut offsets: every multiple of the stride plus the
/// stream's end — every single byte offset while the stream is under
/// [`MAX_CUTS`] bytes.
fn cuts(len: usize) -> Vec<usize> {
    let stride = (len / MAX_CUTS).max(1);
    let mut out: Vec<usize> = (0..len).step_by(stride).collect();
    out.push(len);
    out
}

/// Truncate `bytes` at every cut, recover each into a fresh directory,
/// and check prefix consistency. Returns `(cuts, consistent, healed)`;
/// `healed` additionally requires a post-recovery `fsck` to come back
/// clean (only the wal sweep asserts it — recovery rolls the wal back
/// physically but leaves a torn snapshot for the next compaction).
fn sweep_stream(bytes: &[u8], file: &str, tag: &str) -> Result<(usize, bool, bool), String> {
    let dir = scratch(tag);
    let mut consistent = true;
    let mut healed = true;
    let offsets = cuts(bytes.len());
    for &cut in &offsets {
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        let prefix = bytes.get(..cut).unwrap_or(&[]);
        std::fs::write(dir.join(file), prefix).map_err(|e| format!("write {file}: {e}"))?;
        let store = Store::open(&dir).map_err(|e| format!("recover cut {cut}: {e}"))?;
        let expected = state_of(&scan(prefix).records);
        consistent = consistent && store.state_snapshot() == expected;
        drop(store);
        let report = fsck(&dir).map_err(|e| format!("fsck cut {cut}: {e}"))?;
        healed = healed && report.clean();
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok((offsets.len(), consistent, healed))
}

/// Append `records` under a seeded disk-fault plan, then reopen with
/// clean IO and check exactly the successful appends survived. Returns
/// `(appends, injected, consistent)`.
fn fault_phase(records: &[Record], fault_seed: u64) -> Result<(usize, usize, bool), String> {
    let dir = scratch("faults");
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::open_with(&dir, DiskFaultPlan::chaos(fault_seed, 0.3))
        .map_err(|e| format!("faulted open: {e}"))?;
    let mut expected = State::default();
    let mut injected = 0usize;
    for rec in records {
        match store.put(rec.clone()) {
            Ok(()) => expected.apply(rec.clone()),
            Err(_) => injected += 1,
        }
    }
    drop(store);
    let store = Store::open(&dir).map_err(|e| format!("clean reopen: {e}"))?;
    let consistent = store.state_snapshot() == expected;
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    Ok((records.len(), injected, consistent))
}

/// A report with its wall-clock `secs` zeroed — the warm run's secs are
/// zero by construction (no time was re-spent), every other field is
/// counter-derived and must match exactly.
fn no_secs(r: &AcquisitionReport) -> AcquisitionReport {
    let mut r = r.clone();
    r.surface_cost.secs = 0.0;
    r.attr_surface_cost.secs = 0.0;
    r.attr_deep_cost.secs = 0.0;
    r
}

fn engine_queries_of(acq: &Acquisition) -> u64 {
    let r = &acq.report;
    r.surface_cost.engine_queries
        + r.attr_surface_cost.engine_queries
        + r.attr_deep_cost.engine_queries
}

/// Engine traffic issued *by this thread* — the warm path never spawns
/// workers, so a zero delta here proves the warm run was engine-free.
fn local_engine_queries() -> u64 {
    let m = webiq::trace::snapshot();
    m.get(Counter::EngineSearchIssued) + m.get(Counter::EngineHitIssued)
}

/// Run the full experiment: cold run → snapshot/wal crash sweeps →
/// disk-fault phase → warm run. With `keep`, the cold store directory
/// is written there and left on disk (for a post-run `webiq-report
/// store` fsck) instead of a deleted scratch directory.
///
/// # Errors
///
/// Returns a message when the domain is unknown, an acquisition fails,
/// or the scratch filesystem misbehaves — all of which fail the gate.
pub fn run(
    domain: &str,
    seed: u64,
    fault_seed: u64,
    keep: Option<&std::path::Path>,
) -> Result<StoreOutcome, String> {
    let p = DomainPipeline::build(domain, seed).map_err(|e| e.to_string())?;
    let dir = keep.map_or_else(|| scratch("cold"), std::path::Path::to_path_buf);
    let _ = std::fs::remove_dir_all(&dir);

    // Cold run: acquire and persist.
    let store = Arc::new(Store::open(&dir).map_err(|e| format!("open: {e}"))?);
    let facts_handle = Arc::clone(&store);
    let cfg = WebIQConfig {
        threads: Some(2),
        store: Some(store),
        ..WebIQConfig::default()
    };
    let cold = p
        .acquire(Components::ALL, &cfg)
        .map_err(|e| e.to_string())?;
    let facts = facts_handle.state_snapshot().len();
    drop(cfg);
    drop(facts_handle);

    // The compacted snapshot is the stream both sweeps attack.
    let snap = std::fs::read(dir.join(SNAPSHOT_FILE)).map_err(|e| format!("read snapshot: {e}"))?;
    let records = scan(&snap).records;
    let (snapshot_cuts, snap_consistent, _) = sweep_stream(&snap, SNAPSHOT_FILE, "snap")?;

    // Rebuild the same records as a pure append log and sweep that too;
    // wal recovery must also physically heal the torn tail.
    let wal_dir = scratch("walbuild");
    let _ = std::fs::remove_dir_all(&wal_dir);
    let wal_store = Store::open(&wal_dir).map_err(|e| format!("wal open: {e}"))?;
    for rec in &records {
        wal_store
            .put(rec.clone())
            .map_err(|e| format!("wal put: {e}"))?;
    }
    drop(wal_store);
    let wal = std::fs::read(wal_dir.join(WAL_FILE)).map_err(|e| format!("read wal: {e}"))?;
    let _ = std::fs::remove_dir_all(&wal_dir);
    let (wal_cuts, wal_consistent, healed_clean) = sweep_stream(&wal, WAL_FILE, "wal")?;

    let (faulted_appends, faults_injected, fault_consistent) = fault_phase(&records, fault_seed)?;

    // Warm run over the untouched cold directory: byte-identical, no
    // engine traffic.
    let store = Arc::new(Store::open(&dir).map_err(|e| format!("reopen: {e}"))?);
    let warm_cfg = WebIQConfig {
        threads: Some(2),
        store: Some(store),
        ..WebIQConfig::default()
    };
    let before = local_engine_queries();
    let warm = p
        .acquire(Components::ALL, &warm_cfg)
        .map_err(|e| e.to_string())?;
    let warm_engine_queries = local_engine_queries() - before;
    let warm_identical = warm.acquired == cold.acquired
        && warm.degraded == cold.degraded
        && warm.report == no_secs(&cold.report);
    if keep.is_none() {
        let _ = std::fs::remove_dir_all(&dir);
    }

    let prefix_consistent = snap_consistent && wal_consistent;
    let pass = prefix_consistent
        && healed_clean
        && fault_consistent
        && warm_engine_queries == 0
        && warm_identical
        && faults_injected > 0;
    Ok(StoreOutcome {
        domain: domain.to_string(),
        seed,
        fault_seed,
        facts,
        snapshot_bytes: snap.len() as u64,
        cold_engine_queries: engine_queries_of(&cold),
        instances: cold.acquired.values().map(Vec::len).sum(),
        snapshot_cuts,
        wal_cuts,
        prefix_consistent,
        healed_clean,
        faulted_appends,
        faults_injected,
        fault_consistent,
        warm_engine_queries,
        warm_identical,
        pass,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use webiq::store::{frame_record, BorrowRecord};

    // The full `run()` — cold acquisition, every-byte sweep, warm
    // replay — is the CI gate itself (`experiments store`); the tests
    // here pin the sweep machinery on a small synthetic stream so the
    // debug-build test suite stays fast.

    fn records(n: u32) -> Vec<Record> {
        (0..n)
            .map(|i| {
                Record::Borrow(BorrowRecord {
                    domain: "testdom".to_string(),
                    attr: format!("attr{i}"),
                    lender: format!("lender{i}"),
                    accepted: i % 2 == 0,
                })
            })
            .collect()
    }

    #[test]
    fn synthetic_snapshot_sweeps_prefix_consistent() {
        let recs = records(8);
        let mut bytes = Vec::new();
        for r in &recs {
            bytes.extend_from_slice(&frame_record(r));
        }
        let (cut_count, consistent, _) =
            sweep_stream(&bytes, SNAPSHOT_FILE, "test-snap").expect("sweep");
        assert_eq!(cut_count, bytes.len() + 1, "not every byte checked");
        assert!(consistent);
    }

    #[test]
    fn synthetic_wal_sweeps_heal_clean() {
        let recs = records(6);
        let dir = scratch("test-walbuild");
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).expect("open");
        for r in &recs {
            store.put(r.clone()).expect("put");
        }
        drop(store);
        let wal = std::fs::read(dir.join(WAL_FILE)).expect("read wal");
        let _ = std::fs::remove_dir_all(&dir);
        let (_, consistent, healed) = sweep_stream(&wal, WAL_FILE, "test-wal").expect("sweep");
        assert!(consistent);
        assert!(healed, "torn wal tail not rolled back");
    }

    #[test]
    fn synthetic_fault_phase_keeps_the_successes() {
        let (appends, injected, consistent) = fault_phase(&records(40), 42).expect("faults");
        assert_eq!(appends, 40);
        assert!(injected > 0, "30% chaos plan never fired");
        assert!(injected < 40, "every append failed");
        assert!(consistent);
    }
}
