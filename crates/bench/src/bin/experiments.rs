//! Reproduce the paper's evaluation (§6): Table 1 and Figures 6–8, plus
//! the design-choice ablations.
//!
//! ```sh
//! cargo run --release -p webiq-bench --bin experiments            # everything
//! cargo run --release -p webiq-bench --bin experiments table1     # one artifact
//! cargo run --release -p webiq-bench --bin experiments fig6 fig7
//! cargo run --release -p webiq-bench --bin experiments -- --seed 7 fig6
//! ```
#![forbid(unsafe_code)]

use webiq_bench::json::{rows, Json};
use webiq_bench::{experiments, render};

fn main() {
    let mut seed = experiments::SEED;
    let mut json = false;
    let mut wanted: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                let v = args.next().unwrap_or_default();
                seed = v.parse().unwrap_or_else(|_| {
                    eprintln!("invalid --seed value {v:?}");
                    std::process::exit(2);
                });
            }
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments [--seed N] [--json] \
                     [table1|fig6|fig7|fig8|ablations|learned|weights|trace]..."
                );
                return;
            }
            other => wanted.push(other.to_string()),
        }
    }
    let all = wanted.is_empty();
    let want = |name: &str| all || wanted.iter().any(|w| w == name);

    if json {
        let mut out: Vec<(String, Json)> = vec![("seed".into(), Json::from(seed))];
        if want("table1") {
            out.push(("table1".into(), rows(&experiments::table1(seed))));
        }
        if want("fig6") {
            out.push(("fig6".into(), rows(&experiments::fig6(seed))));
        }
        if want("fig7") {
            out.push(("fig7".into(), rows(&experiments::fig7(seed))));
        }
        if want("fig8") {
            out.push(("fig8".into(), rows(&experiments::fig8(seed))));
        }
        if want("ablations") {
            out.push(("ablations".into(), rows(&experiments::ablations(seed))));
        }
        if want("learned") {
            out.push((
                "learned".into(),
                rows(&experiments::learned_thresholds(seed)),
            ));
        }
        if want("weights") {
            out.push(("weights".into(), rows(&experiments::weights(seed))));
        }
        if want("trace") {
            out.push(("trace".into(), rows(&experiments::trace_summary(seed))));
        }
        println!("{}", Json::Obj(out).pretty());
        return;
    }

    println!("WebIQ evaluation (seed {seed:#x}); every run is deterministic in the seed.\n");
    if want("table1") {
        println!("{}", render::table1(&experiments::table1(seed)));
    }
    if want("fig6") {
        println!("{}", render::fig6(&experiments::fig6(seed)));
    }
    if want("fig7") {
        println!("{}", render::fig7(&experiments::fig7(seed)));
    }
    if want("fig8") {
        println!("{}", render::fig8(&experiments::fig8(seed)));
    }
    if want("ablations") {
        println!("{}", render::ablations(&experiments::ablations(seed)));
    }
    if want("learned") {
        println!(
            "{}",
            render::learned(&experiments::learned_thresholds(seed))
        );
    }
    if want("weights") {
        println!("{}", render::weights(&experiments::weights(seed)));
    }
    if want("trace") {
        println!("{}", render::trace(&experiments::trace_summary(seed)));
    }
}
