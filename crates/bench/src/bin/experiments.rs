//! Reproduce the paper's evaluation (§6): Table 1 and Figures 6–8, plus
//! the design-choice ablations.
//!
//! ```sh
//! cargo run --release -p webiq-bench --bin experiments            # everything
//! cargo run --release -p webiq-bench --bin experiments table1     # one artifact
//! cargo run --release -p webiq-bench --bin experiments fig6 fig7
//! cargo run --release -p webiq-bench --bin experiments -- --seed 7 fig6
//! ```
//!
//! The `monitor` subcommand runs one fully-observed acquisition (JSONL
//! trace + live `/metrics` endpoint + summary) and writes the artifacts
//! the trace-regression CI gate compares against:
//!
//! ```sh
//! cargo run --release -p webiq-bench --bin experiments -- monitor \
//!     --out trace.jsonl --summary-out summary.json
//! ```
//!
//! The `chaos` subcommand sweeps transient-fault rates × worker counts
//! and emits a pass/fail resilience verdict (exit 1 on FAIL):
//!
//! ```sh
//! cargo run --release -p webiq-bench --bin experiments -- chaos \
//!     --quick --json --out chaos_verdict.json
//! ```
//!
//! The `profile` subcommand runs the thread-count profiling sweep,
//! prints the stage-tree attribution + scaling diagnosis, and writes
//! `PROF_BASELINE.json` (exit 1 if the trace was not byte-identical
//! across thread counts):
//!
//! ```sh
//! cargo run --release -p webiq-bench --bin experiments -- profile \
//!     --quick --out PROF_BASELINE.json
//! ```
//!
//! The `explain` subcommand runs one fully-traced acquisition +
//! matching pass with decision provenance enabled and writes the
//! decision-stream artifact the decision-level regression gate
//! (`webiq-report diff --decisions`) compares against:
//!
//! ```sh
//! cargo run --release -p webiq-bench --bin experiments -- explain \
//!     --out WHY_BASELINE.jsonl --trace-out trace.jsonl
//! ```
//!
//! The `store` subcommand runs the persistence gate: one cold
//! acquisition through a crash-safe store, a crash-point sweep over
//! both persisted streams, a disk-fault append phase, and a warm run
//! that must replay byte-identically with zero engine queries. The
//! verdict is deterministic, so CI diffs it against the committed
//! `STORE_BASELINE.json`:
//!
//! ```sh
//! cargo run --release -p webiq-bench --bin experiments -- store \
//!     --json --out store-verdict.json
//! ```
#![forbid(unsafe_code)]

use webiq_bench::json::{rows, Json};
use webiq_bench::{chaos, experiments, explain, monitor, profile, render, store};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("monitor") {
        run_monitor(&argv[1..]);
        return;
    }
    if argv.first().map(String::as_str) == Some("explain") {
        run_explain(&argv[1..]);
        return;
    }
    if argv.first().map(String::as_str) == Some("chaos") {
        run_chaos(&argv[1..]);
        return;
    }
    if argv.first().map(String::as_str) == Some("profile") {
        run_profile(&argv[1..]);
        return;
    }
    if argv.first().map(String::as_str) == Some("store") {
        run_store(&argv[1..]);
        return;
    }
    let mut seed = experiments::SEED;
    let mut json = false;
    let mut wanted: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                let v = args.next().unwrap_or_default();
                seed = v.parse().unwrap_or_else(|_| {
                    eprintln!("invalid --seed value {v:?}");
                    std::process::exit(2);
                });
            }
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments [--seed N] [--json] \
                     [table1|fig6|fig7|fig8|ablations|learned|weights|trace]..."
                );
                return;
            }
            other => wanted.push(other.to_string()),
        }
    }
    let all = wanted.is_empty();
    let want = |name: &str| all || wanted.iter().any(|w| w == name);

    if json {
        let mut out: Vec<(String, Json)> = vec![("seed".into(), Json::from(seed))];
        if want("table1") {
            out.push(("table1".into(), rows(&experiments::table1(seed))));
        }
        if want("fig6") {
            out.push(("fig6".into(), rows(&experiments::fig6(seed))));
        }
        if want("fig7") {
            out.push(("fig7".into(), rows(&experiments::fig7(seed))));
        }
        if want("fig8") {
            out.push(("fig8".into(), rows(&experiments::fig8(seed))));
        }
        if want("ablations") {
            out.push(("ablations".into(), rows(&experiments::ablations(seed))));
        }
        if want("learned") {
            out.push((
                "learned".into(),
                rows(&experiments::learned_thresholds(seed)),
            ));
        }
        if want("weights") {
            out.push(("weights".into(), rows(&experiments::weights(seed))));
        }
        if want("trace") {
            out.push(("trace".into(), rows(&experiments::trace_summary(seed))));
        }
        println!("{}", Json::Obj(out).pretty());
        return;
    }

    println!("WebIQ evaluation (seed {seed:#x}); every run is deterministic in the seed.\n");
    if want("table1") {
        println!("{}", render::table1(&experiments::table1(seed)));
    }
    if want("fig6") {
        println!("{}", render::fig6(&experiments::fig6(seed)));
    }
    if want("fig7") {
        println!("{}", render::fig7(&experiments::fig7(seed)));
    }
    if want("fig8") {
        println!("{}", render::fig8(&experiments::fig8(seed)));
    }
    if want("ablations") {
        println!("{}", render::ablations(&experiments::ablations(seed)));
    }
    if want("learned") {
        println!(
            "{}",
            render::learned(&experiments::learned_thresholds(seed))
        );
    }
    if want("weights") {
        println!("{}", render::weights(&experiments::weights(seed)));
    }
    if want("trace") {
        println!("{}", render::trace(&experiments::trace_summary(seed)));
    }
}

/// `experiments chaos`: the fault-rate × worker-count resilience sweep;
/// prints the verdict and exits 1 when any rate fails the contract.
fn run_chaos(args: &[String]) {
    let mut seed = experiments::SEED;
    let mut fault_seed = 42u64;
    let mut domain = "book".to_string();
    let mut quick = false;
    let mut json = false;
    let mut out_path: Option<String> = None;
    let mut it = args.iter();
    let usage = "usage: experiments chaos [--seed N] [--fault-seed N] [--domain NAME] \
                 [--quick] [--json] [--out FILE.json]";
    let parse_u64 = |flag: &str, v: Option<&String>| -> u64 {
        let v = v.cloned().unwrap_or_default();
        v.parse().unwrap_or_else(|_| {
            eprintln!("invalid {flag} value {v:?}");
            std::process::exit(2);
        })
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => seed = parse_u64("--seed", it.next()),
            "--fault-seed" => fault_seed = parse_u64("--fault-seed", it.next()),
            "--domain" => match it.next() {
                Some(v) => domain = v.clone(),
                None => {
                    eprintln!("--domain needs a name argument\n{usage}");
                    std::process::exit(2);
                }
            },
            "--quick" => quick = true,
            "--json" => json = true,
            "--out" => match it.next() {
                Some(v) => out_path = Some(v.clone()),
                None => {
                    eprintln!("--out needs a path argument\n{usage}");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("{usage}");
                return;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{usage}");
                std::process::exit(2);
            }
        }
    }

    let (rates, threads): (&[f64], &[usize]) = if quick {
        (&chaos::QUICK_RATES, &chaos::QUICK_THREADS)
    } else {
        (&chaos::FULL_RATES, &chaos::FULL_THREADS)
    };
    let outcome = chaos::sweep(&domain, seed, fault_seed, rates, threads).unwrap_or_else(|e| {
        eprintln!("chaos: {e}");
        std::process::exit(1);
    });
    let verdict = format!("{}\n", outcome.to_json().pretty());
    if let Some(path) = &out_path {
        if let Err(e) = std::fs::write(path, &verdict) {
            eprintln!("chaos: cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
    if json {
        print!("{verdict}");
    } else {
        print!("{}", outcome.render_text());
    }
    if !outcome.pass {
        std::process::exit(1);
    }
}

/// `experiments store`: the persistence gate — cold run, crash-point
/// sweep, disk-fault phase, warm run; prints the verdict and exits 1
/// when any property failed.
fn run_store(args: &[String]) {
    let mut seed = experiments::SEED;
    let mut fault_seed = 42u64;
    let mut domain = "book".to_string();
    let mut json = false;
    let mut out_path: Option<String> = None;
    let mut keep_dir: Option<String> = None;
    let mut it = args.iter();
    let usage = "usage: experiments store [--seed N] [--fault-seed N] [--domain NAME] \
                 [--json] [--out FILE.json] [--keep STORE_DIR]";
    let parse_u64 = |flag: &str, v: Option<&String>| -> u64 {
        let v = v.cloned().unwrap_or_default();
        v.parse().unwrap_or_else(|_| {
            eprintln!("invalid {flag} value {v:?}");
            std::process::exit(2);
        })
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => seed = parse_u64("--seed", it.next()),
            "--fault-seed" => fault_seed = parse_u64("--fault-seed", it.next()),
            "--domain" => match it.next() {
                Some(v) => domain = v.clone(),
                None => {
                    eprintln!("--domain needs a name argument\n{usage}");
                    std::process::exit(2);
                }
            },
            "--json" => json = true,
            "--out" => match it.next() {
                Some(v) => out_path = Some(v.clone()),
                None => {
                    eprintln!("--out needs a path argument\n{usage}");
                    std::process::exit(2);
                }
            },
            "--keep" => match it.next() {
                Some(v) => keep_dir = Some(v.clone()),
                None => {
                    eprintln!("--keep needs a directory argument\n{usage}");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("{usage}");
                return;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{usage}");
                std::process::exit(2);
            }
        }
    }

    let keep = keep_dir.as_ref().map(std::path::Path::new);
    let outcome = store::run(&domain, seed, fault_seed, keep).unwrap_or_else(|e| {
        eprintln!("store: {e}");
        std::process::exit(1);
    });
    let verdict = format!("{}\n", outcome.to_json().pretty());
    if let Some(path) = &out_path {
        if let Err(e) = std::fs::write(path, &verdict) {
            eprintln!("store: cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
    if json {
        print!("{verdict}");
    } else {
        print!("{}", outcome.render_text());
    }
    if !outcome.pass {
        std::process::exit(1);
    }
}

/// `experiments profile`: the thread-count profiling sweep; prints the
/// attribution + scaling report and exits 1 when the trace bytes were
/// not identical across thread counts.
fn run_profile(args: &[String]) {
    let mut seed = experiments::SEED;
    let mut quick = false;
    let mut json = false;
    let mut out_path: Option<String> = None;
    let mut it = args.iter();
    let usage = "usage: experiments profile [--seed N] [--quick] [--json] \
                 [--out PROF_BASELINE.json]";
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                let v = it.next().cloned().unwrap_or_default();
                seed = v.parse().unwrap_or_else(|_| {
                    eprintln!("invalid --seed value {v:?}");
                    std::process::exit(2);
                });
            }
            "--quick" => quick = true,
            "--json" => json = true,
            "--out" => match it.next() {
                Some(v) => out_path = Some(v.clone()),
                None => {
                    eprintln!("--out needs a path argument\n{usage}");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("{usage}");
                return;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{usage}");
                std::process::exit(2);
            }
        }
    }

    let (domains, threads): (&[&str], &[usize]) = if quick {
        (&profile::QUICK_DOMAINS, &profile::QUICK_THREADS)
    } else {
        (&profile::DOMAINS, &profile::FULL_THREADS)
    };
    let outcome = profile::sweep(domains, seed, threads).unwrap_or_else(|e| {
        eprintln!("profile: {e}");
        std::process::exit(1);
    });
    if let Some(path) = &out_path {
        if let Err(e) = std::fs::write(path, &outcome.baseline_json) {
            eprintln!("profile: cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
    if json {
        print!("{}", outcome.baseline_json);
    } else {
        print!("{}", outcome.report);
    }
    if !outcome.deterministic {
        eprintln!("profile: trace bytes differ across thread counts — determinism violated");
        std::process::exit(1);
    }
}

/// `experiments explain`: one decision-traced acquisition + matching
/// run; writes the artifacts the decision-level gate consumes.
fn run_explain(args: &[String]) {
    let mut seed = experiments::SEED;
    let mut domain = "book".to_string();
    let mut decisions_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut it = args.iter();
    let usage = "usage: experiments explain [--seed N] [--domain NAME] \
                 [--out WHY_BASELINE.jsonl] [--trace-out TRACE.jsonl]";
    while let Some(arg) = it.next() {
        let mut path_flag = |slot: &mut Option<String>| match it.next() {
            Some(v) => *slot = Some(v.clone()),
            None => {
                eprintln!("{arg} needs a path argument\n{usage}");
                std::process::exit(2);
            }
        };
        match arg.as_str() {
            "--seed" => {
                let v = it.next().cloned().unwrap_or_default();
                seed = v.parse().unwrap_or_else(|_| {
                    eprintln!("invalid --seed value {v:?}");
                    std::process::exit(2);
                });
            }
            "--domain" => match it.next() {
                Some(v) => domain = v.clone(),
                None => {
                    eprintln!("--domain needs a name argument\n{usage}");
                    std::process::exit(2);
                }
            },
            "--out" => path_flag(&mut decisions_out),
            "--trace-out" => path_flag(&mut trace_out),
            "--help" | "-h" => {
                eprintln!("{usage}");
                return;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{usage}");
                std::process::exit(2);
            }
        }
    }

    let outcome = explain::run(&domain, seed).unwrap_or_else(|e| {
        eprintln!("explain: {e}");
        std::process::exit(1);
    });
    let write = |path: &str, contents: &str| {
        if let Err(e) = std::fs::write(path, contents) {
            eprintln!("explain: cannot write {path}: {e}");
            std::process::exit(1);
        }
    };
    if let Some(path) = &decisions_out {
        write(path, &outcome.decisions_jsonl);
    }
    if let Some(path) = &trace_out {
        write(path, &outcome.trace_jsonl);
    }
    println!("{}", outcome.summary.pretty());
}

/// `experiments monitor`: one observed acquisition run; writes the
/// artifacts the trace-regression gate consumes.
fn run_monitor(args: &[String]) {
    let mut seed = experiments::SEED;
    let mut domain = "book".to_string();
    let mut trace_out: Option<String> = None;
    let mut summary_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut it = args.iter();
    let usage = "usage: experiments monitor [--seed N] [--domain NAME] \
                 [--out TRACE.jsonl] [--summary-out FILE.json] [--metrics-out FILE.txt]";
    while let Some(arg) = it.next() {
        let mut path_flag = |slot: &mut Option<String>| match it.next() {
            Some(v) => *slot = Some(v.clone()),
            None => {
                eprintln!("{arg} needs a path argument\n{usage}");
                std::process::exit(2);
            }
        };
        match arg.as_str() {
            "--seed" => {
                let v = it.next().cloned().unwrap_or_default();
                seed = v.parse().unwrap_or_else(|_| {
                    eprintln!("invalid --seed value {v:?}");
                    std::process::exit(2);
                });
            }
            "--domain" => match it.next() {
                Some(v) => domain = v.clone(),
                None => {
                    eprintln!("--domain needs a name argument\n{usage}");
                    std::process::exit(2);
                }
            },
            "--out" => path_flag(&mut trace_out),
            "--summary-out" => path_flag(&mut summary_out),
            "--metrics-out" => path_flag(&mut metrics_out),
            "--help" | "-h" => {
                eprintln!("{usage}");
                return;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{usage}");
                std::process::exit(2);
            }
        }
    }

    let outcome = monitor::run(&domain, seed).unwrap_or_else(|e| {
        eprintln!("monitor: {e}");
        std::process::exit(1);
    });
    let write = |path: &str, contents: &str| {
        if let Err(e) = std::fs::write(path, contents) {
            eprintln!("monitor: cannot write {path}: {e}");
            std::process::exit(1);
        }
    };
    if let Some(path) = &trace_out {
        write(path, &outcome.trace_jsonl);
    }
    if let Some(path) = &summary_out {
        write(path, &format!("{}\n", outcome.summary.pretty()));
    }
    if let Some(path) = &metrics_out {
        write(path, &outcome.metrics_text);
    }
    println!("{}", outcome.summary.pretty());
}
