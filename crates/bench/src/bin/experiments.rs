//! Reproduce the paper's evaluation (§6): Table 1 and Figures 6–8, plus
//! the design-choice ablations.
//!
//! ```sh
//! cargo run --release -p webiq-bench --bin experiments            # everything
//! cargo run --release -p webiq-bench --bin experiments table1     # one artifact
//! cargo run --release -p webiq-bench --bin experiments fig6 fig7
//! cargo run --release -p webiq-bench --bin experiments -- --seed 7 fig6
//! ```

use webiq_bench::{experiments, render};

fn main() {
    let mut seed = experiments::SEED;
    let mut json = false;
    let mut wanted: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                let v = args.next().unwrap_or_default();
                seed = v.parse().unwrap_or_else(|_| {
                    eprintln!("invalid --seed value {v:?}");
                    std::process::exit(2);
                });
            }
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments [--seed N] [--json] \
                     [table1|fig6|fig7|fig8|ablations|learned|weights]..."
                );
                return;
            }
            other => wanted.push(other.to_string()),
        }
    }
    let all = wanted.is_empty();
    let want = |name: &str| all || wanted.iter().any(|w| w == name);

    if json {
        let mut out = serde_json::Map::new();
        out.insert("seed".into(), seed.into());
        if want("table1") {
            out.insert("table1".into(), to_json(&experiments::table1(seed)));
        }
        if want("fig6") {
            out.insert("fig6".into(), to_json(&experiments::fig6(seed)));
        }
        if want("fig7") {
            out.insert("fig7".into(), to_json(&experiments::fig7(seed)));
        }
        if want("fig8") {
            out.insert("fig8".into(), to_json(&experiments::fig8(seed)));
        }
        if want("ablations") {
            out.insert("ablations".into(), to_json(&experiments::ablations(seed)));
        }
        if want("learned") {
            out.insert("learned".into(), to_json(&experiments::learned_thresholds(seed)));
        }
        if want("weights") {
            out.insert("weights".into(), to_json(&experiments::weights(seed)));
        }
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::Value::Object(out))
                .expect("rows serialise")
        );
        return;
    }

    println!("WebIQ evaluation (seed {seed:#x}); every run is deterministic in the seed.\n");
    if want("table1") {
        println!("{}", render::table1(&experiments::table1(seed)));
    }
    if want("fig6") {
        println!("{}", render::fig6(&experiments::fig6(seed)));
    }
    if want("fig7") {
        println!("{}", render::fig7(&experiments::fig7(seed)));
    }
    if want("fig8") {
        println!("{}", render::fig8(&experiments::fig8(seed)));
    }
    if want("ablations") {
        println!("{}", render::ablations(&experiments::ablations(seed)));
    }
    if want("learned") {
        println!("{}", render::learned(&experiments::learned_thresholds(seed)));
    }
    if want("weights") {
        println!("{}", render::weights(&experiments::weights(seed)));
    }
}

fn to_json<T: serde::Serialize>(rows: &[T]) -> serde_json::Value {
    serde_json::to_value(rows).expect("experiment rows serialise")
}
