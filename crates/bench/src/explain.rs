//! The `explain` experiment: one fully-traced run with decision
//! provenance, producing the decision-stream artifact the decision-level
//! regression gate compares against.
//!
//! Runs a single domain's acquisition with every component enabled and a
//! JSONL tracer installed, then matches the enriched attributes inside a
//! traced `matching` item — so the trace carries every match-relevant
//! decision: `instance_validate` (PMI evidence), `bayes_verify`
//! (posterior + per-feature likelihoods), `probe_verify` (probe
//! outcomes), `borrow_reuse` (domain-similarity reuse/skip), and
//! `cluster_merge` (label/domain similarity components).
//!
//! Two artifacts come out:
//!
//! - the full trace (`webiq-report explain` renders evidence chains
//!   from it), and
//! - the decisions-only JSONL (`WHY_BASELINE.jsonl`; CI regenerates it
//!   and gates with `webiq-report diff --decisions`).
//!
//! Decisions ride the merge-time logical clock, so both artifacts are
//! byte-identical run over run and at any worker count.

use webiq::core::{Components, WebIQConfig};
use webiq::matcher::MatchConfig;
use webiq::pipeline::{DomainPipeline, THRESHOLD};
use webiq::trace::{SharedBuf, Tracer};

use crate::json::{obj, Json};

/// Everything one explain run produced.
#[derive(Debug)]
pub struct ExplainOutcome {
    /// The full deterministic JSONL trace (spans + decisions).
    pub trace_jsonl: String,
    /// Only the decision lines (what `WHY_BASELINE.jsonl` holds).
    pub decisions_jsonl: String,
    /// The run summary (decision counts per kind, F-1).
    pub summary: Json,
}

/// Run one fully-traced acquisition + matching pass of `domain` at
/// `seed` and collect its decision stream.
///
/// # Errors
///
/// Returns the pipeline's error string when the domain is unknown or
/// acquisition fails.
pub fn run(domain: &str, seed: u64) -> Result<ExplainOutcome, String> {
    let p = DomainPipeline::build(domain, seed).map_err(|e| e.to_string())?;

    let buf = SharedBuf::new();
    let tracer = Tracer::jsonl(Box::new(buf.clone()));
    let cfg = WebIQConfig {
        tracer: tracer.clone(),
        ..WebIQConfig::default()
    };
    let acq = p
        .acquire(Components::ALL, &cfg)
        .map_err(|e| e.to_string())?;
    let attrs = p.enriched_attributes(&acq);
    let (_, metrics) =
        p.match_and_evaluate_traced(&attrs, &MatchConfig::with_threshold(THRESHOLD), &tracer);
    tracer.flush();
    let trace_jsonl = buf.contents_string();

    let decisions_jsonl: String = trace_jsonl
        .lines()
        .filter(|l| l.starts_with("{\"ev\":\"decision\""))
        .map(|l| format!("{l}\n"))
        .collect();
    let count_kind = |kind: &str| {
        let needle = format!("\"kind\":\"{kind}\"");
        decisions_jsonl
            .lines()
            .filter(|l| l.contains(&needle))
            .count()
    };

    let summary = obj([
        ("domain", Json::from(domain)),
        ("seed", Json::from(seed)),
        ("decisions", Json::from(decisions_jsonl.lines().count())),
        (
            "by_kind",
            obj([
                (
                    "instance_validate",
                    Json::from(count_kind("instance_validate")),
                ),
                ("bayes_verify", Json::from(count_kind("bayes_verify"))),
                ("probe_verify", Json::from(count_kind("probe_verify"))),
                ("borrow_reuse", Json::from(count_kind("borrow_reuse"))),
                ("cluster_merge", Json::from(count_kind("cluster_merge"))),
            ]),
        ),
        ("f1", Json::from(metrics.f1)),
    ]);

    Ok(ExplainOutcome {
        trace_jsonl,
        decisions_jsonl,
        summary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use webiq::why::Provenance;

    #[test]
    fn explain_run_is_deterministic_and_carries_every_family() {
        let a = run("book", 0x1ce0).expect("explain run");
        let b = run("book", 0x1ce0).expect("explain run");
        assert_eq!(a.trace_jsonl, b.trace_jsonl);
        assert_eq!(a.decisions_jsonl, b.decisions_jsonl);
        assert_eq!(a.summary, b.summary);
        assert!(!a.decisions_jsonl.is_empty());
        // The book run exercises surface validation and clustering at
        // minimum; every recorded line must round-trip the parser.
        let events: Vec<_> = a
            .decisions_jsonl
            .lines()
            .map(|l| webiq::trace::Event::parse(l).expect("decision line parses"))
            .collect();
        let p = Provenance::from_events(&events);
        assert_eq!(p.decisions().len(), a.decisions_jsonl.lines().count());
        for kind in ["instance_validate", "cluster_merge"] {
            assert!(
                !p.matching(kind).is_empty(),
                "no {kind} decisions in the book run"
            );
        }
    }
}
