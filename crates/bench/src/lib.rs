//! # webiq-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§6) over
//! the simulated substrates, plus the ablations DESIGN.md calls out. The
//! [`experiments`] functions return plain data; the `experiments` binary
//! renders them, and the Criterion benches time the underlying pipelines.

pub mod experiments;
pub mod render;
