//! # webiq-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§6) over
//! the simulated substrates, plus the ablations DESIGN.md calls out. The
//! [`experiments`] functions return plain data; the `experiments` binary
//! renders them (text or JSON via [`json`]), and the bench targets time
//! the underlying pipelines with the dependency-free [`timing`] harness.
#![forbid(unsafe_code)]

pub mod chaos;
pub mod experiments;
pub mod explain;
pub mod json;
pub mod monitor;
pub mod profile;
pub mod render;
pub mod store;
pub mod timing;
