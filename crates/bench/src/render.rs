//! Plain-text rendering of the experiment tables, in the shape the paper
//! reports them.

use crate::experiments::{
    AblationRow, Fig6Row, Fig7Row, Fig8Row, LearnedRow, Table1Row, TraceRow, WeightsRow,
};

/// Render Table 1.
pub fn table1(rows: &[Table1Row]) -> String {
    let mut s = String::new();
    s.push_str(
        "TABLE 1: dataset characteristics and instance-acquisition success rates\n\
         Domain       #Attr  IntNoInst%  AttrNoInst%  ExpInst%  Surface%  Surface+Deep%\n",
    );
    let mut acc = [0.0f64; 6];
    for r in rows {
        s.push_str(&format!(
            "{:<12} {:>5.1} {:>11.0} {:>12.1} {:>9.1} {:>9.1} {:>14.1}\n",
            r.domain,
            r.avg_attrs,
            r.int_no_inst,
            r.attr_no_inst,
            r.exp_inst,
            r.surface,
            r.surface_deep
        ));
        for (a, v) in acc.iter_mut().zip([
            r.avg_attrs,
            r.int_no_inst,
            r.attr_no_inst,
            r.exp_inst,
            r.surface,
            r.surface_deep,
        ]) {
            *a += v;
        }
    }
    let n = rows.len().max(1) as f64;
    s.push_str(&format!(
        "{:<12} {:>5.1} {:>11.0} {:>12.1} {:>9.1} {:>9.1} {:>14.1}\n",
        "Average",
        acc[0] / n,
        acc[1] / n,
        acc[2] / n,
        acc[3] / n,
        acc[4] / n,
        acc[5] / n
    ));
    s
}

/// Render Figure 6 as a table plus ASCII bars.
pub fn fig6(rows: &[Fig6Row]) -> String {
    let mut s = String::new();
    s.push_str(
        "FIGURE 6: matching accuracy (F-1 %)\n\
         Domain       Baseline  +WebIQ  +WebIQ+Threshold\n",
    );
    let (mut b, mut w, mut t) = (0.0, 0.0, 0.0);
    for r in rows {
        s.push_str(&format!(
            "{:<12} {:>8.1} {:>7.1} {:>17.1}\n",
            r.domain, r.baseline, r.webiq, r.webiq_threshold
        ));
        b += r.baseline;
        w += r.webiq;
        t += r.webiq_threshold;
    }
    let n = rows.len().max(1) as f64;
    s.push_str(&format!(
        "{:<12} {:>8.1} {:>7.1} {:>17.1}\n\n",
        "Average",
        b / n,
        w / n,
        t / n
    ));
    for r in rows {
        s.push_str(&format!("{:<12} {}\n", r.domain, bar(r.baseline)));
        s.push_str(&format!("{:<12} {}\n", "", bar(r.webiq)));
        s.push_str(&format!("{:<12} {}\n", "", bar(r.webiq_threshold)));
    }
    s
}

/// Render Figure 7.
pub fn fig7(rows: &[Fig7Row]) -> String {
    let mut s = String::new();
    s.push_str(
        "FIGURE 7: component contributions (F-1 %)\n\
         Domain       Baseline  +Surface  +Attr-Deep  +Attr-Surface\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:<12} {:>8.1} {:>9.1} {:>11.1} {:>14.1}\n",
            r.domain, r.baseline, r.surface, r.surface_deep, r.all
        ));
    }
    s
}

/// Render Figure 8.
pub fn fig8(rows: &[Fig8Row]) -> String {
    let mut s = String::new();
    s.push_str(
        "FIGURE 8: overhead analysis\n\
         (simulated minutes = engine/source round-trips x 0.3 s, the paper's Google-latency regime;\n\
          in-process wall-clock shown for reference)\n\
         Domain       Match(s)  Surface(min)  Attr-Surface(min)  Attr-Deep(min)   queries  probes\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:<12} {:>8.2} {:>13.1} {:>18.1} {:>15.1} {:>9} {:>7}\n",
            r.domain,
            r.matching_secs,
            r.surface_simulated_mins(),
            r.attr_surface_simulated_mins(),
            r.attr_deep_simulated_mins(),
            r.surface_queries + r.attr_surface_queries,
            r.probes,
        ));
    }
    s
}

/// Render the ablation table.
pub fn ablations(rows: &[AblationRow]) -> String {
    let mut s = String::new();
    s.push_str(
        "ABLATIONS (avg across the five domains)\n\
         Configuration                        F-1 %  AcqPrec %   Queries\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:<36} {:>5.1} {:>9.1} {:>9}\n",
            r.name, r.avg_f1, r.acq_precision, r.total_queries
        ));
    }
    s
}

/// Render the similarity-weight study.
pub fn weights(rows: &[WeightsRow]) -> String {
    let mut s = String::new();
    s.push_str(
        "SIMILARITY-WEIGHT STUDY (F-1 %): how much instances contribute\n\
         Domain       LabelOnly  Baseline  LabelOnly+Acq  WebIQ\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:<12} {:>9.1} {:>9.1} {:>14.1} {:>6.1}\n",
            r.domain, r.label_only, r.baseline, r.label_only_enriched, r.webiq
        ));
    }
    s
}

/// Render the learned-threshold table.
pub fn learned(rows: &[LearnedRow]) -> String {
    let mut s = String::new();
    s.push_str(
        "LEARNED THRESHOLDS (gold-backed oracle, 20 questions per domain)\n\
         Domain       learned-tau  questions  F-1@learned %\n",
    );
    let mut sum = 0.0;
    for r in rows {
        s.push_str(&format!(
            "{:<12} {:>11.4} {:>10} {:>14.1}\n",
            r.domain, r.threshold, r.questions, r.f1_with_learned
        ));
        sum += r.threshold;
    }
    if !rows.is_empty() {
        s.push_str(&format!(
            "{:<12} {:>11.4}   (the paper set its manual tau to this average)\n",
            "Average",
            sum / rows.len() as f64
        ));
    }
    s
}

/// Render the per-domain trace summary: the `webiq-report` funnel and
/// run totals for a traced full-pipeline run.
pub fn trace(rows: &[TraceRow]) -> String {
    let mut s = String::new();
    s.push_str("TRACE SUMMARY: per-domain pipeline funnel (acquisition + matching)\n");
    for r in rows {
        s.push('\n');
        s.push_str(&format!("=== {} ===\n", r.domain));
        s.push_str(&webiq::trace::report::render(&r.totals));
    }
    s
}

/// A 0–100 value as an ASCII bar.
fn bar(pct: f64) -> String {
    let filled = (pct / 2.0).round().clamp(0.0, 50.0) as usize;
    format!("{} {:.1}", "█".repeat(filled), pct)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_do_not_panic_on_empty() {
        assert!(table1(&[]).contains("TABLE 1"));
        assert!(fig6(&[]).contains("FIGURE 6"));
        assert!(fig7(&[]).contains("FIGURE 7"));
        assert!(fig8(&[]).contains("FIGURE 8"));
        assert!(ablations(&[]).contains("ABLATIONS"));
        assert!(trace(&[]).contains("TRACE SUMMARY"));
    }

    #[test]
    fn learned_render() {
        assert!(learned(&[]).contains("LEARNED"));
        assert!(weights(&[]).contains("WEIGHT"));
    }

    #[test]
    fn bar_scales() {
        assert_eq!(bar(100.0).chars().filter(|c| *c == '█').count(), 50);
        assert_eq!(bar(0.0).chars().filter(|c| *c == '█').count(), 0);
    }
}
