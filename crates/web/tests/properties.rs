//! Property-based tests for the Surface-Web simulator.

use webiq_rng::prop;
use webiq_web::{gen, query, Corpus, SearchEngine};

/// Query parsing is total.
#[test]
fn parse_total() {
    prop::cases(prop::CASES, |rng| {
        let s = rng.gen_string(prop::any_char(), 0, 120);
        let _ = query::parse(&s);
    });
}

/// num_hits never exceeds the corpus size.
#[test]
fn hits_bounded() {
    prop::cases(prop::CASES, |rng| {
        let texts = prop::string_vec(rng, prop::lower_space(), 0, 11, 0, 60);
        let q = rng.gen_string(prop::charset("abcdefghijklmnopqrstuvwxyz +\""), 0, 40);
        let engine = SearchEngine::new(Corpus::from_texts(texts.clone())).expect("engine");
        assert!(engine.num_hits(&q) <= texts.len() as u64);
    });
}

/// Adding a keyword never increases the hit count (conjunctive semantics
/// are monotone).
#[test]
fn conjunction_monotone() {
    prop::cases(prop::CASES, |rng| {
        let texts = prop::string_vec(rng, prop::charset("abc "), 0, 11, 0, 40);
        let base = rng.gen_string(prop::charset("abc"), 1, 3);
        let extra = rng.gen_string(prop::charset("abc"), 1, 3);
        let engine = SearchEngine::new(Corpus::from_texts(texts)).expect("engine");
        let h1 = engine.num_hits(&base);
        let h2 = engine.num_hits(&format!("{base} +{extra}"));
        assert!(h2 <= h1, "h1={h1} h2={h2}");
    });
}

/// Every snippet returned for a quoted phrase contains that phrase.
#[test]
fn snippets_contain_phrase() {
    prop::cases(prop::CASES, |rng| {
        let words = prop::string_vec(rng, prop::lower(), 2, 3, 2, 6);
        let texts = prop::string_vec(rng, prop::lower_space(), 0, 7, 0, 40);
        let phrase = words.join(" ");
        let mut all = texts;
        all.push(format!("prefix words then {phrase} and a suffix"));
        let engine = SearchEngine::new(Corpus::from_texts(all)).expect("engine");
        let q = format!("\"{phrase}\"");
        let snippets = engine.search(&q, 10);
        assert!(!snippets.is_empty());
        for s in snippets {
            assert!(
                s.text.to_lowercase().contains(&phrase),
                "snippet {:?} lacks {:?}",
                s.text,
                phrase
            );
        }
    });
}

/// A document matches its own exact text as a phrase query.
#[test]
fn self_phrase_match() {
    prop::cases(prop::CASES, |rng| {
        let words = prop::string_vec(rng, prop::lower(), 1, 5, 2, 6);
        let text = words.join(" ");
        let engine = SearchEngine::new(Corpus::from_texts([text.clone()])).expect("engine");
        let q = format!("\"{text}\"");
        assert!(engine.num_hits(&q) >= 1);
    });
}

/// Corpus generation is deterministic in the seed.
#[test]
fn generation_deterministic() {
    prop::cases(prop::CASES, |rng| {
        let seed = rng.next_u64();
        let concept = gen::ConceptSpec {
            key: "k".into(),
            lexicalizations: vec!["city".into()],
            object: "flight".into(),
            domain_terms: vec!["travel".into()],
            instances: vec!["Boston".into(), "Chicago".into(), "Denver".into()],
            confusers: vec![],
            richness: 1.0,
        };
        let cfg = gen::GenConfig {
            seed,
            docs_per_concept: 5,
            noise_docs: 5,
            ..gen::GenConfig::default()
        };
        let a = gen::generate(std::slice::from_ref(&concept), &cfg);
        let b = gen::generate(std::slice::from_ref(&concept), &cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(&x.text, &y.text);
        }
    });
}
