//! Property-based tests for the Surface-Web simulator.

use proptest::prelude::*;
use webiq_web::{gen, query, Corpus, SearchEngine};

proptest! {
    /// Query parsing is total.
    #[test]
    fn parse_total(s in ".{0,120}") {
        let _ = query::parse(&s);
    }

    /// num_hits never exceeds the corpus size.
    #[test]
    fn hits_bounded(
        texts in proptest::collection::vec("[a-z ]{0,60}", 0..12),
        q in "[a-z +\"]{0,40}",
    ) {
        let engine = SearchEngine::new(Corpus::from_texts(texts.clone()));
        prop_assert!(engine.num_hits(&q) <= texts.len() as u64);
    }

    /// Adding a keyword never increases the hit count (conjunctive
    /// semantics are monotone).
    #[test]
    fn conjunction_monotone(
        texts in proptest::collection::vec("[a-c ]{0,40}", 0..12),
        base in "[a-c]{1,3}",
        extra in "[a-c]{1,3}",
    ) {
        let engine = SearchEngine::new(Corpus::from_texts(texts));
        let h1 = engine.num_hits(&base);
        let h2 = engine.num_hits(&format!("{base} +{extra}"));
        prop_assert!(h2 <= h1, "h1={h1} h2={h2}");
    }

    /// Every snippet returned for a quoted phrase contains that phrase.
    #[test]
    fn snippets_contain_phrase(
        words in proptest::collection::vec("[a-z]{2,6}", 2..4),
        texts in proptest::collection::vec("[a-z ]{0,40}", 0..8),
    ) {
        let phrase = words.join(" ");
        let mut all = texts;
        all.push(format!("prefix words then {phrase} and a suffix"));
        let engine = SearchEngine::new(Corpus::from_texts(all));
        let q = format!("\"{phrase}\"");
        let snippets = engine.search(&q, 10);
        prop_assert!(!snippets.is_empty());
        for s in snippets {
            prop_assert!(
                s.text.to_lowercase().contains(&phrase),
                "snippet {:?} lacks {:?}", s.text, phrase
            );
        }
    }

    /// A document matches its own exact text as a phrase query.
    #[test]
    fn self_phrase_match(words in proptest::collection::vec("[a-z]{2,6}", 1..6)) {
        let text = words.join(" ");
        let engine = SearchEngine::new(Corpus::from_texts([text.clone()]));
        let q = format!("\"{}\"", text);
        prop_assert!(engine.num_hits(&q) >= 1);
    }

    /// Corpus generation is deterministic in the seed.
    #[test]
    fn generation_deterministic(seed in any::<u64>()) {
        let concept = gen::ConceptSpec {
            key: "k".into(),
            lexicalizations: vec!["city".into()],
            object: "flight".into(),
            domain_terms: vec!["travel".into()],
            instances: vec!["Boston".into(), "Chicago".into(), "Denver".into()],
            confusers: vec![],
            richness: 1.0,
        };
        let cfg = gen::GenConfig { seed, docs_per_concept: 5, noise_docs: 5, ..gen::GenConfig::default() };
        let a = gen::generate(std::slice::from_ref(&concept), &cfg);
        let b = gen::generate(std::slice::from_ref(&concept), &cfg);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert_eq!(&x.text, &y.text);
        }
    }
}
