//! Concurrency smoke tests: the engine is shared by the parallel
//! acquisition workers, so `num_hits`/`search` must stay correct and
//! consistent when hammered from many threads at once.

use webiq_web::{gen, SearchEngine};

fn build_engine() -> SearchEngine {
    let concepts = vec![
        gen::ConceptSpec {
            key: "airfare/city".into(),
            lexicalizations: vec!["departure city".into(), "city".into()],
            object: "flight".into(),
            domain_terms: vec!["airfare".into(), "travel".into()],
            instances: vec![
                "Boston".into(),
                "Chicago".into(),
                "Denver".into(),
                "Seattle".into(),
                "Atlanta".into(),
            ],
            confusers: vec!["the following".into()],
            richness: 1.0,
        },
        gen::ConceptSpec {
            key: "airfare/airline".into(),
            lexicalizations: vec!["airline".into()],
            object: "flight".into(),
            domain_terms: vec!["airfare".into(), "travel".into()],
            instances: vec!["Delta".into(), "United".into(), "JetBlue".into()],
            confusers: vec![],
            richness: 1.0,
        },
    ];
    SearchEngine::new(gen::generate(&concepts, &gen::GenConfig::default())).expect("engine")
}

/// 8 threads issue interleaved hit-count and snippet queries; every thread
/// must observe exactly the answers a single-threaded run computes.
#[test]
fn concurrent_queries_match_sequential_answers() {
    let engine = build_engine();
    let queries: Vec<String> = vec![
        "boston".into(),
        "chicago".into(),
        "delta".into(),
        r#""departure cities such as""#.into(),
        r#""airlines such as""#.into(),
        "airfare +travel".into(),
        "boston -chicago".into(),
        "seattle denver".into(),
    ];
    // sequential ground truth (also warms some cache shards on purpose)
    let expected_hits: Vec<u64> = queries.iter().map(|q| engine.num_hits(q)).collect();
    let expected_snippets: Vec<Vec<String>> = queries
        .iter()
        .map(|q| engine.search(q, 5).into_iter().map(|s| s.text).collect())
        .collect();

    std::thread::scope(|scope| {
        for t in 0..8 {
            let engine = &engine;
            let queries = &queries;
            let expected_hits = &expected_hits;
            let expected_snippets = &expected_snippets;
            scope.spawn(move || {
                for round in 0..50 {
                    // each thread walks the query list at a different phase
                    let i = (t + round) % queries.len();
                    assert_eq!(engine.num_hits(&queries[i]), expected_hits[i], "query {i}");
                    let got: Vec<String> = engine
                        .search(&queries[i], 5)
                        .into_iter()
                        .map(|s| s.text)
                        .collect();
                    assert_eq!(got, expected_snippets[i], "query {i}");
                }
            });
        }
    });
}

/// Thread-local issued-query counters attribute traffic to the thread that
/// issued it, independent of what other threads do: diffing
/// `webiq_trace::snapshot()` around a call sequence measures exactly that
/// thread's traffic.
#[test]
fn thread_issued_counters_are_per_thread() {
    let engine = build_engine();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let engine = &engine;
                scope.spawn(move || {
                    let before = webiq_trace::snapshot();
                    for i in 0..(t + 1) * 3 {
                        let _ = engine.num_hits(&format!("boston chicago {}", i % 4));
                    }
                    webiq_trace::snapshot()
                        .diff(&before)
                        .get(webiq_trace::Counter::EngineHitIssued)
                })
            })
            .collect();
        for (t, h) in handles.into_iter().enumerate() {
            let issued = h.join().expect("worker");
            assert_eq!(issued, (t as u64 + 1) * 3, "thread {t}");
        }
    });
}

/// Global stats under contention: issued counts are exact; miss counts are
/// bounded by the distinct query set (racing duplicate misses allowed) and
/// at least the distinct-set size.
#[test]
fn global_stats_sane_under_contention() {
    let engine = build_engine();
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 40;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let engine = &engine;
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    let _ = engine.num_hits(&format!("boston {}", (t + i) % 10));
                }
            });
        }
    });
    let stats = engine.stats();
    assert_eq!(
        stats.metrics().get(webiq_trace::Counter::EngineHitIssued),
        THREADS * PER_THREAD
    );
    assert!(stats.hit_queries() >= 10, "misses {}", stats.hit_queries());
    assert!(
        stats.hit_queries() <= 10 * THREADS,
        "misses {} exceed worst-case racing bound",
        stats.hit_queries()
    );
    assert!(
        stats.cache_hit_rate() > 0.5,
        "hit rate {}",
        stats.cache_hit_rate()
    );
}
