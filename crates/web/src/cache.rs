//! Concurrency-clean caches for the search engine.
//!
//! The engine is hammered from many acquisition workers at once, so its
//! memoisation must not serialise unrelated queries behind one lock:
//!
//! - [`ShardedMap`] — an N-way sharded hash map for the unbounded
//!   hit-count cache; queries hash to shards, so threads working on
//!   different queries almost never contend.
//! - [`LruCache`] — a bounded least-recently-used map (intrusive
//!   doubly-linked list over a slab) for the snippet/search and
//!   parsed-query caches, whose values are too large to keep unbounded.
//! - [`ShardedLru`] — N [`LruCache`] shards behind their own locks; the
//!   per-shard capacity is `total / N`.

// lint:deterministic

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Mutex, MutexGuard, TryLockError};

use webiq_prof::ProfCounter;

/// Lock a cache shard, recovering from poisoning. Every cached value is
/// a pure function of its key, so a shard left by a panicking thread is
/// still internally consistent: at worst an in-flight insert is missing
/// and gets recomputed.
///
/// Every acquisition bumps the process-wide profiling registry; an
/// acquisition that finds the lock held additionally counts as
/// *contended* before falling back to the blocking path — the
/// shard-contention telemetry behind `webiq_prof_lock_shard_*`.
fn lock_shard<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    webiq_prof::incr(ProfCounter::ShardLockAcquire);
    match m.try_lock() {
        Ok(g) => g,
        Err(TryLockError::Poisoned(p)) => p.into_inner(),
        Err(TryLockError::WouldBlock) => {
            webiq_prof::incr(ProfCounter::ShardLockContended);
            m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
        }
    }
}

/// Number of shards used by the engine's caches. A power of two well above
/// typical worker counts keeps the collision probability per lookup low.
pub const SHARDS: usize = 16;

/// FNV-1a, used only for shard selection (stable across platforms).
pub fn shard_hash(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// An N-way sharded `HashMap<String, V>` for read-mostly memoisation.
pub struct ShardedMap<V> {
    shards: Vec<Mutex<HashMap<String, V>>>,
}

impl<V: Clone> ShardedMap<V> {
    /// An empty map with [`SHARDS`] shards.
    pub fn new() -> Self {
        ShardedMap {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, key: &str) -> &Mutex<HashMap<String, V>> {
        &self.shards[(shard_hash(key) as usize) % SHARDS]
    }

    /// Cloned value for `key`, if present.
    pub fn get(&self, key: &str) -> Option<V> {
        lock_shard(self.shard(key)).get(key).cloned()
    }

    /// Insert (last writer wins; racing writers insert equal values here,
    /// since every cached computation is a pure function of the key).
    pub fn insert(&self, key: String, value: V) {
        lock_shard(self.shard(&key)).insert(key, value);
    }

    /// Total entries across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_shard(s).len()).sum()
    }

    /// True when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<V: Clone> Default for ShardedMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

const NIL: usize = usize::MAX;

struct Entry<K, V> {
    key: K,
    val: V,
    prev: usize,
    next: usize,
}

/// A bounded LRU map. O(1) get/insert; least-recently-used entry evicted
/// at capacity.
pub struct LruCache<K: Eq + Hash + Clone, V> {
    map: HashMap<K, usize>,
    entries: Vec<Entry<K, V>>,
    head: usize,
    tail: usize,
    cap: usize,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// An empty cache holding at most `cap` entries (`cap ≥ 1`).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        LruCache {
            map: HashMap::with_capacity(cap),
            entries: Vec::with_capacity(cap),
            head: NIL,
            tail: NIL,
            cap,
        }
    }

    fn detach(&mut self, i: usize) {
        let (prev, next) = (self.entries[i].prev, self.entries[i].next);
        if prev != NIL {
            self.entries[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.entries[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.entries[i].prev = NIL;
        self.entries[i].next = self.head;
        if self.head != NIL {
            self.entries[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Cloned value for `key`, marking it most recently used.
    pub fn get(&mut self, key: &K) -> Option<V> {
        let &i = self.map.get(key)?;
        if i != self.head {
            self.detach(i);
            self.push_front(i);
        }
        Some(self.entries[i].val.clone())
    }

    /// Insert or refresh `key`, evicting the LRU entry at capacity.
    /// Returns the evicted key, if any — the hook cache-eviction
    /// telemetry attributes churn with.
    pub fn insert(&mut self, key: K, val: V) -> Option<K> {
        if let Some(&i) = self.map.get(&key) {
            self.entries[i].val = val;
            if i != self.head {
                self.detach(i);
                self.push_front(i);
            }
            return None;
        }
        if self.entries.len() < self.cap {
            let i = self.entries.len();
            self.entries.push(Entry {
                key: key.clone(),
                val,
                prev: NIL,
                next: NIL,
            });
            self.map.insert(key, i);
            self.push_front(i);
            None
        } else {
            // reuse the LRU slot
            let i = self.tail;
            self.detach(i);
            let evicted = self.entries[i].key.clone();
            self.map.remove(&evicted);
            self.entries[i].key = key.clone();
            self.entries[i].val = val;
            self.map.insert(key, i);
            self.push_front(i);
            Some(evicted)
        }
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// N-way sharded [`LruCache`] keyed by strings plus an extra hashed key
/// component (e.g. `k` for search queries).
pub struct ShardedLru<K: Eq + Hash + Clone, V> {
    shards: Vec<Mutex<LruCache<K, V>>>,
}

impl<K: Eq + Hash + Clone, V: Clone> ShardedLru<K, V> {
    /// A cache of `total_cap` entries split over [`SHARDS`] shards.
    pub fn new(total_cap: usize) -> Self {
        let per = (total_cap / SHARDS).max(1);
        ShardedLru {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(LruCache::new(per)))
                .collect(),
        }
    }

    /// Cloned value under the shard selected by `shard_key`.
    pub fn get(&self, shard_key: &str, key: &K) -> Option<V> {
        lock_shard(&self.shards[(shard_hash(shard_key) as usize) % SHARDS]).get(key)
    }

    /// Insert under the shard selected by `shard_key`, returning the
    /// evicted key (if the shard was at capacity).
    pub fn insert(&self, shard_key: &str, key: K, val: V) -> Option<K> {
        lock_shard(&self.shards[(shard_hash(shard_key) as usize) % SHARDS]).insert(key, val)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_map_roundtrip() {
        let m: ShardedMap<u64> = ShardedMap::new();
        assert!(m.is_empty());
        for i in 0..100u64 {
            m.insert(format!("query {i}"), i);
        }
        assert_eq!(m.len(), 100);
        for i in 0..100u64 {
            assert_eq!(m.get(&format!("query {i}")), Some(i));
        }
        assert_eq!(m.get("missing"), None);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c: LruCache<String, u32> = LruCache::new(2);
        assert_eq!(c.insert("a".into(), 1), None);
        assert_eq!(c.insert("b".into(), 2), None);
        assert_eq!(c.get(&"a".into()), Some(1)); // refresh a
        assert_eq!(c.insert("c".into(), 3), Some("b".into())); // evicts b
        assert_eq!(c.get(&"b".into()), None);
        assert_eq!(c.get(&"a".into()), Some(1));
        assert_eq!(c.get(&"c".into()), Some(3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn lru_update_refreshes() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.insert(1, 11), None); // refresh + update, no eviction
        assert_eq!(c.insert(3, 30), Some(2)); // evicts 2
        assert_eq!(c.get(&1), Some(11));
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&3), Some(30));
    }

    #[test]
    fn lru_single_slot() {
        let mut c: LruCache<u8, u8> = LruCache::new(1);
        for i in 0..10 {
            c.insert(i, i);
            assert_eq!(c.get(&i), Some(i));
            assert_eq!(c.len(), 1);
        }
    }

    #[test]
    fn lru_stress_against_model() {
        use webiq_rng::StdRng;
        let mut c: LruCache<u8, u32> = LruCache::new(8);
        // model: vector of (key, val) in recency order (front = most recent)
        let mut model: Vec<(u8, u32)> = Vec::new();
        let mut rng = StdRng::seed_from_u64(99);
        for step in 0..5000u32 {
            let k = (rng.next_u64() % 24) as u8;
            if rng.gen_bool(0.5) {
                // insert; the model's overflow entry is the LRU eviction
                model.retain(|(mk, _)| *mk != k);
                model.insert(0, (k, step));
                let expect_evicted = model.get(8).map(|(mk, _)| *mk);
                model.truncate(8);
                assert_eq!(c.insert(k, step), expect_evicted, "step {step}");
            } else {
                let want = model.iter().position(|(mk, _)| *mk == k);
                let got = c.get(&k);
                match want {
                    Some(p) => {
                        let (mk, mv) = model.remove(p);
                        model.insert(0, (mk, mv));
                        assert_eq!(got, Some(mv), "step {step} key {k}");
                    }
                    None => assert_eq!(got, None, "step {step} key {k}"),
                }
            }
            assert_eq!(c.len(), model.len());
        }
    }

    #[test]
    fn sharded_lru_roundtrip() {
        let c: ShardedLru<(String, usize), u32> = ShardedLru::new(64);
        c.insert("q", ("q".into(), 10), 7);
        assert_eq!(c.get("q", &("q".into(), 10)), Some(7));
        assert_eq!(c.get("q", &("q".into(), 20)), None);
    }
}
