//! Google-style query parsing.
//!
//! WebIQ formats its extraction queries for Google's 2006 syntax, e.g.
//!
//! ```text
//! "authors such as" +book +title +isbn
//! ```
//!
//! where double quotes enclose an exact phrase and `+` marks a required
//! keyword. We implement the conjunctive subset WebIQ uses: a document
//! matches iff every quoted phrase occurs contiguously and every keyword
//! (plain or `+`-marked — both conjunctive in Google) occurs somewhere.

/// A parsed query.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Query {
    /// Exact phrases, each a sequence of lowercase word tokens.
    pub phrases: Vec<Vec<String>>,
    /// Required single keywords, lowercase.
    pub keywords: Vec<String>,
    /// Excluded keywords (`-term`), lowercase: a matching document must
    /// not contain any of them.
    pub excluded: Vec<String>,
}

impl Query {
    /// True when the query has no positive terms (exclusions alone cannot
    /// select documents).
    pub fn is_empty(&self) -> bool {
        self.phrases.is_empty() && self.keywords.is_empty()
    }
}

/// Tokenize a fragment into the same lowercase word/number tokens used by
/// the index.
fn fragment_tokens(s: &str) -> Vec<String> {
    webiq_nlp_like_tokens(s)
}

/// Word tokenization consistent with the document indexer: alphanumeric
/// runs (plus internal `'`/`-`/`.`/`,` between digits) lowercased.
pub(crate) fn webiq_nlp_like_tokens(s: &str) -> Vec<String> {
    let chars: Vec<char> = s.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_alphanumeric() || c == '$' && chars.get(i + 1).is_some_and(char::is_ascii_digit) {
            let start = i;
            i += 1;
            while i < chars.len() {
                let c = chars[i];
                if c.is_alphanumeric() {
                    i += 1;
                } else if (c == '\'' || c == '-' || c == '.' || c == ',')
                    && chars.get(i + 1).is_some_and(|d| d.is_alphanumeric())
                {
                    i += 2;
                } else {
                    break;
                }
            }
            out.push(chars[start..i].iter().collect::<String>().to_lowercase());
        } else {
            i += 1;
        }
    }
    out
}

/// Parse a query string.
pub fn parse(query: &str) -> Query {
    let mut phrases = Vec::new();
    let mut keywords = Vec::new();
    let mut excluded = Vec::new();
    let bytes = query.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if c == b'"' {
            let end = query[i + 1..].find('"').map(|p| i + 1 + p);
            let (content, next) = match end {
                Some(e) => (&query[i + 1..e], e + 1),
                None => (&query[i + 1..], query.len()),
            };
            let toks = fragment_tokens(content);
            if !toks.is_empty() {
                phrases.push(toks);
            }
            i = next;
        } else if c.is_ascii_whitespace() {
            i += 1;
        } else {
            // read a bare term up to whitespace or quote
            let start = i;
            while i < bytes.len() && !bytes[i].is_ascii_whitespace() && bytes[i] != b'"' {
                i += 1;
            }
            let raw = &query[start..i];
            if let Some(negated) = raw.strip_prefix('-') {
                excluded.extend(fragment_tokens(negated));
            } else {
                keywords.extend(fragment_tokens(raw.trim_start_matches('+')));
            }
        }
    }
    Query {
        phrases,
        keywords,
        excluded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example() {
        let q = parse(r#""authors such as" +book +title +isbn"#);
        assert_eq!(q.phrases, vec![vec!["authors", "such", "as"]]);
        assert_eq!(q.keywords, vec!["book", "title", "isbn"]);
    }

    #[test]
    fn plain_terms_are_keywords() {
        let q = parse("make honda");
        assert!(q.phrases.is_empty());
        assert_eq!(q.keywords, vec!["make", "honda"]);
    }

    #[test]
    fn multiple_phrases() {
        let q = parse(r#""departure cities such as" "boston""#);
        assert_eq!(q.phrases.len(), 2);
    }

    #[test]
    fn unterminated_quote_is_lenient() {
        let q = parse(r#""departure cities such as"#);
        assert_eq!(q.phrases, vec![vec!["departure", "cities", "such", "as"]]);
    }

    #[test]
    fn case_folded() {
        let q = parse(r#""Air Canada" +Delta"#);
        assert_eq!(q.phrases, vec![vec!["air", "canada"]]);
        assert_eq!(q.keywords, vec!["delta"]);
    }

    #[test]
    fn empty_query() {
        let q = parse("   ");
        assert!(q.is_empty());
    }

    #[test]
    fn empty_phrase_dropped() {
        let q = parse(r#""" foo"#);
        assert!(q.phrases.is_empty());
        assert_eq!(q.keywords, vec!["foo"]);
    }

    #[test]
    fn exclusions_parse() {
        let q = parse("boston -chicago -\"x\"");
        assert_eq!(q.keywords, vec!["boston"]);
        assert_eq!(q.excluded, vec!["chicago"]);
        // a quoted phrase after '-' is a separate token stream; only bare
        // -terms negate
    }

    #[test]
    fn exclusion_only_query_is_empty() {
        assert!(parse("-boston").is_empty());
    }

    #[test]
    fn tokens_keep_hyphens_and_apostrophes() {
        assert_eq!(
            webiq_nlp_like_tokens("O'Hare first-class"),
            vec!["o'hare", "first-class"]
        );
        assert_eq!(webiq_nlp_like_tokens("$15,200"), vec!["$15,200"]);
        assert_eq!(webiq_nlp_like_tokens("3.14"), vec!["3.14"]);
    }
}
