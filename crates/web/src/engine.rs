//! The search-engine façade: `search` and `num_hits` over the index.
//!
//! This is the interface WebIQ's components program against — the same
//! surface the paper used via Google's Web API: top-k result *snippets*
//! for extraction queries and *hit counts* for validation queries. Query
//! traffic is counted so the overhead analysis (Fig. 8) can report the
//! number of search-engine round-trips per component.
//!
//! The engine is fully `Sync` and designed to be shared across the
//! parallel acquisition workers (see DESIGN.md, "Parallel acquisition
//! architecture"):
//!
//! - the hit-count cache is sharded N ways so unrelated queries never
//!   contend on one lock;
//! - search results and parsed queries sit behind bounded LRU caches
//!   storing `Arc`s, so repeated extraction queries are served without
//!   re-matching or re-parsing;
//! - every issued query additionally bumps the `webiq-trace`
//!   *thread-local* counters ([`Counter::EngineSearchIssued`] /
//!   [`Counter::EngineHitIssued`]), so a worker can measure exactly the
//!   queries its own work item issued, independent of cache state or
//!   scheduling — the basis of the deterministic per-component cost
//!   accounting in `webiq-core`. Cache hit/miss tallies, which *do*
//!   depend on scheduling, live only in the per-engine [`EngineStats`]
//!   and the process-wide `webiq-prof` registry (which also attributes
//!   evictions and times cache-missing queries) and never enter the
//!   deterministic trace stream.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use webiq_prof::{ProfCounter, Stage};
use webiq_trace::{Counter, MetricSet, SharedMetrics};

use crate::cache::{ShardedLru, ShardedMap};
use crate::corpus::Corpus;
use crate::error::WebError;
use crate::index::InvertedIndex;
use crate::query::{self, Query};

/// A result snippet: a text window around the first match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snippet {
    /// Source document id.
    pub doc_id: u32,
    /// The snippet text (a contiguous slice of the document).
    pub text: String,
}

/// The two query primitives WebIQ's components program against — the
/// surface the paper used via Google's Web API. [`SearchEngine`]
/// implements it directly; resilience wrappers (fault injection, retry,
/// quota — see `webiq-core`'s `resilience` module) implement it by
/// delegation, so every extraction/validation routine is generic over
/// whether it talks to the raw engine or a guarded one.
pub trait QueryEngine {
    /// Top-`k` result snippets for `query` (extraction queries).
    fn search(&self, query: &str, k: usize) -> Vec<Snippet>;

    /// Number of pages matching `query` (validation queries).
    fn num_hits(&self, query: &str) -> u64;

    /// True while hit-count evidence is trustworthy. A quota-exhausted
    /// wrapper returns false, telling validation to degrade from
    /// PMI-based Web checks to statistics-only filtering.
    fn validation_available(&self) -> bool {
        true
    }
}

impl QueryEngine for SearchEngine {
    fn search(&self, query: &str, k: usize) -> Vec<Snippet> {
        SearchEngine::search(self, query, k)
    }

    fn num_hits(&self, query: &str) -> u64 {
        SearchEngine::num_hits(self, query)
    }
}

/// Counters for engine traffic, used by the overhead analysis.
///
/// Backed by a `webiq-trace` [`SharedMetrics`] array: miss counters count
/// actual round-trips to the engine core; issued counters count every
/// call. Repeated queries (phrase and candidate marginals recur constantly
/// during classifier training) would be served from a client-side cache in
/// any real deployment and cost no search-engine round-trip. For
/// per-call-site accounting that is independent of cache state, diff the
/// thread-local counters via [`webiq_trace::snapshot`].
#[derive(Debug, Default)]
pub struct EngineStats {
    metrics: SharedMetrics,
}

impl EngineStats {
    /// Number of `search` calls that missed the cache.
    pub fn search_queries(&self) -> u64 {
        self.metrics.get(Counter::SearchCacheMiss)
    }

    /// Number of `num_hits` calls that missed the cache.
    pub fn hit_queries(&self) -> u64 {
        self.metrics.get(Counter::HitCacheMiss)
    }

    /// Total cache-missing queries of both kinds.
    pub fn total(&self) -> u64 {
        self.search_queries() + self.hit_queries()
    }

    /// Total issued queries of both kinds.
    pub fn total_issued(&self) -> u64 {
        self.metrics.get(Counter::EngineSearchIssued) + self.metrics.get(Counter::EngineHitIssued)
    }

    /// Fraction of issued queries served from cache, in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        let issued = self.total_issued();
        if issued == 0 {
            return 0.0;
        }
        1.0 - self.total() as f64 / issued as f64
    }

    /// A point-in-time copy of every engine counter (issued, cache hit,
    /// and cache miss), for run summaries.
    pub fn metrics(&self) -> MetricSet {
        self.metrics.snapshot()
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.metrics.reset();
    }

    fn bump(&self, c: Counter) {
        self.metrics.add(c, 1);
    }
}

/// Bounded capacity of the search (snippet) result cache.
const SEARCH_CACHE_CAP: usize = 4096;
/// Bounded capacity of the parsed-query memo.
const PARSE_CACHE_CAP: usize = 8192;

/// The simulated search engine.
///
/// ```
/// use webiq_web::{Corpus, SearchEngine};
/// let engine = SearchEngine::new(Corpus::from_texts([
///     "airlines such as Delta and United fly from Boston",
///     "a page about gardening",
/// ])).expect("corpus is non-empty");
/// assert_eq!(engine.num_hits("\"airlines such as\""), 1);
/// assert_eq!(engine.num_hits("boston -gardening"), 1);
/// let snippets = engine.search("\"airlines such as\"", 10);
/// assert!(snippets[0].text.contains("Delta"));
/// ```
pub struct SearchEngine {
    corpus: Corpus,
    index: InvertedIndex,
    stats: EngineStats,
    hit_cache: ShardedMap<u64>,
    search_cache: ShardedLru<(String, usize), Arc<Vec<Snippet>>>,
    parse_cache: ShardedLru<String, Arc<Query>>,
    /// Simulated network round-trip, in microseconds, charged to each
    /// cache *miss* (a cache hit is a local lookup). 0 = disabled.
    latency_us: AtomicU64,
}

impl SearchEngine {
    /// Index `corpus` and stand up the engine. An empty corpus is valid
    /// (every query answers zero hits); the only failure is an abnormal
    /// index-build worker termination, propagated as [`WebError`].
    pub fn new(corpus: Corpus) -> Result<Self, WebError> {
        let index = InvertedIndex::build(&corpus)?;
        Ok(SearchEngine {
            corpus,
            index,
            stats: EngineStats::default(),
            hit_cache: ShardedMap::new(),
            search_cache: ShardedLru::new(SEARCH_CACHE_CAP),
            parse_cache: ShardedLru::new(PARSE_CACHE_CAP),
            latency_us: AtomicU64::new(0),
        })
    }

    /// Charge every cache-missing query a simulated network round-trip of
    /// `us` microseconds (the paper cites 0.1-0.5 s per Google query).
    /// Makes the engine I/O-bound like its real counterpart, so benchmarks
    /// can observe round-trip overlap from the parallel executor; results
    /// and counters are unaffected. 0 disables.
    pub fn set_simulated_latency_us(&self, us: u64) {
        self.latency_us.store(us, Ordering::Relaxed);
    }

    /// Sleep for the configured simulated round-trip, if any. Called on
    /// the issuing thread outside any cache lock.
    fn simulate_round_trip(&self) {
        let us = self.latency_us.load(Ordering::Relaxed);
        if us > 0 {
            // Opt-in latency simulation: models the network's own round-trip
            // (off by default, enabled only by chaos/latency experiments); no
            // deterministic output depends on when this thread wakes.
            // lint:allow(no-sleep) simulated network round-trip; output never depends on wake time
            std::thread::sleep(std::time::Duration::from_micros(us));
        }
    }

    /// Traffic counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Number of indexed documents.
    pub fn doc_count(&self) -> usize {
        self.index.doc_count()
    }

    /// Parse `query`, memoised through a bounded LRU keyed by the raw
    /// query string.
    fn parse_cached(&self, query: &str) -> Arc<Query> {
        if let Some(q) = self.parse_cache.get(query, &query.to_string()) {
            webiq_prof::incr(ProfCounter::ParseCacheHit);
            return q;
        }
        webiq_prof::incr(ProfCounter::ParseCacheMiss);
        let q = Arc::new(query::parse(query));
        if self
            .parse_cache
            .insert(query, query.to_string(), Arc::clone(&q))
            .is_some()
        {
            webiq_prof::incr(ProfCounter::ParseCacheEvict);
        }
        q
    }

    /// Documents matching a parsed query, ascending; each with the position
    /// of the first phrase match (or 0 when the query has no phrases).
    fn matching_docs(&self, q: &Query) -> Vec<(u32, u32)> {
        if q.is_empty() {
            return Vec::new();
        }
        // Start from the most selective phrase, or from keyword postings.
        let mut candidates: Option<Vec<(u32, u32)>> = None;
        for phrase in &q.phrases {
            let docs = self.index.phrase_docs(phrase);
            candidates = Some(match candidates {
                None => docs,
                Some(prev) => intersect_keep_first_pos(&prev, &docs),
            });
        }
        let mut result: Vec<(u32, u32)> = match candidates {
            Some(c) => c,
            None => {
                // keyword-only query: seed with the first keyword's docs
                let first = &q.keywords[0];
                self.index
                    .term_docs(first)
                    .into_iter()
                    .map(|d| (d, 0))
                    .collect()
            }
        };
        for kw in &q.keywords {
            let docs = self.index.term_docs(kw);
            result.retain(|(d, _)| docs.binary_search(d).is_ok());
            if result.is_empty() {
                break;
            }
        }
        for ex in &q.excluded {
            let docs = self.index.term_docs(ex);
            result.retain(|(d, _)| docs.binary_search(d).is_err());
            if result.is_empty() {
                break;
            }
        }
        result
    }

    /// Number of pages matching `query` — the `NumHits` oracle of §2.2.
    /// Results are memoised in a sharded cache, and [`EngineStats`] counts
    /// *cache misses* only. Racing threads that miss on the same fresh
    /// query may each count a miss; the cached value itself is a pure
    /// function of the query, so results are unaffected.
    pub fn num_hits(&self, query: &str) -> u64 {
        webiq_trace::incr(Counter::EngineHitIssued);
        self.stats.bump(Counter::EngineHitIssued);
        if let Some(hits) = self.hit_cache.get(query) {
            self.stats.bump(Counter::HitCacheHit);
            webiq_prof::incr(ProfCounter::HitCacheHit);
            return hits;
        }
        self.stats.bump(Counter::HitCacheMiss);
        webiq_prof::incr(ProfCounter::HitCacheMiss);
        webiq_prof::time(Stage::EngineQuery, || {
            self.simulate_round_trip();
            let q = self.parse_cached(query);
            let hits = self.matching_docs(&q).len() as u64;
            self.hit_cache.insert(query.to_string(), hits);
            hits
        })
    }

    /// Top-`k` snippets for `query`, in ascending doc-id order (the
    /// deterministic stand-in for relevance order). Results are memoised
    /// per `(query, k)` in a bounded LRU; [`EngineStats`] counts cache
    /// misses only.
    pub fn search(&self, query: &str, k: usize) -> Vec<Snippet> {
        webiq_trace::incr(Counter::EngineSearchIssued);
        self.stats.bump(Counter::EngineSearchIssued);
        let key = (query.to_string(), k);
        if let Some(hit) = self.search_cache.get(query, &key) {
            self.stats.bump(Counter::SearchCacheHit);
            webiq_prof::incr(ProfCounter::SearchCacheHit);
            return hit.as_ref().clone();
        }
        self.stats.bump(Counter::SearchCacheMiss);
        webiq_prof::incr(ProfCounter::SearchCacheMiss);
        webiq_prof::time(Stage::EngineQuery, || {
            self.simulate_round_trip();
            let q = self.parse_cached(query);
            let snippets: Vec<Snippet> = self
                .matching_docs(&q)
                .into_iter()
                .take(k)
                .filter_map(|(doc_id, pos)| {
                    // Doc ids come from the index; a miss means index/corpus
                    // drift and the snippet is dropped rather than panicking.
                    let doc = self.corpus.get(doc_id)?;
                    Some(Snippet {
                        doc_id,
                        text: make_snippet(&doc.text, pos),
                    })
                })
                .collect();
            if self
                .search_cache
                .insert(query, key, Arc::new(snippets.clone()))
                .is_some()
            {
                webiq_prof::incr(ProfCounter::SearchCacheEvict);
            }
            snippets
        })
    }
}

/// Intersect two `(doc, first_pos)` lists on doc id, keeping the first
/// list's position (the earliest phrase anchor).
fn intersect_keep_first_pos(a: &[(u32, u32)], b: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Extract a snippet window around token position `pos`: a few tokens of
/// left context and a generous right context (cue-phrase completions are to
/// the right of the match).
fn make_snippet(text: &str, pos: u32) -> String {
    const LEFT: usize = 5;
    const RIGHT: usize = 40;
    // Token boundaries in byte offsets, consistent enough with the index
    // tokenizer for windowing purposes.
    let mut spans: Vec<(usize, usize)> = Vec::new();
    let mut start = None;
    for (i, c) in text.char_indices() {
        let is_word = c.is_alphanumeric() || c == '$';
        match (is_word, start) {
            (true, None) => start = Some(i),
            (false, Some(s))
                if (!matches!(c, '\'' | '-' | '.' | ',')
                    || !text[i + c.len_utf8()..]
                        .chars()
                        .next()
                        .is_some_and(char::is_alphanumeric)) =>
            {
                spans.push((s, i));
                start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = start {
        spans.push((s, text.len()));
    }
    if spans.is_empty() {
        return text.to_string();
    }
    let last = spans.len() - 1;
    let pos = (pos as usize).min(last);
    let from = spans.get(pos.saturating_sub(LEFT)).map_or(0, |s| s.0);
    let to = spans
        .get((pos + RIGHT).min(last))
        .map_or_else(|| text.len(), |s| s.1);
    // extend to end of sentence punctuation if adjacent
    let mut end = to;
    let bytes = text.as_bytes();
    while end < bytes.len() && matches!(bytes[end], b'.' | b'!' | b'?' | b',') {
        end += 1;
    }
    text[from..end].to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> SearchEngine {
        SearchEngine::new(Corpus::from_texts([
            "Flights depart daily. Popular departure cities such as Boston, Chicago, and LAX are listed.",
            "Delta is an airline based in Atlanta.",
            "airlines such as Delta and United fly from Boston",
            "cities such as Boston and Chicago host many flights",
            "random page about gardening and tomatoes",
        ]))
        .expect("engine")
    }

    #[test]
    fn num_hits_counts_matching_docs() {
        let e = engine();
        assert_eq!(e.num_hits("boston"), 3);
        // "cities such as" also matches inside "departure cities such as"
        assert_eq!(e.num_hits(r#""cities such as""#), 2);
        // both matching docs also contain "flights"
        assert_eq!(e.num_hits(r#""cities such as" +flights"#), 2);
        assert_eq!(e.num_hits(r#""cities such as" +host"#), 1);
        assert_eq!(e.num_hits("nonexistentterm"), 0);
        assert_eq!(e.num_hits(""), 0);
    }

    #[test]
    fn search_returns_snippets_containing_phrase() {
        let e = engine();
        let snippets = e.search(r#""departure cities such as""#, 5);
        assert_eq!(snippets.len(), 1);
        assert!(
            snippets[0]
                .text
                .contains("departure cities such as Boston, Chicago, and LAX"),
            "snippet: {}",
            snippets[0].text
        );
    }

    #[test]
    fn search_respects_k() {
        let e = engine();
        assert_eq!(e.search("boston", 2).len(), 2);
        assert_eq!(e.search("boston", 10).len(), 3);
    }

    #[test]
    fn keyword_conjunction() {
        let e = engine();
        assert_eq!(e.num_hits("boston chicago"), 2);
        assert_eq!(e.num_hits("boston gardening"), 0);
    }

    #[test]
    fn exclusion_filters_documents() {
        let e = engine();
        let with = e.num_hits("boston");
        let without = e.num_hits("boston -chicago");
        assert!(without < with, "{without} !< {with}");
        assert_eq!(e.num_hits("boston -boston"), 0);
    }

    #[test]
    fn multiple_phrases_intersect() {
        let e = engine();
        assert_eq!(e.num_hits(r#""such as" "fly from""#), 1);
    }

    #[test]
    fn stats_count_queries() {
        let e = engine();
        let _ = e.search("boston", 3);
        let _ = e.num_hits("boston");
        let _ = e.num_hits("delta");
        assert_eq!(e.stats().search_queries(), 1);
        assert_eq!(e.stats().hit_queries(), 2);
        assert_eq!(e.stats().total(), 3);
        e.stats().reset();
        assert_eq!(e.stats().total(), 0);
    }

    #[test]
    fn stats_count_issued_and_hit_rate() {
        let e = engine();
        let _ = e.num_hits("boston");
        let _ = e.num_hits("boston"); // cache hit
        let _ = e.search("boston", 3);
        let _ = e.search("boston", 3); // cache hit
        assert_eq!(e.stats().total(), 2);
        assert_eq!(e.stats().total_issued(), 4);
        assert!((e.stats().cache_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn thread_issued_counters_advance() {
        let e = engine();
        let before = webiq_trace::snapshot();
        let _ = e.num_hits("boston");
        let _ = e.num_hits("boston"); // cached, still issued
        let _ = e.search("delta", 4);
        let d = webiq_trace::snapshot().diff(&before);
        assert_eq!(
            d.get(Counter::EngineHitIssued) + d.get(Counter::EngineSearchIssued),
            3
        );
    }

    #[test]
    fn trace_counters_mirror_engine_traffic() {
        let e = engine();
        let before = webiq_trace::snapshot();
        let _ = e.num_hits("seattle");
        let _ = e.num_hits("seattle"); // cached, still issued
        let _ = e.search("atlanta", 4);
        let d = webiq_trace::snapshot().diff(&before);
        assert_eq!(d.get(Counter::EngineHitIssued), 2);
        assert_eq!(d.get(Counter::EngineSearchIssued), 1);
        // cache hit/miss tallies are per-engine only, never thread-local
        assert_eq!(d.get(Counter::HitCacheHit), 0);
        assert_eq!(d.get(Counter::HitCacheMiss), 0);
        assert_eq!(e.stats().metrics().get(Counter::HitCacheHit), 1);
        assert_eq!(e.stats().metrics().get(Counter::HitCacheMiss), 1);
    }

    #[test]
    fn prof_registry_attributes_cache_traffic() {
        let e = engine();
        let before = webiq_prof::snapshot();
        let _ = e.num_hits("a quite unusual profiling query");
        let _ = e.num_hits("a quite unusual profiling query"); // cache hit
        let _ = e.search("another unusual profiling query", 3);
        let d = webiq_prof::snapshot().diff(&before);
        // The registry is process-global and tests run in parallel, so
        // pin lower bounds on the delta, not exact values.
        assert!(d.get(ProfCounter::HitCacheMiss) >= 1, "{d:?}");
        assert!(d.get(ProfCounter::HitCacheHit) >= 1, "{d:?}");
        assert!(d.get(ProfCounter::SearchCacheMiss) >= 1, "{d:?}");
        assert!(d.get(ProfCounter::ParseCacheMiss) >= 1, "{d:?}");
        assert!(d.get(ProfCounter::ShardLockAcquire) >= 1, "{d:?}");
        assert!(d.stage_calls(Stage::EngineQuery) >= 2, "{d:?}");
    }

    #[test]
    fn search_cache_returns_identical_results() {
        let e = engine();
        let a = e.search("boston", 10);
        let b = e.search("boston", 10);
        assert_eq!(a, b);
        assert_eq!(e.stats().search_queries(), 1);
        // a different k is a different cache entry, not a stale slice
        assert_eq!(e.search("boston", 2).len(), 2);
    }

    #[test]
    fn hit_cache_returns_consistent_results() {
        let e = engine();
        let a = e.num_hits(r#""cities such as""#);
        let b = e.num_hits(r#""cities such as""#);
        assert_eq!(a, b);
    }

    #[test]
    fn snippet_window_has_left_context() {
        let e = engine();
        let snippets = e.search(r#""cities such as" +host"#, 5);
        assert_eq!(snippets.len(), 1);
        assert!(snippets[0].text.starts_with("cities such as"));
    }

    #[test]
    fn empty_corpus() {
        let e = SearchEngine::new(Corpus::default()).expect("empty corpus is valid");
        assert_eq!(e.num_hits("anything"), 0);
        assert!(e.search("anything", 5).is_empty());
    }

    #[test]
    fn engine_is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<SearchEngine>();
    }
}
