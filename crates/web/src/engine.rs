//! The search-engine façade: `search` and `num_hits` over the index.
//!
//! This is the interface WebIQ's components program against — the same
//! surface the paper used via Google's Web API: top-k result *snippets*
//! for extraction queries and *hit counts* for validation queries. Query
//! traffic is counted so the overhead analysis (Fig. 8) can report the
//! number of search-engine round-trips per component.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use std::collections::HashMap;

use crate::corpus::Corpus;
use crate::index::InvertedIndex;
use crate::query::{self, Query};

/// A result snippet: a text window around the first match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snippet {
    /// Source document id.
    pub doc_id: u32,
    /// The snippet text (a contiguous slice of the document).
    pub text: String,
}

/// Counters for engine traffic, used by the overhead analysis.
#[derive(Debug, Default)]
pub struct EngineStats {
    search_queries: AtomicU64,
    hit_queries: AtomicU64,
}

impl EngineStats {
    /// Number of `search` calls served.
    pub fn search_queries(&self) -> u64 {
        self.search_queries.load(Ordering::Relaxed)
    }

    /// Number of `num_hits` calls served.
    pub fn hit_queries(&self) -> u64 {
        self.hit_queries.load(Ordering::Relaxed)
    }

    /// Total queries of both kinds.
    pub fn total(&self) -> u64 {
        self.search_queries() + self.hit_queries()
    }

    /// Reset both counters to zero.
    pub fn reset(&self) {
        self.search_queries.store(0, Ordering::Relaxed);
        self.hit_queries.store(0, Ordering::Relaxed);
    }
}

/// The simulated search engine.
///
/// ```
/// use webiq_web::{Corpus, SearchEngine};
/// let engine = SearchEngine::new(Corpus::from_texts([
///     "airlines such as Delta and United fly from Boston",
///     "a page about gardening",
/// ]));
/// assert_eq!(engine.num_hits("\"airlines such as\""), 1);
/// assert_eq!(engine.num_hits("boston -gardening"), 1);
/// let snippets = engine.search("\"airlines such as\"", 10);
/// assert!(snippets[0].text.contains("Delta"));
/// ```
pub struct SearchEngine {
    corpus: Corpus,
    index: InvertedIndex,
    stats: EngineStats,
    hit_cache: Mutex<HashMap<String, u64>>,
}

impl SearchEngine {
    /// Index `corpus` and stand up the engine.
    pub fn new(corpus: Corpus) -> Self {
        let index = InvertedIndex::build(&corpus);
        SearchEngine { corpus, index, stats: EngineStats::default(), hit_cache: Mutex::new(HashMap::new()) }
    }

    /// Traffic counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Number of indexed documents.
    pub fn doc_count(&self) -> usize {
        self.index.doc_count()
    }

    /// Documents matching a parsed query, ascending; each with the position
    /// of the first phrase match (or 0 when the query has no phrases).
    fn matching_docs(&self, q: &Query) -> Vec<(u32, u32)> {
        if q.is_empty() {
            return Vec::new();
        }
        // Start from the most selective phrase, or from keyword postings.
        let mut candidates: Option<Vec<(u32, u32)>> = None;
        for phrase in &q.phrases {
            let docs = self.index.phrase_docs(phrase);
            candidates = Some(match candidates {
                None => docs,
                Some(prev) => intersect_keep_first_pos(&prev, &docs),
            });
        }
        let mut result: Vec<(u32, u32)> = match candidates {
            Some(c) => c,
            None => {
                // keyword-only query: seed with the first keyword's docs
                let first = &q.keywords[0];
                self.index.term_docs(first).into_iter().map(|d| (d, 0)).collect()
            }
        };
        for kw in &q.keywords {
            let docs = self.index.term_docs(kw);
            result.retain(|(d, _)| docs.binary_search(d).is_ok());
            if result.is_empty() {
                break;
            }
        }
        for ex in &q.excluded {
            let docs = self.index.term_docs(ex);
            result.retain(|(d, _)| docs.binary_search(d).is_err());
            if result.is_empty() {
                break;
            }
        }
        result
    }

    /// Number of pages matching `query` — the `NumHits` oracle of §2.2.
    /// Results are memoised, and the traffic counter counts *cache misses*
    /// only: repeated validation queries (phrase and candidate marginals
    /// recur constantly during classifier training) would be served from a
    /// client-side cache in any real deployment and cost no search-engine
    /// round-trip.
    pub fn num_hits(&self, query: &str) -> u64 {
        if let Some(&hits) = self.hit_cache.lock().get(query) {
            return hits;
        }
        self.stats.hit_queries.fetch_add(1, Ordering::Relaxed);
        let q = query::parse(query);
        let hits = self.matching_docs(&q).len() as u64;
        self.hit_cache.lock().insert(query.to_string(), hits);
        hits
    }

    /// Top-`k` snippets for `query`, in ascending doc-id order (the
    /// deterministic stand-in for relevance order).
    pub fn search(&self, query: &str, k: usize) -> Vec<Snippet> {
        self.stats.search_queries.fetch_add(1, Ordering::Relaxed);
        let q = query::parse(query);
        self.matching_docs(&q)
            .into_iter()
            .take(k)
            .map(|(doc_id, pos)| {
                let doc = self.corpus.get(doc_id).expect("doc ids come from the index");
                Snippet { doc_id, text: make_snippet(&doc.text, pos) }
            })
            .collect()
    }
}

/// Intersect two `(doc, first_pos)` lists on doc id, keeping the first
/// list's position (the earliest phrase anchor).
fn intersect_keep_first_pos(a: &[(u32, u32)], b: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Extract a snippet window around token position `pos`: a few tokens of
/// left context and a generous right context (cue-phrase completions are to
/// the right of the match).
fn make_snippet(text: &str, pos: u32) -> String {
    const LEFT: usize = 5;
    const RIGHT: usize = 40;
    // Token boundaries in byte offsets, consistent enough with the index
    // tokenizer for windowing purposes.
    let mut spans: Vec<(usize, usize)> = Vec::new();
    let mut start = None;
    for (i, c) in text.char_indices() {
        let is_word = c.is_alphanumeric() || c == '$';
        match (is_word, start) {
            (true, None) => start = Some(i),
            (false, Some(s))
                if (!matches!(c, '\'' | '-' | '.' | ',')
                    || !text[i + c.len_utf8()..].chars().next().is_some_and(char::is_alphanumeric))
                => {
                    spans.push((s, i));
                    start = None;
                }
            _ => {}
        }
    }
    if let Some(s) = start {
        spans.push((s, text.len()));
    }
    if spans.is_empty() {
        return text.to_string();
    }
    let pos = (pos as usize).min(spans.len() - 1);
    let from = spans[pos.saturating_sub(LEFT)].0;
    let to = spans[(pos + RIGHT).min(spans.len() - 1)].1;
    // extend to end of sentence punctuation if adjacent
    let mut end = to;
    let bytes = text.as_bytes();
    while end < bytes.len() && matches!(bytes[end], b'.' | b'!' | b'?' | b',') {
        end += 1;
    }
    text[from..end].to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> SearchEngine {
        SearchEngine::new(Corpus::from_texts([
            "Flights depart daily. Popular departure cities such as Boston, Chicago, and LAX are listed.",
            "Delta is an airline based in Atlanta.",
            "airlines such as Delta and United fly from Boston",
            "cities such as Boston and Chicago host many flights",
            "random page about gardening and tomatoes",
        ]))
    }

    #[test]
    fn num_hits_counts_matching_docs() {
        let e = engine();
        assert_eq!(e.num_hits("boston"), 3);
        // "cities such as" also matches inside "departure cities such as"
        assert_eq!(e.num_hits(r#""cities such as""#), 2);
        // both matching docs also contain "flights"
        assert_eq!(e.num_hits(r#""cities such as" +flights"#), 2);
        assert_eq!(e.num_hits(r#""cities such as" +host"#), 1);
        assert_eq!(e.num_hits("nonexistentterm"), 0);
        assert_eq!(e.num_hits(""), 0);
    }

    #[test]
    fn search_returns_snippets_containing_phrase() {
        let e = engine();
        let snippets = e.search(r#""departure cities such as""#, 5);
        assert_eq!(snippets.len(), 1);
        assert!(snippets[0].text.contains("departure cities such as Boston, Chicago, and LAX"),
            "snippet: {}", snippets[0].text);
    }

    #[test]
    fn search_respects_k() {
        let e = engine();
        assert_eq!(e.search("boston", 2).len(), 2);
        assert_eq!(e.search("boston", 10).len(), 3);
    }

    #[test]
    fn keyword_conjunction() {
        let e = engine();
        assert_eq!(e.num_hits("boston chicago"), 2);
        assert_eq!(e.num_hits("boston gardening"), 0);
    }

    #[test]
    fn exclusion_filters_documents() {
        let e = engine();
        let with = e.num_hits("boston");
        let without = e.num_hits("boston -chicago");
        assert!(without < with, "{without} !< {with}");
        assert_eq!(e.num_hits("boston -boston"), 0);
    }

    #[test]
    fn multiple_phrases_intersect() {
        let e = engine();
        assert_eq!(e.num_hits(r#""such as" "fly from""#), 1);
    }

    #[test]
    fn stats_count_queries() {
        let e = engine();
        let _ = e.search("boston", 3);
        let _ = e.num_hits("boston");
        let _ = e.num_hits("delta");
        assert_eq!(e.stats().search_queries(), 1);
        assert_eq!(e.stats().hit_queries(), 2);
        assert_eq!(e.stats().total(), 3);
        e.stats().reset();
        assert_eq!(e.stats().total(), 0);
    }

    #[test]
    fn hit_cache_returns_consistent_results() {
        let e = engine();
        let a = e.num_hits(r#""cities such as""#);
        let b = e.num_hits(r#""cities such as""#);
        assert_eq!(a, b);
    }

    #[test]
    fn snippet_window_has_left_context() {
        let e = engine();
        let snippets = e.search(r#""cities such as" +host"#, 5);
        assert_eq!(snippets.len(), 1);
        assert!(snippets[0].text.starts_with("cities such as"));
    }

    #[test]
    fn empty_corpus() {
        let e = SearchEngine::new(Corpus::default());
        assert_eq!(e.num_hits("anything"), 0);
        assert!(e.search("anything", 5).is_empty());
    }
}
