//! Document collection backing the simulated Surface Web.

/// One Surface-Web "page".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// Stable document id (index into the corpus).
    pub id: u32,
    /// Plain text of the page.
    pub text: String,
}

/// An immutable collection of documents.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    docs: Vec<Document>,
}

impl Corpus {
    /// Build a corpus from page texts; ids are assigned sequentially.
    pub fn from_texts<I, S>(texts: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let docs = texts
            .into_iter()
            .enumerate()
            .map(|(i, t)| Document {
                id: i as u32,
                text: t.into(),
            })
            .collect();
        Corpus { docs }
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when the corpus holds no documents.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Document by id.
    pub fn get(&self, id: u32) -> Option<&Document> {
        self.docs.get(id as usize)
    }

    /// Iterate documents in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Document> {
        self.docs.iter()
    }

    /// All documents as a slice, in id order.
    pub fn docs(&self) -> &[Document] {
        &self.docs
    }

    /// Append a document, returning its id.
    pub fn push(&mut self, text: impl Into<String>) -> u32 {
        let id = self.docs.len() as u32;
        self.docs.push(Document {
            id,
            text: text.into(),
        });
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_ids() {
        let c = Corpus::from_texts(["a", "b", "c"]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(1).map(|d| d.text.as_str()), Some("b"));
        assert_eq!(c.get(3), None);
    }

    #[test]
    fn push_appends() {
        let mut c = Corpus::default();
        assert!(c.is_empty());
        assert_eq!(c.push("x"), 0);
        assert_eq!(c.push("y"), 1);
        assert_eq!(c.len(), 2);
    }
}
