//! Synthetic Surface-Web corpus generation.
//!
//! The paper queried Google over the 2006 Web; we regenerate the *relevant
//! statistical structure* of that Web from per-domain concept
//! specifications:
//!
//! - **Hearst-pattern sentences** (`departure cities such as Boston,
//!   Chicago, and LAX`) are what the extraction queries of Fig. 4 harvest;
//! - **proximity co-occurrences** (`Make: Honda, Model: Accord`) and
//!   **singleton patterns** (`the author of the book is J. K. Rowling`)
//!   feed the validation queries;
//! - **popularity skew** (Zipf-weighted instance mentions) creates the
//!   popularity bias that motivates PMI over raw hit counts;
//! - **confuser sentences** inject false completions that the outlier and
//!   Web-validation phases must remove;
//! - **noise documents** dilute everything, as the real Web does.
//!
//! Generation is fully deterministic given the seed.

use webiq_nlp::inflect;
use webiq_rng::{SliceRandom, StdRng};

use crate::corpus::Corpus;

/// Specification of one semantic concept appearing on the simulated Web.
#[derive(Debug, Clone)]
pub struct ConceptSpec {
    /// Stable identifier, e.g. `"airfare/city"`.
    pub key: String,
    /// Singular lexicalizations (noun phrases) the Web uses for this
    /// concept: `["departure city", "origin city", "city"]`. The first is
    /// the canonical one.
    pub lexicalizations: Vec<String>,
    /// The real-world object the concept belongs to (`"flight"`, `"book"`).
    pub object: String,
    /// Domain words sprinkled into pages so `+keyword` scoping works.
    pub domain_terms: Vec<String>,
    /// Instances in descending popularity order (Zipf-weighted).
    pub instances: Vec<String>,
    /// False completions occasionally emitted after cue phrases.
    pub confusers: Vec<String>,
    /// Relative Web coverage of the concept: scales the number of
    /// concept-focused documents (1.0 = the configured
    /// [`GenConfig::docs_per_concept`]; 0.0 = the Web never discusses this
    /// concept in extractable patterns).
    pub richness: f64,
}

impl ConceptSpec {
    /// Plural form of a lexicalization, pluralising the *head noun* —
    /// `"departure city"` → `"departure cities"`, `"class of service"` →
    /// `"classes of service"` — via the same chunker WebIQ's own label
    /// analysis uses.
    pub fn plural_of(lex: &str) -> String {
        match webiq_nlp::chunk::classify_label(lex) {
            webiq_nlp::chunk::LabelForm::NounPhrase(np) => np.plural_text(),
            _ => match lex.rsplit_once(' ') {
                Some((front, head)) => format!("{front} {}", inflect::pluralize(head)),
                None => inflect::pluralize(lex),
            },
        }
    }
}

/// Tuning knobs for corpus generation.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Documents generated per concept.
    pub docs_per_concept: usize,
    /// Pure-noise documents appended to the corpus.
    pub noise_docs: usize,
    /// Probability that a Hearst-pattern list contains one confuser.
    pub confuser_rate: f64,
    /// Mean number of instance-popularity documents for the most popular
    /// instance (scaled down the Zipf tail).
    pub popularity_docs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            docs_per_concept: 140,
            noise_docs: 150,
            confuser_rate: 0.18,
            popularity_docs: 12,
            seed: 0x5eed,
        }
    }
}

/// Zipf-weighted instance pick: instance `i` has weight `1/(i+1)^power`.
/// `power` = 1 gives the classic skew (popularity pages); the flatter 0.5
/// is used inside Hearst lists so tail instances still get enumerated.
fn pick_instance<'a>(rng: &mut StdRng, instances: &'a [String], power: f64) -> Option<&'a str> {
    if instances.is_empty() {
        return None;
    }
    let weights: Vec<f64> = (0..instances.len())
        .map(|i| 1.0 / (i as f64 + 1.0).powf(power))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut roll = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if roll < *w {
            return Some(&instances[i]);
        }
        roll -= w;
    }
    instances.last().map(String::as_str)
}

/// Pick `n` distinct instances, Zipf-weighted, preserving no particular
/// order. Returns fewer when the inventory is small.
fn pick_distinct<'a>(rng: &mut StdRng, instances: &'a [String], n: usize) -> Vec<&'a str> {
    let mut out: Vec<&str> = Vec::new();
    let mut attempts = 0;
    while out.len() < n.min(instances.len()) && attempts < 50 {
        attempts += 1;
        if let Some(inst) = pick_instance(rng, instances, 0.5) {
            if !out.contains(&inst) {
                out.push(inst);
            }
        }
    }
    out
}

/// Render a comma list with Oxford `and`.
fn comma_list(items: &[&str]) -> String {
    match items {
        [] => String::new(),
        [only] => (*only).to_string(),
        [a, b] => format!("{a} and {b}"),
        _ => match items.split_last() {
            Some((last, head)) => format!("{}, and {last}", head.join(", ")),
            None => String::new(),
        },
    }
}

/// Generate the sentences of one concept-focused document. `siblings` are
/// the other concepts of the same domain: real pages that enumerate
/// authors also mention titles and ISBNs, which is what makes the paper's
/// sibling-keyword query scoping ("authors such as" +book +title)
/// effective.
fn concept_sentences(
    rng: &mut StdRng,
    c: &ConceptSpec,
    siblings: &[&ConceptSpec],
    confuser_rate: f64,
) -> Vec<String> {
    let Some(lex) = c.lexicalizations.choose(rng).map(String::as_str) else {
        return Vec::new();
    };
    let plural = ConceptSpec::plural_of(lex);
    let mut sentences = Vec::new();
    // Template mix: Hearst set patterns dominate (they are what the real
    // Web's enumeration pages look like), followed by proximity mentions
    // and singleton patterns.
    static TEMPLATES: &[u8] = &[0, 0, 0, 1, 1, 2, 2, 3, 4, 5, 6, 7, 8, 8, 8, 9];
    let n_sent = rng.gen_range(2..=4);
    for _ in 0..n_sent {
        let template = TEMPLATES.choose(rng).copied().unwrap_or(0);
        let list_len = rng.gen_range(2..=4usize);
        let mut items: Vec<&str> = pick_distinct(rng, &c.instances, list_len);
        if items.is_empty() {
            continue;
        }
        // Occasionally poison a list with a confuser (false completion).
        if !c.confusers.is_empty() && rng.gen_bool(confuser_rate) {
            if let Some(confuser) = c.confusers.choose(rng) {
                items.push(confuser.as_str());
            }
        }
        let Some(&x) = items.first() else { continue };
        let s = match template {
            // Hearst set patterns s1–s4
            0 => format!(
                "Popular {plural} such as {} are listed on this page.",
                comma_list(&items)
            ),
            1 => format!("We feature such {plural} as {}.", comma_list(&items)),
            2 => format!("{plural} including {} are available.", comma_list(&items)),
            3 => format!("{}, and other {plural}.", comma_list(&items)),
            // singleton patterns g1–g4
            4 => format!("The {lex} of the {} is {x}.", c.object),
            5 => format!("{x} is the {lex} of the {}.", c.object),
            6 => format!("{x} is the {lex}."),
            7 => format!("The {lex} is {x}."),
            // proximity patterns
            8 => format!("{}: {x}.", capitalize(lex)),
            _ => format!("Find the {} by {lex} {x}.", c.object),
        };
        sentences.push(s);
    }
    // sibling-concept mentions: half the pages carry a proximity line for
    // one or two other attributes of the same domain
    if !siblings.is_empty() && rng.gen_bool(0.5) {
        let n = rng.gen_range(1..=2usize.min(siblings.len()));
        for _ in 0..n {
            let Some(sib) = siblings.choose(rng) else {
                continue;
            };
            let (Some(lex), Some(x)) = (
                sib.lexicalizations.first(),
                pick_instance(rng, &sib.instances, 0.5),
            ) else {
                continue;
            };
            sentences.push(format!("{}: {x}.", capitalize(lex)));
        }
    }
    // domain scatter so `+domain` keyword restrictions match
    if !c.domain_terms.is_empty() && rng.gen_bool(0.8) {
        sentences.push(format!(
            "This page is about {}.",
            c.domain_terms.join(" and ")
        ));
    }
    sentences
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

/// Filler vocabulary for noise pages.
static NOISE_WORDS: &[&str] = &[
    "garden", "weather", "recipe", "soccer", "news", "music", "forum", "photo", "holiday",
    "museum", "review", "tutorial", "history", "concert", "festival", "market", "gallery",
    "village", "bridge", "mountain", "river", "cooking",
];

/// Generate the full corpus for a set of concepts.
pub fn generate(concepts: &[ConceptSpec], config: &GenConfig) -> Corpus {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut corpus = Corpus::default();

    // Domain grouping (key prefix up to '/') so sibling mentions stay
    // within a domain when corpora for several domains are merged.
    let domain_of = |c: &ConceptSpec| c.key.split('/').next().unwrap_or("").to_string();

    for c in concepts {
        let domain = domain_of(c);
        let siblings: Vec<&ConceptSpec> = concepts
            .iter()
            .filter(|s| s.key != c.key && domain_of(s) == domain)
            .collect();
        // concept-focused pages, scaled by the concept's Web richness
        let n_docs = (config.docs_per_concept as f64 * c.richness).round() as usize;
        for _ in 0..n_docs {
            let sentences = concept_sentences(&mut rng, c, &siblings, config.confuser_rate);
            if !sentences.is_empty() {
                corpus.push(sentences.join(" "));
            }
        }
        // instance-popularity pages: instance mentioned *without* the
        // concept, inflating NumHits(x) for popular instances.
        for (rank, instance) in c.instances.iter().enumerate() {
            let docs = (config.popularity_docs as f64 / (rank as f64 + 1.0)).ceil() as usize;
            for _ in 0..docs {
                let filler = NOISE_WORDS.choose(&mut rng).copied().unwrap_or("article");
                corpus.push(format!(
                    "{instance} appears in this {filler} article. Read more about {instance}."
                ));
            }
        }
    }

    // pure-noise pages
    for _ in 0..config.noise_docs {
        let n = rng.gen_range(6..=14);
        let words: Vec<&str> = (0..n)
            .filter_map(|_| NOISE_WORDS.choose(&mut rng).copied())
            .collect();
        corpus.push(format!("{}.", words.join(" ")));
    }
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SearchEngine;

    fn city_concept() -> ConceptSpec {
        ConceptSpec {
            key: "airfare/city".into(),
            lexicalizations: vec!["departure city".into(), "city".into()],
            object: "flight".into(),
            domain_terms: vec!["airfare".into(), "travel".into()],
            instances: vec![
                "Boston".into(),
                "Chicago".into(),
                "Denver".into(),
                "Seattle".into(),
                "Atlanta".into(),
                "Portland".into(),
            ],
            confusers: vec!["the following options".into()],
            richness: 1.0,
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let c = [city_concept()];
        let cfg = GenConfig::default();
        let a = generate(&c, &cfg);
        let b = generate(&c, &cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.text, y.text);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let c = [city_concept()];
        let a = generate(
            &c,
            &GenConfig {
                seed: 1,
                ..GenConfig::default()
            },
        );
        let b = generate(
            &c,
            &GenConfig {
                seed: 2,
                ..GenConfig::default()
            },
        );
        let same = a.iter().zip(b.iter()).all(|(x, y)| x.text == y.text);
        assert!(!same);
    }

    #[test]
    fn hearst_patterns_are_searchable() {
        let c = [city_concept()];
        let corpus = generate(&c, &GenConfig::default());
        let engine = SearchEngine::new(corpus).expect("engine");
        // At least one of the cue phrases must be present and completed by
        // instances.
        let hits = engine.num_hits(r#""departure cities such as""#)
            + engine.num_hits(r#""such departure cities as""#)
            + engine.num_hits(r#""departure cities including""#)
            + engine.num_hits(r#""and other departure cities""#);
        assert!(hits > 0, "no Hearst sentences generated");
    }

    #[test]
    fn popular_instances_have_more_hits() {
        let c = [city_concept()];
        let corpus = generate(&c, &GenConfig::default());
        let engine = SearchEngine::new(corpus).expect("engine");
        let boston = engine.num_hits("boston");
        let portland = engine.num_hits("portland");
        assert!(
            boston > portland,
            "popularity skew missing: boston={boston} portland={portland}"
        );
    }

    #[test]
    fn domain_terms_present() {
        let c = [city_concept()];
        let corpus = generate(&c, &GenConfig::default());
        let engine = SearchEngine::new(corpus).expect("engine");
        assert!(engine.num_hits("airfare") > 0);
    }

    #[test]
    fn noise_docs_generated() {
        let corpus = generate(
            &[],
            &GenConfig {
                noise_docs: 10,
                ..GenConfig::default()
            },
        );
        assert_eq!(corpus.len(), 10);
    }

    #[test]
    fn plural_of_multiword() {
        assert_eq!(ConceptSpec::plural_of("departure city"), "departure cities");
        assert_eq!(ConceptSpec::plural_of("airline"), "airlines");
    }

    #[test]
    fn comma_list_forms() {
        assert_eq!(comma_list(&[]), "");
        assert_eq!(comma_list(&["a"]), "a");
        assert_eq!(comma_list(&["a", "b"]), "a and b");
        assert_eq!(comma_list(&["a", "b", "c"]), "a, b, and c");
    }

    #[test]
    fn empty_instance_list_yields_no_concept_pages() {
        let mut c = city_concept();
        c.instances.clear();
        let corpus = generate(
            &[c],
            &GenConfig {
                noise_docs: 0,
                ..GenConfig::default()
            },
        );
        // only the domain-scatter sentences may appear; concept pages with
        // no instances produce either nothing or domain-only pages
        for d in corpus.iter() {
            assert!(!d.text.contains("such as ,"));
        }
    }
}
