//! # webiq-web — the Surface-Web simulator
//!
//! WebIQ discovers and validates attribute instances by querying a search
//! engine (Google's Web API in the paper). This crate stands in for that
//! dependency with a deterministic, in-process engine exposing the same
//! two operations WebIQ uses:
//!
//! - [`engine::SearchEngine::search`] — top-k result snippets for an
//!   extraction query;
//! - [`engine::SearchEngine::num_hits`] — hit counts for validation
//!   queries (the `NumHits` oracle feeding PMI).
//!
//! Queries use Google's 2006 conjunctive syntax (`"quoted phrase"
//! +keyword`). Documents come either from caller-supplied text or from the
//! [`gen`] corpus generator, which reproduces the statistical structure the
//! paper relied on: Hearst-pattern sentences, proximity co-occurrences,
//! Zipf popularity skew, false completions, and noise.
#![forbid(unsafe_code)]

pub mod cache;
pub mod corpus;
pub mod engine;
pub mod error;
pub mod gen;
pub mod index;
pub mod query;

pub use corpus::{Corpus, Document};
pub use engine::{EngineStats, QueryEngine, SearchEngine, Snippet};
pub use error::WebError;
pub use gen::{generate, ConceptSpec, GenConfig};
pub use query::Query;
