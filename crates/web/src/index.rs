//! Positional inverted index.
//!
//! Maps each term to its postings — `(doc, positions)` pairs — enabling
//! both boolean keyword matching and exact phrase matching by position
//! intersection, the two operations Google's 2006 query subset needs.

// lint:deterministic

use std::collections::HashMap;

use crate::corpus::Corpus;
use crate::error::WebError;
use crate::query::webiq_nlp_like_tokens;

/// Postings for one term: documents and in-document token positions,
/// both ascending.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Postings {
    /// `(doc_id, positions)` sorted by doc id; positions sorted ascending.
    pub docs: Vec<(u32, Vec<u32>)>,
}

impl Postings {
    /// Number of documents containing the term.
    pub fn doc_count(&self) -> usize {
        self.docs.len()
    }
}

/// The inverted index over a corpus.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InvertedIndex {
    terms: HashMap<String, Postings>,
    doc_count: usize,
}

/// Corpora below this size are indexed sequentially: chunking overhead
/// would dominate.
const PARALLEL_BUILD_MIN_DOCS: usize = 256;

/// Worker count for index building: `WEBIQ_THREADS` if set and valid,
/// otherwise the machine's available parallelism.
fn build_threads() -> usize {
    std::env::var("WEBIQ_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
}

/// Tokenize a contiguous run of documents into a partial term map.
/// Documents arrive in id order, so per-term doc lists come out ascending.
fn index_chunk(docs: &[crate::corpus::Document]) -> HashMap<String, Postings> {
    let mut terms: HashMap<String, Postings> = HashMap::new();
    for doc in docs {
        for (pos, tok) in webiq_nlp_like_tokens(&doc.text).into_iter().enumerate() {
            let postings = terms.entry(tok).or_default();
            match postings.docs.last_mut() {
                Some((d, positions)) if *d == doc.id => positions.push(pos as u32),
                _ => postings.docs.push((doc.id, vec![pos as u32])),
            }
        }
    }
    terms
}

impl InvertedIndex {
    /// Build the index by tokenizing every document.
    ///
    /// Large corpora are split into contiguous document-range chunks
    /// indexed on a scoped worker pool; the partial term maps are merged
    /// in chunk order, so postings stay ascending and the result is
    /// byte-identical to a sequential build regardless of thread count.
    ///
    /// Fails with [`WebError::IndexWorkerFailed`] if a build worker
    /// terminates abnormally.
    pub fn build(corpus: &Corpus) -> Result<Self, WebError> {
        Self::build_with_threads(corpus, build_threads())
    }

    /// [`InvertedIndex::build`] with an explicit worker count.
    pub fn build_with_threads(corpus: &Corpus, threads: usize) -> Result<Self, WebError> {
        let docs = corpus.docs();
        let threads = threads.max(1);
        if threads == 1 || docs.len() < PARALLEL_BUILD_MIN_DOCS {
            return Ok(InvertedIndex {
                terms: index_chunk(docs),
                doc_count: corpus.len(),
            });
        }
        let chunk_size = docs.len().div_ceil(threads);
        let chunks: Vec<&[crate::corpus::Document]> = docs.chunks(chunk_size).collect();
        let mut terms: HashMap<String, Postings> = HashMap::new();
        std::thread::scope(|scope| -> Result<(), WebError> {
            let handles: Vec<_> = chunks
                .iter()
                .map(|chunk| scope.spawn(move || index_chunk(chunk)))
                .collect();
            // Merge joined chunks in spawn order: chunk i covers strictly
            // smaller doc ids than chunk i+1, so appending keeps every
            // posting list ascending.
            for h in handles {
                let partial: HashMap<String, Postings> =
                    h.join().map_err(|_| WebError::IndexWorkerFailed)?;
                // Audited re-sort: per-term appends commute, and every read path
                // (postings, term dumps) sorts before emission, so this iteration
                // order is unobservable. The flow-taint pass keys off this allow.
                // lint:allow(hash-iter) audited re-sort; order unobservable past the read paths
                for (term, mut postings) in partial {
                    terms
                        .entry(term)
                        .or_default()
                        .docs
                        .append(&mut postings.docs);
                }
            }
            Ok(())
        })?;
        Ok(InvertedIndex {
            terms,
            doc_count: corpus.len(),
        })
    }

    /// Total number of indexed documents.
    pub fn doc_count(&self) -> usize {
        self.doc_count
    }

    /// Postings for a term (lowercase).
    pub fn postings(&self, term: &str) -> Option<&Postings> {
        self.terms.get(term)
    }

    /// Documents containing `term`, ascending.
    pub fn term_docs(&self, term: &str) -> Vec<u32> {
        self.terms
            .get(term)
            .map(|p| p.docs.iter().map(|(d, _)| *d).collect())
            .unwrap_or_default()
    }

    /// Documents containing the exact `phrase` (sequence of lowercase
    /// tokens), ascending, along with the first match position in each.
    pub fn phrase_docs(&self, phrase: &[String]) -> Vec<(u32, u32)> {
        let Some(first) = phrase.first() else {
            return Vec::new();
        };
        let Some(first_postings) = self.terms.get(first) else {
            return Vec::new();
        };
        if phrase.len() == 1 {
            return first_postings
                .docs
                .iter()
                .filter_map(|(d, ps)| ps.first().map(|&p| (*d, p)))
                .collect();
        }
        // For each doc containing the first term, check each start position.
        let mut rest: Vec<&Postings> = Vec::with_capacity(phrase.len().saturating_sub(1));
        for t in phrase.iter().skip(1) {
            match self.terms.get(t) {
                Some(p) => rest.push(p),
                None => return Vec::new(),
            }
        }
        let mut out = Vec::new();
        'docs: for (doc, starts) in &first_postings.docs {
            // positions of each subsequent term in this doc
            let mut positions: Vec<&[u32]> = Vec::with_capacity(rest.len());
            for p in &rest {
                match p.docs.binary_search_by_key(doc, |(d, _)| *d) {
                    Ok(idx) => match p.docs.get(idx) {
                        Some((_, ps)) => positions.push(ps.as_slice()),
                        None => continue 'docs,
                    },
                    Err(_) => continue 'docs,
                }
            }
            for &s in starts {
                let matched = positions
                    .iter()
                    .enumerate()
                    .all(|(off, ps)| ps.binary_search(&(s + off as u32 + 1)).is_ok());
                if matched {
                    out.push((*doc, s));
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        Corpus::from_texts([
            "airlines such as Delta and United fly from Boston",
            "Delta is an airline based in Atlanta",
            "cities such as Boston and Chicago",
        ])
    }

    #[test]
    fn term_lookup() {
        let idx = InvertedIndex::build(&corpus()).expect("build");
        assert_eq!(idx.term_docs("delta"), vec![0, 1]);
        assert_eq!(idx.term_docs("boston"), vec![0, 2]);
        assert_eq!(idx.term_docs("zurich"), Vec::<u32>::new());
        assert_eq!(idx.doc_count(), 3);
    }

    #[test]
    fn positions_recorded() {
        let idx = InvertedIndex::build(&corpus()).expect("build");
        let p = idx.postings("such").expect("postings");
        assert_eq!(p.doc_count(), 2);
        assert_eq!(p.docs[0], (0, vec![1]));
    }

    #[test]
    fn phrase_match() {
        let idx = InvertedIndex::build(&corpus()).expect("build");
        let phrase: Vec<String> = ["airlines", "such", "as"].map(String::from).to_vec();
        assert_eq!(idx.phrase_docs(&phrase), vec![(0, 0)]);
        let phrase: Vec<String> = ["such", "as"].map(String::from).to_vec();
        assert_eq!(idx.phrase_docs(&phrase).len(), 2);
    }

    #[test]
    fn phrase_requires_adjacency() {
        let idx = InvertedIndex::build(&corpus()).expect("build");
        let phrase: Vec<String> = ["delta", "united"].map(String::from).to_vec();
        assert!(idx.phrase_docs(&phrase).is_empty());
    }

    #[test]
    fn phrase_with_unknown_term() {
        let idx = InvertedIndex::build(&corpus()).expect("build");
        let phrase: Vec<String> = ["such", "zebras"].map(String::from).to_vec();
        assert!(idx.phrase_docs(&phrase).is_empty());
    }

    #[test]
    fn single_word_phrase() {
        let idx = InvertedIndex::build(&corpus()).expect("build");
        let phrase = vec!["boston".to_string()];
        assert_eq!(idx.phrase_docs(&phrase).len(), 2);
    }

    #[test]
    fn empty_phrase() {
        let idx = InvertedIndex::build(&corpus()).expect("build");
        assert!(idx.phrase_docs(&[]).is_empty());
    }

    #[test]
    fn repeated_term_in_doc() {
        let c = Corpus::from_texts(["boston boston boston"]);
        let idx = InvertedIndex::build(&c).expect("build");
        assert_eq!(idx.postings("boston").expect("p").docs[0].1, vec![0, 1, 2]);
    }

    #[test]
    fn parallel_build_matches_sequential() {
        // A corpus large enough to clear the parallel threshold, with
        // repeated vocabulary so terms span chunk boundaries.
        let texts: Vec<String> = (0..600)
            .map(|i| {
                format!(
                    "city{} flights depart from hub{} such as terminal{} daily",
                    i % 37,
                    i % 11,
                    i % 5
                )
            })
            .collect();
        let c = Corpus::from_texts(texts);
        let seq = InvertedIndex::build_with_threads(&c, 1).expect("build");
        for threads in [2, 3, 4, 8] {
            let par = InvertedIndex::build_with_threads(&c, threads).expect("build");
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn build_with_more_threads_than_docs() {
        let c = Corpus::from_texts(["one doc"]);
        let idx = InvertedIndex::build_with_threads(&c, 64).expect("build");
        assert_eq!(idx.term_docs("doc"), vec![0]);
    }
}
