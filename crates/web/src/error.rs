//! Error type for the Surface-Web simulator.
//!
//! Fallible entry points of this crate (`SearchEngine::new`,
//! `InvertedIndex::build*`) return [`WebError`] instead of panicking, so
//! callers — ultimately `webiq-core`'s `WebIqError` — can surface
//! construction failures as data rather than crashes.

use std::fmt;

/// Failure raised while building the Surface-Web simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WebError {
    /// A parallel index-build worker terminated abnormally.
    IndexWorkerFailed,
}

impl fmt::Display for WebError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WebError::IndexWorkerFailed => {
                write!(f, "a parallel index-build worker terminated abnormally")
            }
        }
    }
}

impl std::error::Error for WebError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_stable() {
        assert_eq!(
            WebError::IndexWorkerFailed.to_string(),
            "a parallel index-build worker terminated abnormally"
        );
    }
}
