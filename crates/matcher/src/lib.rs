//! # webiq-match — the IceQ-style interface matcher
//!
//! The matching system WebIQ plugs into (§5): attributes across a domain's
//! query interfaces are grouped by constrained agglomerative clustering
//! over `Sim(A,B) = α·LabelSim + β·DomSim` (α = 0.6, β = 0.4, τ ∈ {0,
//! 0.1}).
//!
//! - [`labelsim`] — cosine over stemmed, stopword-filtered label vectors;
//! - [`domsim`] — type- and value-based domain similarity;
//! - [`cluster`] — average-link agglomerative clustering with the
//!   same-interface exclusion constraint;
//! - [`metrics`] — pairwise precision / recall / F-1;
//! - [`icq`] — the assembled matcher and its evaluation entry points;
//! - [`learn`] — the interactive threshold learning the paper's IceQ ran
//!   in manual mode (τ = 0.1 was "about the average of the thresholds
//!   learned for the five domains").
#![forbid(unsafe_code)]

pub mod cluster;
pub mod domsim;
pub mod icq;
pub mod labelsim;
pub mod learn;
pub mod metrics;

pub use icq::{
    attributes_of, match_attributes, match_dataset, similarity, MatchAttribute, MatchConfig,
    MatchResult,
};
pub use learn::{learn_threshold, GoldOracle, LearnedThreshold, MatchOracle};
pub use metrics::PrF1;
