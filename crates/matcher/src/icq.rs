//! The IceQ-style interface matcher (§5).
//!
//! `Sim(A, B) = α · LabelSim(A, B) + β · DomSim(A, B)` with α = 0.6 and
//! β = 0.4 (the paper's settings, taken from [28]); attributes are grouped
//! by constrained agglomerative clustering with threshold τ (0 for the
//! unthresholded runs, 0.1 for the thresholded ones).

use std::collections::BTreeSet;

use webiq_data::gold;
use webiq_data::interface::{AttrRef, Dataset};

use crate::cluster::{self, Item};
use crate::domsim;
use crate::labelsim;
use crate::metrics::PrF1;

/// Matcher configuration.
#[derive(Debug, Clone, Copy)]
pub struct MatchConfig {
    /// Weight of label similarity (paper: 0.6).
    pub alpha: f64,
    /// Weight of domain similarity (paper: 0.4).
    pub beta: f64,
    /// Clustering threshold τ (paper: 0 or 0.1).
    pub threshold: f64,
}

impl Default for MatchConfig {
    fn default() -> Self {
        MatchConfig {
            alpha: 0.6,
            beta: 0.4,
            threshold: 0.0,
        }
    }
}

impl MatchConfig {
    /// The paper's thresholded configuration (τ = 0.1).
    pub fn with_threshold(threshold: f64) -> Self {
        MatchConfig {
            threshold,
            ..MatchConfig::default()
        }
    }
}

/// One attribute as the matcher sees it: a label and a value set (the
/// pre-defined instances plus anything WebIQ acquired).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchAttribute {
    /// Stable reference back into the dataset.
    pub r: AttrRef,
    /// The attribute's label.
    pub label: String,
    /// All known instances (pre-defined + acquired).
    pub values: Vec<String>,
}

/// Build matcher inputs straight from a dataset (no acquisition — the
/// baseline IceQ configuration).
pub fn attributes_of(ds: &Dataset) -> Vec<MatchAttribute> {
    ds.attributes()
        .map(|(r, a)| MatchAttribute {
            r,
            label: a.label.clone(),
            values: a.instances.clone(),
        })
        .collect()
}

/// The combined similarity of two attributes.
pub fn similarity(a: &MatchAttribute, b: &MatchAttribute, cfg: &MatchConfig) -> f64 {
    let ls = labelsim::label_sim(&a.label, &b.label);
    let ds = domsim::dom_sim(&a.values, &b.values);
    cfg.alpha * ls + cfg.beta * ds
}

/// Result of a matching run.
#[derive(Debug, Clone)]
pub struct MatchResult {
    /// Output clusters of attribute references.
    pub clusters: Vec<Vec<AttrRef>>,
}

impl MatchResult {
    /// The predicted match pairs (normalised).
    pub fn pairs(&self) -> BTreeSet<(AttrRef, AttrRef)> {
        gold::cluster_pairs(&self.clusters)
    }

    /// Evaluate against a dataset's gold standard.
    pub fn evaluate(&self, ds: &Dataset) -> PrF1 {
        PrF1::from_pairs(&self.pairs(), &gold::gold_pairs(ds))
    }
}

/// Run the matcher over a set of attributes.
///
/// Every merge performed by the clustering loop is recorded as a
/// `cluster_merge` decision (via [`webiq_why::record::cluster_merge`]) for
/// the merge's representative pair, carrying the average-link score, the
/// threshold τ, and the pair's pure label/domain similarity components.
/// Recording is a no-op unless the caller runs inside a traced item.
pub fn match_attributes(attrs: &[MatchAttribute], cfg: &MatchConfig) -> MatchResult {
    let items: Vec<Item<AttrRef>> = attrs
        .iter()
        .map(|a| Item {
            id: a.r,
            interface: a.r.0,
        })
        .collect();
    let sim = cluster::similarity_matrix(&items, |i, j| similarity(&attrs[i], &attrs[j], cfg));
    let (clusters, merges) = cluster::cluster_logged(&items, &sim, cfg.threshold);
    for ev in &merges {
        let (Some(a), Some(b)) = (
            attrs.iter().find(|x| x.r == ev.a),
            attrs.iter().find(|x| x.r == ev.b),
        ) else {
            continue;
        };
        // label_sim / dom_sim are pure: recomputing them for the
        // representative pair adds evidence without perturbing any
        // counter or engine-call sequence.
        webiq_why::record::cluster_merge(
            &format!("({}, {})", a.label, b.label),
            &[
                ("score", ev.score),
                ("threshold", cfg.threshold),
                ("label_sim", labelsim::label_sim(&a.label, &b.label)),
                ("dom_sim", domsim::dom_sim(&a.values, &b.values)),
                ("alpha", cfg.alpha),
                ("beta", cfg.beta),
            ],
        );
    }
    MatchResult {
        clusters: clusters
            .into_iter()
            .map(|c| c.into_iter().map(|i| attrs[i].r).collect())
            .collect(),
    }
}

/// Convenience: run the baseline matcher directly on a dataset.
pub fn match_dataset(ds: &Dataset, cfg: &MatchConfig) -> MatchResult {
    match_attributes(&attributes_of(ds), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use webiq_data::{generate_domain, kb, GenOptions};

    #[test]
    fn identical_attributes_cluster() {
        let attrs = vec![
            MatchAttribute {
                r: (0, 0),
                label: "Airline".into(),
                values: vec!["Delta".into()],
            },
            MatchAttribute {
                r: (1, 0),
                label: "Airline".into(),
                values: vec!["Delta".into()],
            },
        ];
        let result = match_attributes(&attrs, &MatchConfig::default());
        assert_eq!(result.clusters.len(), 1);
    }

    #[test]
    fn label_only_synonyms_do_not_cluster_without_instances() {
        // Airline vs Carrier with no instances: Sim = 0 → separate.
        let attrs = vec![
            MatchAttribute {
                r: (0, 0),
                label: "Airline".into(),
                values: vec![],
            },
            MatchAttribute {
                r: (1, 0),
                label: "Carrier".into(),
                values: vec![],
            },
        ];
        let result = match_attributes(&attrs, &MatchConfig::default());
        assert_eq!(result.clusters.len(), 2);
    }

    #[test]
    fn instances_bridge_synonym_labels() {
        // With overlapping acquired instances, Airline and Carrier merge.
        let vals: Vec<String> = ["Delta", "United", "Aer Lingus"]
            .iter()
            .map(|s| (*s).to_string())
            .collect();
        let attrs = vec![
            MatchAttribute {
                r: (0, 0),
                label: "Airline".into(),
                values: vals.clone(),
            },
            MatchAttribute {
                r: (1, 0),
                label: "Carrier".into(),
                values: vals,
            },
        ];
        let result = match_attributes(&attrs, &MatchConfig::default());
        assert_eq!(result.clusters.len(), 1);
    }

    #[test]
    fn ambiguous_labels_resolved_by_instances() {
        // B1 = Departure city must match A1 = From city, not A2 = Departure
        // date, once instances disambiguate.
        let cities: Vec<String> = ["Boston", "Chicago"]
            .iter()
            .map(|s| (*s).to_string())
            .collect();
        let months: Vec<String> = ["Jan", "Feb"].iter().map(|s| (*s).to_string()).collect();
        let attrs = vec![
            MatchAttribute {
                r: (0, 0),
                label: "From city".into(),
                values: cities.clone(),
            },
            MatchAttribute {
                r: (0, 1),
                label: "Departure date".into(),
                values: months,
            },
            MatchAttribute {
                r: (1, 0),
                label: "Departure city".into(),
                values: cities,
            },
        ];
        let result = match_attributes(&attrs, &MatchConfig::with_threshold(0.1));
        let cluster_of = |r: AttrRef| {
            result
                .clusters
                .iter()
                .position(|c| c.contains(&r))
                .expect("attr is in some cluster")
        };
        assert_eq!(cluster_of((0, 0)), cluster_of((1, 0)));
        assert_ne!(cluster_of((0, 1)), cluster_of((1, 0)));
    }

    #[test]
    fn baseline_on_generated_dataset_is_reasonable() {
        // Baseline IceQ on the generated book domain: the paper's baselines
        // sit in the 85–93 % F-1 band; ours must land in the same regime.
        let def = kb::domain("book").expect("domain");
        let ds = generate_domain(def, &GenOptions::default());
        let result = match_dataset(&ds, &MatchConfig::default());
        let m = result.evaluate(&ds);
        assert!(m.f1 > 0.6, "baseline book F1 = {:.3}", m.f1);
        assert!(
            m.f1 < 1.0,
            "baseline must not be perfect (or WebIQ has nothing to add)"
        );
    }

    #[test]
    fn thresholding_never_hurts_precision() {
        let def = kb::domain("auto").expect("domain");
        let ds = generate_domain(def, &GenOptions::default());
        let loose = match_dataset(&ds, &MatchConfig::default()).evaluate(&ds);
        let tight = match_dataset(&ds, &MatchConfig::with_threshold(0.1)).evaluate(&ds);
        assert!(
            tight.precision >= loose.precision - 1e-9,
            "precision {:.3} -> {:.3}",
            loose.precision,
            tight.precision
        );
    }

    #[test]
    fn evaluate_perfect_when_clusters_equal_gold() {
        let def = kb::domain("job").expect("domain");
        let ds = generate_domain(def, &GenOptions::default());
        let gold_clusters = webiq_data::gold::gold_clusters(&ds);
        let result = MatchResult {
            clusters: gold_clusters,
        };
        let m = result.evaluate(&ds);
        assert_eq!(m.f1, 1.0);
    }
}
