//! Interactive threshold learning — the part of IceQ the paper runs in
//! manual mode.
//!
//! §5: "During the clustering process IceQ can also interact with the user
//! to automatically learn a thresholding value. However, in the current
//! implementation we employ only the automatic version of IceQ, and set
//! the threshold manually" — to 0.1, "about the average of the thresholds
//! learned for the five domains in [28]".
//!
//! This module implements the learning loop the paper references: a small
//! budget of match/no-match questions to an oracle (the user in IceQ; any
//! [`MatchOracle`] here, including a gold-standard-backed one for
//! experiments), asked about actual merge decisions sampled across the
//! merge-score range; the threshold minimising the density-weighted
//! misclassification of the labelled merges is chosen (τ = 0 competes, so
//! pruning must earn its keep).

use std::collections::BTreeSet;

use webiq_data::interface::AttrRef;

use crate::cluster;
use crate::icq::{similarity, MatchAttribute, MatchConfig};

/// Answers match/no-match questions during threshold learning.
pub trait MatchOracle {
    /// Do attributes `a` and `b` match?
    fn matches(&mut self, a: AttrRef, b: AttrRef) -> bool;
}

/// An oracle backed by a gold pair set — the stand-in for the interactive
/// user in experiments.
#[derive(Debug, Clone)]
pub struct GoldOracle {
    gold: BTreeSet<(AttrRef, AttrRef)>,
    questions: usize,
}

impl GoldOracle {
    /// Build from gold pairs (as produced by `webiq_data::gold::gold_pairs`).
    pub fn new(gold: BTreeSet<(AttrRef, AttrRef)>) -> Self {
        GoldOracle { gold, questions: 0 }
    }

    /// How many questions have been asked.
    pub fn questions_asked(&self) -> usize {
        self.questions
    }
}

impl MatchOracle for GoldOracle {
    fn matches(&mut self, a: AttrRef, b: AttrRef) -> bool {
        self.questions += 1;
        let key = if a <= b { (a, b) } else { (b, a) };
        self.gold.contains(&key)
    }
}

/// Outcome of threshold learning.
#[derive(Debug, Clone, PartialEq)]
pub struct LearnedThreshold {
    /// The learned τ.
    pub threshold: f64,
    /// Questions asked.
    pub questions: usize,
    /// Labelled sample: `(similarity, oracle verdict)`.
    pub sample: Vec<(f64, bool)>,
}

/// Learn a clustering threshold from at most `budget` oracle questions.
///
/// The threshold governs *merge decisions*, whose average-link scores are
/// systematically lower than raw pairwise similarities (dilution across
/// cluster members). So the oracle is asked about actual **merge events**:
/// an unthresholded clustering run is replayed, its merge log is sampled
/// evenly across the *score range*, and the user confirms or rejects the
/// representative pair of each sampled merge. The threshold minimising
/// the density-weighted misclassification of the labelled merges is
/// returned (0 — prune nothing — competes as a candidate and wins when
/// every sampled merge was confirmed).
pub fn learn_threshold<O: MatchOracle>(
    attrs: &[MatchAttribute],
    cfg: &MatchConfig,
    oracle: &mut O,
    budget: usize,
) -> LearnedThreshold {
    let items: Vec<cluster::Item<AttrRef>> = attrs
        .iter()
        .map(|a| cluster::Item {
            id: a.r,
            interface: a.r.0,
        })
        .collect();
    let sim = cluster::similarity_matrix(&items, |i, j| similarity(&attrs[i], &attrs[j], cfg));
    let (_, log) = cluster::cluster_logged(&items, &sim, 0.0);
    if log.is_empty() || budget == 0 {
        return LearnedThreshold {
            threshold: 0.0,
            questions: 0,
            sample: Vec::new(),
        };
    }
    // Stratify by *score value*, not rank: unthresholded clustering
    // produces a long tail of near-zero merges that would otherwise hog
    // the budget and bias the estimate toward over-pruning.
    let mut by_score = log.clone();
    by_score.sort_by(|a, b| a.score.total_cmp(&b.score));
    let (Some(first), Some(last)) = (by_score.first(), by_score.last()) else {
        return LearnedThreshold {
            threshold: 0.0,
            questions: 0,
            sample: Vec::new(),
        };
    };
    let (lo, hi) = (first.score, last.score);
    let n = budget.min(by_score.len());
    let mut used = vec![false; by_score.len()];
    let mut sample = Vec::with_capacity(n);
    for k in 0..n {
        let target = if n == 1 {
            hi
        } else {
            lo + (hi - lo) * k as f64 / (n - 1) as f64
        };
        // nearest unused event by score
        let pick = (0..by_score.len()).filter(|&i| !used[i]).min_by(|&a, &b| {
            let da = by_score
                .get(a)
                .map_or(f64::INFINITY, |e| (e.score - target).abs());
            let db = by_score
                .get(b)
                .map_or(f64::INFINITY, |e| (e.score - target).abs());
            da.total_cmp(&db)
        });
        let Some(i) = pick else { break };
        used[i] = true;
        let event = by_score[i];
        sample.push((event.score, oracle.matches(event.a, event.b)));
    }

    // Each labelled merge stands for all the unlabelled merges nearest to
    // it in score (the value-stratified sample is sparse where the log is
    // dense); weight it accordingly when choosing the threshold.
    let weights: Vec<f64> = sample
        .iter()
        .map(|(s, _)| {
            log.iter()
                .filter(|e| {
                    let d = (e.score - s).abs();
                    sample
                        .iter()
                        .all(|(s2, _)| (e.score - s2).abs() >= d - 1e-12)
                })
                .count()
                .max(1) as f64
        })
        .collect();
    let threshold = weighted_min_error_threshold(&sample, &weights);
    LearnedThreshold {
        threshold,
        questions: sample.len(),
        sample,
    }
}

/// Choose the threshold minimising the *weighted* misclassification of the
/// labelled merges — a merge below the threshold is pruned (an error when
/// the oracle confirmed it), one above is kept (an error when the oracle
/// rejected it). τ = 0 (prune nothing) competes as a candidate, so a
/// threshold is only adopted when the evidence says pruning wins; ties
/// resolve toward the smaller τ.
fn weighted_min_error_threshold(sample: &[(f64, bool)], weights: &[f64]) -> f64 {
    let error_at = |t: f64| -> f64 {
        sample
            .iter()
            .zip(weights)
            .map(|((s, m), w)| {
                let kept = *s > t;
                if kept == *m {
                    0.0
                } else {
                    *w
                }
            })
            .sum()
    };
    let mut scores: Vec<f64> = sample.iter().map(|(s, _)| *s).collect();
    scores.sort_by(f64::total_cmp);
    scores.dedup();
    let mut candidates = vec![0.0];
    candidates.extend(scores.windows(2).map(|w| (w[0] + w[1]) / 2.0));
    let mut best = (f64::INFINITY, 0.0);
    for t in candidates {
        let e = error_at(t);
        if e < best.0 - 1e-12 {
            best = (e, t);
        }
    }
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr(r: AttrRef, label: &str, values: &[&str]) -> MatchAttribute {
        MatchAttribute {
            r,
            label: label.into(),
            values: values.iter().map(|s| (*s).to_string()).collect(),
        }
    }

    /// A small world: three city attributes that match, three date
    /// attributes that match, and cross pairs that must not.
    fn world() -> (Vec<MatchAttribute>, BTreeSet<(AttrRef, AttrRef)>) {
        let attrs = vec![
            attr((0, 0), "Departure city", &["Boston", "Chicago"]),
            attr((1, 0), "From city", &["Chicago", "Denver"]),
            attr((2, 0), "Departure city", &["Boston", "Denver"]),
            attr((0, 1), "Departure date", &["Jan", "Feb"]),
            attr((1, 1), "Departure on", &["Feb", "Mar"]),
            attr((2, 1), "Departure date", &["Jan", "Mar"]),
        ];
        let mut gold = BTreeSet::new();
        for a in [(0usize, 0usize), (1, 0), (2, 0)] {
            for b in [(0, 0), (1, 0), (2, 0)] {
                if a < b {
                    gold.insert((a, b));
                }
            }
        }
        for a in [(0usize, 1usize), (1, 1), (2, 1)] {
            for b in [(0, 1), (1, 1), (2, 1)] {
                if a < b {
                    gold.insert((a, b));
                }
            }
        }
        (attrs, gold)
    }

    #[test]
    fn clean_world_learns_zero() {
        // In this world every merge the unthresholded clusterer performs is
        // correct (the same-interface constraint blocks the city/date cross
        // merge), so the oracle confirms everything and no pruning evidence
        // exists: τ = 0 — the right answer.
        let (attrs, gold) = world();
        let mut oracle = GoldOracle::new(gold);
        let learned = learn_threshold(&attrs, &MatchConfig::default(), &mut oracle, 12);
        assert!(learned.questions > 0);
        assert_eq!(learned.threshold, 0.0, "τ = {}", learned.threshold);
    }

    #[test]
    fn learns_a_separating_threshold_with_bad_merges() {
        // Two instance-less attributes labelled just "Departure" — one a
        // city, one a date per gold — wrongly merge with each other at
        // label-only similarity 0.6, well below the ≈0.96 of the correct
        // merges. The oracle rejects it and τ lands in between.
        let (mut attrs, gold) = world();
        attrs.push(attr((3, 0), "Departure", &[]));
        attrs.push(attr((4, 0), "Departure", &[]));
        // gold: (3,0) is a city attribute, (4,0) a date attribute — their
        // merge is wrong, and neither belongs with the other clusters
        // strongly enough to be asked about first.
        let mut oracle = GoldOracle::new(gold);
        let learned = learn_threshold(&attrs, &MatchConfig::default(), &mut oracle, 12);
        assert!(
            learned.threshold > 0.3 && learned.threshold < 0.97,
            "τ = {}",
            learned.threshold
        );
        // the learned τ must prune the wrong merge when applied
        assert!(learned
            .sample
            .iter()
            .any(|(s, m)| !*m && *s < learned.threshold));
    }

    #[test]
    fn budget_bounds_questions() {
        let (attrs, gold) = world();
        let mut oracle = GoldOracle::new(gold);
        let learned = learn_threshold(&attrs, &MatchConfig::default(), &mut oracle, 4);
        assert!(learned.questions <= 4);
        assert_eq!(learned.questions, oracle.questions_asked());
    }

    #[test]
    fn zero_budget_learns_zero() {
        let (attrs, gold) = world();
        let mut oracle = GoldOracle::new(gold);
        let learned = learn_threshold(&attrs, &MatchConfig::default(), &mut oracle, 0);
        assert_eq!(learned.threshold, 0.0);
        assert_eq!(learned.questions, 0);
    }

    #[test]
    fn all_match_sample_learns_zero() {
        // only matching pairs exist → nothing to prune → τ = 0
        let attrs = vec![
            attr((0, 0), "Airline", &["Delta"]),
            attr((1, 0), "Airline", &["Delta"]),
        ];
        let gold: BTreeSet<(AttrRef, AttrRef)> = [((0, 0), (1, 0))].into_iter().collect();
        let mut oracle = GoldOracle::new(gold);
        let learned = learn_threshold(&attrs, &MatchConfig::default(), &mut oracle, 8);
        assert_eq!(learned.threshold, 0.0);
    }

    #[test]
    fn empty_attributes() {
        let mut oracle = GoldOracle::new(BTreeSet::new());
        let learned = learn_threshold(&[], &MatchConfig::default(), &mut oracle, 8);
        assert_eq!(learned.threshold, 0.0);
    }

    #[test]
    fn same_interface_pairs_never_asked() {
        // attributes only on one interface → no askable pairs
        let attrs = vec![
            attr((0, 0), "Airline", &["Delta"]),
            attr((0, 1), "Airline", &["Delta"]),
        ];
        let mut oracle = GoldOracle::new(BTreeSet::new());
        let learned = learn_threshold(&attrs, &MatchConfig::default(), &mut oracle, 8);
        assert_eq!(learned.questions, 0);
    }
}
