//! Matching-accuracy metrics (§6).
//!
//! Precision = correct matches / matches identified by the system;
//! recall = correct matches / matches given by domain experts;
//! F-1 = 2PR / (P + R).

use std::collections::BTreeSet;

/// Precision / recall / F-1 triple (all in [0, 1]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrF1 {
    /// Precision.
    pub precision: f64,
    /// Recall.
    pub recall: f64,
    /// F-1 measure.
    pub f1: f64,
}

impl PrF1 {
    /// Compute from predicted and gold pair sets.
    pub fn from_pairs<T: Ord>(predicted: &BTreeSet<T>, gold: &BTreeSet<T>) -> PrF1 {
        let correct = predicted.intersection(gold).count() as f64;
        let precision = if predicted.is_empty() {
            0.0
        } else {
            correct / predicted.len() as f64
        };
        let recall = if gold.is_empty() {
            0.0
        } else {
            correct / gold.len() as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        PrF1 {
            precision,
            recall,
            f1,
        }
    }

    /// Percentage view of the F-1 (as the paper reports).
    pub fn f1_pct(&self) -> f64 {
        self.f1 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(pairs: &[(u32, u32)]) -> BTreeSet<(u32, u32)> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn perfect_match() {
        let gold = set(&[(1, 2), (3, 4)]);
        let m = PrF1::from_pairs(&gold, &gold);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 1.0);
        assert_eq!(m.f1_pct(), 100.0);
    }

    #[test]
    fn half_precision() {
        let predicted = set(&[(1, 2), (5, 6)]);
        let gold = set(&[(1, 2), (3, 4)]);
        let m = PrF1::from_pairs(&predicted, &gold);
        assert_eq!(m.precision, 0.5);
        assert_eq!(m.recall, 0.5);
        assert_eq!(m.f1, 0.5);
    }

    #[test]
    fn empty_prediction() {
        let predicted: BTreeSet<(u32, u32)> = BTreeSet::new();
        let gold = set(&[(1, 2)]);
        let m = PrF1::from_pairs(&predicted, &gold);
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.f1, 0.0);
    }

    #[test]
    fn empty_gold() {
        let predicted = set(&[(1, 2)]);
        let gold: BTreeSet<(u32, u32)> = BTreeSet::new();
        let m = PrF1::from_pairs(&predicted, &gold);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.f1, 0.0);
    }

    #[test]
    fn f1_is_harmonic_mean() {
        let predicted = set(&[(1, 2), (3, 4), (5, 6), (7, 8)]);
        let gold = set(&[(1, 2), (3, 4), (9, 10)]);
        let m = PrF1::from_pairs(&predicted, &gold);
        assert!((m.precision - 0.5).abs() < 1e-12);
        assert!((m.recall - 2.0 / 3.0).abs() < 1e-12);
        let expected = 2.0 * 0.5 * (2.0 / 3.0) / (0.5 + 2.0 / 3.0);
        assert!((m.f1 - expected).abs() < 1e-12);
    }
}
