//! Constrained agglomerative clustering — the automatic core of IceQ (§5).
//!
//! IceQ groups attributes into clusters, each containing all attributes
//! that match. We implement the standard average-link agglomerative scheme
//! with the schema constraint that makes τ = 0 viable: **two attributes of
//! the same interface never co-occur in a cluster** (they are distinct
//! attributes of one schema by construction). Merging proceeds greedily on
//! the highest average inter-cluster similarity and stops when no
//! admissible pair exceeds the threshold τ.

use webiq_prof::Stage;
use webiq_trace::Counter;

/// An item to cluster: an opaque id plus the interface it belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Item<I> {
    /// Caller's identifier (e.g. an `AttrRef`).
    pub id: I,
    /// Interface index, for the same-interface exclusion constraint.
    pub interface: usize,
}

/// One merge performed during clustering: the (average-link) score at
/// which it happened and a representative cross pair — the most similar
/// pair spanning the two merged clusters, i.e. the pair a user would be
/// shown if asked to confirm the merge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MergeEvent<I> {
    /// Average-link score of the merge.
    pub score: f64,
    /// Representative item from the first cluster.
    pub a: I,
    /// Representative item from the second cluster.
    pub b: I,
}

/// Agglomerative clustering over a precomputed similarity matrix.
///
/// `sim[i][j]` must be symmetric; only `i < j` entries are read.
/// Returns clusters as lists of item indices into `items`.
pub fn cluster<I: Copy>(items: &[Item<I>], sim: &[Vec<f64>], threshold: f64) -> Vec<Vec<usize>> {
    cluster_logged(items, sim, threshold).0
}

/// Like [`cluster`], additionally returning the log of merge events in the
/// order they happened (descending score). The log is what interactive
/// threshold learning samples from.
///
/// Each pass over the candidate pairs bumps the thread-local
/// [`Counter::ClusterIterations`] trace counter and each merge performed
/// bumps [`Counter::ClusterMerges`], so a traced run can report the
/// matcher's convergence behaviour. Wall-clock spent clustering is
/// attributed to the profiling registry's `cluster_merge` stage.
pub fn cluster_logged<I: Copy>(
    items: &[Item<I>],
    sim: &[Vec<f64>],
    threshold: f64,
) -> (Vec<Vec<usize>>, Vec<MergeEvent<I>>) {
    webiq_prof::time(Stage::ClusterMerge, || {
        cluster_logged_inner(items, sim, threshold)
    })
}

fn cluster_logged_inner<I: Copy>(
    items: &[Item<I>],
    sim: &[Vec<f64>],
    threshold: f64,
) -> (Vec<Vec<usize>>, Vec<MergeEvent<I>>) {
    let n = items.len();
    let mut clusters: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    let mut log = Vec::new();

    loop {
        webiq_trace::incr(Counter::ClusterIterations);
        // Find the best admissible merge.
        let mut best: Option<(f64, usize, usize)> = None;
        for a in 0..clusters.len() {
            for b in a + 1..clusters.len() {
                if violates_constraint(items, &clusters[a], &clusters[b]) {
                    continue;
                }
                let s = average_link(&clusters[a], &clusters[b], sim);
                if s > threshold && best.is_none_or(|(bs, _, _)| s > bs) {
                    best = Some((s, a, b));
                }
            }
        }
        let Some((score, a, b)) = best else { break };
        webiq_trace::incr(Counter::ClusterMerges);
        let (ra, rb) = representative_pair(&clusters[a], &clusters[b], sim);
        log.push(MergeEvent {
            score,
            a: items[ra].id,
            b: items[rb].id,
        });
        let merged = clusters.swap_remove(b);
        clusters[a].extend(merged);
    }
    (clusters, log)
}

/// The most similar cross pair of two clusters.
fn representative_pair(a: &[usize], b: &[usize], sim: &[Vec<f64>]) -> (usize, usize) {
    let mut best = (a[0], b[0], f64::NEG_INFINITY);
    for &i in a {
        for &j in b {
            let (lo, hi) = if i < j { (i, j) } else { (j, i) };
            if sim[lo][hi] > best.2 {
                best = (i, j, sim[lo][hi]);
            }
        }
    }
    (best.0, best.1)
}

/// Would merging `a` and `b` put two attributes of one interface together?
fn violates_constraint<I>(items: &[Item<I>], a: &[usize], b: &[usize]) -> bool {
    a.iter()
        .any(|&i| b.iter().any(|&j| items[i].interface == items[j].interface))
}

/// Average pairwise similarity between two clusters.
fn average_link(a: &[usize], b: &[usize], sim: &[Vec<f64>]) -> f64 {
    let mut total = 0.0;
    for &i in a {
        for &j in b {
            let (lo, hi) = if i < j { (i, j) } else { (j, i) };
            total += sim[lo][hi];
        }
    }
    total / (a.len() * b.len()) as f64
}

/// Convenience: build the (upper-triangular) similarity matrix from a
/// pairwise function.
#[allow(clippy::needless_range_loop)] // i/j are the matrix coordinates themselves
pub fn similarity_matrix<I, F>(items: &[Item<I>], mut f: F) -> Vec<Vec<f64>>
where
    F: FnMut(usize, usize) -> f64,
{
    let n = items.len();
    let mut m = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in i + 1..n {
            m[i][j] = f(i, j);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(interfaces: &[usize]) -> Vec<Item<usize>> {
        interfaces
            .iter()
            .enumerate()
            .map(|(id, &interface)| Item { id, interface })
            .collect()
    }

    /// Similarity matrix from explicit entries.
    fn matrix(n: usize, entries: &[(usize, usize, f64)]) -> Vec<Vec<f64>> {
        let mut m = vec![vec![0.0; n]; n];
        for &(i, j, s) in entries {
            let (lo, hi) = if i < j { (i, j) } else { (j, i) };
            m[lo][hi] = s;
        }
        m
    }

    #[test]
    fn merges_similar_items() {
        // items 0,1 on different interfaces, highly similar
        let its = items(&[0, 1, 2]);
        let m = matrix(3, &[(0, 1, 0.9), (0, 2, 0.05), (1, 2, 0.05)]);
        let clusters = cluster(&its, &m, 0.1);
        assert_eq!(clusters.iter().filter(|c| c.len() == 2).count(), 1);
        let pair = clusters.iter().find(|c| c.len() == 2).expect("pair");
        let mut p = pair.to_vec();
        p.sort_unstable();
        assert_eq!(p, vec![0, 1]);
    }

    #[test]
    fn same_interface_never_merges() {
        let its = items(&[0, 0]);
        let m = matrix(2, &[(0, 1, 1.0)]);
        let clusters = cluster(&its, &m, 0.0);
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn constraint_propagates_through_clusters() {
        // 0 and 1 merge (interfaces 0, 1). Item 2 is on interface 0 and
        // similar to 1 — joining would pair it with 0 → blocked.
        let its = items(&[0, 1, 0]);
        let m = matrix(3, &[(0, 1, 0.9), (1, 2, 0.8)]);
        let clusters = cluster(&its, &m, 0.1);
        assert!(clusters.iter().all(|c| {
            let mut ifaces: Vec<usize> = c.iter().map(|&i| its[i].interface).collect();
            let n = ifaces.len();
            ifaces.sort_unstable();
            ifaces.dedup();
            ifaces.len() == n
        }));
        // 2 remains a singleton
        assert!(clusters.iter().any(|c| c == &vec![2]));
    }

    #[test]
    fn threshold_blocks_weak_merges() {
        let its = items(&[0, 1]);
        let m = matrix(2, &[(0, 1, 0.05)]);
        assert_eq!(cluster(&its, &m, 0.1).len(), 2);
        assert_eq!(cluster(&its, &m, 0.0).len(), 1);
    }

    #[test]
    fn greedy_prefers_strongest_merge() {
        // 0-1: 0.9; 1-2: 0.8; 0-2 share interface. After 0-1 merge, 2 can't
        // join. With greedy order, 1 must pair with 0, not 2.
        let its = items(&[0, 1, 0]);
        let m = matrix(3, &[(0, 1, 0.9), (1, 2, 0.95)]);
        let clusters = cluster(&its, &m, 0.1);
        // strongest merge is 1-2
        let pair = clusters.iter().find(|c| c.len() == 2).expect("pair");
        let mut p = pair.to_vec();
        p.sort_unstable();
        assert_eq!(p, vec![1, 2]);
    }

    #[test]
    fn average_link_dilutes() {
        // 0-1 strong; 2 strong to 1 but zero to 0 → average to {0,1} is 0.4
        let its = items(&[0, 1, 2]);
        let m = matrix(3, &[(0, 1, 0.9), (1, 2, 0.8)]);
        let clusters = cluster(&its, &m, 0.5);
        // {0,1} merges; then avg({0,1},{2}) = (0 + .8)/2 = .4 < .5 → stop
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn trace_counters_track_iterations_and_merges() {
        let its = items(&[0, 1, 2]);
        let m = matrix(3, &[(0, 1, 0.9), (0, 2, 0.8), (1, 2, 0.8)]);
        let before = webiq_trace::snapshot();
        let clusters = cluster(&its, &m, 0.1);
        let d = webiq_trace::snapshot().diff(&before);
        assert_eq!(clusters.len(), 1);
        assert_eq!(d.get(Counter::ClusterMerges), 2);
        // merges + the final pass that finds nothing admissible
        assert_eq!(d.get(Counter::ClusterIterations), 3);
    }

    #[test]
    fn empty_input() {
        let its: Vec<Item<usize>> = vec![];
        let m: Vec<Vec<f64>> = vec![];
        assert!(cluster(&its, &m, 0.0).is_empty());
    }

    #[test]
    fn chain_of_many_interfaces() {
        // 5 items, one per interface, all pairwise similar → one cluster
        let its = items(&[0, 1, 2, 3, 4]);
        let mut entries = Vec::new();
        for i in 0..5 {
            for j in i + 1..5 {
                entries.push((i, j, 0.7));
            }
        }
        let m = matrix(5, &entries);
        let clusters = cluster(&its, &m, 0.1);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 5);
    }
}
