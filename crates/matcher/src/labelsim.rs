//! Label similarity (§5).
//!
//! `LabelSim(A, B) = Cos(Ā, B̄)` where `X̄` is a vector of words
//! transformed from the label of attribute X — tokenized, lowercased,
//! stopword-filtered, and Porter-stemmed, as IceQ does.

use std::collections::BTreeMap;

use webiq_nlp::{stem, stopwords, token};

/// The bag-of-stems vector of a label (term → frequency).
pub fn label_vector(label: &str) -> BTreeMap<String, f64> {
    let mut v: BTreeMap<String, f64> = BTreeMap::new();
    for word in token::words_lower(label) {
        if stopwords::is_stopword(&word) {
            continue;
        }
        *v.entry(stem::stem(&word)).or_insert(0.0) += 1.0;
    }
    v
}

/// Cosine similarity of two sparse vectors.
pub fn cosine(a: &BTreeMap<String, f64>, b: &BTreeMap<String, f64>) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut dot = 0.0;
    for (term, wa) in a {
        if let Some(wb) = b.get(term) {
            dot += wa * wb;
        }
    }
    if dot == 0.0 {
        return 0.0;
    }
    let na: f64 = a.values().map(|w| w * w).sum::<f64>().sqrt();
    let nb: f64 = b.values().map(|w| w * w).sum::<f64>().sqrt();
    dot / (na * nb)
}

/// Label similarity between two raw labels.
///
/// ```
/// use webiq_match::labelsim::label_sim;
/// assert!(label_sim("From city", "Departure city") > 0.4);
/// assert_eq!(label_sim("Airline", "Carrier"), 0.0); // no shared word
/// ```
pub fn label_sim(a: &str, b: &str) -> f64 {
    cosine(&label_vector(a), &label_vector(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_labels_score_one() {
        assert!((label_sim("Departure city", "Departure city") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shared_head_noun_scores_partially() {
        let s = label_sim("From city", "Departure city");
        assert!(s > 0.4 && s < 1.0, "s = {s}");
    }

    #[test]
    fn morphological_variants_conflate() {
        // stemming conflates plural/singular: "locations" and "location"
        assert!(label_sim("Job locations", "Job location") > 0.9);
        // "departing"/"departure" stem differently under Porter; the shared
        // head noun still carries half the weight
        let s = label_sim("Departing city", "Departure city");
        assert!(s > 0.4, "s = {s}");
    }

    #[test]
    fn synonyms_share_nothing() {
        // the paper's Airline vs. Carrier example: no common word
        assert_eq!(label_sim("Airline", "Carrier"), 0.0);
    }

    #[test]
    fn ambiguous_partial_overlap() {
        // Departure city vs Departure date share "departure" — the paper's
        // B1 example of a misleading label similarity.
        let s = label_sim("Departure city", "Departure date");
        assert!(s > 0.3, "s = {s}");
    }

    #[test]
    fn stopwords_do_not_contribute() {
        // "of" must not create similarity
        assert_eq!(label_sim("Class of service", "Type of job"), 0.0);
    }

    #[test]
    fn empty_labels() {
        assert_eq!(label_sim("", "Airline"), 0.0);
        assert_eq!(label_sim("", ""), 0.0);
        assert_eq!(label_sim("of the", "of the"), 0.0); // all stopwords
    }

    #[test]
    fn cosine_is_symmetric() {
        let pairs = [("From city", "Departure city"), ("Make", "Vehicle make")];
        for (a, b) in pairs {
            assert!((label_sim(a, b) - label_sim(b, a)).abs() < 1e-12);
        }
    }

    #[test]
    fn repeated_words_weighted() {
        let v = label_vector("city city town");
        assert_eq!(v.get(&webiq_nlp::stem::stem("city")).copied(), Some(2.0));
    }
}
