//! Domain (instance-set) similarity (§5).
//!
//! `DomSim(A, B)` is evaluated from the inferred *types* of the two
//! domains (integer, real, monetary, date, text) and the *values* in them:
//!
//! - attributes with no values contribute nothing (similarity 0) — this is
//!   the paper's core problem, solved by instance acquisition;
//! - mismatched types score (near) zero;
//! - numeric domains compare by range overlap;
//! - textual/date domains compare by case-insensitive value overlap —
//!   Jaccard and containment (`|A∩B| / min`), the latter because a small
//!   drop-down sample and a set of acquired instances of the same concept
//!   overlap far more relative to the smaller set than to the union.
//!
//! Word-level (sub-value) overlap is deliberately **not** used: shared
//! words like the `Air` of `Air Canada`/`Air France` would create faint
//! similarity bridges that let unthresholded clustering merge attribute
//! pairs the paper's WebIQ needs instance acquisition to connect.

use std::collections::BTreeSet;

use webiq_stats::types::{infer_type, numeric_value, ValueType};

/// Majority fine-grained type of a value set (ties resolve toward Text).
pub fn majority_type<S: AsRef<str>>(values: &[S]) -> ValueType {
    let mut counts: [(ValueType, usize); 5] = [
        (ValueType::Integer, 0),
        (ValueType::Real, 0),
        (ValueType::Monetary, 0),
        (ValueType::Date, 0),
        (ValueType::Text, 0),
    ];
    for v in values {
        let t = infer_type(v.as_ref());
        for slot in &mut counts {
            if slot.0 == t {
                slot.1 += 1;
            }
        }
    }
    counts
        .iter()
        .max_by_key(|(t, n)| (*n, matches!(t, ValueType::Text) as usize))
        .map_or(ValueType::Text, |(t, _)| *t)
}

/// Jaccard overlap of lowercase value sets.
fn value_jaccard<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
    let sa: BTreeSet<String> = a
        .iter()
        .map(|v| v.as_ref().trim().to_ascii_lowercase())
        .collect();
    let sb: BTreeSet<String> = b
        .iter()
        .map(|v| v.as_ref().trim().to_ascii_lowercase())
        .collect();
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    inter as f64 / union as f64
}

/// Containment overlap (`|A∩B| / min(|A|, |B|)`) of lowercase value sets.
/// Two small samples of one large underlying population (a 6-option
/// drop-down vs. ten acquired instances of the same concept) overlap far
/// more relative to the smaller set than relative to the union, so
/// containment is the right measure for enriched domains.
fn value_containment<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
    let sa: BTreeSet<String> = a
        .iter()
        .map(|v| v.as_ref().trim().to_ascii_lowercase())
        .collect();
    let sb: BTreeSet<String> = b
        .iter()
        .map(|v| v.as_ref().trim().to_ascii_lowercase())
        .collect();
    let min = sa.len().min(sb.len());
    if min == 0 {
        return 0.0;
    }
    sa.intersection(&sb).count() as f64 / min as f64
}

/// Overlap ratio of the numeric ranges spanned by two value sets.
fn range_overlap<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
    let range = |vals: &[S]| -> Option<(f64, f64)> {
        let nums: Vec<f64> = vals
            .iter()
            .filter_map(|v| numeric_value(v.as_ref()))
            .collect();
        if nums.is_empty() {
            return None;
        }
        let lo = nums.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = nums.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some((lo, hi))
    };
    let (Some((alo, ahi)), Some((blo, bhi))) = (range(a), range(b)) else {
        return 0.0;
    };
    let inter = (ahi.min(bhi) - alo.max(blo)).max(0.0);
    let union = ahi.max(bhi) - alo.min(blo);
    if union <= 0.0 {
        // both ranges are single identical points
        return if (alo - blo).abs() < f64::EPSILON {
            1.0
        } else {
            0.0
        };
    }
    inter / union
}

/// Normalised string similarity between two individual values:
/// `1 − levenshtein(a, b) / max(|a|, |b|)` over lowercased text. Used by
/// the §5 borrow-candidate pre-filter ("at least two values, one from each
/// domain, which are very similar").
pub fn value_similarity(a: &str, b: &str) -> f64 {
    let a = a.trim().to_ascii_lowercase();
    let b = b.trim().to_ascii_lowercase();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(&a, &b) as f64 / max_len as f64
}

/// Classic Levenshtein edit distance (two-row DP).
fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Domain similarity between two attribute value sets.
///
/// ```
/// use webiq_match::domsim::dom_sim;
/// let a = ["Boston", "Chicago", "Denver"];
/// let b = ["Chicago", "Denver", "Miami"];
/// assert!(dom_sim(&a, &b) > 0.4);          // overlapping city sets
/// let months = ["Jan", "Feb", "Mar"];
/// assert!(dom_sim(&a, &months) < 0.15);    // type mismatch
/// let empty: [&str; 0] = [];
/// assert_eq!(dom_sim(&a, &empty), 0.0);    // the paper's core problem
/// ```
pub fn dom_sim<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let ta = majority_type(a);
    let tb = majority_type(b);
    if ta != tb {
        // a thin bridge for mixed sets (e.g. "2" vs "2 bedrooms")
        return 0.1 * value_jaccard(a, b);
    }
    match ta {
        ValueType::Integer | ValueType::Real | ValueType::Monetary => {
            // ranges say "same kind of quantity"; exact value overlap
            // strengthens it
            0.6 * range_overlap(a, b) + 0.4 * value_containment(a, b)
        }
        ValueType::Date => 0.5 + 0.5 * value_containment(a, b),
        ValueType::Text => value_jaccard(a, b).max(0.9 * value_containment(a, b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_domains_score_zero() {
        let vals = ["Boston", "Chicago"];
        let none: [&str; 0] = [];
        assert_eq!(dom_sim(&vals, &none), 0.0);
        assert_eq!(dom_sim(&none, &none), 0.0);
    }

    #[test]
    fn overlapping_city_sets_score_high() {
        let a = ["Boston", "Chicago", "Denver", "Seattle"];
        let b = ["Chicago", "Denver", "Seattle", "Miami"];
        let s = dom_sim(&a, &b);
        assert!(s > 0.4, "s = {s}");
    }

    #[test]
    fn disjoint_same_type_sets_score_low() {
        // the Airline (NA) vs Carrier (EU) situation pre-acquisition
        let a = ["Air Canada", "American", "Delta"];
        let b = ["Aer Lingus", "Lufthansa", "Alitalia"];
        let s = dom_sim(&a, &b);
        assert!(s < 0.15, "s = {s}");
    }

    #[test]
    fn mixed_type_sets_score_near_zero() {
        let cities = ["Boston", "Chicago", "Denver"];
        let months = ["Jan", "Feb", "Mar"];
        let s = dom_sim(&cities, &months);
        assert!(s < 0.15, "s = {s}");
    }

    #[test]
    fn numeric_ranges_overlap() {
        let a = ["1", "2", "3", "4"];
        let b = ["2", "3", "4", "5"];
        let s = dom_sim(&a, &b);
        assert!(s > 0.5, "s = {s}");
        let c = ["100", "200", "300"];
        let far = dom_sim(&a, &c);
        assert!(far < 0.1, "far = {far}");
    }

    #[test]
    fn monetary_vs_integer_types_differ() {
        let money = ["$5,000", "$10,000"];
        let ints = ["5000", "10000"];
        // different inferred fine types → near zero
        let s = dom_sim(&money, &ints);
        assert!(s < 0.15, "s = {s}");
    }

    #[test]
    fn month_domains_match() {
        let a = ["Jan", "Feb", "Mar", "Apr"];
        let b = ["Mar", "Apr", "May", "Jun"];
        let s = dom_sim(&a, &b);
        assert!(s > 0.5, "s = {s}");
        assert_eq!(majority_type(&a), ValueType::Date);
    }

    #[test]
    fn exact_value_overlap_for_name_domains() {
        let a = ["Stephen King", "John Grisham"];
        let b = ["Stephen King", "Tom Clancy"];
        let s = dom_sim(&a, &b);
        assert!(s > 0.2, "s = {s}"); // one of two shared → containment 0.5
                                     // word-level overlap alone must NOT create similarity
        let c = ["Air Canada", "American"];
        let d = ["Air France", "Aer Lingus"];
        assert_eq!(dom_sim(&c, &d), 0.0);
    }

    #[test]
    fn majority_type_is_majority() {
        assert_eq!(majority_type(&["1", "2", "Boston"]), ValueType::Integer);
        assert_eq!(majority_type(&["Boston", "Chicago", "1"]), ValueType::Text);
        assert_eq!(majority_type(&["$5", "$10"]), ValueType::Monetary);
    }

    #[test]
    fn symmetry() {
        let a = ["Boston", "Chicago"];
        let b = ["Chicago", "Miami", "Denver"];
        assert!((dom_sim(&a, &b) - dom_sim(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn value_similarity_behaviour() {
        assert_eq!(value_similarity("Boston", "boston"), 1.0);
        assert!(value_similarity("Chicago", "Chicgo") > 0.8); // one deletion
        assert!(value_similarity("Boston", "Miami") < 0.5);
        assert_eq!(value_similarity("", ""), 1.0);
        assert_eq!(value_similarity("abc", ""), 0.0);
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn identical_singleton_numeric() {
        let a = ["5"];
        let b = ["5"];
        assert!(dom_sim(&a, &b) > 0.9);
    }
}
