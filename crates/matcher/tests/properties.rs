//! Property-based tests for the matcher: clustering invariants, metric
//! bounds, similarity symmetry.

use proptest::prelude::*;
use webiq_match::cluster::{cluster, Item};
use webiq_match::{domsim, labelsim, metrics::PrF1, similarity, MatchAttribute, MatchConfig};

/// A random symmetric similarity matrix in [0, 1].
#[allow(clippy::needless_range_loop)] // i/j are matrix coordinates
fn sim_matrix(n: usize, seed: &[f64]) -> Vec<Vec<f64>> {
    let mut m = vec![vec![0.0; n]; n];
    let mut k = 0;
    for i in 0..n {
        for j in i + 1..n {
            m[i][j] = seed[k % seed.len()].abs().fract();
            k += 1;
        }
    }
    m
}

proptest! {
    /// Clustering always partitions the items, and no cluster ever holds
    /// two items of the same interface — for any similarity structure and
    /// threshold.
    #[test]
    fn clustering_invariants(
        interfaces in proptest::collection::vec(0usize..6, 1..16),
        seed in proptest::collection::vec(0.0f64..1.0, 8),
        threshold in 0.0f64..1.0,
    ) {
        let items: Vec<Item<usize>> = interfaces
            .iter()
            .enumerate()
            .map(|(id, &interface)| Item { id, interface })
            .collect();
        let m = sim_matrix(items.len(), &seed);
        let clusters = cluster(&items, &m, threshold);

        // partition
        let mut seen = vec![false; items.len()];
        for c in &clusters {
            for &i in c {
                prop_assert!(!seen[i], "item {i} appears twice");
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|s| *s));

        // same-interface exclusion
        for c in &clusters {
            let mut ifaces: Vec<usize> = c.iter().map(|&i| items[i].interface).collect();
            let n = ifaces.len();
            ifaces.sort_unstable();
            ifaces.dedup();
            prop_assert_eq!(ifaces.len(), n);
        }
    }

    /// Raising the threshold never increases the amount of merging
    /// (cluster count is monotone non-decreasing in τ).
    #[test]
    fn threshold_monotone(
        interfaces in proptest::collection::vec(0usize..8, 2..14),
        seed in proptest::collection::vec(0.0f64..1.0, 8),
        t1 in 0.0f64..1.0,
        t2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let items: Vec<Item<usize>> = interfaces
            .iter()
            .enumerate()
            .map(|(id, &interface)| Item { id, interface })
            .collect();
        let m = sim_matrix(items.len(), &seed);
        let c_lo = cluster(&items, &m, lo).len();
        let c_hi = cluster(&items, &m, hi).len();
        prop_assert!(c_hi >= c_lo, "τ={lo}→{c_lo} clusters, τ={hi}→{c_hi}");
    }

    /// Similarity is symmetric and within [0, 1] for arbitrary attributes.
    #[test]
    fn similarity_symmetric_bounded(
        la in "[a-zA-Z ]{0,20}",
        lb in "[a-zA-Z ]{0,20}",
        va in proptest::collection::vec("[a-zA-Z0-9 ]{1,10}", 0..6),
        vb in proptest::collection::vec("[a-zA-Z0-9 ]{1,10}", 0..6),
    ) {
        let cfg = MatchConfig::default();
        let a = MatchAttribute { r: (0, 0), label: la, values: va };
        let b = MatchAttribute { r: (1, 0), label: lb, values: vb };
        let sab = similarity(&a, &b, &cfg);
        let sba = similarity(&b, &a, &cfg);
        prop_assert!((sab - sba).abs() < 1e-12);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&sab), "s = {sab}");
    }

    /// dom_sim of a non-empty set with itself is high; with an empty set
    /// it is zero.
    #[test]
    fn dom_sim_reflexive_ish(vals in proptest::collection::vec("[a-zA-Z]{2,8}", 1..8)) {
        let s = domsim::dom_sim(&vals, &vals);
        prop_assert!(s > 0.85, "self-sim {s}");
        let empty: Vec<String> = Vec::new();
        prop_assert_eq!(domsim::dom_sim(&vals, &empty), 0.0);
    }

    /// value_similarity is symmetric, bounded, and 1 on equal strings.
    #[test]
    fn value_similarity_properties(a in "[a-zA-Z ]{0,15}", b in "[a-zA-Z ]{0,15}") {
        let sab = domsim::value_similarity(&a, &b);
        prop_assert!((sab - domsim::value_similarity(&b, &a)).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&sab));
        prop_assert!((domsim::value_similarity(&a, &a) - 1.0).abs() < 1e-12);
    }

    /// label_sim is bounded and zero against an empty label.
    #[test]
    fn label_sim_bounds(a in "[a-zA-Z ]{0,25}", b in "[a-zA-Z ]{0,25}") {
        let s = labelsim::label_sim(&a, &b);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&s));
        prop_assert_eq!(labelsim::label_sim(&a, ""), 0.0);
    }

    /// P/R/F1 are always within [0, 1] and F1 is zero iff P or R is.
    #[test]
    fn metric_bounds(
        pred in proptest::collection::btree_set((0u32..10, 0u32..10), 0..20),
        gold in proptest::collection::btree_set((0u32..10, 0u32..10), 0..20),
    ) {
        let m = PrF1::from_pairs(&pred, &gold);
        for v in [m.precision, m.recall, m.f1] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        if m.f1 == 0.0 {
            prop_assert!(m.precision == 0.0 || m.recall == 0.0);
        } else {
            prop_assert!(m.precision > 0.0 && m.recall > 0.0);
        }
    }
}
