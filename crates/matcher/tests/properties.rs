//! Property-based tests for the matcher: clustering invariants, metric
//! bounds, similarity symmetry.

use webiq_match::cluster::{cluster, Item};
use webiq_match::{domsim, labelsim, metrics::PrF1, similarity, MatchAttribute, MatchConfig};
use webiq_rng::{prop, StdRng};

/// A random symmetric similarity matrix in [0, 1].
#[allow(clippy::needless_range_loop)] // i/j are matrix coordinates
fn sim_matrix(n: usize, seed: &[f64]) -> Vec<Vec<f64>> {
    let mut m = vec![vec![0.0; n]; n];
    let mut k = 0;
    for i in 0..n {
        for j in i + 1..n {
            m[i][j] = seed[k % seed.len()].abs().fract();
            k += 1;
        }
    }
    m
}

fn interface_ids(rng: &mut StdRng, max_iface: usize, min_len: usize, max_len: usize) -> Vec<usize> {
    let n = rng.gen_range(min_len..=max_len);
    (0..n).map(|_| rng.gen_range(0..max_iface)).collect()
}

fn unit_seed(rng: &mut StdRng) -> Vec<f64> {
    (0..8).map(|_| rng.gen_range(0.0f64..1.0)).collect()
}

/// Clustering always partitions the items, and no cluster ever holds two
/// items of the same interface — for any similarity structure and
/// threshold.
#[test]
fn clustering_invariants() {
    prop::cases(prop::CASES, |rng| {
        let interfaces = interface_ids(rng, 6, 1, 15);
        let seed = unit_seed(rng);
        let threshold = rng.gen_range(0.0f64..1.0);
        let items: Vec<Item<usize>> = interfaces
            .iter()
            .enumerate()
            .map(|(id, &interface)| Item { id, interface })
            .collect();
        let m = sim_matrix(items.len(), &seed);
        let clusters = cluster(&items, &m, threshold);

        // partition
        let mut seen = vec![false; items.len()];
        for c in &clusters {
            for &i in c {
                assert!(!seen[i], "item {i} appears twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|s| *s));

        // same-interface exclusion
        for c in &clusters {
            let mut ifaces: Vec<usize> = c.iter().map(|&i| items[i].interface).collect();
            let n = ifaces.len();
            ifaces.sort_unstable();
            ifaces.dedup();
            assert_eq!(ifaces.len(), n);
        }
    });
}

/// Raising the threshold never increases the amount of merging (cluster
/// count is monotone non-decreasing in τ).
#[test]
fn threshold_monotone() {
    prop::cases(prop::CASES, |rng| {
        let interfaces = interface_ids(rng, 8, 2, 13);
        let seed = unit_seed(rng);
        let t1 = rng.gen_range(0.0f64..1.0);
        let t2 = rng.gen_range(0.0f64..1.0);
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let items: Vec<Item<usize>> = interfaces
            .iter()
            .enumerate()
            .map(|(id, &interface)| Item { id, interface })
            .collect();
        let m = sim_matrix(items.len(), &seed);
        let c_lo = cluster(&items, &m, lo).len();
        let c_hi = cluster(&items, &m, hi).len();
        assert!(c_hi >= c_lo, "τ={lo}→{c_lo} clusters, τ={hi}→{c_hi}");
    });
}

/// Similarity is symmetric and within [0, 1] for arbitrary attributes.
#[test]
fn similarity_symmetric_bounded() {
    prop::cases(prop::CASES, |rng| {
        let la = rng.gen_string(prop::alpha_space(), 0, 20);
        let lb = rng.gen_string(prop::alpha_space(), 0, 20);
        let va = prop::string_vec(rng, prop::alnum_space(), 0, 5, 1, 10);
        let vb = prop::string_vec(rng, prop::alnum_space(), 0, 5, 1, 10);
        let cfg = MatchConfig::default();
        let a = MatchAttribute {
            r: (0, 0),
            label: la,
            values: va,
        };
        let b = MatchAttribute {
            r: (1, 0),
            label: lb,
            values: vb,
        };
        let sab = similarity(&a, &b, &cfg);
        let sba = similarity(&b, &a, &cfg);
        assert!((sab - sba).abs() < 1e-12);
        assert!((0.0..=1.0 + 1e-12).contains(&sab), "s = {sab}");
    });
}

/// dom_sim of a non-empty set with itself is high; with an empty set it
/// is zero.
#[test]
fn dom_sim_reflexive_ish() {
    prop::cases(prop::CASES, |rng| {
        let vals = prop::string_vec(
            rng,
            prop::charset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"),
            1,
            7,
            2,
            8,
        );
        let s = domsim::dom_sim(&vals, &vals);
        assert!(s > 0.85, "self-sim {s}");
        let empty: Vec<String> = Vec::new();
        assert_eq!(domsim::dom_sim(&vals, &empty), 0.0);
    });
}

/// value_similarity is symmetric, bounded, and 1 on equal strings.
#[test]
fn value_similarity_properties() {
    prop::cases(prop::CASES, |rng| {
        let a = rng.gen_string(prop::alpha_space(), 0, 15);
        let b = rng.gen_string(prop::alpha_space(), 0, 15);
        let sab = domsim::value_similarity(&a, &b);
        assert!((sab - domsim::value_similarity(&b, &a)).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&sab));
        assert!((domsim::value_similarity(&a, &a) - 1.0).abs() < 1e-12);
    });
}

/// label_sim is bounded and zero against an empty label.
#[test]
fn label_sim_bounds() {
    prop::cases(prop::CASES, |rng| {
        let a = rng.gen_string(prop::alpha_space(), 0, 25);
        let b = rng.gen_string(prop::alpha_space(), 0, 25);
        let s = labelsim::label_sim(&a, &b);
        assert!((0.0..=1.0 + 1e-12).contains(&s));
        assert_eq!(labelsim::label_sim(&a, ""), 0.0);
    });
}

/// P/R/F1 are always within [0, 1] and F1 is zero iff P or R is.
#[test]
fn metric_bounds() {
    prop::cases(prop::CASES, |rng| {
        let mut pred = std::collections::BTreeSet::new();
        for _ in 0..rng.gen_range(0usize..20) {
            pred.insert((rng.gen_range(0u32..10), rng.gen_range(0u32..10)));
        }
        let mut gold = std::collections::BTreeSet::new();
        for _ in 0..rng.gen_range(0usize..20) {
            gold.insert((rng.gen_range(0u32..10), rng.gen_range(0u32..10)));
        }
        let m = PrF1::from_pairs(&pred, &gold);
        for v in [m.precision, m.recall, m.f1] {
            assert!((0.0..=1.0).contains(&v));
        }
        if m.f1 == 0.0 {
            assert!(m.precision == 0.0 || m.recall == 0.0);
        } else {
            assert!(m.precision > 0.0 && m.recall > 0.0);
        }
    });
}
