//! Diagnostic: baseline F-1 per domain (printed with --nocapture).
use webiq_data::{generate_domain, kb, GenOptions};
use webiq_match::{match_dataset, MatchConfig};

#[test]
#[ignore] // diagnostic; run with --ignored --nocapture to inspect baselines
fn print_baselines() {
    for def in kb::all_domains() {
        let ds = generate_domain(def, &GenOptions::default());
        let m0 = match_dataset(&ds, &MatchConfig::default()).evaluate(&ds);
        let mt = match_dataset(&ds, &MatchConfig::with_threshold(0.1)).evaluate(&ds);
        println!(
            "{:10} baseline t=0: P={:.3} R={:.3} F1={:.3} | t=0.1: F1={:.3}",
            def.key, m0.precision, m0.recall, m0.f1, mt.f1
        );
    }
}
