//! The lint rules.
//!
//! Every rule works on the token stream of [`crate::lexer`]; none of them
//! parse Rust properly, and none of them need to — each rule targets a
//! lexical pattern that is unambiguous enough in this workspace's style.
//! Where a rule is a heuristic (notably `hash-iter`), its limits are
//! documented on the rule constant and in DESIGN.md §10.
//!
//! ## Suppressions
//!
//! `// lint:allow(rule-id) reason` suppresses violations of `rule-id` on
//! the same line or the line directly below. The reason is mandatory: an
//! allow without one (or naming an unknown rule) is itself a `bad-allow`
//! violation. Honoured suppressions are counted and surface in the report
//! summary, so silent drift is visible in review.

use crate::lexer::{self, Tok, TokKind};
use crate::report::Violation;

/// Rule ids with one-line descriptions (the source of truth for
/// `bad-allow` validation and the `--rules` listing).
pub const RULES: &[(&str, &str)] = &[
    ("no-unwrap", "`.unwrap()` in non-test library code"),
    ("no-expect", "`.expect(..)` in non-test library code"),
    (
        "no-panic",
        "`panic!`/`unreachable!`/`todo!`/`unimplemented!` in non-test library code",
    ),
    (
        "slice-arith",
        "indexing/slicing with arithmetic subtraction in the index expression",
    ),
    (
        "wall-clock",
        "`Instant::now`/`SystemTime::now` outside bench/timing code",
    ),
    (
        "env-read",
        "`env::var` outside config.rs/index.rs thread plumbing",
    ),
    (
        "hash-iter",
        "unordered HashMap/HashSet iteration in a `lint:deterministic` module",
    ),
    (
        "no-sleep",
        "`thread::sleep` or timeout-based blocking outside the virtual-clock/bench code",
    ),
    (
        "trace-hygiene",
        "discarded span guard (`let _ = span(…)`) or wall-clock type in webiq-trace outside timing.rs",
    ),
    (
        "forbid-unsafe",
        "crate root missing `#![forbid(unsafe_code)]`",
    ),
    (
        "crate-doc",
        "crate root missing a crate-level `//!` doc comment",
    ),
    (
        "bad-allow",
        "`lint:allow` without a reason or naming an unknown rule",
    ),
    (
        "flow-panic",
        "a public API of a certified crate transitively reaches a panic site (call-graph pass)",
    ),
    (
        "flow-lock",
        "nested or inconsistently-ordered Mutex acquisition that could deadlock (call-graph pass)",
    ),
    (
        "flow-taint",
        "a nondeterministic source may flow into trace/obs emission (call-graph pass)",
    ),
];

/// Is `rule` a known rule id?
pub fn known_rule(rule: &str) -> bool {
    RULES.iter().any(|(id, _)| *id == rule)
}

/// One source file plus the classification the walker derived for it.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Owning crate's directory name (`core`, `web`, …; `webiq` for the
    /// root crate).
    pub crate_name: String,
    /// Bare file name (`acquire.rs`).
    pub file_name: String,
    /// Crate root (`src/lib.rs`, `src/main.rs`, `src/bin/*.rs`) — the
    /// hygiene rules apply only here.
    pub is_crate_root: bool,
    /// Binary target (`src/main.rs`, `src/bin/*.rs`) — exempt from the
    /// panic-freedom rules like tests and benches.
    pub is_bin: bool,
    /// File contents.
    pub text: String,
}

/// Which crates and files each rule family applies to.
#[derive(Debug, Clone)]
pub struct Scope {
    /// Crates whose library code must be panic-free.
    pub panic_crates: Vec<String>,
    /// Crates exempt from the wall-clock rule (benchmark harnesses).
    pub wallclock_exempt_crates: Vec<String>,
    /// File names exempt from the wall-clock rule.
    pub wallclock_exempt_files: Vec<String>,
    /// File names allowed to read `env::var` (thread-count plumbing).
    pub env_exempt_files: Vec<String>,
    /// File names allowed to block on real time (`thread::sleep`,
    /// `*_timeout` waits): the virtual-clock module and the trace timing
    /// module. Bench crates are exempt via
    /// [`Scope::wallclock_exempt_crates`].
    pub sleep_exempt_files: Vec<String>,
}

impl Default for Scope {
    fn default() -> Self {
        let v = |xs: &[&str]| xs.iter().map(|s| (*s).to_string()).collect();
        Scope {
            // The library crates of the paper pipeline, the tracing
            // substrate, the root facade, and the linter itself (it holds
            // itself to its own standard). `rng` (test harness) and
            // `bench` are exempt.
            panic_crates: v(&[
                "core", "data", "deep", "fault", "html", "lint", "matcher", "nlp", "obs", "prof",
                "stats", "store", "trace", "web", "webiq", "why",
            ]),
            wallclock_exempt_crates: v(&["bench"]),
            wallclock_exempt_files: v(&["timing.rs"]),
            env_exempt_files: v(&["config.rs", "index.rs"]),
            sleep_exempt_files: v(&["clock.rs", "timing.rs"]),
        }
    }
}

/// What linting one file produced.
#[derive(Debug, Default)]
pub struct FileOutcome {
    /// Violations that survived suppression.
    pub violations: Vec<Violation>,
    /// Suppressions honoured.
    pub suppressed: usize,
}

/// A parsed `lint:allow` directive.
#[derive(Debug)]
struct Allow {
    line: u32,
    col: u32,
    rule: String,
    reason: String,
}

/// An inclusive line range exempt from the code rules (a `#[cfg(test)]`
/// item, typically the test module at the bottom of a file).
#[derive(Debug, Clone, Copy)]
pub struct LineRange {
    /// First exempt line (1-based, inclusive).
    pub start: u32,
    /// Last exempt line (1-based, inclusive).
    pub end: u32,
}

impl LineRange {
    /// Is `line` inside this range?
    pub fn contains(&self, line: u32) -> bool {
        self.start <= line && line <= self.end
    }
}

/// Lint one classified source file.
pub fn lint_source(file: &SourceFile, scope: &Scope) -> FileOutcome {
    let toks = lexer::lex(&file.text);
    let sig: Vec<Tok> = toks.iter().filter(|t| !is_comment(t)).cloned().collect();
    let allows = collect_allows(&toks);
    let deterministic = toks
        .iter()
        .any(|t| is_comment(t) && !is_doc_comment(t) && t.text.contains("lint:deterministic"));
    let exempt = cfg_test_ranges(&sig);
    let in_exempt = |line: u32| exempt.iter().any(|r| r.contains(line));

    let mut raw: Vec<Violation> = Vec::new();
    let mut push = |file: &SourceFile, t: &Tok, rule: &'static str, msg: String| {
        raw.push(Violation {
            file: file.rel.clone(),
            line: t.line,
            col: t.col,
            rule,
            msg,
        });
    };

    let panic_scope = scope.panic_crates.contains(&file.crate_name) && !file.is_bin;
    let wallclock_scope = !scope.wallclock_exempt_crates.contains(&file.crate_name)
        && !scope.wallclock_exempt_files.contains(&file.file_name);
    let env_scope = !scope.env_exempt_files.contains(&file.file_name);
    // Library code waits on the virtual clock, never on real time; the
    // bench crates (which measure real time by design) and the sanctioned
    // clock/timing modules are the only places allowed to block.
    let sleep_scope = !scope.wallclock_exempt_crates.contains(&file.crate_name)
        && !scope.sleep_exempt_files.contains(&file.file_name)
        && !file.is_bin;
    // `webiq-trace` promises byte-identical traces, so wall-clock types
    // may not even be *named* there outside the sanctioned timing module
    // (the plain wall-clock rule only catches `::now()` call sites).
    let trace_clock_scope =
        file.crate_name == "trace" && !scope.wallclock_exempt_files.contains(&file.file_name);

    let hash_names = if deterministic {
        collect_hash_names(&sig)
    } else {
        Vec::new()
    };

    for (i, t) in sig.iter().enumerate() {
        if in_exempt(t.line) {
            continue;
        }
        if panic_scope {
            if let Some((rule, msg)) = panic_rule_at(&sig, i) {
                push(file, t, rule, msg);
            }
            if slice_arith_at(&sig, i) {
                push(
                    file,
                    t,
                    "slice-arith",
                    "index expression subtracts; use split_last/get or justify with lint:allow"
                        .into(),
                );
            }
        }
        if wallclock_scope && wall_clock_at(&sig, i) {
            push(
                file,
                t,
                "wall-clock",
                format!(
                    "`{}::now` outside bench/timing; keep measured time report-only",
                    t.text
                ),
            );
        }
        if sleep_scope {
            if let Some(msg) = sleep_at(&sig, i) {
                push(file, t, "no-sleep", msg);
            }
        }
        if env_scope && env_read_at(&sig, i) {
            push(
                file,
                t,
                "env-read",
                "`env::var` outside config.rs/index.rs makes behaviour environment-dependent"
                    .into(),
            );
        }
        if trace_clock_scope && (t.is_ident("Instant") || t.is_ident("SystemTime")) {
            push(
                file,
                t,
                "trace-hygiene",
                format!(
                    "`{}` in webiq-trace outside timing.rs; wall-clock stays in the timing module",
                    t.text
                ),
            );
        }
        if discarded_guard_at(&sig, i) {
            push(
                file,
                t,
                "trace-hygiene",
                "`let _ = span…` drops the RAII guard at once, closing the span immediately; \
                 bind it (`let _span = …`) for the region it should cover"
                    .into(),
            );
        }
        if deterministic {
            if let Some((at, msg)) = hash_iter_at(&sig, i, &hash_names) {
                push(file, at, "hash-iter", msg);
            }
        }
    }

    if file.is_crate_root {
        hygiene(file, &toks, &sig, &mut raw);
    }

    apply_allows(file, raw, &allows)
}

fn is_comment(t: &Tok) -> bool {
    matches!(t.kind, TokKind::LineComment | TokKind::BlockComment)
}

/// Is this a doc comment (`//!`, `///`, `/*!`, `/**`)? Directives are
/// only honoured in plain comments so that documentation *describing*
/// the `lint:allow` syntax is never parsed as a directive.
fn is_doc_comment(t: &Tok) -> bool {
    is_comment(t) && (t.text.starts_with('!') || t.text.starts_with('/') || t.text.starts_with('*'))
}

/// Parse every `lint:allow(rule) reason` comment.
fn collect_allows(toks: &[Tok]) -> Vec<Allow> {
    let mut out = Vec::new();
    for t in toks {
        if !is_comment(t) || is_doc_comment(t) {
            continue;
        }
        let Some(pos) = t.text.find("lint:allow(") else {
            continue;
        };
        let Some(rest) = t.text.get(pos.saturating_add("lint:allow(".len())..) else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            out.push(Allow {
                line: t.line,
                col: t.col,
                rule: String::new(),
                reason: String::new(),
            });
            continue;
        };
        let rule = rest.get(..close).unwrap_or("").trim().to_string();
        let reason = rest
            .get(close.saturating_add(1)..)
            .unwrap_or("")
            .trim()
            .to_string();
        out.push(Allow {
            line: t.line,
            col: t.col,
            rule,
            reason,
        });
    }
    out
}

/// Match suppressions against raw violations. An allow covers its own
/// line and the next line; allows without a reason (or with an unknown
/// rule id) never suppress and are reported as `bad-allow`.
fn apply_allows(file: &SourceFile, raw: Vec<Violation>, allows: &[Allow]) -> FileOutcome {
    let mut outcome = FileOutcome::default();
    for a in allows {
        if a.rule.is_empty() || !known_rule(&a.rule) {
            outcome.violations.push(Violation {
                file: file.rel.clone(),
                line: a.line,
                col: a.col,
                rule: "bad-allow",
                msg: format!("lint:allow names unknown rule `{}`", a.rule),
            });
        } else if a.reason.is_empty() {
            outcome.violations.push(Violation {
                file: file.rel.clone(),
                line: a.line,
                col: a.col,
                rule: "bad-allow",
                msg: format!("lint:allow({}) must carry a reason", a.rule),
            });
        }
    }
    for v in raw {
        let suppressed = allows.iter().any(|a| {
            a.rule == v.rule
                && !a.reason.is_empty()
                && known_rule(&a.rule)
                && (a.line == v.line || a.line.saturating_add(1) == v.line)
        });
        if suppressed {
            outcome.suppressed = outcome.suppressed.saturating_add(1);
        } else {
            outcome.violations.push(v);
        }
    }
    outcome
}

/// Inclusive line ranges of `#[cfg(test)]` items (attribute through the
/// end of the item's brace block or terminating semicolon).
pub fn cfg_test_ranges(sig: &[Tok]) -> Vec<LineRange> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while let Some(t) = sig.get(i) {
        if !t.is_punct('#') || !matches!(sig.get(i.saturating_add(1)), Some(b) if b.is_punct('[')) {
            i = i.saturating_add(1);
            continue;
        }
        let attr_start = i;
        let Some(attr_end) = matching(sig, i.saturating_add(1), '[', ']') else {
            i = i.saturating_add(1);
            continue;
        };
        let is_test = sig.get(i..=attr_end).is_some_and(|window| {
            window.iter().any(|w| w.is_ident("cfg")) && window.iter().any(|w| w.is_ident("test"))
        });
        if !is_test {
            i = attr_end.saturating_add(1);
            continue;
        }
        // Skip any further attributes stacked on the same item.
        let mut k = attr_end.saturating_add(1);
        while matches!(sig.get(k), Some(h) if h.is_punct('#'))
            && matches!(sig.get(k.saturating_add(1)), Some(b) if b.is_punct('['))
        {
            match matching(sig, k.saturating_add(1), '[', ']') {
                Some(e) => k = e.saturating_add(1),
                None => break,
            }
        }
        // The item runs to its matching `}` (mod/fn/impl) or a `;`.
        let mut depth = 0i64;
        let mut end = k;
        while let Some(t2) = sig.get(end) {
            if t2.is_punct('{') {
                if depth == 0 {
                    if let Some(close) = matching(sig, end, '{', '}') {
                        end = close;
                    }
                    break;
                }
                depth = depth.saturating_add(1);
            } else if t2.is_punct('(') || t2.is_punct('[') {
                depth = depth.saturating_add(1);
            } else if t2.is_punct(')') || t2.is_punct(']') {
                depth = depth.saturating_sub(1);
            } else if t2.is_punct(';') && depth == 0 {
                break;
            }
            end = end.saturating_add(1);
        }
        let start_line = sig.get(attr_start).map_or(1, |t2| t2.line);
        let end_line = sig.get(end).map_or(start_line, |t2| t2.line);
        out.push(LineRange {
            start: start_line,
            end: end_line,
        });
        i = end.saturating_add(1);
    }
    out
}

/// Index of the token closing the bracket opened at `open_idx`.
fn matching(sig: &[Tok], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0i64;
    let mut i = open_idx;
    while let Some(t) = sig.get(i) {
        if t.is_punct(open) {
            depth = depth.saturating_add(1);
        } else if t.is_punct(close) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return Some(i);
            }
        }
        i = i.saturating_add(1);
    }
    None
}

/// `no-unwrap` / `no-expect` / `no-panic` at token `i`, if any.
fn panic_rule_at(sig: &[Tok], i: usize) -> Option<(&'static str, String)> {
    let t = sig.get(i)?;
    if t.kind != TokKind::Ident {
        return None;
    }
    let prev = i.checked_sub(1).and_then(|p| sig.get(p));
    let next = sig.get(i.saturating_add(1));
    let after_dot = prev.is_some_and(|p| p.is_punct('.'));
    let called = next.is_some_and(|n| n.is_punct('('));
    match t.text.as_str() {
        "unwrap" if after_dot && called => Some((
            "no-unwrap",
            "`.unwrap()` in library code; return Result or handle the None/Err case".into(),
        )),
        "expect" if after_dot && called => Some((
            "no-expect",
            "`.expect()` in library code; return Result or handle the None/Err case".into(),
        )),
        "panic" | "unreachable" | "todo" | "unimplemented"
            if next.is_some_and(|n| n.is_punct('!')) =>
        {
            Some((
                "no-panic",
                format!("`{}!` in library code; return an error instead", t.text),
            ))
        }
        _ => None,
    }
}

/// `slice-arith`: an index expression (`x[…]` following a value) whose
/// bracket contents contain a binary `-` — the underflow-prone pattern
/// (`w[..n - 1]`, `v[v.len() - 1]`).
pub fn slice_arith_at(sig: &[Tok], i: usize) -> bool {
    let Some(t) = sig.get(i) else { return false };
    if !t.is_punct('[') {
        return false;
    }
    // Only *index* positions: the bracket directly follows a value token.
    let is_index = i.checked_sub(1).and_then(|p| sig.get(p)).is_some_and(|p| {
        matches!(p.kind, TokKind::Ident | TokKind::Number)
            || p.is_punct(')')
            || p.is_punct(']')
            || p.is_punct('?')
    });
    if !is_index {
        return false;
    }
    let Some(close) = matching(sig, i, '[', ']') else {
        return false;
    };
    let mut k = i.saturating_add(1);
    while k < close {
        let Some(c) = sig.get(k) else { break };
        if c.is_punct('-') {
            let prev_val = k.checked_sub(1).and_then(|p| sig.get(p)).is_some_and(|p| {
                matches!(p.kind, TokKind::Ident | TokKind::Number)
                    || p.is_punct(')')
                    || p.is_punct(']')
            });
            let arrow = sig
                .get(k.saturating_add(1))
                .is_some_and(|n| n.is_punct('>'));
            if prev_val && !arrow {
                return true;
            }
        }
        k = k.saturating_add(1);
    }
    false
}

/// `wall-clock`: `Instant::now` / `SystemTime::now`.
fn wall_clock_at(sig: &[Tok], i: usize) -> bool {
    let Some(t) = sig.get(i) else { return false };
    (t.is_ident("Instant") || t.is_ident("SystemTime"))
        && path_sep(sig, i.saturating_add(1))
        && sig
            .get(i.saturating_add(3))
            .is_some_and(|n| n.is_ident("now"))
}

/// Blocking methods that wait out a real `Duration` (thread parking,
/// channel receives, condvar waits).
const TIMEOUT_WAITS: [&str; 3] = ["park_timeout", "recv_timeout", "wait_timeout"];

/// `no-sleep`: `thread::sleep(…)` or a called `*_timeout` wait — real-time
/// blocking that belongs behind the virtual clock in library code.
fn sleep_at(sig: &[Tok], i: usize) -> Option<String> {
    let t = sig.get(i)?;
    if t.is_ident("thread")
        && path_sep(sig, i.saturating_add(1))
        && sig
            .get(i.saturating_add(3))
            .is_some_and(|n| n.is_ident("sleep"))
    {
        return Some(
            "`thread::sleep` in library code; back off on the virtual clock instead".into(),
        );
    }
    if t.kind == TokKind::Ident
        && TIMEOUT_WAITS.iter().any(|w| t.is_ident(w))
        && sig
            .get(i.saturating_add(1))
            .is_some_and(|n| n.is_punct('('))
    {
        return Some(format!(
            "`{}` blocks on real time in library code; wait on the virtual clock instead",
            t.text
        ));
    }
    None
}

/// `env-read`: `env::var` / `env::var_os`.
fn env_read_at(sig: &[Tok], i: usize) -> bool {
    let Some(t) = sig.get(i) else { return false };
    t.is_ident("env")
        && path_sep(sig, i.saturating_add(1))
        && sig
            .get(i.saturating_add(3))
            .is_some_and(|n| n.is_ident("var") || n.is_ident("var_os"))
}

/// Functions returning a `#[must_use]` RAII guard whose immediate drop
/// is almost certainly a bug (`span` → `SpanGuard`, `scope` →
/// `TraceScope`). `let _ = …` silences the must-use warning while still
/// dropping — exactly the case the compiler cannot catch.
const GUARD_FNS: [&str; 3] = ["span", "span_attr", "scope"];

/// `trace-hygiene`: a `let _ = …;` statement whose right-hand side calls
/// a span-guard constructor, discarding the guard immediately.
fn discarded_guard_at(sig: &[Tok], i: usize) -> bool {
    let Some(t) = sig.get(i) else { return false };
    if !t.is_ident("let")
        || !sig
            .get(i.saturating_add(1))
            .is_some_and(|u| u.is_ident("_"))
        || !sig
            .get(i.saturating_add(2))
            .is_some_and(|e| e.is_punct('='))
    {
        return false;
    }
    let mut depth = 0i64;
    let mut j = i.saturating_add(3);
    let mut budget = 200usize;
    while let Some(x) = sig.get(j) {
        budget = budget.saturating_sub(1);
        if budget == 0 {
            return false;
        }
        if x.is_punct('(') || x.is_punct('[') || x.is_punct('{') {
            depth = depth.saturating_add(1);
        } else if x.is_punct(')') || x.is_punct(']') || x.is_punct('}') {
            depth = depth.saturating_sub(1);
        } else if depth == 0 && x.is_punct(';') {
            return false;
        } else if x.kind == TokKind::Ident
            && GUARD_FNS.iter().any(|g| x.is_ident(g))
            && sig
                .get(j.saturating_add(1))
                .is_some_and(|p| p.is_punct('('))
        {
            return true;
        }
        j = j.saturating_add(1);
    }
    false
}

/// Are tokens `i`, `i+1` the two colons of a `::` path separator?
fn path_sep(sig: &[Tok], i: usize) -> bool {
    sig.get(i).is_some_and(|a| a.is_punct(':'))
        && sig
            .get(i.saturating_add(1))
            .is_some_and(|b| b.is_punct(':'))
}

const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];

/// Iterator-producing methods whose order is the hasher's.
pub const ITER_METHODS: [&str; 7] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
];

/// Idents that mark the unordered stream as re-sorted or order-insensitive
/// when they appear later in the same statement.
const SANCTIONED: [&str; 16] = [
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "sum",
    "count",
    "min",
    "max",
    "fold",
    "len",
    "all",
];

/// Identifiers declared with a `HashMap`/`HashSet` type: `name: HashMap<…>`
/// annotations (fields, params, and annotated `let`s) and
/// `name = HashMap::new()`-style bindings. A documented heuristic: it sees
/// only in-file declarations, so tag-file authors keep hash-typed locals
/// locally annotated (the workspace style does anyway).
pub fn collect_hash_names(sig: &[Tok]) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for (i, t) in sig.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        // name : [&] [mut] HashMap — but not `name ::` (a path).
        let colon = sig
            .get(i.saturating_add(1))
            .is_some_and(|c| c.is_punct(':'));
        let double = path_sep(sig, i.saturating_add(1));
        if colon && !double {
            let mut j = i.saturating_add(2);
            while sig.get(j).is_some_and(|x| {
                x.is_punct('&') || x.is_ident("mut") || x.kind == TokKind::Lifetime
            }) {
                j = j.saturating_add(1);
            }
            if sig
                .get(j)
                .is_some_and(|x| HASH_TYPES.iter().any(|h| x.is_ident(h)))
            {
                out.push(t.text.clone());
                continue;
            }
        }
        // name = HashMap::…
        if sig
            .get(i.saturating_add(1))
            .is_some_and(|e| e.is_punct('='))
            && sig
                .get(i.saturating_add(2))
                .is_some_and(|x| HASH_TYPES.iter().any(|h| x.is_ident(h)))
        {
            out.push(t.text.clone());
        }
    }
    out.sort();
    out.dedup();
    out
}

/// `hash-iter` at token `i` in a `lint:deterministic` file: a hash-typed
/// name feeding an iteration whose order would reach downstream state
/// unsorted. Returns the token to anchor the violation on.
fn hash_iter_at<'a>(sig: &'a [Tok], i: usize, hash_names: &[String]) -> Option<(&'a Tok, String)> {
    let t = sig.get(i)?;
    // name.iter()/keys()/… where `name` is hash-typed
    if t.kind == TokKind::Ident && hash_names.contains(&t.text) {
        let dot = sig
            .get(i.saturating_add(1))
            .is_some_and(|d| d.is_punct('.'));
        let method = sig.get(i.saturating_add(2));
        if dot {
            if let Some(m) = method {
                if ITER_METHODS.iter().any(|im| m.is_ident(im))
                    && sig
                        .get(i.saturating_add(3))
                        .is_some_and(|p| p.is_punct('('))
                    && !statement_sanctioned(sig, i.saturating_add(3))
                {
                    return Some((
                        t,
                        format!(
                            "`{}.{}()` iterates a hash container in a deterministic module; \
                             re-sort the result or justify with lint:allow",
                            t.text, m.text
                        ),
                    ));
                }
            }
        }
    }
    // for <pat> in [&][mut] name { … }
    if t.is_ident("for") {
        let mut depth = 0i64;
        let mut j = i.saturating_add(1);
        let mut in_idx = None;
        while let Some(x) = sig.get(j) {
            if x.is_punct('(') || x.is_punct('[') {
                depth = depth.saturating_add(1);
            } else if x.is_punct(')') || x.is_punct(']') {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && x.is_ident("in") {
                in_idx = Some(j);
                break;
            } else if x.is_punct('{') || x.is_punct(';') {
                break;
            }
            j = j.saturating_add(1);
        }
        let mut k = in_idx?.saturating_add(1);
        while sig
            .get(k)
            .is_some_and(|x| x.is_punct('&') || x.is_ident("mut"))
        {
            k = k.saturating_add(1);
        }
        let name = sig.get(k)?;
        if name.kind == TokKind::Ident
            && hash_names.contains(&name.text)
            && sig
                .get(k.saturating_add(1))
                .is_some_and(|b| b.is_punct('{'))
        {
            return Some((
                name,
                format!(
                    "`for … in {}` iterates a hash container in a deterministic module; \
                     re-sort the result or justify with lint:allow",
                    name.text
                ),
            ));
        }
    }
    None
}

/// Does the statement containing the call at `open_paren` later re-sort
/// or reduce the stream (a [`SANCTIONED`] ident before the statement
/// ends)?
pub fn statement_sanctioned(sig: &[Tok], open_paren: usize) -> bool {
    let mut depth = 0i64;
    let mut j = open_paren;
    let mut budget = 400usize;
    while let Some(x) = sig.get(j) {
        budget = budget.saturating_sub(1);
        if budget == 0 {
            return false;
        }
        if x.is_punct('(') || x.is_punct('[') {
            depth = depth.saturating_add(1);
        } else if x.is_punct(')') || x.is_punct(']') {
            if depth == 0 {
                return false;
            }
            depth = depth.saturating_sub(1);
        } else if depth == 0 && (x.is_punct(';') || x.is_punct('{') || x.is_punct('}')) {
            return false;
        } else if x.kind == TokKind::Ident && SANCTIONED.iter().any(|s| x.is_ident(s)) {
            return true;
        }
        j = j.saturating_add(1);
    }
    false
}

/// Crate-root hygiene: `#![forbid(unsafe_code)]` and a `//!` doc comment.
fn hygiene(file: &SourceFile, toks: &[Tok], sig: &[Tok], raw: &mut Vec<Violation>) {
    let has_forbid = sig.windows(4).any(|w| {
        let mut it = w.iter();
        matches!(
            (it.next(), it.next(), it.next(), it.next()),
            (Some(a), Some(b), Some(c), Some(d))
                if a.is_ident("forbid") && b.is_punct('(') && c.is_ident("unsafe_code") && d.is_punct(')')
        )
    });
    if !has_forbid {
        raw.push(Violation {
            file: file.rel.clone(),
            line: 1,
            col: 1,
            rule: "forbid-unsafe",
            msg: "crate root must carry `#![forbid(unsafe_code)]`".into(),
        });
    }
    let has_doc = toks
        .iter()
        .any(|t| is_comment(t) && t.text.starts_with('!'));
    if !has_doc {
        raw.push(Violation {
            file: file.rel.clone(),
            line: 1,
            col: 1,
            rule: "crate-doc",
            msg: "crate root must carry a crate-level `//!` doc comment".into(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_file(text: &str) -> SourceFile {
        SourceFile {
            rel: "crates/core/src/x.rs".into(),
            crate_name: "core".into(),
            file_name: "x.rs".into(),
            is_crate_root: false,
            is_bin: false,
            text: text.into(),
        }
    }

    fn rules_hit(text: &str) -> Vec<&'static str> {
        let out = lint_source(&lib_file(text), &Scope::default());
        out.violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn unwrap_expect_panic_flagged() {
        assert_eq!(rules_hit("fn f() { x.unwrap(); }"), vec!["no-unwrap"]);
        assert_eq!(rules_hit("fn f() { x.expect(\"m\"); }"), vec!["no-expect"]);
        assert_eq!(rules_hit("fn f() { panic!(\"m\"); }"), vec!["no-panic"]);
        assert_eq!(rules_hit("fn f() { unreachable!(); }"), vec!["no-panic"]);
    }

    #[test]
    fn unwrap_or_and_strings_not_flagged() {
        assert!(rules_hit("fn f() { x.unwrap_or(0); }").is_empty());
        assert!(rules_hit("fn f() { let s = \"don't .unwrap() me\"; }").is_empty());
        assert!(rules_hit("// .unwrap() in a comment\nfn f() {}").is_empty());
    }

    #[test]
    fn slice_arith_flagged_only_for_index_subtraction() {
        assert_eq!(
            rules_hit("fn f() { let y = v[v.len() - 1]; }"),
            vec!["slice-arith"]
        );
        assert_eq!(
            rules_hit("fn f() { let y = &w[..n - 1]; }"),
            vec!["slice-arith"]
        );
        assert!(rules_hit("fn f() { let y = v[0]; }").is_empty());
        assert!(rules_hit("fn f() { let y = &w[i + 1..]; }").is_empty());
        assert!(
            rules_hit("fn f() { let a = [x - 1, 2]; }").is_empty(),
            "array literal"
        );
        assert!(rules_hit("fn f() { let y = v[i]; let z = a - b; }").is_empty());
    }

    #[test]
    fn cfg_test_module_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n fn g() { x.unwrap(); }\n}\n";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn bin_files_exempt_from_panic_rules() {
        let mut f = lib_file("fn main() { x.unwrap(); }");
        f.is_bin = true;
        assert!(lint_source(&f, &Scope::default()).violations.is_empty());
    }

    #[test]
    fn wall_clock_and_env() {
        assert_eq!(
            rules_hit("fn f() { let t = Instant::now(); }"),
            vec!["wall-clock"]
        );
        assert_eq!(
            rules_hit("fn f() { let t = std::time::SystemTime::now(); }"),
            vec!["wall-clock"]
        );
        assert_eq!(
            rules_hit("fn f() { let v = std::env::var(\"X\"); }"),
            vec!["env-read"]
        );
        // exempt file names
        let mut f = lib_file("fn f() { let v = std::env::var(\"X\"); }");
        f.file_name = "config.rs".into();
        assert!(lint_source(&f, &Scope::default()).violations.is_empty());
    }

    #[test]
    fn sleep_and_timeout_waits_flagged() {
        assert_eq!(
            rules_hit("fn f() { std::thread::sleep(d); }"),
            vec!["no-sleep"]
        );
        assert_eq!(rules_hit("fn f() { thread::sleep(d); }"), vec!["no-sleep"]);
        assert_eq!(
            rules_hit("fn f(rx: &Receiver<u32>) { let _v = rx.recv_timeout(d); }"),
            vec!["no-sleep"]
        );
        assert_eq!(
            rules_hit("fn f() { std::thread::park_timeout(d); }"),
            vec!["no-sleep"]
        );
        // virtual-clock advancement and non-blocking calls pass
        assert!(rules_hit("fn f(c: &VirtualClock) { c.advance_ms(100); }").is_empty());
        assert!(rules_hit("fn f(rx: &Receiver<u32>) { let _v = rx.recv(); }").is_empty());
    }

    #[test]
    fn sleep_exemptions_cover_clock_timing_and_bench() {
        let src = "fn f() { std::thread::sleep(d); }";
        let mut clock = lib_file(src);
        clock.rel = "crates/fault/src/clock.rs".into();
        clock.crate_name = "fault".into();
        clock.file_name = "clock.rs".into();
        assert!(lint_source(&clock, &Scope::default()).violations.is_empty());
        let mut bench = lib_file(src);
        bench.rel = "crates/bench/src/run.rs".into();
        bench.crate_name = "bench".into();
        bench.file_name = "run.rs".into();
        assert!(lint_source(&bench, &Scope::default()).violations.is_empty());
    }

    #[test]
    fn fault_crate_is_in_panic_scope() {
        let mut f = lib_file("fn f() { x.unwrap(); }");
        f.rel = "crates/fault/src/x.rs".into();
        f.crate_name = "fault".into();
        let rules: Vec<_> = lint_source(&f, &Scope::default())
            .violations
            .iter()
            .map(|v| v.rule)
            .collect();
        assert_eq!(rules, vec!["no-unwrap"]);
    }

    #[test]
    fn hash_iter_in_tagged_file() {
        let src = "// lint:deterministic\n\
                   fn f(m: HashMap<String, u32>) {\n\
                   let v: Vec<_> = m.keys().collect();\n\
                   }\n";
        assert_eq!(rules_hit(src), vec!["hash-iter"]);
        // re-sorted in the same statement → sanctioned
        let sorted = "// lint:deterministic\n\
                      fn f(m: HashMap<String, u32>) {\n\
                      let v: BTreeSet<_> = m.keys().collect::<BTreeSet<_>>();\n\
                      }\n";
        assert!(rules_hit(sorted).is_empty());
        // untagged file → rule inactive
        let untagged = "fn f(m: HashMap<String, u32>) { let v: Vec<_> = m.keys().collect(); }";
        assert!(rules_hit(untagged).is_empty());
    }

    #[test]
    fn hash_iter_for_loop() {
        let src = "// lint:deterministic\n\
                   fn f(m: HashMap<String, u32>) {\n\
                   for x in &m { use_it(x); }\n\
                   }\n";
        assert_eq!(rules_hit(src), vec!["hash-iter"]);
        let vec_loop = "// lint:deterministic\n\
                        fn f(v: Vec<u32>) { for x in &v { use_it(x); } }";
        assert!(rules_hit(vec_loop).is_empty());
    }

    #[test]
    fn discarded_span_guard_flagged() {
        assert_eq!(
            rules_hit("fn f() { let _ = webiq_trace::span(\"x\"); work(); }"),
            vec!["trace-hygiene"]
        );
        assert_eq!(
            rules_hit("fn f(t: &Tracer) { let _ = t.scope(\"run\", \"book\"); }"),
            vec!["trace-hygiene"]
        );
        // a *named* binding holds the guard for the region — fine
        assert!(rules_hit("fn f() { let _span = webiq_trace::span(\"x\"); work(); }").is_empty());
        // `let _ = …` of something unrelated is fine
        assert!(rules_hit("fn f() { let _ = compute(); }").is_empty());
    }

    #[test]
    fn wall_clock_types_confined_to_trace_timing_module() {
        let src = "use std::time::Instant;\nfn f() {}\n";
        let mut f = lib_file(src);
        f.rel = "crates/trace/src/tracer.rs".into();
        f.crate_name = "trace".into();
        f.file_name = "tracer.rs".into();
        let rules: Vec<_> = lint_source(&f, &Scope::default())
            .violations
            .iter()
            .map(|v| v.rule)
            .collect();
        assert_eq!(rules, vec!["trace-hygiene"]);
        // the sanctioned timing module may name Instant freely
        f.rel = "crates/trace/src/timing.rs".into();
        f.file_name = "timing.rs".into();
        assert!(lint_source(&f, &Scope::default()).violations.is_empty());
        // other crates are covered by the plain wall-clock rule only
        let g = lib_file(src);
        assert!(lint_source(&g, &Scope::default()).violations.is_empty());
    }

    #[test]
    fn allows_suppress_and_are_counted() {
        let src = "fn f() {\n\
                   // lint:allow(no-unwrap) invariant: slot filled above\n\
                   x.unwrap();\n\
                   }\n";
        let out = lint_source(&lib_file(src), &Scope::default());
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(out.suppressed, 1);
    }

    #[test]
    fn allow_without_reason_rejected() {
        let src = "fn f() {\n// lint:allow(no-unwrap)\nx.unwrap();\n}\n";
        let out = lint_source(&lib_file(src), &Scope::default());
        let rules: Vec<_> = out.violations.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"bad-allow"));
        assert!(
            rules.contains(&"no-unwrap"),
            "reasonless allow must not suppress"
        );
        assert_eq!(out.suppressed, 0);
    }

    #[test]
    fn doc_comments_never_parsed_as_directives() {
        let src = "//! Use `// lint:allow(rule-id) reason` to suppress.\n\
                   /// Also mentions lint:allow(whatever) here.\n\
                   fn f() {}\n";
        let out = lint_source(&lib_file(src), &Scope::default());
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn allow_unknown_rule_rejected() {
        let src = "// lint:allow(no-such-rule) because\nfn f() {}\n";
        let out = lint_source(&lib_file(src), &Scope::default());
        assert_eq!(
            out.violations.iter().map(|v| v.rule).collect::<Vec<_>>(),
            vec!["bad-allow"]
        );
    }

    #[test]
    fn hygiene_rules_on_roots_only() {
        let mut f = lib_file("fn f() {}\n");
        assert!(lint_source(&f, &Scope::default()).violations.is_empty());
        f.is_crate_root = true;
        let rules: Vec<_> = lint_source(&f, &Scope::default())
            .violations
            .iter()
            .map(|v| v.rule)
            .collect();
        assert_eq!(rules, vec!["forbid-unsafe", "crate-doc"]);
        f.text = "//! Crate docs.\n#![forbid(unsafe_code)]\nfn f() {}\n".into();
        assert!(lint_source(&f, &Scope::default()).violations.is_empty());
    }
}
