//! A lightweight Rust token lexer — just enough lexical structure for the
//! workspace lint rules, in the spirit of `crates/html/src/lexer.rs`.
//!
//! Produces identifiers, numbers, string/char literals, lifetimes,
//! comments, and single-character punctuation, each tagged with its
//! 1-based line and column. It deliberately does *not* build multi-char
//! operators: rules that need `::` or `..` match adjacent punctuation
//! tokens instead, which keeps the lexer small and obviously correct.
//!
//! Handled Rust surface syntax: nested block comments, doc comments
//! (`///`, `//!`, `/** */`, `/*! */`), raw strings (`r"…"`, `r#"…"#`),
//! byte and C strings (`b"…"`, `c"…"`, `br#"…"#`), byte chars (`b'x'`),
//! raw identifiers (`r#match`), char literals vs. lifetimes, and float
//! exponents (`1.0e-3` lexes as one number, so a rule never mistakes the
//! exponent sign for a binary minus).

/// What kind of lexeme a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `HashMap`, `unwrap`).
    Ident,
    /// Numeric literal, including any suffix (`42`, `0xFF`, `1.0e-3`).
    Number,
    /// String literal of any flavour (regular, raw, byte, C).
    Str,
    /// Character or byte-character literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'static`) — including the leading quote.
    Lifetime,
    /// `//` comment; `text` is everything after the `//`.
    LineComment,
    /// `/* */` comment; `text` is everything between the delimiters.
    BlockComment,
    /// Single punctuation character (`.`, `[`, `:`, `-`, …).
    Punct,
}

/// One token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Tok {
    /// Lexeme class.
    pub kind: TokKind,
    /// Token text. For comments, the delimiters are stripped; for
    /// punctuation this is the single character.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in chars).
    pub col: u32,
}

impl Tok {
    /// Is this punctuation token exactly `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.starts_with(c)
    }

    /// Is this an identifier token with exactly this text?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// Character cursor with line/column tracking. All access is through
/// `peek`/`bump`, so the lexer never indexes or slices.
struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn new(src: &str) -> Self {
        Cursor {
            chars: src.chars().collect(),
            i: 0,
            line: 1,
            col: 1,
        }
    }

    /// Character `off` positions ahead of the cursor, if any.
    fn peek(&self, off: usize) -> Option<char> {
        self.chars.get(self.i.saturating_add(off)).copied()
    }

    /// Consume and return the next character, updating line/col.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.i = self.i.saturating_add(1);
        if c == '\n' {
            self.line = self.line.saturating_add(1);
            self.col = 1;
        } else {
            self.col = self.col.saturating_add(1);
        }
        Some(c)
    }

    /// Consume `n` characters (or fewer at end of input).
    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            if self.bump().is_none() {
                break;
            }
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize Rust source. Never fails: unterminated literals simply run to
/// end of input, which is good enough for linting (the compiler will
/// reject such files anyway).
pub fn lex(src: &str) -> Vec<Tok> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        if c == '/' && cur.peek(1) == Some('/') {
            cur.bump_n(2);
            let mut text = String::new();
            while let Some(n) = cur.peek(0) {
                if n == '\n' {
                    break;
                }
                text.push(n);
                cur.bump();
            }
            out.push(Tok {
                kind: TokKind::LineComment,
                text,
                line,
                col,
            });
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            cur.bump_n(2);
            let mut text = String::new();
            let mut depth = 1u32;
            while let Some(n) = cur.peek(0) {
                if n == '/' && cur.peek(1) == Some('*') {
                    depth = depth.saturating_add(1);
                    text.push_str("/*");
                    cur.bump_n(2);
                } else if n == '*' && cur.peek(1) == Some('/') {
                    depth = depth.saturating_sub(1);
                    cur.bump_n(2);
                    if depth == 0 {
                        break;
                    }
                    text.push_str("*/");
                } else {
                    text.push(n);
                    cur.bump();
                }
            }
            out.push(Tok {
                kind: TokKind::BlockComment,
                text,
                line,
                col,
            });
            continue;
        }
        // Raw strings, byte/C strings, byte chars, raw identifiers — all
        // start with what would otherwise be an identifier character.
        if matches!(c, 'r' | 'b' | 'c') {
            if let Some(tok) = lex_prefixed_literal(&mut cur, line, col) {
                out.push(tok);
                continue;
            }
        }
        if is_ident_start(c) {
            out.push(lex_ident(&mut cur, line, col));
            continue;
        }
        if c.is_ascii_digit() {
            out.push(lex_number(&mut cur, line, col));
            continue;
        }
        if c == '"' {
            cur.bump();
            out.push(Tok {
                kind: TokKind::Str,
                text: lex_quoted(&mut cur, '"'),
                line,
                col,
            });
            continue;
        }
        if c == '\'' {
            out.push(lex_quote(&mut cur, line, col));
            continue;
        }
        cur.bump();
        out.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
            col,
        });
    }
    out
}

/// Try to lex a literal introduced by `r`, `b`, or `c`: raw strings
/// (`r"…"`/`r#"…"#` and the `br`/`cr` variants), byte or C strings
/// (`b"…"`, `c"…"`), byte chars (`b'x'`), and raw identifiers
/// (`r#match`). Returns `None` when the cursor is on a plain identifier.
fn lex_prefixed_literal(cur: &mut Cursor, line: u32, col: u32) -> Option<Tok> {
    let c0 = cur.peek(0)?;
    // b'x' — byte char
    if c0 == 'b' && cur.peek(1) == Some('\'') {
        cur.bump_n(2);
        let text = lex_quoted(cur, '\'');
        return Some(Tok {
            kind: TokKind::Char,
            text,
            line,
            col,
        });
    }
    // b"…" / c"…"
    if matches!(c0, 'b' | 'c') && cur.peek(1) == Some('"') {
        cur.bump_n(2);
        let text = lex_quoted(cur, '"');
        return Some(Tok {
            kind: TokKind::Str,
            text,
            line,
            col,
        });
    }
    // br / cr raw strings
    if matches!(c0, 'b' | 'c') && cur.peek(1) == Some('r') {
        let mut hashes = 0usize;
        while cur.peek(2usize.saturating_add(hashes)) == Some('#') {
            hashes = hashes.saturating_add(1);
        }
        if cur.peek(2usize.saturating_add(hashes)) == Some('"') {
            cur.bump_n(2);
            return Some(lex_raw_string(cur, line, col));
        }
        return None;
    }
    if c0 == 'r' {
        let mut hashes = 0usize;
        while cur.peek(1usize.saturating_add(hashes)) == Some('#') {
            hashes = hashes.saturating_add(1);
        }
        let after = cur.peek(1usize.saturating_add(hashes));
        if after == Some('"') {
            cur.bump();
            return Some(lex_raw_string(cur, line, col));
        }
        // r#ident — raw identifier (exactly one hash, then ident start)
        if hashes == 1 && after.is_some_and(is_ident_start) {
            cur.bump_n(2);
            return Some(lex_ident(cur, line, col));
        }
    }
    None
}

/// Lex `#*"…"#*` with the cursor on the first `#` or `"`.
fn lex_raw_string(cur: &mut Cursor, line: u32, col: u32) -> Tok {
    let mut hashes = 0usize;
    while cur.peek(0) == Some('#') {
        hashes = hashes.saturating_add(1);
        cur.bump();
    }
    cur.bump(); // opening quote
    let mut text = String::new();
    'scan: while let Some(c) = cur.peek(0) {
        if c == '"' {
            // candidate close: `"` followed by `hashes` hash marks
            for k in 0..hashes {
                if cur.peek(1usize.saturating_add(k)) != Some('#') {
                    text.push(c);
                    cur.bump();
                    continue 'scan;
                }
            }
            cur.bump_n(1usize.saturating_add(hashes));
            break;
        }
        text.push(c);
        cur.bump();
    }
    Tok {
        kind: TokKind::Str,
        text,
        line,
        col,
    }
}

/// Lex the body of a quoted literal (cursor just past the opening quote),
/// honouring backslash escapes, through the closing `quote`.
fn lex_quoted(cur: &mut Cursor, quote: char) -> String {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '\\' {
            text.push(c);
            cur.bump();
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
            continue;
        }
        cur.bump();
        if c == quote {
            break;
        }
        text.push(c);
    }
    text
}

/// Lex a `'`-introduced token: lifetime (`'a`, `'static`) when an
/// identifier follows without a closing quote, char literal otherwise.
fn lex_quote(cur: &mut Cursor, line: u32, col: u32) -> Tok {
    let next = cur.peek(1);
    let after = cur.peek(2);
    if next.is_some_and(is_ident_start) && after != Some('\'') {
        cur.bump(); // the quote
        let mut text = String::from("'");
        while let Some(c) = cur.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            text.push(c);
            cur.bump();
        }
        return Tok {
            kind: TokKind::Lifetime,
            text,
            line,
            col,
        };
    }
    cur.bump();
    Tok {
        kind: TokKind::Char,
        text: lex_quoted(cur, '\''),
        line,
        col,
    }
}

fn lex_ident(cur: &mut Cursor, line: u32, col: u32) -> Tok {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if !is_ident_continue(c) {
            break;
        }
        text.push(c);
        cur.bump();
    }
    Tok {
        kind: TokKind::Ident,
        text,
        line,
        col,
    }
}

/// Lex a numeric literal: digits, `_`, suffix letters, at most the usual
/// float shape. A `.` is consumed only when a digit follows (so `0..10`
/// stays two punctuation dots) and an `e`/`E` exponent may consume one
/// sign character (so `1.0e-3` is a single token and its `-` can never be
/// mistaken for a binary minus by the slice rule).
fn lex_number(cur: &mut Cursor, line: u32, col: u32) -> Tok {
    let mut text = String::new();
    let mut seen_dot = false;
    while let Some(c) = cur.peek(0) {
        if c.is_ascii_alphanumeric() || c == '_' {
            text.push(c);
            cur.bump();
            // exponent sign: `e`/`E` directly followed by `+`/`-` then digit
            if matches!(c, 'e' | 'E')
                && matches!(cur.peek(0), Some('+') | Some('-'))
                && cur.peek(1).is_some_and(|d| d.is_ascii_digit())
                && !text.starts_with("0x")
                && !text.starts_with("0b")
                && !text.starts_with("0o")
            {
                if let Some(sign) = cur.bump() {
                    text.push(sign);
                }
            }
            continue;
        }
        if c == '.' && !seen_dot && cur.peek(1).is_some_and(|d| d.is_ascii_digit()) {
            seen_dot = true;
            text.push(c);
            cur.bump();
            continue;
        }
        break;
    }
    Tok {
        kind: TokKind::Number,
        text,
        line,
        col,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("let x = a.unwrap();");
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, "let".into()),
                (TokKind::Ident, "x".into()),
                (TokKind::Punct, "=".into()),
                (TokKind::Ident, "a".into()),
                (TokKind::Punct, ".".into()),
                (TokKind::Ident, "unwrap".into()),
                (TokKind::Punct, "(".into()),
                (TokKind::Punct, ")".into()),
                (TokKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn positions_are_one_based() {
        let toks = lex("a\n  bb");
        let a = toks.first().expect("a");
        assert_eq!((a.line, a.col), (1, 1));
        let b = toks.get(1).expect("bb");
        assert_eq!((b.line, b.col), (2, 3));
    }

    #[test]
    fn comments_capture_text() {
        let toks = kinds("//! doc\n// plain\n/* block */");
        assert_eq!(
            toks,
            vec![
                (TokKind::LineComment, "! doc".into()),
                (TokKind::LineComment, " plain".into()),
                (TokKind::BlockComment, " block ".into()),
            ]
        );
    }

    #[test]
    fn nested_block_comment() {
        let toks = kinds("/* a /* b */ c */ x");
        assert_eq!(toks.first().map(|t| t.0), Some(TokKind::BlockComment));
        assert_eq!(toks.get(1), Some(&(TokKind::Ident, "x".to_string())));
    }

    #[test]
    fn string_flavours() {
        let toks = kinds(r####""s" r"raw" r#"ra"w"# b"bytes" br#"b"# c"c" "####);
        let texts: Vec<String> = toks
            .into_iter()
            .map(|(k, t)| {
                assert_eq!(k, TokKind::Str);
                t
            })
            .collect();
        assert_eq!(texts, vec!["s", "raw", "ra\"w", "bytes", "b", "c"]);
    }

    #[test]
    fn string_escapes_do_not_end_literal() {
        let toks = kinds(r#""a\"b" x"#);
        assert_eq!(toks.first(), Some(&(TokKind::Str, "a\\\"b".to_string())));
        assert_eq!(toks.get(1), Some(&(TokKind::Ident, "x".to_string())));
    }

    #[test]
    fn strings_hide_rule_triggers() {
        // `.unwrap()` inside a string must not produce Ident("unwrap")
        let toks = lex(r#"let m = "x.unwrap() and panic!";"#);
        assert!(!toks
            .iter()
            .any(|t| t.is_ident("unwrap") || t.is_ident("panic")));
    }

    #[test]
    fn lifetime_vs_char() {
        let toks = kinds("'a 'static 'x' '\\n' b'z'");
        assert_eq!(
            toks,
            vec![
                (TokKind::Lifetime, "'a".into()),
                (TokKind::Lifetime, "'static".into()),
                (TokKind::Char, "x".into()),
                (TokKind::Char, "\\n".into()),
                (TokKind::Char, "z".into()),
            ]
        );
    }

    #[test]
    fn raw_identifier() {
        let toks = kinds("r#match");
        assert_eq!(toks, vec![(TokKind::Ident, "match".into())]);
    }

    #[test]
    fn number_shapes() {
        assert_eq!(
            kinds("42 1_000 0xFFu8"),
            vec![
                (TokKind::Number, "42".into()),
                (TokKind::Number, "1_000".into()),
                (TokKind::Number, "0xFFu8".into()),
            ]
        );
        // range dots stay punctuation
        assert_eq!(
            kinds("0..10"),
            vec![
                (TokKind::Number, "0".into()),
                (TokKind::Punct, ".".into()),
                (TokKind::Punct, ".".into()),
                (TokKind::Number, "10".into()),
            ]
        );
        // exponent minus is part of the number
        assert_eq!(kinds("1.0e-3"), vec![(TokKind::Number, "1.0e-3".into())]);
    }

    #[test]
    fn unterminated_literals_run_to_eof() {
        assert_eq!(kinds("\"open"), vec![(TokKind::Str, "open".into())]);
        assert_eq!(
            kinds("/* open"),
            vec![(TokKind::BlockComment, " open".into())]
        );
    }
}
