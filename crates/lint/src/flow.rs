//! webiq-flow — the cross-crate flow passes over the call graph.
//!
//! Three analyses run on the graph built by [`crate::graph`]:
//!
//! 1. **Panic-reachability certification** (`flow-panic`). Every public
//!    function of the certified library crates must be unable to reach a
//!    panic site (`unwrap`/`expect`/`panic!`-family/subtracting index)
//!    transitively through the call graph. Each certified crate gets a
//!    certificate recording its public-API count and whether it proved
//!    panic-free; any failure comes with a deterministic witness path.
//! 2. **Lock-order analysis** (`flow-lock`). Mutex acquisitions (direct
//!    `.lock()` and the workspace's `lock`/`lock_shard` wrappers) are
//!    grouped into *classes* (`Owner.field`, statics, fn-locals). The
//!    pass flags same-class nested acquisition (std mutexes are not
//!    reentrant → self-deadlock), calls made while holding a lock whose
//!    callee can transitively re-acquire the held class, and inconsistent
//!    pair ordering (`A` held while taking `B` somewhere, `B` held while
//!    taking `A` elsewhere → classic ABBA deadlock).
//! 3. **Determinism taint** (`flow-taint`). Sources — unsorted
//!    `HashMap`/`HashSet` iteration, `env::var` outside the config
//!    plumbing, wall-clock reads outside `timing.rs`/bench — taint their
//!    function and every transitive caller; a tainted function that
//!    calls a trace/obs emission sink is flagged, because nondeterminism
//!    would leak into the byte-identical trace/metrics output.
//!
//! Suppression rides the existing `// lint:allow(rule) reason` comments:
//! a site suppressed for its lexical rule (or for the `flow-*` id) is
//! excluded from seeding the passes, so one audited allow covers both
//! the lexical and flow layer.
//!
//! Output is deterministic: violations sort by (file, line, col, rule),
//! certificates by crate, and the SARIF-style JSON report is rendered
//! one record per line so identical inputs are byte-identical and the
//! committed `FLOW_BASELINE.json` diffs cleanly.

use std::io;
use std::path::Path;

use crate::graph::{self, DepClosure, Graph, Node, ParsedSource};
use crate::parse::{self, CallKind, SiteKind};
use crate::rules::{Scope, SourceFile};

/// Crates whose public APIs are certified panic-free (the paper pipeline
/// plus the observability substrate; `lint`, `rng`, and `bench` are
/// harness code and stay outside the certificate set).
pub const CERTIFIED_CRATES: [&str; 14] = [
    "core", "data", "deep", "fault", "html", "matcher", "nlp", "obs", "prof", "stats", "store",
    "trace", "web", "why",
];

/// Public trace/obs entry points that emit into the deterministic
/// trace/metrics streams; tainted callers of these are flagged.
const SINK_NAMES: [&str; 12] = [
    "add",
    "end_epoch",
    "gauge",
    "incr",
    "item",
    "observe",
    "publish",
    "publish_item",
    "span",
    "span_attr",
    "submit",
    "render",
];

/// One flow finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowViolation {
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// `flow-panic` / `flow-lock` / `flow-taint`.
    pub rule: &'static str,
    /// Human-readable message (deterministic).
    pub msg: String,
}

impl FlowViolation {
    /// Stable identity used by the baseline comparison.
    pub fn key(&self) -> String {
        format!("{}|{}|{}|{}", self.rule, self.file, self.line, self.col)
    }
}

/// Per-crate panic certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Crate directory name.
    pub krate: String,
    /// Number of public library functions examined.
    pub public_apis: usize,
    /// True when none of them can reach a panic site.
    pub panic_free: bool,
}

/// Analyzer statistics (recorded in the JSON report for drift review).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlowStats {
    /// Source files parsed.
    pub files: usize,
    /// Function items in the graph.
    pub functions: usize,
    /// Distinct call edges.
    pub edges: usize,
    /// Calls resolved to at least one workspace target.
    pub resolved_calls: usize,
    /// Calls with no workspace target (std, closures).
    pub unresolved_calls: usize,
    /// Effect sites excluded by audited `lint:allow` suppressions.
    pub suppressed: usize,
}

/// The full flow-analysis result.
#[derive(Debug, Clone, Default)]
pub struct FlowReport {
    /// Findings, sorted by (file, line, col, rule).
    pub violations: Vec<FlowViolation>,
    /// Certificates, sorted by crate.
    pub certificates: Vec<Certificate>,
    /// Analyzer statistics.
    pub stats: FlowStats,
}

/// Run the flow analysis over every workspace source under `root`.
pub fn flow_workspace(root: &Path) -> io::Result<FlowReport> {
    let files = crate::walk::workspace_sources(root)?;
    let closure = graph::dep_closure(root);
    Ok(analyze_files(&files, &closure, &Scope::default()))
}

/// Run the flow analysis over an explicit file set (used by fixtures).
pub fn analyze_files(files: &[SourceFile], closure: &DepClosure, scope: &Scope) -> FlowReport {
    let sources: Vec<ParsedSource> = files
        .iter()
        .map(|f| ParsedSource {
            rel: f.rel.clone(),
            crate_name: f.crate_name.clone(),
            is_bin: f.is_bin,
            parsed: parse::parse_file(&f.text),
        })
        .collect();
    let g = graph::build(&sources, closure);

    let mut suppressed = 0usize;
    for n in &g.nodes {
        if n.def.in_test || n.is_bin {
            continue;
        }
        suppressed = suppressed.saturating_add(n.def.sites.iter().filter(|s| s.suppressed).count());
    }

    let mut violations = Vec::new();
    let mut certificates = Vec::new();
    panic_pass(&g, &mut violations, &mut certificates);
    lock_pass(&g, &mut violations);
    taint_pass(&g, scope, &mut violations);

    violations.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then(a.col.cmp(&b.col))
            .then(a.rule.cmp(b.rule))
            .then(a.msg.cmp(&b.msg))
    });
    violations.dedup();
    certificates.sort_by(|a, b| a.krate.cmp(&b.krate));

    let edges: usize = g.edges.iter().map(Vec::len).sum();
    FlowReport {
        violations,
        certificates,
        stats: FlowStats {
            files: files.len(),
            functions: g.nodes.len(),
            edges,
            resolved_calls: g.resolved_calls,
            unresolved_calls: g.unresolved_calls,
            suppressed,
        },
    }
}

/// Short display name for witness paths.
fn node_name(n: &Node) -> String {
    match &n.def.owner {
        Some(o) => format!("{}::{}", o, n.def.name),
        None => n.def.name.clone(),
    }
}

/// Render a witness path `a → b → c`, eliding the middle past 5 hops.
fn render_path(g: &Graph, path: &[usize]) -> String {
    let names: Vec<String> = path
        .iter()
        .filter_map(|&i| g.nodes.get(i))
        .map(node_name)
        .collect();
    if names.len() <= 5 {
        names.join(" -> ")
    } else {
        let head = names.first().cloned().unwrap_or_default();
        let tail: Vec<String> = names.iter().rev().take(3).rev().cloned().collect();
        format!("{head} -> … -> {}", tail.join(" -> "))
    }
}

/// Pass 1: panic-reachability certification.
fn panic_pass(g: &Graph, violations: &mut Vec<FlowViolation>, certificates: &mut Vec<Certificate>) {
    // seeds: functions containing a live panic site in library code
    let seeds: Vec<usize> = g.select(|n| {
        !n.is_bin
            && !n.def.in_test
            && n.def
                .sites
                .iter()
                .any(|s| s.kind == SiteKind::Panic && !s.suppressed)
    });
    let seed_mask: Vec<bool> = {
        let mut m = vec![false; g.nodes.len()];
        for &s in &seeds {
            if let Some(slot) = m.get_mut(s) {
                *slot = true;
            }
        }
        m
    };
    let reaches_panic = g.reaches_any(&seeds);

    for krate in CERTIFIED_CRATES {
        let roots = g.select(|n| n.krate == krate && n.def.is_pub && !n.is_bin && !n.def.in_test);
        let mut clean = true;
        for &r in &roots {
            if !reaches_panic.get(r).copied().unwrap_or(false) {
                continue;
            }
            clean = false;
            let Some(root) = g.nodes.get(r) else { continue };
            let path = g.witness_path(r, &seed_mask).unwrap_or_default();
            let site = path
                .last()
                .and_then(|&t| g.nodes.get(t))
                .and_then(|n| {
                    n.def
                        .sites
                        .iter()
                        .find(|s| s.kind == SiteKind::Panic && !s.suppressed)
                        .map(|s| format!("{} at {}:{}:{}", s.detail, n.file, s.line, s.col))
                })
                .unwrap_or_else(|| "panic site".to_string());
            violations.push(FlowViolation {
                file: root.file.clone(),
                line: root.def.line,
                col: root.def.col,
                rule: "flow-panic",
                msg: format!(
                    "public fn `{}` of certified crate `{krate}` can reach {site} (path: {})",
                    node_name(root),
                    render_path(g, &path),
                ),
            });
        }
        certificates.push(Certificate {
            krate: krate.to_string(),
            public_apis: roots.len(),
            panic_free: clean,
        });
    }
}

/// Qualified lock class for a parse-local receiver chain.
///
/// `self.field` chains qualify by the impl owner (`Owner.field` — the
/// same class for every instance of the type, which is what shard-order
/// reasoning needs); ALL_CAPS roots are statics and qualify globally by
/// crate; anything else (params, locals) is function-scoped.
fn qualify_class(n: &Node, chain: &str) -> String {
    if let Some(rest) = chain.strip_prefix("self.") {
        if let Some(owner) = n.def.owner.as_deref() {
            return format!("{owner}.{rest}");
        }
    }
    let root = chain.split('.').next().unwrap_or(chain);
    let is_static = !root.is_empty() && root.chars().all(|c| c.is_ascii_uppercase() || c == '_');
    if is_static {
        return format!("{}::{chain}", n.krate);
    }
    format!("{}#{}.{chain}", n.file, n.def.name)
}

/// True when `n` is a lock wrapper whose own lock site is call-site
/// resolved (its class is a bare parameter, not a real class).
fn is_wrapper_node(n: &Node) -> bool {
    let name = &n.def.name;
    name == "lock" || name.starts_with("lock_") || name.ends_with("_lock")
}

/// Pass 2: lock-order analysis.
fn lock_pass(g: &Graph, violations: &mut Vec<FlowViolation>) {
    use std::collections::{BTreeMap, BTreeSet};

    // transitive lock classes per node (wrapper-internal classes are
    // call-site resolved and excluded from propagation)
    let mut classes: Vec<BTreeSet<String>> = g
        .nodes
        .iter()
        .map(|n| {
            if n.def.in_test || is_wrapper_node(n) {
                return BTreeSet::new();
            }
            n.def
                .sites
                .iter()
                .filter(|s| s.kind == SiteKind::Lock && !s.suppressed)
                .map(|s| qualify_class(n, &s.detail))
                .collect()
        })
        .collect();
    // fixed point: a node's set absorbs its callees'; worklist over redges
    let mut work: Vec<usize> = (0..g.nodes.len()).collect();
    while let Some(v) = work.pop() {
        let mut merged = classes.get(v).cloned().unwrap_or_default();
        if let Some(callees) = g.edges.get(v) {
            for &c in callees {
                if let Some(set) = classes.get(c) {
                    merged.extend(set.iter().cloned());
                }
            }
        }
        let grew = classes.get(v).is_some_and(|cur| merged.len() > cur.len());
        if grew {
            if let Some(slot) = classes.get_mut(v) {
                *slot = merged;
            }
            if let Some(callers) = g.redges.get(v) {
                for &c in callers {
                    work.push(c);
                }
            }
        }
    }

    // ordered pairs (held, acquired) → first site that witnessed them
    let mut pairs: BTreeMap<(String, String), (String, u32, u32)> = BTreeMap::new();
    for (i, n) in g.nodes.iter().enumerate() {
        if n.def.in_test || is_wrapper_node(n) {
            continue;
        }
        // direct acquisitions
        for s in &n.def.sites {
            if s.kind != SiteKind::Lock || s.suppressed {
                continue;
            }
            let acquired = qualify_class(n, &s.detail);
            for h in &s.held_locks {
                let held = qualify_class(n, h);
                if held == acquired {
                    violations.push(FlowViolation {
                        file: n.file.clone(),
                        line: s.line,
                        col: s.col,
                        rule: "flow-lock",
                        msg: format!(
                            "nested acquisition of lock class `{acquired}` while already held \
                             (std mutexes are not reentrant: self-deadlock)"
                        ),
                    });
                } else {
                    pairs.entry((held, acquired.clone())).or_insert((
                        n.file.clone(),
                        s.line,
                        s.col,
                    ));
                }
            }
        }
        // calls made while holding a lock: the callee may re-acquire.
        // Method calls are excluded: their receivers are type-unresolved,
        // so every same-named method would count as a callee and
        // ubiquitous names (`get`, `len`) on a freshly-locked guard would
        // read as self-deadlocks. Free/path calls resolve precisely, and
        // the workspace's cross-function lock patterns (wrappers, module
        // helpers) all flow through those.
        for c in &n.def.calls {
            if c.held_locks.is_empty() || c.kind == CallKind::Method {
                continue;
            }
            let mut acquired: BTreeSet<String> = BTreeSet::new();
            if let Some(callees) = g.edges.get(i) {
                for &t in callees {
                    // only edges that correspond to this call by name
                    let Some(tn) = g.nodes.get(t) else { continue };
                    if tn.def.name != c.name {
                        continue;
                    }
                    if let Some(set) = classes.get(t) {
                        acquired.extend(set.iter().cloned());
                    }
                }
            }
            for h in &c.held_locks {
                let held = qualify_class(n, h);
                for a in &acquired {
                    if *a == held {
                        violations.push(FlowViolation {
                            file: n.file.clone(),
                            line: c.line,
                            col: c.col,
                            rule: "flow-lock",
                            msg: format!(
                                "call to `{}` while holding lock class `{held}` may re-acquire \
                                 it transitively (self-deadlock)",
                                c.name
                            ),
                        });
                    } else {
                        pairs.entry((held.clone(), a.clone())).or_insert((
                            n.file.clone(),
                            c.line,
                            c.col,
                        ));
                    }
                }
            }
        }
    }

    // inconsistent ordering: both (a, b) and (b, a) observed
    for ((a, b), (file, line, col)) in &pairs {
        if a < b {
            continue; // report each conflicting pair once, at the (a<b) site
        }
        if let Some((ofile, oline, ocol)) = pairs.get(&(b.clone(), a.clone())) {
            violations.push(FlowViolation {
                file: file.clone(),
                line: *line,
                col: *col,
                rule: "flow-lock",
                msg: format!(
                    "inconsistent lock order: `{a}` held while acquiring `{b}` here, but \
                     `{b}` is held while acquiring `{a}` at {ofile}:{oline}:{ocol} (ABBA deadlock)"
                ),
            });
            violations.push(FlowViolation {
                file: ofile.clone(),
                line: *oline,
                col: *ocol,
                rule: "flow-lock",
                msg: format!(
                    "inconsistent lock order: `{b}` held while acquiring `{a}` here, but \
                     `{a}` is held while acquiring `{b}` at {file}:{line}:{col} (ABBA deadlock)"
                ),
            });
        }
    }
}

/// True when a site is a live determinism-taint source under `scope`.
fn is_taint_source(n: &Node, s: &parse::Site, scope: &Scope) -> bool {
    if s.suppressed || s.sanctioned {
        return false;
    }
    let file_name = n.file.rsplit('/').next().unwrap_or("");
    match s.kind {
        SiteKind::HashIter => true,
        SiteKind::EnvRead => !scope.env_exempt_files.iter().any(|f| f == file_name),
        SiteKind::WallClock => {
            !scope.wallclock_exempt_crates.contains(&n.krate)
                && !scope.wallclock_exempt_files.iter().any(|f| f == file_name)
        }
        _ => false,
    }
}

/// Pass 3: determinism taint into trace/obs emission.
fn taint_pass(g: &Graph, scope: &Scope, violations: &mut Vec<FlowViolation>) {
    let sources: Vec<usize> =
        g.select(|n| !n.def.in_test && n.def.sites.iter().any(|s| is_taint_source(n, s, scope)));
    if sources.is_empty() {
        return;
    }
    let source_mask: Vec<bool> = {
        let mut m = vec![false; g.nodes.len()];
        for &s in &sources {
            if let Some(slot) = m.get_mut(s) {
                *slot = true;
            }
        }
        m
    };
    // tainted: contains a source or (transitively) calls one
    let tainted = g.reaches_any(&sources);

    let sink = |i: usize| -> bool {
        g.nodes.get(i).is_some_and(|n| {
            (n.krate == "trace" || n.krate == "obs")
                && n.def.is_pub
                && !n.def.in_test
                && SINK_NAMES.iter().any(|s| *s == n.def.name)
        })
    };

    for (i, n) in g.nodes.iter().enumerate() {
        if n.is_bin || n.def.in_test || n.krate == "trace" || n.krate == "obs" {
            // the emission substrate itself is covered by its own certs;
            // taint is about *pipeline* data reaching the streams
            continue;
        }
        if !tainted.get(i).copied().unwrap_or(false) {
            continue;
        }
        let calls_sink: Vec<String> = g
            .edges
            .get(i)
            .map(|callees| {
                callees
                    .iter()
                    .filter(|&&t| sink(t))
                    .filter_map(|&t| g.nodes.get(t))
                    .map(node_name)
                    .collect()
            })
            .unwrap_or_default();
        if calls_sink.is_empty() {
            continue;
        }
        // witness: the nearest source this fn can reach
        let witness = g
            .witness_path(i, &source_mask)
            .and_then(|p| p.last().copied())
            .and_then(|t| g.nodes.get(t))
            .and_then(|sn| {
                sn.def
                    .sites
                    .iter()
                    .find(|s| is_taint_source(sn, s, scope))
                    .map(|s| format!("{} at {}:{}:{}", s.detail, sn.file, s.line, s.col))
            })
            .unwrap_or_else(|| "nondeterministic source".to_string());
        let sinks = calls_sink.join(", ");
        violations.push(FlowViolation {
            file: n.file.clone(),
            line: n.def.line,
            col: n.def.col,
            rule: "flow-taint",
            msg: format!(
                "`{}` is tainted by {witness} and emits via trace/obs sink(s) {sinks}; \
                 re-sort or sanction the source before emission",
                node_name(n)
            ),
        });
    }
}

// ---------------------------------------------------------------------
// rendering
// ---------------------------------------------------------------------

impl FlowReport {
    /// True when no finding survived suppression.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.certificates.iter().all(|c| c.panic_free)
    }

    /// Deterministic human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&format!(
                "{}:{}:{} {} {}\n",
                v.file, v.line, v.col, v.rule, v.msg
            ));
        }
        out.push_str("certificates:\n");
        for c in &self.certificates {
            out.push_str(&format!(
                "  {:<8} {} public fns — {}\n",
                c.krate,
                c.public_apis,
                if c.panic_free {
                    "panic-free"
                } else {
                    "NOT panic-free"
                }
            ));
        }
        out.push_str(&format!(
            "flow: {} violation(s), {} suppression(s) honoured; {} files, {} fns, {} edges\n",
            self.violations.len(),
            self.stats.suppressed,
            self.stats.files,
            self.stats.functions,
            self.stats.edges,
        ));
        out
    }

    /// SARIF-style JSON, one record per line (byte-identical across runs).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"version\": \"1.0\",\n");
        out.push_str(
            "  \"tool\": {\"name\": \"webiq-flow\", \"rules\": [\"flow-panic\", \"flow-lock\", \"flow-taint\"]},\n",
        );
        out.push_str(&format!(
            "  \"stats\": {{\"files\": {}, \"functions\": {}, \"edges\": {}, \"resolvedCalls\": {}, \"unresolvedCalls\": {}, \"suppressed\": {}}},\n",
            self.stats.files,
            self.stats.functions,
            self.stats.edges,
            self.stats.resolved_calls,
            self.stats.unresolved_calls,
            self.stats.suppressed,
        ));
        out.push_str("  \"certificates\": [\n");
        for (i, c) in self.certificates.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"crate\": \"{}\", \"publicApis\": {}, \"panicFree\": {}}}{}\n",
                json_escape(&c.krate),
                c.public_apis,
                c.panic_free,
                if i.saturating_add(1) < self.certificates.len() {
                    ","
                } else {
                    ""
                },
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"results\": [\n");
        for (i, v) in self.violations.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"ruleId\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\"}}{}\n",
                v.rule,
                json_escape(&v.file),
                v.line,
                v.col,
                json_escape(&v.msg),
                if i.saturating_add(1) < self.violations.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

/// Minimal JSON string escaping for the report writer.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------
// baseline comparison
// ---------------------------------------------------------------------

/// Compare the current report against a committed baseline (the JSON
/// text of a previous [`FlowReport::render_json`]). Returns the list of
/// regressions — new violations and certificate `panicFree` flips from
/// `true` to `false`. Disappeared violations are improvements and pass.
pub fn compare_baseline(baseline: &str, current: &FlowReport) -> Vec<String> {
    use std::collections::BTreeSet;

    let mut base_keys: BTreeSet<String> = BTreeSet::new();
    let mut base_free: BTreeSet<String> = BTreeSet::new(); // crates certified panic-free
    for line in baseline.lines() {
        let line = line.trim();
        if line.starts_with("{\"ruleId\"") {
            let rule = field_str(line, "ruleId").unwrap_or_default();
            let file = field_str(line, "file").unwrap_or_default();
            let ln = field_num(line, "line").unwrap_or_default();
            let col = field_num(line, "col").unwrap_or_default();
            base_keys.insert(format!("{rule}|{file}|{ln}|{col}"));
        } else if line.starts_with("{\"crate\"") {
            let krate = field_str(line, "crate").unwrap_or_default();
            if line.contains("\"panicFree\": true") {
                base_free.insert(krate);
            }
        }
    }

    let mut regressions = Vec::new();
    for v in &current.violations {
        if !base_keys.contains(&v.key()) {
            regressions.push(format!(
                "new violation: {}:{}:{} {} {}",
                v.file, v.line, v.col, v.rule, v.msg
            ));
        }
    }
    for c in &current.certificates {
        if !c.panic_free && base_free.contains(&c.krate) {
            regressions.push(format!(
                "certificate regression: crate `{}` was panic-free in the baseline",
                c.krate
            ));
        }
    }
    regressions
}

/// `"name": "value"` extractor for the line-oriented report format.
fn field_str(line: &str, name: &str) -> Option<String> {
    let tag = format!("\"{name}\": \"");
    let start = line.find(&tag)?.checked_add(tag.len())?;
    let rest = line.get(start..)?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => {
                if let Some(e) = chars.next() {
                    out.push(e);
                }
            }
            c => out.push(c),
        }
    }
    None
}

/// `"name": 123` extractor for the line-oriented report format.
fn field_num(line: &str, name: &str) -> Option<u64> {
    let tag = format!("\"{name}\": ");
    let start = line.find(&tag)?.checked_add(tag.len())?;
    let rest = line.get(start..)?;
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn fixture(files: &[(&str, &str, &str)]) -> Vec<SourceFile> {
        files
            .iter()
            .map(|(rel, krate, text)| SourceFile {
                rel: (*rel).to_string(),
                crate_name: (*krate).to_string(),
                file_name: rel.rsplit('/').next().unwrap_or("").to_string(),
                is_crate_root: rel.ends_with("lib.rs"),
                is_bin: false,
                text: (*text).to_string(),
            })
            .collect()
    }

    fn closure_all(crates: &[&str]) -> DepClosure {
        // every crate sees every other (fixtures are small)
        let all: BTreeSet<String> = crates.iter().map(|c| (*c).to_string()).collect();
        crates
            .iter()
            .map(|c| ((*c).to_string(), all.clone()))
            .collect()
    }

    #[test]
    fn json_escape_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn field_extractors() {
        let line =
            r#"{"ruleId": "flow-lock", "file": "a.rs", "line": 3, "col": 7, "message": "m"}"#;
        assert_eq!(field_str(line, "ruleId").as_deref(), Some("flow-lock"));
        assert_eq!(field_str(line, "file").as_deref(), Some("a.rs"));
        assert_eq!(field_num(line, "line"), Some(3));
        assert_eq!(field_num(line, "col"), Some(7));
    }

    #[test]
    fn clean_fixture_certifies() {
        let files = fixture(&[(
            "crates/core/src/lib.rs",
            "core",
            "//! Core.\npub fn run() -> u32 { helper() }\nfn helper() -> u32 { 7 }\n",
        )]);
        let r = analyze_files(&files, &closure_all(&["core"]), &Scope::default());
        assert!(r.is_clean(), "unexpected: {:?}", r.violations);
        let core = r
            .certificates
            .iter()
            .find(|c| c.krate == "core")
            .expect("core certificate");
        assert!(core.panic_free);
        assert_eq!(core.public_apis, 1);
    }

    #[test]
    fn reports_are_byte_identical() {
        let files = fixture(&[(
            "crates/core/src/lib.rs",
            "core",
            "//! Core.\npub fn run() { inner.unwrap(); }\n",
        )]);
        let c = closure_all(&["core"]);
        let a = analyze_files(&files, &c, &Scope::default());
        let b = analyze_files(&files, &c, &Scope::default());
        assert_eq!(a.render_json(), b.render_json());
        assert_eq!(a.render_text(), b.render_text());
    }

    #[test]
    fn baseline_detects_new_violation_and_cert_flip() {
        let clean = analyze_files(
            &fixture(&[(
                "crates/core/src/lib.rs",
                "core",
                "//! Core.\npub fn run() -> u32 { 7 }\n",
            )]),
            &closure_all(&["core"]),
            &Scope::default(),
        );
        let dirty = analyze_files(
            &fixture(&[(
                "crates/core/src/lib.rs",
                "core",
                "//! Core.\npub fn run() { x.unwrap(); }\n",
            )]),
            &closure_all(&["core"]),
            &Scope::default(),
        );
        let baseline = clean.render_json();
        let regressions = compare_baseline(&baseline, &dirty);
        assert!(
            regressions.iter().any(|r| r.starts_with("new violation")),
            "{regressions:?}"
        );
        assert!(
            regressions
                .iter()
                .any(|r| r.starts_with("certificate regression")),
            "{regressions:?}"
        );
        // and the dirty report against itself is quiet
        assert!(compare_baseline(&dirty.render_json(), &dirty).is_empty());
    }
}
