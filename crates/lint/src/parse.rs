//! A lightweight Rust-subset item parser on top of [`crate::lexer`].
//!
//! Recognises just enough structure for the flow passes in
//! [`crate::flow`]: function items (free functions, methods inside
//! `impl`/`trait` blocks, nested functions), `use` imports, call sites
//! (free calls, method calls, `Path::calls`), and the *effect sites*
//! inside each body — panic sites, `Mutex` acquisitions with guard
//! liveness, and determinism-taint sources. It is **not** a Rust parser:
//! expressions are never built, types are read as token runs, and
//! anything unrecognised is skipped. That is acceptable because every
//! downstream pass over-approximates (an unresolved call is simply an
//! absent edge, and resolution itself is by-name and conservative).
//!
//! The parser is deterministic: its output order is the token order of
//! the file, and nothing consults maps with unstable iteration.

use crate::lexer::{self, Tok, TokKind};

/// What kind of call a [`Call`] is, which drives resolution in
/// [`crate::graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `name(…)` — a free function call (or a local closure, which then
    /// stays unresolved).
    Free,
    /// `recv.name(…)` — a method call; resolved by name across every
    /// impl in the caller's dependency closure.
    Method,
    /// `Qual::name(…)` — a path call; `Qual` is a type, module, or crate.
    Path,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Resolution class.
    pub kind: CallKind,
    /// For [`CallKind::Path`]: the qualifying segment directly before the
    /// final `::`; for methods the receiver's trailing identifier chain.
    pub qualifier: Option<String>,
    /// Called name.
    pub name: String,
    /// 1-based site line.
    pub line: u32,
    /// 1-based site column.
    pub col: u32,
    /// Lock classes whose guards are live at this call (from enclosing
    /// `let guard = …lock…` bindings and same-statement temporaries).
    pub held_locks: Vec<String>,
    /// Leading identifier chain of the first argument (`self.shard()` for
    /// `lock_shard(self.shard(key))`), used to derive the lock class when
    /// the callee is a lock wrapper.
    pub arg_head: Option<String>,
}

/// Kinds of effect sites the flow passes care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// `.unwrap()` / `.expect(…)` / `panic!` / `unreachable!` / `todo!` /
    /// `unimplemented!` / subtracting index arithmetic.
    Panic,
    /// A `Mutex` acquisition (`.lock()` or a call to a lock wrapper).
    Lock,
    /// Unordered `HashMap`/`HashSet` iteration (a determinism source).
    HashIter,
    /// `env::var`/`env::var_os` (a determinism source).
    EnvRead,
    /// `Instant::now`/`SystemTime::now` (a determinism source).
    WallClock,
}

/// One effect site inside a function body.
#[derive(Debug, Clone)]
pub struct Site {
    /// Effect class.
    pub kind: SiteKind,
    /// Human detail: the exact construct (`.unwrap()`, `m.keys()`, a lock
    /// class, …).
    pub detail: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Suppressed by an audited `lint:allow` on this or the preceding
    /// line (lexical rule id or the matching `flow-*` id).
    pub suppressed: bool,
    /// For [`SiteKind::HashIter`]: the same statement re-sorts or reduces
    /// the stream, so order cannot escape.
    pub sanctioned: bool,
    /// Lock classes held when the site executes (for [`SiteKind::Lock`]:
    /// locks already held when *this* one is acquired).
    pub held_locks: Vec<String>,
}

/// One parsed function item.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Bare function name.
    pub name: String,
    /// `impl`/`trait` self-type name, when the fn is a method.
    pub owner: Option<String>,
    /// Declared with a `pub` (any visibility restriction counts).
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// Call sites in body order.
    pub calls: Vec<Call>,
    /// Effect sites in body order.
    pub sites: Vec<Site>,
}

/// A `use` import: the locally visible name and the leading path segment
/// it came from (`webiq_web`, `std`, `crate`, …).
#[derive(Debug, Clone)]
pub struct Import {
    /// Name visible in this file (the alias for `use … as alias`).
    pub name: String,
    /// First segment of the use path.
    pub root: String,
}

/// Parse result for one source file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// Function items, in source order (nested fns flattened after their
    /// parent).
    pub fns: Vec<FnDef>,
    /// `use` imports of this file.
    pub imports: Vec<Import>,
}

/// Names whose `ident(`-shaped occurrences are control flow, not calls.
const KEYWORDS: [&str; 10] = [
    "if", "while", "for", "match", "return", "loop", "fn", "let", "in", "move",
];

/// Panic-site method names (after a `.`, before `(`).
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];

/// Panic-site macro names (before `!`).
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// True for names the workspace uses for poison-recovering Mutex lock
/// wrappers (`lock`, `lock_shard`); calls to these are acquisition sites.
fn is_lock_wrapper(name: &str) -> bool {
    name == "lock" || name.starts_with("lock_") || name.ends_with("_lock")
}

/// Lexical rules whose `lint:allow` also sanctions the matching flow
/// site, so one audited suppression never has to be written twice.
fn allow_rules_for(kind: SiteKind) -> &'static [&'static str] {
    match kind {
        SiteKind::Panic => &[
            "no-unwrap",
            "no-expect",
            "no-panic",
            "slice-arith",
            "flow-panic",
        ],
        SiteKind::Lock => &["flow-lock"],
        SiteKind::HashIter => &["hash-iter", "flow-taint"],
        SiteKind::EnvRead => &["env-read", "flow-taint"],
        SiteKind::WallClock => &["wall-clock", "flow-taint"],
    }
}

/// A `lint:allow` comment position, pre-extracted for suppression checks.
struct AllowAt {
    line: u32,
    rule: String,
}

/// A live lock guard during the body scan.
struct LiveGuard {
    /// Binding name (empty for statement temporaries).
    name: String,
    /// Brace depth at which the binding lives; popped when the block ends.
    depth: usize,
    /// `true` for a same-statement temporary (dies at the next `;` at its
    /// depth).
    temp: bool,
    /// Lock class string.
    class: String,
}

/// Parse one file's items. Hash-typed identifier names (for iteration
/// sources) and `#[cfg(test)]` line ranges are derived from the file
/// itself with the same helpers the lexical rules use.
pub fn parse_file(text: &str) -> ParsedFile {
    let toks = lexer::lex(text);
    let allows: Vec<AllowAt> = collect_allow_positions(&toks);
    let sig: Vec<Tok> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .cloned()
        .collect();
    let hash_names = crate::rules::collect_hash_names(&sig);
    let test_ranges = crate::rules::cfg_test_ranges(&sig);

    let mut out = ParsedFile::default();
    let mut p = Parser {
        sig: &sig,
        allows: &allows,
        hash_names: &hash_names,
        test_ranges: &test_ranges,
        out: &mut out,
    };
    p.items(0, sig.len(), None);
    out
}

/// `lint:allow(rule)` positions with a non-empty reason (validity of the
/// rule id is [`crate::rules`]'s business; flow only honours well-formed
/// directives).
fn collect_allow_positions(toks: &[Tok]) -> Vec<AllowAt> {
    let mut out = Vec::new();
    for t in toks {
        if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        if t.text.starts_with('!') || t.text.starts_with('/') || t.text.starts_with('*') {
            continue; // doc comment
        }
        let Some(pos) = t.text.find("lint:allow(") else {
            continue;
        };
        let Some(rest) = t.text.get(pos.saturating_add("lint:allow(".len())..) else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest.get(..close).unwrap_or("").trim().to_string();
        let reason = rest.get(close.saturating_add(1)..).unwrap_or("").trim();
        if !rule.is_empty() && !reason.is_empty() {
            out.push(AllowAt { line: t.line, rule });
        }
    }
    out
}

struct Parser<'a> {
    sig: &'a [Tok],
    allows: &'a [AllowAt],
    hash_names: &'a [String],
    test_ranges: &'a [crate::rules::LineRange],
    out: &'a mut ParsedFile,
}

impl Parser<'_> {
    /// Walk items in `sig[start..end]` (an item region: top level or an
    /// `impl`/`trait`/`mod` block interior).
    fn items(&mut self, start: usize, end: usize, owner: Option<&str>) {
        let mut i = start;
        let mut saw_pub = false;
        while i < end {
            let Some(t) = self.sig.get(i) else { break };
            if t.is_ident("pub") {
                saw_pub = true;
                // skip a `pub(crate)`-style restriction
                if matches!(self.sig.get(i.saturating_add(1)), Some(p) if p.is_punct('(')) {
                    if let Some(close) = matching(self.sig, i.saturating_add(1), '(', ')') {
                        i = close;
                    }
                }
                i = i.saturating_add(1);
                continue;
            }
            if t.is_ident("use") {
                i = self.use_decl(i, end);
                saw_pub = false;
                continue;
            }
            if t.is_ident("impl") || t.is_ident("trait") {
                i = self.impl_block(i, end, t.is_ident("trait"));
                saw_pub = false;
                continue;
            }
            if t.is_ident("mod") {
                // inline `mod name { … }`: recurse into the interior;
                // `mod name;` declarations are separate files anyway.
                let mut j = i.saturating_add(1);
                while j < end
                    && !matches!(self.sig.get(j), Some(x) if x.is_punct('{') || x.is_punct(';'))
                {
                    j = j.saturating_add(1);
                }
                if matches!(self.sig.get(j), Some(x) if x.is_punct('{')) {
                    if let Some(close) = matching(self.sig, j, '{', '}') {
                        self.items(j.saturating_add(1), close, owner);
                        i = close.saturating_add(1);
                        saw_pub = false;
                        continue;
                    }
                }
                i = j.saturating_add(1);
                saw_pub = false;
                continue;
            }
            if t.is_ident("fn") {
                i = self.fn_item(i, end, owner, saw_pub);
                saw_pub = false;
                continue;
            }
            // any other token: skip balanced brace blocks whole (struct
            // bodies, consts with block exprs) so stray `fn` idents in
            // types or macros don't read as items.
            if t.is_punct('{') {
                if let Some(close) = matching(self.sig, i, '{', '}') {
                    i = close.saturating_add(1);
                    saw_pub = false;
                    continue;
                }
            }
            // modifier keywords between `pub` and `fn` keep visibility
            let is_modifier = t.kind == TokKind::Ident
                && (t.is_ident("const")
                    || t.is_ident("unsafe")
                    || t.is_ident("async")
                    || t.is_ident("extern"))
                || t.kind == TokKind::Str;
            if !is_modifier {
                saw_pub = false;
            }
            i = i.saturating_add(1);
        }
    }

    /// Parse `use a::b::{c, d as e};` into imports. Returns the index
    /// just past the `;`.
    fn use_decl(&mut self, start: usize, end: usize) -> usize {
        let mut j = start.saturating_add(1);
        let mut root = String::new();
        let mut last = String::new();
        let mut pending_alias = false;
        while j < end {
            let Some(t) = self.sig.get(j) else { break };
            if t.is_punct(';') {
                if !last.is_empty() && !root.is_empty() {
                    self.out.imports.push(Import {
                        name: last.clone(),
                        root: root.clone(),
                    });
                }
                return j.saturating_add(1);
            }
            match t.kind {
                TokKind::Ident if t.is_ident("as") => pending_alias = true,
                TokKind::Ident => {
                    if root.is_empty() {
                        root = t.text.clone();
                    }
                    if pending_alias {
                        // the alias is the visible name
                        last = t.text.clone();
                        pending_alias = false;
                    } else {
                        last = t.text.clone();
                    }
                }
                TokKind::Punct if t.is_punct(',') || t.is_punct('}') => {
                    if !last.is_empty() && !root.is_empty() {
                        self.out.imports.push(Import {
                            name: last.clone(),
                            root: root.clone(),
                        });
                    }
                    last.clear();
                }
                TokKind::Punct if t.is_punct('*') => last.clear(),
                _ => {}
            }
            j = j.saturating_add(1);
        }
        end
    }

    /// Parse an `impl`/`trait` block: find the self-type name, then walk
    /// its interior as items owned by that name.
    fn impl_block(&mut self, start: usize, end: usize, is_trait: bool) -> usize {
        // find the opening `{` at angle-depth 0
        let mut j = start.saturating_add(1);
        let mut angle = 0i64;
        let mut names: Vec<String> = Vec::new();
        let mut for_at: Option<usize> = None;
        while j < end {
            let Some(t) = self.sig.get(j) else { break };
            if t.is_punct('<') {
                angle = angle.saturating_add(1);
            } else if t.is_punct('>') {
                angle = angle.saturating_sub(1);
            } else if angle == 0 && t.is_ident("for") {
                for_at = Some(names.len());
            } else if angle == 0 && t.kind == TokKind::Ident && !t.is_ident("where") {
                names.push(t.text.clone());
            } else if t.is_punct('{') {
                break;
            } else if t.is_punct(';') {
                return j.saturating_add(1);
            }
            j = j.saturating_add(1);
        }
        let Some(open) = self.sig.get(j).filter(|t| t.is_punct('{')).map(|_| j) else {
            return j.saturating_add(1);
        };
        let Some(close) = matching(self.sig, open, '{', '}') else {
            return end;
        };
        // `impl Trait for Type` → owner is the first name after `for`;
        // `impl Type` / `trait Name` → the first collected name.
        let owner = match (is_trait, for_at) {
            // `impl Trait for Type` — prefer the self type; fall back to
            // the trait name when the self type is non-nominal (`[T]`).
            (false, Some(k)) => names.get(k).cloned().or_else(|| names.first().cloned()),
            _ => names.first().cloned(),
        };
        self.items(open.saturating_add(1), close, owner.as_deref());
        close.saturating_add(1)
    }

    /// Parse one `fn` item starting at the `fn` keyword. Returns the
    /// index just past the item.
    fn fn_item(&mut self, start: usize, end: usize, owner: Option<&str>, is_pub: bool) -> usize {
        let Some(kw) = self.sig.get(start) else {
            return end;
        };
        let Some(name_tok) = self.sig.get(start.saturating_add(1)) else {
            return end;
        };
        if name_tok.kind != TokKind::Ident {
            return start.saturating_add(1);
        }
        // body starts at the first `{` after the signature; a `;` first
        // means a bodyless trait method / extern decl.
        let mut j = start.saturating_add(2);
        let mut angle = 0i64;
        while j < end {
            let Some(t) = self.sig.get(j) else { break };
            if t.is_punct('<') {
                angle = angle.saturating_add(1);
            } else if t.is_punct('>') {
                angle = angle.saturating_sub(1);
            } else if t.is_punct('{') && angle <= 0 {
                break;
            } else if t.is_punct(';') && angle <= 0 {
                return j.saturating_add(1);
            }
            j = j.saturating_add(1);
        }
        let Some(close) = matching(self.sig, j, '{', '}') else {
            return end;
        };
        // a lock wrapper takes a `&Mutex<…>` parameter and locks it; the
        // signature is enough evidence here, the body check is in flow.
        let mut def = FnDef {
            name: name_tok.text.clone(),
            owner: owner.map(str::to_string),
            is_pub,
            line: kw.line,
            col: kw.col,
            in_test: self.test_ranges.iter().any(|r| r.contains(kw.line)),
            calls: Vec::new(),
            sites: Vec::new(),
        };
        self.body(j, close, &mut def);
        self.out.fns.push(def);
        close.saturating_add(1)
    }

    /// Scan a function body `sig[open..=close]` for calls and effect
    /// sites, tracking lock-guard liveness. Nested `fn` items are parsed
    /// as their own defs and skipped here.
    fn body(&mut self, open: usize, close: usize, def: &mut FnDef) {
        let mut guards: Vec<LiveGuard> = Vec::new();
        let mut depth: usize = 0; // brace depth relative to body open
        let mut i = open;
        // pending let binding: Some(name) after `let name =` until the
        // statement's lock class (if any) is known.
        let mut pending_let: Option<(String, usize)> = None; // (name, depth)

        while i <= close {
            let Some(t) = self.sig.get(i) else { break };
            if t.is_punct('{') {
                depth = depth.saturating_add(1);
                i = i.saturating_add(1);
                continue;
            }
            if t.is_punct('}') {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
                i = i.saturating_add(1);
                continue;
            }
            if t.is_punct(';') {
                guards.retain(|g| !(g.temp && g.depth == depth));
                pending_let = None;
                i = i.saturating_add(1);
                continue;
            }
            // nested fn: parse as its own item
            if t.is_ident("fn")
                && self
                    .sig
                    .get(i.saturating_add(1))
                    .is_some_and(|n| n.kind == TokKind::Ident)
                && !matches!(self.sig.get(i.wrapping_sub(1)), Some(p) if p.is_punct('.') || p.is_punct(':'))
                && i > open
            {
                let next = self.fn_item(i, close, def.owner.as_deref(), false);
                i = next;
                continue;
            }
            if t.is_ident("let") {
                // `let [mut] name =` with a plain ident pattern
                let mut k = i.saturating_add(1);
                if matches!(self.sig.get(k), Some(m) if m.is_ident("mut")) {
                    k = k.saturating_add(1);
                }
                let name = self.sig.get(k);
                let eq_or_colon = self.sig.get(k.saturating_add(1));
                if let (Some(n), Some(e)) = (name, eq_or_colon) {
                    if n.kind == TokKind::Ident && !n.is_ident("_") {
                        // allow `let name: Ty = …` by skipping to the `=`
                        let is_binding = e.is_punct('=')
                            || (e.is_punct(':') && {
                                let mut m = k.saturating_add(2);
                                let mut ang = 0i64;
                                loop {
                                    match self.sig.get(m) {
                                        Some(x) if x.is_punct('<') => ang = ang.saturating_add(1),
                                        Some(x) if x.is_punct('>') => ang = ang.saturating_sub(1),
                                        Some(x) if x.is_punct('=') && ang <= 0 => break true,
                                        Some(x)
                                            if (x.is_punct(';') || x.is_punct('{')) && ang <= 0 =>
                                        {
                                            break false
                                        }
                                        None => break false,
                                        _ => {}
                                    }
                                    m = m.saturating_add(1);
                                }
                            });
                        if is_binding {
                            pending_let = Some((n.text.clone(), depth));
                        }
                    }
                }
                i = k;
                continue;
            }
            // drop(guard) releases a named guard early
            if t.is_ident("drop")
                && self
                    .sig
                    .get(i.saturating_add(1))
                    .is_some_and(|p| p.is_punct('('))
            {
                if let Some(arg) = self.sig.get(i.saturating_add(2)) {
                    if arg.kind == TokKind::Ident {
                        guards.retain(|g| g.name != arg.text);
                    }
                }
            }

            let held: Vec<String> = dedup_sorted(guards.iter().map(|g| g.class.clone()).collect());

            // effect sites and calls at this token
            if let Some((site, consumed)) = self.site_at(i, &held) {
                if !def.in_test {
                    if site.kind == SiteKind::Lock {
                        let class = site.detail.clone();
                        match pending_let.take() {
                            Some((name, d)) => guards.push(LiveGuard {
                                name,
                                depth: d,
                                temp: false,
                                class: class.clone(),
                            }),
                            None => guards.push(LiveGuard {
                                name: String::new(),
                                depth,
                                temp: true,
                                class: class.clone(),
                            }),
                        }
                    }
                    def.sites.push(site);
                }
                i = i.saturating_add(consumed);
                continue;
            }
            // calls are recorded even in test fns; flow ignores test fns
            // wholesale, but keeping the data makes the parser's output
            // independent of scope policy.
            if let Some(call) = self.call_at(i, &held) {
                def.calls.push(call);
            }
            i = i.saturating_add(1);
        }
    }

    /// Recognise an effect site at token `i`. Returns the site and how
    /// many tokens to consume.
    fn site_at(&self, i: usize, held: &[String]) -> Option<(Site, usize)> {
        let t = self.sig.get(i)?;
        let mk = |kind, detail: String, line, col| Site {
            kind,
            detail,
            line,
            col,
            suppressed: self.is_suppressed(kind, line),
            sanctioned: false,
            held_locks: held.to_vec(),
        };
        // .unwrap() / .expect(
        if t.is_punct('.') {
            let name = self.sig.get(i.saturating_add(1))?;
            let paren = self.sig.get(i.saturating_add(2));
            if name.kind == TokKind::Ident
                && PANIC_METHODS.iter().any(|m| name.is_ident(m))
                && paren.is_some_and(|p| p.is_punct('('))
            {
                return Some((
                    mk(
                        SiteKind::Panic,
                        format!(".{}()", name.text),
                        name.line,
                        name.col,
                    ),
                    2,
                ));
            }
            // .lock() — direct Mutex acquisition
            if name.is_ident("lock") && paren.is_some_and(|p| p.is_punct('(')) {
                let class = self.receiver_chain(i);
                return Some((mk(SiteKind::Lock, class, name.line, name.col), 2));
            }
            // hash-typed receiver iteration: name.iter()/keys()/…
            return None;
        }
        // free/path call to a lock-wrapper fn (`lock`, `lock_shard`, …).
        // The workspace acquires Mutexes through small poison-recovering
        // wrappers, so a call to one is itself an acquisition site; the
        // lock class is the argument's receiver chain as seen from the
        // caller (`lock_shard(self.shard(key))` → class `self.shard()`).
        // The definition (`fn lock_shard`) and method forms are skipped.
        if t.kind == TokKind::Ident
            && is_lock_wrapper(&t.text)
            && self
                .sig
                .get(i.saturating_add(1))
                .is_some_and(|p| p.is_punct('('))
            && !matches!(
                i.checked_sub(1).and_then(|p| self.sig.get(p)),
                Some(p) if p.is_ident("fn") || p.is_punct('.')
            )
        {
            let class = self
                .first_arg_head(i.saturating_add(1))
                .unwrap_or_else(|| format!("{}(…)", t.text));
            return Some((mk(SiteKind::Lock, class, t.line, t.col), 1));
        }
        // panic!-family macros
        if t.kind == TokKind::Ident
            && PANIC_MACROS.iter().any(|m| t.is_ident(m))
            && self
                .sig
                .get(i.saturating_add(1))
                .is_some_and(|n| n.is_punct('!'))
        {
            return Some((
                mk(SiteKind::Panic, format!("{}!", t.text), t.line, t.col),
                2,
            ));
        }
        // subtracting index arithmetic (same shape as the lexical rule)
        if t.is_punct('[') && crate::rules::slice_arith_at(self.sig, i) {
            return Some((
                mk(SiteKind::Panic, "subtracting index".into(), t.line, t.col),
                1,
            ));
        }
        // hash container iteration: `name.iter()` / `for x in &name`
        if t.kind == TokKind::Ident && self.hash_names.contains(&t.text) {
            let dot = self
                .sig
                .get(i.saturating_add(1))
                .is_some_and(|d| d.is_punct('.'));
            if dot {
                if let Some(m) = self.sig.get(i.saturating_add(2)) {
                    if crate::rules::ITER_METHODS.iter().any(|im| m.is_ident(im))
                        && self
                            .sig
                            .get(i.saturating_add(3))
                            .is_some_and(|p| p.is_punct('('))
                    {
                        let mut site = mk(
                            SiteKind::HashIter,
                            format!("{}.{}()", t.text, m.text),
                            t.line,
                            t.col,
                        );
                        site.sanctioned =
                            crate::rules::statement_sanctioned(self.sig, i.saturating_add(3));
                        return Some((site, 4));
                    }
                }
            }
        }
        if t.is_ident("for") {
            if let Some((name_tok, after)) = self.for_in_hash(i) {
                let mut site = mk(
                    SiteKind::HashIter,
                    format!("for … in {}", name_tok.text),
                    name_tok.line,
                    name_tok.col,
                );
                site.sanctioned = false;
                return Some((site, after.saturating_sub(i)));
            }
        }
        // env::var / env::var_os
        if t.is_ident("env") && path_sep(self.sig, i.saturating_add(1)) {
            if let Some(m) = self.sig.get(i.saturating_add(3)) {
                if m.is_ident("var") || m.is_ident("var_os") {
                    return Some((
                        mk(SiteKind::EnvRead, format!("env::{}", m.text), t.line, t.col),
                        4,
                    ));
                }
            }
        }
        // Instant::now / SystemTime::now
        if (t.is_ident("Instant") || t.is_ident("SystemTime"))
            && path_sep(self.sig, i.saturating_add(1))
            && self
                .sig
                .get(i.saturating_add(3))
                .is_some_and(|n| n.is_ident("now"))
        {
            return Some((
                mk(
                    SiteKind::WallClock,
                    format!("{}::now", t.text),
                    t.line,
                    t.col,
                ),
                4,
            ));
        }
        None
    }

    /// Recognise a call site at token `i` (free, method, or path call).
    fn call_at(&self, i: usize, held: &[String]) -> Option<Call> {
        let t = self.sig.get(i)?;
        if t.kind != TokKind::Ident || KEYWORDS.iter().any(|k| t.is_ident(k)) {
            return None;
        }
        let next = self.sig.get(i.saturating_add(1))?;
        let prev = i.checked_sub(1).and_then(|p| self.sig.get(p));

        // method call: `.name(`
        if prev.is_some_and(|p| p.is_punct('.')) {
            if next.is_punct('(') {
                let recv = i.checked_sub(1).map(|d| self.receiver_chain(d));
                return Some(Call {
                    kind: CallKind::Method,
                    qualifier: recv,
                    name: t.text.clone(),
                    line: t.line,
                    col: t.col,
                    held_locks: held.to_vec(),
                    arg_head: self.first_arg_head(i.saturating_add(1)),
                });
            }
            return None;
        }
        // path call: `Qual::name(` — `t` here is the *final* segment, so
        // look back for `:: t (` with a qualifier ident before.
        if next.is_punct('(') {
            let is_path = i >= 2
                && prev.is_some_and(|p| p.is_punct(':'))
                && i.checked_sub(2)
                    .and_then(|p| self.sig.get(p))
                    .is_some_and(|p| p.is_punct(':'));
            if is_path {
                let qual = i
                    .checked_sub(3)
                    .and_then(|p| self.sig.get(p))
                    .filter(|q| q.kind == TokKind::Ident || q.is_punct('>'))
                    .map(|q| q.text.clone());
                return Some(Call {
                    kind: CallKind::Path,
                    qualifier: qual,
                    name: t.text.clone(),
                    line: t.line,
                    col: t.col,
                    held_locks: held.to_vec(),
                    arg_head: self.first_arg_head(i.saturating_add(1)),
                });
            }
            // turbofish `name::<T>(` still reads as a free call: the `(`
            // directly follows `>`; handled conservatively as free here.
            // free call — but not `Struct {`-ish or macro `name!`
            return Some(Call {
                kind: CallKind::Free,
                qualifier: None,
                name: t.text.clone(),
                line: t.line,
                col: t.col,
                held_locks: held.to_vec(),
                arg_head: self.first_arg_head(i.saturating_add(1)),
            });
        }
        None
    }

    /// For a `for` at `i`: when it iterates a hash-typed name directly
    /// (`for p in &name {`), return the name token and the index of the
    /// loop's `{`.
    fn for_in_hash(&self, i: usize) -> Option<(&Tok, usize)> {
        let mut depth = 0i64;
        let mut j = i.saturating_add(1);
        let mut in_at = None;
        while let Some(x) = self.sig.get(j) {
            if x.is_punct('(') || x.is_punct('[') {
                depth = depth.saturating_add(1);
            } else if x.is_punct(')') || x.is_punct(']') {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && x.is_ident("in") {
                in_at = Some(j);
                break;
            } else if x.is_punct('{') || x.is_punct(';') {
                return None;
            }
            j = j.saturating_add(1);
        }
        let mut k = in_at?.saturating_add(1);
        while self
            .sig
            .get(k)
            .is_some_and(|x| x.is_punct('&') || x.is_ident("mut"))
        {
            k = k.saturating_add(1);
        }
        let name = self.sig.get(k)?;
        if name.kind == TokKind::Ident
            && self.hash_names.contains(&name.text)
            && self
                .sig
                .get(k.saturating_add(1))
                .is_some_and(|b| b.is_punct('{'))
        {
            return Some((name, k.saturating_add(1)));
        }
        None
    }

    /// Leading identifier chain of the first argument of the call whose
    /// `(` is at `open`: skips `&`/`mut`, then reads `a.b.c`, marking a
    /// trailing call as `name()`. Stops at anything else.
    fn first_arg_head(&self, open: usize) -> Option<String> {
        if !self.sig.get(open)?.is_punct('(') {
            return None;
        }
        let mut j = open.saturating_add(1);
        while self
            .sig
            .get(j)
            .is_some_and(|x| x.is_punct('&') || x.is_ident("mut"))
        {
            j = j.saturating_add(1);
        }
        let mut parts: Vec<String> = Vec::new();
        while let Some(t) = self.sig.get(j) {
            if t.kind != TokKind::Ident {
                break;
            }
            let next = self.sig.get(j.saturating_add(1));
            if next.is_some_and(|n| n.is_punct('(')) {
                parts.push(format!("{}()", t.text));
                break;
            }
            parts.push(t.text.clone());
            if next.is_some_and(|n| n.is_punct('.')) {
                j = j.saturating_add(2);
                continue;
            }
            break;
        }
        if parts.is_empty() {
            None
        } else {
            Some(parts.join("."))
        }
    }

    /// The receiver chain ending at the `.` (or call head) at `at`:
    /// walks back through `ident . ident` runs and one balanced call
    /// parenthesis, producing `a.b` / `a.b(…)`-style class text. Used
    /// both for lock classes and method-call qualifiers.
    fn receiver_chain(&self, at: usize) -> String {
        let mut parts: Vec<String> = Vec::new();
        let mut j = at; // at the `.`
        while let Some(prev_i) = j.checked_sub(1) {
            let Some(prev) = self.sig.get(prev_i) else {
                break;
            };
            if prev.is_punct(')') {
                // skip the balanced group and note the call
                let mut depth = 0i64;
                let mut k = prev_i;
                while let Some(x) = self.sig.get(k) {
                    if x.is_punct(')') {
                        depth = depth.saturating_add(1);
                    } else if x.is_punct('(') {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            break;
                        }
                    }
                    let Some(nk) = k.checked_sub(1) else { break };
                    k = nk;
                }
                let Some(head_i) = k.checked_sub(1) else {
                    break;
                };
                let Some(head) = self.sig.get(head_i) else {
                    break;
                };
                if head.kind == TokKind::Ident {
                    parts.push(format!("{}()", head.text));
                    j = head_i;
                    continue;
                }
                break;
            }
            if prev.is_punct('.') {
                j = prev_i;
                continue;
            }
            if prev.kind == TokKind::Ident {
                parts.push(prev.text.clone());
                // continue over a `.` before it
                match prev_i.checked_sub(1).and_then(|p| self.sig.get(p)) {
                    Some(d) if d.is_punct('.') => {
                        j = prev_i.saturating_sub(1);
                        continue;
                    }
                    _ => break,
                }
            }
            break;
        }
        parts.reverse();
        parts.join(".")
    }

    /// Is a site of `kind` at `line` suppressed by an allow on the same
    /// or the preceding line?
    fn is_suppressed(&self, kind: SiteKind, line: u32) -> bool {
        let rules = allow_rules_for(kind);
        self.allows.iter().any(|a| {
            rules.iter().any(|r| a.rule == *r)
                && (a.line == line || a.line.saturating_add(1) == line)
        })
    }
}

/// Index of the token closing the bracket opened at `open_idx`.
fn matching(sig: &[Tok], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0i64;
    let mut i = open_idx;
    while let Some(t) = sig.get(i) {
        if t.is_punct(open) {
            depth = depth.saturating_add(1);
        } else if t.is_punct(close) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return Some(i);
            }
        }
        i = i.saturating_add(1);
    }
    None
}

/// Are tokens `i`, `i+1` the two colons of a `::` path separator?
fn path_sep(sig: &[Tok], i: usize) -> bool {
    sig.get(i).is_some_and(|a| a.is_punct(':'))
        && sig
            .get(i.saturating_add(1))
            .is_some_and(|b| b.is_punct(':'))
}

/// Sort + dedup a small string vec (deterministic held-lock lists).
fn dedup_sorted(mut v: Vec<String>) -> Vec<String> {
    v.sort();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        parse_file(src)
    }

    #[test]
    fn free_fn_and_calls() {
        let p = parse("pub fn a() { b(); c.d(); E::f(); }\nfn b() {}\n");
        assert_eq!(p.fns.len(), 2);
        let a = &p.fns[0];
        assert_eq!(a.name, "a");
        assert!(a.is_pub);
        assert_eq!(a.owner, None);
        let kinds: Vec<(CallKind, &str)> =
            a.calls.iter().map(|c| (c.kind, c.name.as_str())).collect();
        assert_eq!(
            kinds,
            vec![
                (CallKind::Free, "b"),
                (CallKind::Method, "d"),
                (CallKind::Path, "f"),
            ]
        );
        assert_eq!(a.calls[2].qualifier.as_deref(), Some("E"));
        assert!(!p.fns[1].is_pub);
    }

    #[test]
    fn impl_methods_get_owner() {
        let p =
            parse("impl Foo { pub fn m(&self) {} fn n() {} }\nimpl Bar for Foo { fn t(&self) {} }");
        let owners: Vec<(Option<&str>, &str, bool)> = p
            .fns
            .iter()
            .map(|f| (f.owner.as_deref(), f.name.as_str(), f.is_pub))
            .collect();
        assert_eq!(
            owners,
            vec![
                (Some("Foo"), "m", true),
                (Some("Foo"), "n", false),
                (Some("Foo"), "t", false),
            ]
        );
    }

    #[test]
    fn generic_impl_and_fn_headers() {
        let p = parse(
            "impl<K: Eq + Hash, V: Clone> Cache<K, V> { pub fn get<Q: Borrow<K>>(&mut self, k: &Q) -> Option<V> { self.map.get(k) } }",
        );
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].owner.as_deref(), Some("Cache"));
        assert_eq!(p.fns[0].name, "get");
    }

    #[test]
    fn panic_sites_found() {
        let p = parse("fn f(x: Option<u32>) -> u32 { x.unwrap() }\nfn g() { panic!(\"n\"); }");
        assert_eq!(p.fns[0].sites.len(), 1);
        assert_eq!(p.fns[0].sites[0].kind, SiteKind::Panic);
        assert_eq!(p.fns[0].sites[0].detail, ".unwrap()");
        assert_eq!(p.fns[1].sites[0].detail, "panic!");
    }

    #[test]
    fn suppressed_panic_site() {
        let src = "fn f(x: Option<u32>) -> u32 {\n// lint:allow(no-unwrap) invariant: filled above\nx.unwrap()\n}";
        let p = parse(src);
        assert!(p.fns[0].sites[0].suppressed);
    }

    #[test]
    fn lock_sites_and_guard_liveness() {
        let src = "fn f(&self) {\nlet g = self.inner.lock();\nself.publish();\n}\nfn h(&self) { self.a.lock(); self.b.lock(); }";
        let p = parse(src);
        let f = &p.fns[0];
        assert_eq!(f.sites[0].kind, SiteKind::Lock);
        assert_eq!(f.sites[0].detail, "self.inner");
        let publish = f.calls.iter().find(|c| c.name == "publish").expect("call");
        assert_eq!(publish.held_locks, vec!["self.inner".to_string()]);
        // h: second lock acquired while first statement's temp guard is gone
        let h = &p.fns[1];
        assert_eq!(h.sites.len(), 2);
        assert!(h.sites[0].held_locks.is_empty());
        assert!(h.sites[1].held_locks.is_empty(), "temp guard died at `;`");
    }

    #[test]
    fn nested_lock_in_one_statement() {
        let src = "fn f(&self) { self.a.lock().merge(self.b.lock()); }";
        let p = parse(src);
        let sites = &p.fns[0].sites;
        assert_eq!(sites.len(), 2);
        assert!(sites[0].held_locks.is_empty());
        assert_eq!(sites[1].held_locks, vec!["self.a".to_string()]);
    }

    #[test]
    fn drop_releases_guard() {
        let src = "fn f(&self) { let g = self.a.lock(); drop(g); self.work(); }";
        let p = parse(src);
        let work = p.fns[0].calls.iter().find(|c| c.name == "work").expect("w");
        assert!(work.held_locks.is_empty());
    }

    #[test]
    fn hash_iter_sites() {
        let src = "fn f(m: HashMap<String, u32>) { for p in &m { use_it(p); } let v: Vec<_> = m.keys().collect(); }";
        let p = parse(src);
        let kinds: Vec<SiteKind> = p.fns[0].sites.iter().map(|s| s.kind).collect();
        assert_eq!(kinds, vec![SiteKind::HashIter, SiteKind::HashIter]);
    }

    #[test]
    fn sanctioned_hash_iter() {
        let src = "fn f(m: HashMap<String, u32>) { let v: BTreeSet<_> = m.keys().collect::<BTreeSet<_>>(); }";
        let p = parse(src);
        assert!(p.fns[0].sites[0].sanctioned);
    }

    #[test]
    fn env_and_wallclock_sites() {
        let p = parse("fn f() { let v = std::env::var(\"X\"); let t = Instant::now(); }");
        let kinds: Vec<SiteKind> = p.fns[0].sites.iter().map(|s| s.kind).collect();
        assert_eq!(kinds, vec![SiteKind::EnvRead, SiteKind::WallClock]);
    }

    #[test]
    fn use_imports_parsed() {
        let p = parse(
            "use webiq_web::{SearchEngine, cache::ShardedMap as SM};\nuse std::fmt;\nfn f() {}",
        );
        let got: Vec<(String, String)> = p
            .imports
            .iter()
            .map(|i| (i.name.clone(), i.root.clone()))
            .collect();
        assert_eq!(
            got,
            vec![
                ("SearchEngine".into(), "webiq_web".into()),
                ("SM".into(), "webiq_web".into()),
                ("fmt".into(), "std".into()),
            ]
        );
    }

    #[test]
    fn test_fns_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }";
        let p = parse_file(src);
        assert!(!p.fns[0].in_test);
        assert!(p.fns[1].in_test);
        assert!(p.fns[1].sites.is_empty(), "test fns carry no sites");
    }

    #[test]
    fn nested_fn_is_own_item() {
        let p = parse("fn outer() { fn inner() { x.unwrap(); } inner(); }");
        assert_eq!(p.fns.len(), 2);
        let inner = p.fns.iter().find(|f| f.name == "inner").expect("inner");
        assert_eq!(inner.sites.len(), 1);
        let outer = p.fns.iter().find(|f| f.name == "outer").expect("outer");
        assert!(outer.sites.is_empty(), "inner's unwrap is not outer's");
        assert!(outer.calls.iter().any(|c| c.name == "inner"));
    }

    #[test]
    fn subtracting_index_is_panic_site() {
        let p = parse("fn f(v: &[u32]) -> u32 { v[v.len() - 1] }");
        assert_eq!(p.fns[0].sites.len(), 1);
        assert_eq!(p.fns[0].sites[0].detail, "subtracting index");
    }
}
