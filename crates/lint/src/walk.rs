//! Deterministic workspace walker.
//!
//! Finds every Rust source file the lint pass covers — `src/**/*.rs` of
//! the root crate and of each `crates/*` member, plus the workspace-root
//! `tests/` and `examples/` trees — and classifies it into a
//! [`SourceFile`] (owning crate, crate-root / bin status). Integration
//! tests and examples are their own bin-like targets, so they classify
//! as bins: they stay visible to hygiene rules but exempt from the
//! library panic scope. Directory entries are sorted before recursion so
//! the file order, and therefore every downstream report, is
//! byte-identical across runs and platforms.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::rules::SourceFile;

/// Collect and classify every workspace source file under `root`.
///
/// `root` is the workspace root (the directory holding the `[workspace]`
/// `Cargo.toml`). Returns files sorted by workspace-relative path.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();

    // Root crate: src/**/*.rs plus its tests/ and examples/ targets,
    // all crate `webiq`.
    for tree in ["src", "tests", "examples"] {
        let dir = root.join(tree);
        if dir.is_dir() {
            collect(&dir, &mut files)?;
        }
    }

    // Workspace members: crates/<name>/src/**/*.rs.
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for member in sorted_dirs(&crates_dir)? {
            let src = member.join("src");
            if src.is_dir() {
                collect(&src, &mut files)?;
            }
        }
    }

    let mut out = Vec::new();
    for path in files {
        if let Some(sf) = classify(root, &path)? {
            out.push(sf);
        }
    }
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

/// Recursively gather `*.rs` files under `dir`, in sorted order.
fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with('.') {
            continue;
        }
        if path.is_dir() {
            collect(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Immediate subdirectories of `dir`, sorted by name.
fn sorted_dirs(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut dirs: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    Ok(dirs)
}

/// Read and classify one source file. Returns `None` for paths outside
/// the recognised layout.
fn classify(root: &Path, path: &Path) -> io::Result<Option<SourceFile>> {
    let Ok(rel_path) = path.strip_prefix(root) else {
        return Ok(None);
    };
    let rel = components_to_slash(rel_path);
    let parts: Vec<&str> = rel.split('/').collect();

    // `src/…` → root crate `webiq`; `crates/<name>/src/…` → member
    // crate; `tests/…` and `examples/…` → root-crate targets that are
    // bins for scoping purposes (each file is its own target root).
    let (crate_name, in_crate, is_target): (String, &[&str], bool) = match parts.split_first() {
        Some((&"src", rest)) => ("webiq".to_string(), rest, false),
        Some((&"tests" | &"examples", rest)) => ("webiq".to_string(), rest, true),
        Some((&"crates", rest)) => match rest.split_first() {
            Some((name, tail)) => match tail.split_first() {
                Some((&"src", inner)) => ((*name).to_string(), inner, false),
                _ => return Ok(None),
            },
            None => return Ok(None),
        },
        _ => return Ok(None),
    };

    let file_name = parts.last().copied().unwrap_or("").to_string();
    let is_lib_root = in_crate == ["lib.rs"];
    let is_main = in_crate == ["main.rs"];
    let is_named_bin = matches!(in_crate.split_first(), Some((&"bin", rest)) if rest.len() == 1);

    let text = fs::read_to_string(path)?;
    Ok(Some(SourceFile {
        rel,
        crate_name,
        file_name,
        is_crate_root: is_lib_root || is_main || is_named_bin,
        is_bin: is_main || is_named_bin || is_target,
        text,
    }))
}

/// Join path components with `/` regardless of platform separator.
fn components_to_slash(p: &Path) -> String {
    let mut out = String::new();
    for c in p.components() {
        if !out.is_empty() {
            out.push('/');
        }
        out.push_str(&c.as_os_str().to_string_lossy());
    }
    out
}

/// Walk upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        cur = dir.parent().map(std::path::Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_roots_and_bins() {
        let root = Path::new("/w");
        let case = |rel: &str| {
            let path = root.join(rel);
            // classify() reads the file; emulate with direct construction
            // of the classification inputs instead.
            let parts: Vec<&str> = rel.split('/').collect();
            let (crate_name, in_crate): (String, Vec<&str>) = match parts.split_first() {
                Some((&"src", rest)) => ("webiq".into(), rest.to_vec()),
                Some((&"crates", rest)) => {
                    let (name, tail) = rest.split_first().expect("crate name");
                    let (_, inner) = tail.split_first().expect("src");
                    ((*name).to_string(), inner.to_vec())
                }
                _ => panic!("bad case"),
            };
            let _ = path;
            let is_lib_root = in_crate == ["lib.rs"];
            let is_main = in_crate == ["main.rs"];
            let is_named_bin =
                matches!(in_crate.split_first(), Some((&"bin", rest)) if rest.len() == 1);
            (
                crate_name,
                is_lib_root || is_main || is_named_bin,
                is_main || is_named_bin,
            )
        };
        assert_eq!(case("src/lib.rs"), ("webiq".into(), true, false));
        assert_eq!(case("src/bin/webiq.rs"), ("webiq".into(), true, true));
        assert_eq!(case("crates/core/src/lib.rs"), ("core".into(), true, false));
        assert_eq!(
            case("crates/core/src/acquire.rs"),
            ("core".into(), false, false)
        );
        assert_eq!(case("crates/lint/src/main.rs"), ("lint".into(), true, true));
    }

    #[test]
    fn finds_workspace_root_from_nested_dir() {
        let here = std::env::current_dir().expect("cwd");
        let root = find_workspace_root(&here).expect("workspace root");
        assert!(root.join("Cargo.toml").is_file());
        let text = std::fs::read_to_string(root.join("Cargo.toml")).expect("manifest");
        assert!(text.contains("[workspace]"));
    }
}
