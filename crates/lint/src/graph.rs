//! Workspace-wide call graph over the parsed sources of every crate.
//!
//! Nodes are function items from [`crate::parse`]; edges are call sites
//! resolved *by name*, filtered by the caller crate's dependency closure
//! (parsed from the workspace manifests, so `webiq-bench`'s panicky
//! harness code can never pollute a pipeline crate's certificate — no
//! pipeline crate depends on it). Resolution is deliberately
//! conservative:
//!
//! * free calls resolve within the caller's file, then crate, then its
//!   `use`-imports;
//! * `Qual::name` path calls resolve through imports, crate names,
//!   `impl` self-types, and module (file-stem) names;
//! * method calls resolve to **every** method of that name visible to
//!   the caller — an over-approximation that keeps the passes sound at
//!   the cost of spurious edges, which is the right trade for
//!   certification (a false edge can only make a pass *more* strict).
//!
//! Everything is ordered: nodes sort by (file, line), adjacency lists
//! are sorted and deduplicated, and all internal maps are `BTreeMap`s,
//! so the graph and every report derived from it are byte-identical
//! across runs.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::Path;

use crate::parse::{Call, CallKind, FnDef, ParsedFile};

/// One parsed source file plus the classification the walker derived.
#[derive(Debug, Clone)]
pub struct ParsedSource {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Owning crate's directory name (`core`, `web`, …; `webiq` root).
    pub crate_name: String,
    /// Binary / test / example target (exempt from certification roots
    /// and effect sites, but still present for edge completeness).
    pub is_bin: bool,
    /// Parsed items.
    pub parsed: ParsedFile,
}

/// One call-graph node: a function item with its location.
#[derive(Debug, Clone)]
pub struct Node {
    /// Workspace-relative file.
    pub file: String,
    /// Owning crate directory name.
    pub krate: String,
    /// From a bin/test/example target.
    pub is_bin: bool,
    /// The parsed function.
    pub def: FnDef,
}

impl Node {
    /// Stable display id: `file::Owner::name` / `file::name`.
    pub fn id(&self) -> String {
        match &self.def.owner {
            Some(o) => format!("{}::{}::{}", self.file, o, self.def.name),
            None => format!("{}::{}", self.file, self.def.name),
        }
    }
}

/// The resolved workspace call graph.
#[derive(Debug, Default)]
pub struct Graph {
    /// Nodes sorted by (file, line, col).
    pub nodes: Vec<Node>,
    /// Forward adjacency: `edges[i]` = sorted callee node indices.
    pub edges: Vec<Vec<usize>>,
    /// Reverse adjacency: `redges[i]` = sorted caller node indices.
    pub redges: Vec<Vec<usize>>,
    /// Unresolved calls (std / closures): count only, for the report.
    pub unresolved_calls: usize,
    /// Total resolved call edges before dedup (report statistic).
    pub resolved_calls: usize,
}

/// Per-crate dependency closure: crate dir name → every crate dir it can
/// reach (including itself).
pub type DepClosure = BTreeMap<String, BTreeSet<String>>;

/// Parse the workspace manifests under `root` into a [`DepClosure`].
///
/// Reads `[workspace.dependencies]` of the root `Cargo.toml` for the
/// package-name → `crates/<dir>` mapping, then each member manifest's
/// `[dependencies]` section, and closes transitively. The root package
/// itself is crate `webiq` (path `.`).
pub fn dep_closure(root: &Path) -> DepClosure {
    // package name -> crate dir
    let mut name_to_dir: BTreeMap<String, String> = BTreeMap::new();
    let root_manifest = fs::read_to_string(root.join("Cargo.toml")).unwrap_or_default();
    let mut in_ws_deps = false;
    for line in root_manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_ws_deps = line == "[workspace.dependencies]";
            continue;
        }
        if !in_ws_deps {
            continue;
        }
        // `webiq-web = { path = "crates/web" }` / `webiq = { path = "." }`
        let Some((name, rest)) = line.split_once('=') else {
            continue;
        };
        let name = name.trim().to_string();
        let Some(path_pos) = rest.find("path") else {
            continue;
        };
        let after = rest.get(path_pos..).unwrap_or("");
        let Some(q1) = after.find('"') else { continue };
        let Some(q2) = after.get(q1.saturating_add(1)..).and_then(|s| s.find('"')) else {
            continue;
        };
        let path = after
            .get(q1.saturating_add(1)..q1.saturating_add(1).saturating_add(q2))
            .unwrap_or("");
        let dir = match path.strip_prefix("crates/") {
            Some(d) => d.to_string(),
            None => "webiq".to_string(), // path "." — the root facade
        };
        name_to_dir.insert(name, dir);
    }

    // direct deps per crate dir
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut manifest_dirs: Vec<(String, std::path::PathBuf)> =
        vec![("webiq".to_string(), root.join("Cargo.toml"))];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        let mut members: Vec<_> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
        members.sort();
        for m in members {
            let Some(dir) = m.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let manifest = m.join("Cargo.toml");
            if manifest.is_file() {
                manifest_dirs.push((dir.to_string(), manifest));
            } else if m.is_dir() {
                // manifest-less member (fixture workspaces): still a crate
                direct.insert(dir.to_string(), BTreeSet::new());
            }
        }
    }
    for (dir, manifest) in manifest_dirs {
        let text = fs::read_to_string(&manifest).unwrap_or_default();
        let mut deps: BTreeSet<String> = BTreeSet::new();
        let mut in_deps = false;
        for line in text.lines() {
            let line = line.trim();
            if line.starts_with('[') {
                in_deps = line == "[dependencies]";
                continue;
            }
            if !in_deps || line.is_empty() || line.starts_with('#') {
                continue;
            }
            // `webiq-web.workspace = true` / `webiq-web = { workspace … }`
            let head = line
                .split(['=', '.'])
                .next()
                .map(str::trim)
                .unwrap_or_default();
            if let Some(dep_dir) = name_to_dir.get(head) {
                deps.insert(dep_dir.clone());
            }
        }
        direct.insert(dir, deps);
    }

    // transitive closure (the graph is tiny; repeated BFS is fine)
    let mut out: DepClosure = BTreeMap::new();
    for dir in direct.keys() {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut queue: Vec<String> = vec![dir.clone()];
        while let Some(d) = queue.pop() {
            if !seen.insert(d.clone()) {
                continue;
            }
            if let Some(deps) = direct.get(&d) {
                for dep in deps {
                    if !seen.contains(dep) {
                        queue.push(dep.clone());
                    }
                }
            }
        }
        out.insert(dir.clone(), seen);
    }
    out
}

/// Underscored package name (`webiq_web`) → crate dir (`web`), derived
/// from the same manifest data.
fn underscore_map(closure: &DepClosure) -> BTreeMap<String, String> {
    // crate dirs are the closure's keys; package names are `webiq-<dir>`
    // except `matcher` (package `webiq-match`) and the root (`webiq`).
    // Rather than hard-coding, map every dir to `webiq_<dir>` AND accept
    // `webiq_match` for `matcher` by also mapping the dir's manifest
    // package name when it differs. The workspace convention is stable
    // enough that the special case is explicit here.
    let mut m = BTreeMap::new();
    for dir in closure.keys() {
        if dir == "webiq" {
            m.insert("webiq".to_string(), dir.clone());
        } else {
            m.insert(format!("webiq_{dir}"), dir.clone());
        }
    }
    m.insert("webiq_match".to_string(), "matcher".to_string());
    m
}

/// Build the call graph from parsed sources and the dependency closure.
pub fn build(sources: &[ParsedSource], closure: &DepClosure) -> Graph {
    let pkg_to_dir = underscore_map(closure);

    // ---- nodes, sorted by (file, line, col) ----
    let mut nodes: Vec<Node> = Vec::new();
    for s in sources {
        for f in &s.parsed.fns {
            nodes.push(Node {
                file: s.rel.clone(),
                krate: s.crate_name.clone(),
                is_bin: s.is_bin,
                def: f.clone(),
            });
        }
    }
    nodes.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.def.line.cmp(&b.def.line))
            .then(a.def.col.cmp(&b.def.col))
    });

    // ---- indices ----
    // free fns: (crate, name) and (file, name)
    let mut free_by_crate: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    let mut free_by_file: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    // free fns by (file stem, name) for `module::fn` path calls
    let mut free_by_stem: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    // methods by bare name, and by (owner, name)
    let mut methods_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    let mut methods_by_owner: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    for (i, n) in nodes.iter().enumerate() {
        if n.def.in_test {
            continue; // test helpers never resolve as call targets
        }
        match &n.def.owner {
            Some(o) => {
                methods_by_name
                    .entry(n.def.name.clone())
                    .or_default()
                    .push(i);
                methods_by_owner
                    .entry((o.clone(), n.def.name.clone()))
                    .or_default()
                    .push(i);
            }
            None => {
                free_by_crate
                    .entry((n.krate.clone(), n.def.name.clone()))
                    .or_default()
                    .push(i);
                free_by_file
                    .entry((n.file.clone(), n.def.name.clone()))
                    .or_default()
                    .push(i);
                let stem = n
                    .file
                    .rsplit('/')
                    .next()
                    .and_then(|f| f.strip_suffix(".rs"))
                    .unwrap_or("")
                    .to_string();
                free_by_stem
                    .entry((stem, n.def.name.clone()))
                    .or_default()
                    .push(i);
            }
        }
    }

    // imports per file: name -> root segment
    let mut imports: BTreeMap<(String, String), String> = BTreeMap::new();
    for s in sources {
        for imp in &s.parsed.imports {
            imports.insert((s.rel.clone(), imp.name.clone()), imp.root.clone());
        }
    }

    // a crate always sees itself, manifests or not (fixture workspaces
    // may have no per-crate Cargo.toml)
    let visible = |caller: &Node, target: &Node| -> bool {
        caller.krate == target.krate
            || closure
                .get(&caller.krate)
                .is_some_and(|c| c.contains(&target.krate))
    };

    // ---- edges ----
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    let mut redges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    let mut unresolved = 0usize;
    let mut resolved = 0usize;
    for (i, n) in nodes.iter().enumerate() {
        for call in &n.def.calls {
            let targets = resolve(
                call,
                n,
                &free_by_crate,
                &free_by_file,
                &free_by_stem,
                &methods_by_name,
                &methods_by_owner,
                &imports,
                &pkg_to_dir,
            );
            let mut any = false;
            for t in targets {
                if let Some(tn) = nodes.get(t) {
                    if visible(n, tn) {
                        edges[i].push(t);
                        redges[t].push(i);
                        any = true;
                    }
                }
            }
            if any {
                resolved = resolved.saturating_add(1);
            } else {
                unresolved = unresolved.saturating_add(1);
            }
        }
    }
    for adj in edges.iter_mut().chain(redges.iter_mut()) {
        adj.sort_unstable();
        adj.dedup();
    }

    Graph {
        nodes,
        edges,
        redges,
        unresolved_calls: unresolved,
        resolved_calls: resolved,
    }
}

/// Candidate node indices for one call, before visibility filtering.
#[allow(clippy::too_many_arguments)]
fn resolve(
    call: &Call,
    caller: &Node,
    free_by_crate: &BTreeMap<(String, String), Vec<usize>>,
    free_by_file: &BTreeMap<(String, String), Vec<usize>>,
    free_by_stem: &BTreeMap<(String, String), Vec<usize>>,
    methods_by_name: &BTreeMap<String, Vec<usize>>,
    methods_by_owner: &BTreeMap<(String, String), Vec<usize>>,
    imports: &BTreeMap<(String, String), String>,
    pkg_to_dir: &BTreeMap<String, String>,
) -> Vec<usize> {
    match call.kind {
        CallKind::Method => {
            // every method with this name visible to the caller
            methods_by_name.get(&call.name).cloned().unwrap_or_default()
        }
        CallKind::Free => {
            // same file, else same crate, else through an import
            if let Some(v) = free_by_file.get(&(caller.file.clone(), call.name.clone())) {
                return v.clone();
            }
            if let Some(v) = free_by_crate.get(&(caller.krate.clone(), call.name.clone())) {
                return v.clone();
            }
            if let Some(root) = imports.get(&(caller.file.clone(), call.name.clone())) {
                if let Some(dir) = import_root_dir(root, &caller.krate, pkg_to_dir) {
                    if let Some(v) = free_by_crate.get(&(dir, call.name.clone())) {
                        return v.clone();
                    }
                }
            }
            Vec::new()
        }
        CallKind::Path => {
            let Some(q) = call.qualifier.as_deref() else {
                return Vec::new();
            };
            // `Self::name` → method of the current impl owner
            if q == "Self" {
                if let Some(owner) = caller.def.owner.as_deref() {
                    return methods_by_owner
                        .get(&(owner.to_string(), call.name.clone()))
                        .cloned()
                        .unwrap_or_default();
                }
                return Vec::new();
            }
            // `crate::name` / `self::name` → same crate free fn
            if q == "crate" || q == "self" {
                return free_by_crate
                    .get(&(caller.krate.clone(), call.name.clone()))
                    .cloned()
                    .unwrap_or_default();
            }
            // workspace package path: `webiq_web::issue`
            if let Some(dir) = pkg_to_dir.get(q) {
                let mut v = free_by_crate
                    .get(&(dir.clone(), call.name.clone()))
                    .cloned()
                    .unwrap_or_default();
                if v.is_empty() {
                    // `webiq_trace::span` where span lives in a module:
                    // fall back to any free fn of that crate's files
                    v = free_by_crate
                        .get(&(dir.clone(), call.name.clone()))
                        .cloned()
                        .unwrap_or_default();
                }
                return v;
            }
            // type with methods: `LruCache::new`
            if let Some(v) = methods_by_owner.get(&(q.to_string(), call.name.clone())) {
                return v.clone();
            }
            // imported module or type alias: `extract::candidates` after
            // `use webiq_core::extract;`
            if let Some(root) = imports.get(&(caller.file.clone(), q.to_string())) {
                if let Some(dir) = import_root_dir(root, &caller.krate, pkg_to_dir) {
                    if let Some(v) = free_by_crate.get(&(dir, call.name.clone())) {
                        return v.clone();
                    }
                }
            }
            // module file stem in the caller's own crate: `cache::hash`
            if let Some(v) = free_by_stem.get(&(q.to_string(), call.name.clone())) {
                return v.clone();
            }
            Vec::new()
        }
    }
}

/// Crate dir a `use` root segment refers to, if it is workspace-local.
fn import_root_dir(
    root: &str,
    caller_crate: &str,
    pkg_to_dir: &BTreeMap<String, String>,
) -> Option<String> {
    if root == "crate" || root == "self" || root == "super" {
        return Some(caller_crate.to_string());
    }
    pkg_to_dir.get(root).cloned()
}

impl Graph {
    /// Indices of nodes matching a predicate.
    pub fn select(&self, pred: impl Fn(&Node) -> bool) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| pred(n))
            .map(|(i, _)| i)
            .collect()
    }

    /// Backward closure: every node that can reach one of `seeds` along
    /// forward edges (computed by walking the reverse adjacency).
    pub fn reaches_any(&self, seeds: &[usize]) -> Vec<bool> {
        let mut hit = vec![false; self.nodes.len()];
        let mut queue: Vec<usize> = Vec::new();
        for &s in seeds {
            if let Some(slot) = hit.get_mut(s) {
                if !*slot {
                    *slot = true;
                    queue.push(s);
                }
            }
        }
        while let Some(v) = queue.pop() {
            if let Some(callers) = self.redges.get(v) {
                for &c in callers {
                    if let Some(slot) = hit.get_mut(c) {
                        if !*slot {
                            *slot = true;
                            queue.push(c);
                        }
                    }
                }
            }
        }
        hit
    }

    /// Forward closure from `seeds` along forward edges.
    pub fn forward_closure(&self, seeds: &[usize]) -> Vec<bool> {
        let mut hit = vec![false; self.nodes.len()];
        let mut queue: Vec<usize> = Vec::new();
        for &s in seeds {
            if let Some(slot) = hit.get_mut(s) {
                if !*slot {
                    *slot = true;
                    queue.push(s);
                }
            }
        }
        while let Some(v) = queue.pop() {
            if let Some(callees) = self.edges.get(v) {
                for &c in callees {
                    if let Some(slot) = hit.get_mut(c) {
                        if !*slot {
                            *slot = true;
                            queue.push(c);
                        }
                    }
                }
            }
        }
        hit
    }

    /// Shortest path from `from` to any node in `to` (BFS over sorted
    /// adjacency, so the witness path is deterministic). Returns node
    /// indices from `from` to the target inclusive.
    pub fn witness_path(&self, from: usize, to: &[bool]) -> Option<Vec<usize>> {
        let mut prev: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut seen = vec![false; self.nodes.len()];
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        if let Some(slot) = seen.get_mut(from) {
            *slot = true;
        }
        queue.push_back(from);
        while let Some(v) = queue.pop_front() {
            if to.get(v).copied().unwrap_or(false) {
                // rebuild path
                let mut path = vec![v];
                let mut cur = v;
                while let Some(Some(p)) = prev.get(cur) {
                    path.push(*p);
                    cur = *p;
                }
                path.reverse();
                return Some(path);
            }
            if let Some(callees) = self.edges.get(v) {
                for &c in callees {
                    if let Some(slot) = seen.get_mut(c) {
                        if !*slot {
                            *slot = true;
                            if let Some(p) = prev.get_mut(c) {
                                *p = Some(v);
                            }
                            queue.push_back(c);
                        }
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;

    fn closure_of(pairs: &[(&str, &[&str])]) -> DepClosure {
        pairs
            .iter()
            .map(|(k, deps)| {
                let mut set: BTreeSet<String> = deps.iter().map(|d| (*d).to_string()).collect();
                set.insert((*k).to_string());
                ((*k).to_string(), set)
            })
            .collect()
    }

    fn src(rel: &str, krate: &str, text: &str) -> ParsedSource {
        ParsedSource {
            rel: rel.into(),
            crate_name: krate.into(),
            is_bin: false,
            parsed: parse_file(text),
        }
    }

    fn node_idx(g: &Graph, name: &str) -> usize {
        g.nodes
            .iter()
            .position(|n| n.def.name == name)
            .unwrap_or_else(|| panic!("node {name} missing"))
    }

    #[test]
    fn free_call_resolves_in_file_then_crate() {
        let sources = vec![
            src(
                "crates/a/src/lib.rs",
                "a",
                "pub fn entry() { helper(); }\nfn helper() { other(); }",
            ),
            src("crates/a/src/other.rs", "a", "pub fn other() {}"),
        ];
        let g = build(&sources, &closure_of(&[("a", &[])]));
        let entry = node_idx(&g, "entry");
        let helper = node_idx(&g, "helper");
        let other = node_idx(&g, "other");
        assert_eq!(g.edges[entry], vec![helper]);
        assert_eq!(g.edges[helper], vec![other]);
        assert_eq!(g.redges[other], vec![helper]);
    }

    #[test]
    fn method_calls_resolve_by_name_within_closure() {
        let sources = vec![
            src(
                "crates/a/src/lib.rs",
                "a",
                "pub fn entry(c: &Cache) { c.fetch(); }",
            ),
            src(
                "crates/b/src/cache.rs",
                "b",
                "impl Cache { pub fn fetch(&self) {} }",
            ),
            src(
                "crates/c/src/other.rs",
                "c",
                "impl Other { pub fn fetch(&self) {} }",
            ),
        ];
        // a depends on b, not on c → only b's fetch is a candidate
        let g = build(
            &sources,
            &closure_of(&[("a", &["b"]), ("b", &[]), ("c", &[])]),
        );
        let entry = node_idx(&g, "entry");
        let b_fetch = g
            .nodes
            .iter()
            .position(|n| n.krate == "b" && n.def.name == "fetch")
            .expect("b fetch");
        assert_eq!(g.edges[entry], vec![b_fetch]);
    }

    #[test]
    fn path_call_via_import_and_owner() {
        let sources = vec![
            src(
                "crates/a/src/lib.rs",
                "a",
                "use webiq_b::issue;\npub fn entry() { issue(); Cache::make(); }",
            ),
            src("crates/b/src/lib.rs", "b", "pub fn issue() {}"),
            src(
                "crates/b/src/cache.rs",
                "b",
                "impl Cache { pub fn make() {} }",
            ),
        ];
        let g = build(&sources, &closure_of(&[("a", &["b"]), ("b", &[])]));
        let entry = node_idx(&g, "entry");
        let issue = node_idx(&g, "issue");
        let make = node_idx(&g, "make");
        let mut want = vec![issue, make];
        want.sort_unstable();
        assert_eq!(g.edges[entry], want);
    }

    #[test]
    fn self_path_call_resolves_to_owner() {
        let sources = vec![src(
            "crates/a/src/lib.rs",
            "a",
            "impl T { pub fn a(&self) { Self::b(); } fn b() {} }",
        )];
        let g = build(&sources, &closure_of(&[("a", &[])]));
        let a = node_idx(&g, "a");
        let b = node_idx(&g, "b");
        assert_eq!(g.edges[a], vec![b]);
    }

    #[test]
    fn test_fns_are_not_call_targets() {
        let sources = vec![src(
            "crates/a/src/lib.rs",
            "a",
            "pub fn entry() { helper(); }\n#[cfg(test)]\nmod tests { fn helper() {} }",
        )];
        let g = build(&sources, &closure_of(&[("a", &[])]));
        let entry = node_idx(&g, "entry");
        assert!(g.edges[entry].is_empty(), "test helper must not resolve");
    }

    #[test]
    fn closures_reach_seeds_and_witness_paths() {
        let sources = vec![src(
            "crates/a/src/lib.rs",
            "a",
            "pub fn a() { b(); }\nfn b() { c(); }\nfn c() {}\nfn d() {}",
        )];
        let g = build(&sources, &closure_of(&[("a", &[])]));
        let (a, b, c, d) = (
            node_idx(&g, "a"),
            node_idx(&g, "b"),
            node_idx(&g, "c"),
            node_idx(&g, "d"),
        );
        let reach = g.reaches_any(&[c]);
        assert!(reach[a] && reach[b] && reach[c] && !reach[d]);
        let mut target = vec![false; g.nodes.len()];
        target[c] = true;
        let path = g.witness_path(a, &target).expect("path");
        assert_eq!(path, vec![a, b, c]);
    }

    #[test]
    fn dep_closure_of_real_workspace() {
        let root = crate::walk::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("workspace root");
        let c = dep_closure(&root);
        let core = c.get("core").expect("core crate");
        assert!(core.contains("web") && core.contains("stats") && core.contains("core"));
        assert!(
            !core.contains("bench"),
            "core must not see the bench harness"
        );
        let bench = c.get("bench").expect("bench crate");
        assert!(bench.contains("webiq") && bench.contains("core"));
        let web = c.get("web").expect("web crate");
        assert!(web.contains("rng"), "web depends on rng");
    }
}
