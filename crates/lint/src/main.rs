//! Command-line entry point for `webiq-lint`.
//!
//! With no arguments, finds the workspace root (the nearest ancestor
//! with a `[workspace]` manifest) and lints every workspace source
//! file. `--rules` lists the rule catalogue. `--flow` runs the
//! cross-crate flow analysis instead of the lexical lint; with
//! `--flow-json <path>` it also writes the SARIF-style JSON report, and
//! with `--flow-baseline <path>` it compares against a committed
//! baseline. Exits 0 when clean, 1 on violations or baseline
//! regressions, and 2 on usage/IO errors.
#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use webiq_lint::{flow, lint_workspace, walk, RULES};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--rules") {
        for (id, desc) in RULES {
            println!("{id:14} {desc}");
        }
        return ExitCode::SUCCESS;
    }

    // option parsing: flags may appear in any order; the first bare
    // argument is the directory to start the workspace search from.
    let mut flow_mode = false;
    let mut flow_json: Option<PathBuf> = None;
    let mut flow_baseline: Option<PathBuf> = None;
    let mut start_arg: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--flow" => flow_mode = true,
            "--flow-json" => match it.next() {
                Some(p) => flow_json = Some(PathBuf::from(p)),
                None => {
                    eprintln!("webiq-lint: --flow-json needs a path");
                    return ExitCode::from(2);
                }
            },
            "--flow-baseline" => match it.next() {
                Some(p) => flow_baseline = Some(PathBuf::from(p)),
                None => {
                    eprintln!("webiq-lint: --flow-baseline needs a path");
                    return ExitCode::from(2);
                }
            },
            other if !other.starts_with('-') => start_arg = Some(PathBuf::from(other)),
            other => {
                eprintln!("webiq-lint: unknown flag {other}");
                return ExitCode::from(2);
            }
        }
    }

    let start = match start_arg {
        Some(p) => p,
        None => match std::env::current_dir() {
            Ok(d) => d,
            Err(e) => {
                eprintln!("webiq-lint: cannot determine working directory: {e}");
                return ExitCode::from(2);
            }
        },
    };
    let Some(root) = walk::find_workspace_root(&start) else {
        eprintln!(
            "webiq-lint: no [workspace] Cargo.toml found above {}",
            start.display()
        );
        return ExitCode::from(2);
    };

    if flow_mode {
        return run_flow(&root, flow_json.as_deref(), flow_baseline.as_deref());
    }

    match lint_workspace(&root) {
        Ok(report) => {
            print!("{}", report.render());
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("webiq-lint: io error while walking workspace: {e}");
            ExitCode::from(2)
        }
    }
}

/// Run the flow analysis; optionally write the JSON report and diff it
/// against a committed baseline.
fn run_flow(
    root: &std::path::Path,
    json_out: Option<&std::path::Path>,
    baseline: Option<&std::path::Path>,
) -> ExitCode {
    let report = match flow::flow_workspace(root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("webiq-lint: io error while walking workspace: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", report.render_text());
    if let Some(path) = json_out {
        if let Err(e) = std::fs::write(path, report.render_json()) {
            eprintln!("webiq-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(path) = baseline {
        let base = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("webiq-lint: cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let regressions = flow::compare_baseline(&base, &report);
        if !regressions.is_empty() {
            for r in &regressions {
                eprintln!("flow regression: {r}");
            }
            return ExitCode::FAILURE;
        }
        println!("flow: no regressions against {}", path.display());
        return ExitCode::SUCCESS;
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
