//! Command-line entry point for `webiq-lint`.
//!
//! With no arguments, finds the workspace root (the nearest ancestor
//! with a `[workspace]` manifest) and lints every workspace source
//! file. `--rules` lists the rule catalogue. Exits 0 on a clean
//! workspace and 1 when violations remain.
#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use webiq_lint::{lint_workspace, walk, RULES};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--rules") {
        for (id, desc) in RULES {
            println!("{id:14} {desc}");
        }
        return ExitCode::SUCCESS;
    }

    let start = match args.first() {
        Some(p) => PathBuf::from(p),
        None => match std::env::current_dir() {
            Ok(d) => d,
            Err(e) => {
                eprintln!("webiq-lint: cannot determine working directory: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let Some(root) = walk::find_workspace_root(&start) else {
        eprintln!(
            "webiq-lint: no [workspace] Cargo.toml found above {}",
            start.display()
        );
        return ExitCode::FAILURE;
    };

    match lint_workspace(&root) {
        Ok(report) => {
            print!("{}", report.render());
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("webiq-lint: io error while walking workspace: {e}");
            ExitCode::FAILURE
        }
    }
}
