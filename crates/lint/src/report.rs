//! Violation collection and deterministic rendering.

use std::fmt::Write as _;

/// One rule violation at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule identifier (e.g. `no-unwrap`).
    pub rule: &'static str,
    /// Human-readable message.
    pub msg: String,
}

/// The outcome of linting a set of files.
#[derive(Debug, Default, Clone)]
pub struct LintReport {
    /// Violations across all files (sorted by [`LintReport::finish`]).
    pub violations: Vec<Violation>,
    /// `lint:allow` suppressions honoured (reason present, rule matched).
    pub suppressed: usize,
    /// Number of files checked.
    pub files_checked: usize,
}

impl LintReport {
    /// Merge another file's outcome into this report.
    pub fn absorb(&mut self, mut violations: Vec<Violation>, suppressed: usize) {
        self.violations.append(&mut violations);
        self.suppressed = self.suppressed.saturating_add(suppressed);
        self.files_checked = self.files_checked.saturating_add(1);
    }

    /// Sort violations into the canonical order: path, then line, column,
    /// and rule-id. Rendering after `finish` is byte-identical across
    /// runs because every key is derived from file contents alone.
    pub fn finish(&mut self) {
        self.violations.sort_by(|a, b| {
            a.file
                .cmp(&b.file)
                .then(a.line.cmp(&b.line))
                .then(a.col.cmp(&b.col))
                .then(a.rule.cmp(b.rule))
                .then(a.msg.cmp(&b.msg))
        });
    }

    /// True when the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Render the report: one `file:line:col rule-id message` line per
    /// violation plus a trailing summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            let _ = writeln!(out, "{}:{}:{} {} {}", v.file, v.line, v.col, v.rule, v.msg);
        }
        let _ = writeln!(
            out,
            "webiq-lint: {} violation(s), {} suppression(s) honoured, {} file(s) checked",
            self.violations.len(),
            self.suppressed,
            self.files_checked
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(file: &str, line: u32, col: u32, rule: &'static str) -> Violation {
        Violation {
            file: file.into(),
            line,
            col,
            rule,
            msg: "m".into(),
        }
    }

    #[test]
    fn render_is_sorted_and_stable() {
        let mut r = LintReport::default();
        r.absorb(
            vec![v("b.rs", 2, 1, "no-unwrap"), v("b.rs", 1, 9, "no-expect")],
            1,
        );
        r.absorb(vec![v("a.rs", 5, 3, "no-panic")], 0);
        r.finish();
        let first = r.render();
        r.finish();
        assert_eq!(first, r.render(), "render must be idempotent");
        let lines: Vec<&str> = first.lines().collect();
        assert_eq!(lines.first().copied(), Some("a.rs:5:3 no-panic m"));
        assert_eq!(lines.get(1).copied(), Some("b.rs:1:9 no-expect m"));
        assert_eq!(lines.get(2).copied(), Some("b.rs:2:1 no-unwrap m"));
        assert_eq!(
            lines.get(3).copied(),
            Some("webiq-lint: 3 violation(s), 1 suppression(s) honoured, 2 file(s) checked")
        );
    }

    #[test]
    fn clean_report() {
        let mut r = LintReport::default();
        r.absorb(Vec::new(), 2);
        r.finish();
        assert!(r.is_clean());
        assert!(r
            .render()
            .starts_with("webiq-lint: 0 violation(s), 2 suppression(s)"));
    }
}
