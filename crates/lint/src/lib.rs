//! `webiq-lint` — the workspace's own static-analysis pass.
//!
//! A deterministic, dependency-free lint over every Rust source file in
//! the workspace, built on a lightweight token lexer (no full parser).
//! It enforces the three invariant families WebIQ's reproduction
//! guarantees rest on:
//!
//! * **panic-freedom** — library code in the pipeline crates must not
//!   `unwrap`/`expect`/`panic!` or do underflow-prone index arithmetic;
//! * **determinism** — no wall-clock reads outside bench/timing code, no
//!   environment reads outside the config plumbing, and no unordered
//!   `HashMap`/`HashSet` iteration in modules tagged
//!   `// lint:deterministic`;
//! * **hygiene** — every crate root carries `#![forbid(unsafe_code)]`
//!   and a crate-level doc comment.
//!
//! Violations render as `file:line:col rule-id message`, sorted, so the
//! report is byte-identical across runs. `// lint:allow(rule-id) reason`
//! suppresses a finding on its own or the following line; the reason is
//! mandatory and every honoured suppression is counted in the summary.
//!
//! Run with `cargo run -p webiq-lint`; see DESIGN.md §10 for the rule
//! catalogue.
#![forbid(unsafe_code)]

pub mod flow;
pub mod graph;
pub mod lexer;
pub mod parse;
pub mod report;
pub mod rules;
pub mod walk;

use std::io;
use std::path::Path;

pub use flow::{flow_workspace, FlowReport};
pub use report::{LintReport, Violation};
pub use rules::{Scope, SourceFile, RULES};

/// Lint every workspace source file under `root` with the default
/// [`Scope`]. The returned report is finished (sorted) and ready to
/// render.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let files = walk::workspace_sources(root)?;
    Ok(lint_files(&files, &Scope::default()))
}

/// Lint an explicit set of classified files.
pub fn lint_files(files: &[SourceFile], scope: &Scope) -> LintReport {
    let mut report = LintReport::default();
    for f in files {
        let outcome = rules::lint_source(f, scope);
        report.absorb(outcome.violations, outcome.suppressed);
    }
    report.finish();
    report
}
