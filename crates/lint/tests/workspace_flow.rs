//! The tier-1 flow gate: the workspace's own call graph must certify
//! every library crate panic-free with zero unsuppressed flow
//! violations, the JSON report must be byte-identical across runs and
//! match the committed `FLOW_BASELINE.json`, and the baseline
//! comparison must catch injected regressions.

use std::path::Path;
use std::process::Command;

use webiq_lint::flow::{self, CERTIFIED_CRATES};
use webiq_lint::walk;

fn workspace_root() -> std::path::PathBuf {
    walk::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/lint")
}

#[test]
fn workspace_flow_is_clean() {
    let report = flow::flow_workspace(&workspace_root()).expect("flow analysis");
    assert!(
        report.violations.is_empty(),
        "zero unsuppressed flow violations expected:\n{}",
        report.render_text()
    );
    assert_eq!(
        report.certificates.len(),
        CERTIFIED_CRATES.len(),
        "one certificate per certified crate"
    );
    for c in &report.certificates {
        assert!(
            c.panic_free,
            "crate `{}` lost its panic certificate",
            c.krate
        );
        assert!(
            c.public_apis > 0,
            "crate `{}` has no public APIs — roots are not being found",
            c.krate
        );
    }
    // the graph is real: over a thousand fns and thousands of edges
    assert!(report.stats.functions > 1000, "{:?}", report.stats);
    assert!(report.stats.edges > 1000, "{:?}", report.stats);
}

#[test]
fn flow_report_is_byte_identical_and_matches_baseline() {
    let root = workspace_root();
    let a = flow::flow_workspace(&root).expect("first run");
    let b = flow::flow_workspace(&root).expect("second run");
    assert_eq!(
        a.render_json(),
        b.render_json(),
        "reruns must be byte-identical"
    );

    let baseline =
        std::fs::read_to_string(root.join("FLOW_BASELINE.json")).expect("committed baseline");
    let regressions = flow::compare_baseline(&baseline, &a);
    assert!(
        regressions.is_empty(),
        "report regressed against FLOW_BASELINE.json: {regressions:?}\n\
         (re-generate with `cargo run -p webiq-lint -- --flow --flow-json FLOW_BASELINE.json`)"
    );
}

#[test]
fn baseline_comparison_catches_injected_regressions() {
    let root = workspace_root();
    let baseline =
        std::fs::read_to_string(root.join("FLOW_BASELINE.json")).expect("committed baseline");
    let mut doctored = flow::flow_workspace(&root).expect("flow analysis");

    // inject a violation and flip a certificate, as a bad PR would
    doctored.violations.push(flow::FlowViolation {
        file: "crates/core/src/lib.rs".into(),
        line: 1,
        col: 1,
        rule: "flow-panic",
        msg: "injected regression".into(),
    });
    if let Some(c) = doctored.certificates.first_mut() {
        c.panic_free = false;
    }

    let regressions = flow::compare_baseline(&baseline, &doctored);
    assert!(
        regressions.iter().any(|r| r.starts_with("new violation")),
        "injected violation must be caught: {regressions:?}"
    );
    assert!(
        regressions
            .iter()
            .any(|r| r.starts_with("certificate regression")),
        "injected certificate flip must be caught: {regressions:?}"
    );
}

#[test]
fn binary_flow_gate_fails_on_regressed_workspace() {
    // A fake workspace whose one certified-crate API transitively
    // panics, checked against a baseline that claims it is clean: the
    // --flow-baseline gate must exit non-zero and name the regression.
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("webiq-flow-dirty");
    let src = dir.join("crates/core/src");
    std::fs::create_dir_all(&src).expect("create fake workspace");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("manifest");
    std::fs::write(
        src.join("lib.rs"),
        "//! Fake crate.\npub fn f(x: Option<u32>) -> u32 { g(x) }\nfn g(x: Option<u32>) -> u32 { x.unwrap() }\n",
    )
    .expect("dirty source");
    let clean_baseline = "{\n  \"certificates\": [\n    {\"crate\": \"core\", \"publicApis\": 1, \"panicFree\": true}\n  ],\n  \"results\": [\n  ]\n}\n";
    let baseline_path = dir.join("FLOW_BASELINE.json");
    std::fs::write(&baseline_path, clean_baseline).expect("baseline");

    let out = Command::new(env!("CARGO_BIN_EXE_webiq-lint"))
        .arg("--flow")
        .arg("--flow-baseline")
        .arg(&baseline_path)
        .arg(&dir)
        .output()
        .expect("run webiq-lint --flow");
    assert!(
        !out.status.success(),
        "regressed workspace must fail the gate"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("flow regression"),
        "gate names the regression:\n{stderr}"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("flow-panic"),
        "report names the rule:\n{stdout}"
    );

    // and the same workspace passes against a matching baseline
    let report_path = dir.join("report.json");
    let gen = Command::new(env!("CARGO_BIN_EXE_webiq-lint"))
        .arg("--flow")
        .arg("--flow-json")
        .arg(&report_path)
        .arg(&dir)
        .output()
        .expect("generate report");
    assert!(!gen.status.success(), "violations still exit non-zero");
    let regen = std::fs::read_to_string(&report_path).expect("report written");
    std::fs::write(&baseline_path, regen).expect("refresh baseline");
    let ok = Command::new(env!("CARGO_BIN_EXE_webiq-lint"))
        .arg("--flow")
        .arg("--flow-baseline")
        .arg(&baseline_path)
        .arg(&dir)
        .output()
        .expect("run against refreshed baseline");
    assert!(
        ok.status.success(),
        "matching baseline must pass: {}",
        String::from_utf8_lossy(&ok.stderr)
    );
}
