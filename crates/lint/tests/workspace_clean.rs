//! The tier-1 gate: the workspace itself must lint clean, the report must
//! be byte-identical across runs, and the binary must exit non-zero on a
//! workspace with violations.

use std::path::Path;
use std::process::Command;

use webiq_lint::{lint_workspace, walk};

fn workspace_root() -> std::path::PathBuf {
    walk::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/lint")
}

#[test]
fn workspace_is_clean() {
    let report = lint_workspace(&workspace_root()).expect("walk workspace");
    assert!(
        report.is_clean(),
        "workspace must lint clean:\n{}",
        report.render()
    );
    assert!(
        report.files_checked >= 80,
        "walker found suspiciously few files: {}",
        report.files_checked
    );
    assert!(report.suppressed >= 1, "the audited allows must be counted");
}

#[test]
fn report_is_byte_identical_across_runs() {
    let root = workspace_root();
    let a = lint_workspace(&root).expect("first run");
    let b = lint_workspace(&root).expect("second run");
    assert_eq!(a.render(), b.render());
}

#[test]
fn binary_exits_nonzero_on_dirty_workspace() {
    // Assemble a minimal fake workspace whose one library file violates
    // the panic-freedom rules, then run the real binary against it.
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("webiq-lint-dirty");
    let src = dir.join("crates/core/src");
    std::fs::create_dir_all(&src).expect("create fake workspace");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("manifest");
    std::fs::write(
        src.join("lib.rs"),
        "//! Fake crate.\n#![forbid(unsafe_code)]\npub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    )
    .expect("dirty source");

    let out = Command::new(env!("CARGO_BIN_EXE_webiq-lint"))
        .arg(&dir)
        .output()
        .expect("run webiq-lint");
    assert!(!out.status.success(), "dirty workspace must fail the lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("no-unwrap"),
        "report names the rule:\n{stdout}"
    );
    assert!(
        stdout.contains("crates/core/src/lib.rs:3:"),
        "report names the site:\n{stdout}"
    );
}

#[test]
fn binary_lists_rules() {
    let out = Command::new(env!("CARGO_BIN_EXE_webiq-lint"))
        .arg("--rules")
        .output()
        .expect("run webiq-lint --rules");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in ["no-unwrap", "hash-iter", "forbid-unsafe", "bad-allow"] {
        assert!(stdout.contains(rule), "missing {rule}:\n{stdout}");
    }
}
