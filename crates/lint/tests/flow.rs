//! Fixture tests for the flow analyzer: the parser/call-graph must
//! detect a known ABBA deadlock, a transitively panic-reachable public
//! API, and taint flowing through a helper into a trace sink — each
//! with deterministic `file:line:col` output.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use webiq_lint::flow::{self, FlowReport};
use webiq_lint::{Scope, SourceFile};

/// Load a fixture file as a classified workspace source.
fn fixture(name: &str, rel: &str, krate: &str) -> SourceFile {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/flow")
        .join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    SourceFile {
        rel: rel.to_string(),
        crate_name: krate.to_string(),
        file_name: rel.rsplit('/').next().unwrap_or("").to_string(),
        is_crate_root: rel.ends_with("lib.rs"),
        is_bin: false,
        text,
    }
}

/// Every fixture crate sees every other (the closures are tiny).
fn closure_all(crates: &[&str]) -> BTreeMap<String, BTreeSet<String>> {
    let all: BTreeSet<String> = crates.iter().map(|c| (*c).to_string()).collect();
    crates
        .iter()
        .map(|c| ((*c).to_string(), all.clone()))
        .collect()
}

fn analyze(files: &[SourceFile], crates: &[&str]) -> FlowReport {
    flow::analyze_files(files, &closure_all(crates), &Scope::default())
}

#[test]
fn known_deadlock_fixture_is_detected() {
    let files = vec![fixture("deadlock.rs", "crates/web/src/deadlock.rs", "web")];
    let r = analyze(&files, &["web"]);

    let lock: Vec<_> = r
        .violations
        .iter()
        .filter(|v| v.rule == "flow-lock")
        .collect();
    assert!(
        lock.iter()
            .any(|v| v.msg.contains("inconsistent lock order")
                && v.msg.contains("`Pair.a`")
                && v.msg.contains("`Pair.b`")),
        "ABBA inversion between Pair.a and Pair.b must be reported: {lock:?}"
    );
    assert!(
        lock.iter()
            .any(|v| v.msg.contains("nested acquisition of lock class `Pair.a`")),
        "same-class nested acquisition must be reported: {lock:?}"
    );
    // deterministic file:line:col — the second acquisitions of ab/ba and
    // the nested re-acquisition, at the `lock` identifier
    for line in [14, 20, 26] {
        assert!(
            lock.iter()
                .any(|v| v.file == "crates/web/src/deadlock.rs" && v.line == line && v.col > 0),
            "expected a flow-lock finding on line {line}: {lock:?}"
        );
    }
}

#[test]
fn panic_reachable_fixture_breaks_certification() {
    let files = vec![fixture(
        "panic_reach.rs",
        "crates/core/src/panic_reach.rs",
        "core",
    )];
    let r = analyze(&files, &["core"]);

    let cert = r
        .certificates
        .iter()
        .find(|c| c.krate == "core")
        .expect("core certificate");
    assert!(
        !cert.panic_free,
        "entry -> middle -> inner -> unwrap must decertify core"
    );
    assert_eq!(cert.public_apis, 1);

    let v = r
        .violations
        .iter()
        .find(|v| v.rule == "flow-panic")
        .expect("flow-panic violation");
    // reported at the public root, with the witness path and the site
    assert_eq!(v.file, "crates/core/src/panic_reach.rs");
    assert_eq!(v.line, 4, "the violation anchors at `pub fn entry`");
    assert!(v.col > 0);
    assert!(
        v.msg.contains("entry -> middle -> inner"),
        "witness path must be rendered: {}",
        v.msg
    );
    assert!(
        v.msg.contains("crates/core/src/panic_reach.rs:13:"),
        "the panic site's file:line must be named: {}",
        v.msg
    );
}

#[test]
fn taint_through_helper_reaches_trace_sink() {
    let files = vec![
        fixture("taint_helper.rs", "crates/core/src/taint_helper.rs", "core"),
        fixture("trace_sink.rs", "crates/trace/src/lib.rs", "trace"),
    ];
    let r = analyze(&files, &["core", "trace"]);

    let v = r
        .violations
        .iter()
        .find(|v| v.rule == "flow-taint")
        .expect("flow-taint violation");
    assert_eq!(v.file, "crates/core/src/taint_helper.rs");
    assert_eq!(
        v.line, 6,
        "the violation anchors at the tainted `pub fn emit`"
    );
    assert!(v.col > 0);
    assert!(
        v.msg.contains("Tracer::add"),
        "the sink must be named: {}",
        v.msg
    );
    assert!(
        v.msg.contains("crates/core/src/taint_helper.rs:13:"),
        "the source site inside the helper must be named: {}",
        v.msg
    );
}

#[test]
fn suppressed_source_quiets_the_taint_fixture() {
    let mut files = vec![
        fixture("taint_helper.rs", "crates/core/src/taint_helper.rs", "core"),
        fixture("trace_sink.rs", "crates/trace/src/lib.rs", "trace"),
    ];
    // sanction the source the way production code would
    files[0].text = files[0].text.replace(
        "    for k in m.keys() {",
        "    // lint:allow(hash-iter) fixture: order re-sorted by the caller\n    for k in m.keys() {",
    );
    let r = analyze(&files, &["core", "trace"]);
    assert!(
        !r.violations.iter().any(|v| v.rule == "flow-taint"),
        "an audited allow on the source must clear the taint: {:?}",
        r.violations
    );
}

#[test]
fn fixture_reports_are_deterministic() {
    let files = vec![
        fixture("deadlock.rs", "crates/web/src/deadlock.rs", "web"),
        fixture("panic_reach.rs", "crates/core/src/panic_reach.rs", "core"),
        fixture("taint_helper.rs", "crates/core/src/taint_helper.rs", "core"),
        fixture("trace_sink.rs", "crates/trace/src/lib.rs", "trace"),
    ];
    let crates = ["web", "core", "trace"];
    let a = analyze(&files, &crates);
    let b = analyze(&files, &crates);
    assert_eq!(a.render_json(), b.render_json());
    assert_eq!(a.render_text(), b.render_text());
    // and all three rules fire somewhere in the combined run
    for rule in ["flow-lock", "flow-panic", "flow-taint"] {
        assert!(
            a.violations.iter().any(|v| v.rule == rule),
            "{rule} must fire on the combined fixture set"
        );
    }
}
