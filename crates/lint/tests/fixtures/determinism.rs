//! Fixture: determinism rules — wall clock, env reads, and unordered
//! hash iteration in a tagged module.
//! Expected: wall-clock x1, env-read x1, hash-iter x1.

// lint:deterministic

use std::collections::HashMap;

pub fn wall() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn threads() -> Option<String> {
    std::env::var("WEBIQ_THREADS").ok()
}

pub fn leak_order(m: &HashMap<String, u32>) -> Vec<String> {
    let mut out = Vec::new();
    for k in m.keys() {
        out.push(k.clone());
    }
    out
}

pub fn re_sorted(m: &HashMap<String, u32>) -> Vec<String> {
    m.keys().cloned().collect::<std::collections::BTreeSet<_>>().into_iter().collect()
}
