// Fixture for the trace-hygiene rule: discarded span guards. Never
// compiled — only lexed by the linter.

fn discarded() {
    let _ = webiq_trace::span("surface"); // closes immediately: flagged
    expensive_work();
}

fn discarded_scope(tracer: &Tracer) {
    let _ = tracer.scope("acquire", "book"); // flagged
}

fn held() {
    let _span = webiq_trace::span_attr("attribute", "Title"); // fine
    expensive_work();
}

fn unrelated_discard() {
    let _ = compute_and_log(); // fine: not a guard constructor
}
