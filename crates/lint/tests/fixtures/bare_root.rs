pub fn nothing() {}
