//! Fixture: `#[cfg(test)]` code may panic freely.
//! Expected: clean.

pub fn fine(xs: &[u32]) -> u32 {
    xs.first().copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panics_are_fine_here() {
        let v = vec![1u32, 2];
        assert_eq!(*v.first().unwrap(), 1);
        assert_eq!(*v.get(1).expect("present"), 2);
        assert_eq!(fine(&v), 1);
        assert_eq!(v[v.len() - 1], 2);
    }
}
