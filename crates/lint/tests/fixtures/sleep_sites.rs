//! Fixture: the no-sleep rule — real-time blocking in library code.
//! Expected: no-sleep x3, one honoured suppression, nothing else.

pub fn nap(d: std::time::Duration) {
    std::thread::sleep(d);
}

pub fn drain(rx: &std::sync::mpsc::Receiver<u32>, d: std::time::Duration) -> Option<u32> {
    rx.recv_timeout(d).ok()
}

pub fn park(d: std::time::Duration) {
    std::thread::park_timeout(d);
}

pub fn sanctioned(d: std::time::Duration) {
    // lint:allow(no-sleep) opt-in latency simulation: models the network itself
    std::thread::sleep(d);
}

pub fn virtual_wait(clock: &VirtualClock, ms: u64) {
    clock.advance_ms(ms);
}
