//! Fixture: malformed allows are themselves violations and suppress
//! nothing. Expected: bad-allow x2, no-unwrap x2, zero suppressions.

pub fn reasonless(xs: &[u32]) -> u32 {
    // lint:allow(no-unwrap)
    *xs.first().unwrap()
}

pub fn unknown_rule(xs: &[u32]) -> u32 {
    // lint:allow(not-a-rule) the rule id does not exist
    *xs.first().unwrap()
}
