//! Fixture: violations silenced by well-formed `lint:allow` directives.
//! Expected: clean, with two honoured suppressions.

pub fn timed() -> f64 {
    // lint:allow(wall-clock) fixture models a report-only timing read
    let t0 = std::time::Instant::now();
    t0.elapsed().as_secs_f64()
}

pub fn last(xs: &[u32]) -> u32 {
    // lint:allow(slice-arith) caller guarantees xs is non-empty
    xs[xs.len() - 1]
}
