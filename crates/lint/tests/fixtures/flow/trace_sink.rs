//! Fixture: a stand-in trace emission sink for the taint fixture
//! (classified as crate `trace` by the test harness).
pub struct Tracer;

impl Tracer {
    pub fn add(&self, name: &str, v: u64) {
        let _ = (name, v);
    }
}
