//! Fixture: lock-order hazards the flow pass must detect — an ABBA
//! inversion between two lock classes and a same-class nested
//! acquisition. Never compiled into the crate; parsed by tests/flow.rs.
use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn ab(&self) -> u32 {
        let ga = self.a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let gb = self.b.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *ga + *gb
    }

    pub fn ba(&self) -> u32 {
        let gb = self.b.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let ga = self.a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *ga + *gb
    }

    pub fn nested(&self) -> u32 {
        let g1 = self.a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let g2 = self.a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *g1 + *g2
    }
}
