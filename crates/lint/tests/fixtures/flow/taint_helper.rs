//! Fixture: a nondeterministic source (unsorted HashMap iteration)
//! hidden inside a private helper, whose tainted caller emits through a
//! trace sink. The taint must propagate through the helper boundary.
use std::collections::HashMap;

pub fn emit(t: &Tracer, m: &HashMap<String, u32>) {
    let keys = unstable_keys(m);
    t.add("keys", keys.len() as u64);
}

fn unstable_keys(m: &HashMap<String, u32>) -> Vec<String> {
    let mut out = Vec::new();
    for k in m.keys() {
        out.push(k.clone());
    }
    out
}
