//! Fixture: a public API that reaches a panic site only transitively,
//! through two private helpers — invisible to the lexical no-unwrap
//! rule's caller, but provable on the call graph.
pub fn entry(x: Option<u32>) -> u32 {
    middle(x)
}

fn middle(x: Option<u32>) -> u32 {
    inner(x)
}

fn inner(x: Option<u32>) -> u32 {
    x.unwrap()
}
