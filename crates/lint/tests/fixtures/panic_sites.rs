//! Fixture: panic-freedom violations in non-test library code.
//! Expected: no-unwrap x1, no-expect x1, no-panic x2, slice-arith x1.

pub fn bad(xs: &[u32]) -> u32 {
    let first = xs.first().unwrap();
    let second = xs.get(1).expect("second element");
    if *first > *second {
        panic!("out of order");
    }
    let n = xs.len();
    xs[n - 1]
}

pub fn worse() -> u32 {
    unreachable!()
}
