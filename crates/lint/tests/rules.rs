//! Fixture-driven integration tests: each rule family exercised end to
//! end through `lint_files`, using the sources under `tests/fixtures/`.

use webiq_lint::{lint_files, LintReport, Scope, SourceFile};

/// Wrap fixture text as a non-root library file of the `core` crate (in
/// panic scope, not wall-clock/env exempt).
fn lib_file(name: &str, text: &str) -> SourceFile {
    SourceFile {
        rel: format!("crates/core/src/{name}"),
        crate_name: "core".into(),
        file_name: name.into(),
        is_crate_root: false,
        is_bin: false,
        text: text.into(),
    }
}

fn lint_one(f: &SourceFile) -> LintReport {
    lint_files(std::slice::from_ref(f), &Scope::default())
}

fn count(report: &LintReport, rule: &str) -> usize {
    report.violations.iter().filter(|v| v.rule == rule).count()
}

#[test]
fn panic_freedom_rules_fire_in_library_code() {
    let f = lib_file("panic_sites.rs", include_str!("fixtures/panic_sites.rs"));
    let r = lint_one(&f);
    assert_eq!(count(&r, "no-unwrap"), 1, "\n{}", r.render());
    assert_eq!(count(&r, "no-expect"), 1, "\n{}", r.render());
    assert_eq!(count(&r, "no-panic"), 2, "\n{}", r.render());
    assert_eq!(count(&r, "slice-arith"), 1, "\n{}", r.render());
    assert_eq!(r.violations.len(), 5, "\n{}", r.render());
    assert_eq!(r.suppressed, 0);
}

#[test]
fn panic_freedom_rules_skip_binaries() {
    let mut f = lib_file("panic_sites.rs", include_str!("fixtures/panic_sites.rs"));
    f.is_bin = true;
    let r = lint_one(&f);
    assert!(r.is_clean(), "binaries are exempt:\n{}", r.render());
}

#[test]
fn panic_freedom_rules_skip_out_of_scope_crates() {
    let mut f = lib_file("panic_sites.rs", include_str!("fixtures/panic_sites.rs"));
    f.crate_name = "rng".into();
    f.rel = "crates/rng/src/panic_sites.rs".into();
    let r = lint_one(&f);
    assert!(r.is_clean(), "rng is out of panic scope:\n{}", r.render());
}

#[test]
fn well_formed_allows_suppress_and_are_counted() {
    let f = lib_file("suppressed.rs", include_str!("fixtures/suppressed.rs"));
    let r = lint_one(&f);
    assert!(r.is_clean(), "\n{}", r.render());
    assert_eq!(r.suppressed, 2);
}

#[test]
fn cfg_test_code_is_exempt() {
    let f = lib_file("test_exempt.rs", include_str!("fixtures/test_exempt.rs"));
    let r = lint_one(&f);
    assert!(r.is_clean(), "\n{}", r.render());
    assert_eq!(r.suppressed, 0);
}

#[test]
fn malformed_allows_are_rejected_and_suppress_nothing() {
    let f = lib_file(
        "missing_reason.rs",
        include_str!("fixtures/missing_reason.rs"),
    );
    let r = lint_one(&f);
    assert_eq!(count(&r, "bad-allow"), 2, "\n{}", r.render());
    assert_eq!(
        count(&r, "no-unwrap"),
        2,
        "underlying violations survive:\n{}",
        r.render()
    );
    assert_eq!(r.suppressed, 0);
}

#[test]
fn determinism_rules_fire_in_tagged_module() {
    let f = lib_file("determinism.rs", include_str!("fixtures/determinism.rs"));
    let r = lint_one(&f);
    assert_eq!(count(&r, "wall-clock"), 1, "\n{}", r.render());
    assert_eq!(count(&r, "env-read"), 1, "\n{}", r.render());
    assert_eq!(
        count(&r, "hash-iter"),
        1,
        "re-sorted iteration is sanctioned:\n{}",
        r.render()
    );
    assert_eq!(r.violations.len(), 3, "\n{}", r.render());
}

#[test]
fn no_sleep_flags_real_time_blocking_in_library_code() {
    let f = lib_file("sleep_sites.rs", include_str!("fixtures/sleep_sites.rs"));
    let r = lint_one(&f);
    assert_eq!(count(&r, "no-sleep"), 3, "\n{}", r.render());
    assert_eq!(r.violations.len(), 3, "\n{}", r.render());
    assert_eq!(r.suppressed, 1, "the allowed sleep is suppressed");
}

#[test]
fn no_sleep_exempts_virtual_clock_timing_and_bench() {
    let text = include_str!("fixtures/sleep_sites.rs");
    let mut clock = lib_file("clock.rs", text);
    clock.rel = "crates/fault/src/clock.rs".into();
    clock.crate_name = "fault".into();
    let r = lint_one(&clock);
    assert!(r.is_clean(), "the clock module may sleep:\n{}", r.render());

    let mut timing = lib_file("timing.rs", text);
    timing.rel = "crates/trace/src/timing.rs".into();
    timing.crate_name = "trace".into();
    let r = lint_one(&timing);
    assert!(r.is_clean(), "timing.rs may sleep:\n{}", r.render());

    let mut bench = lib_file("harness.rs", text);
    bench.rel = "crates/bench/src/harness.rs".into();
    bench.crate_name = "bench".into();
    let r = lint_one(&bench);
    assert!(r.is_clean(), "bench crates may sleep:\n{}", r.render());
}

#[test]
fn trace_hygiene_flags_discarded_guards() {
    let f = lib_file(
        "trace_hygiene.rs",
        include_str!("fixtures/trace_hygiene.rs"),
    );
    let r = lint_one(&f);
    assert_eq!(count(&r, "trace-hygiene"), 2, "\n{}", r.render());
    assert_eq!(r.violations.len(), 2, "\n{}", r.render());
}

#[test]
fn trace_hygiene_confines_wall_clock_types_to_timing() {
    let text = "use std::time::{Instant, SystemTime};\nfn f() {}\n";
    let mut f = lib_file("sink.rs", text);
    f.rel = "crates/trace/src/sink.rs".into();
    f.crate_name = "trace".into();
    let r = lint_one(&f);
    assert_eq!(count(&r, "trace-hygiene"), 2, "\n{}", r.render());

    let mut timing = lib_file("timing.rs", text);
    timing.rel = "crates/trace/src/timing.rs".into();
    timing.crate_name = "trace".into();
    let r = lint_one(&timing);
    assert!(r.is_clean(), "timing.rs is sanctioned:\n{}", r.render());
}

#[test]
fn hygiene_rules_fire_only_on_crate_roots() {
    let text = include_str!("fixtures/bare_root.rs");
    let as_module = lib_file("bare_root.rs", text);
    let r = lint_one(&as_module);
    assert!(
        r.is_clean(),
        "modules need no root hygiene:\n{}",
        r.render()
    );

    let mut as_root = lib_file("lib.rs", text);
    as_root.rel = "crates/core/src/lib.rs".into();
    as_root.is_crate_root = true;
    let r = lint_one(&as_root);
    assert_eq!(count(&r, "forbid-unsafe"), 1, "\n{}", r.render());
    assert_eq!(count(&r, "crate-doc"), 1, "\n{}", r.render());
}

#[test]
fn report_positions_point_at_the_offending_token() {
    let f = lib_file("panic_sites.rs", include_str!("fixtures/panic_sites.rs"));
    let r = lint_one(&f);
    let unwrap = r
        .violations
        .iter()
        .find(|v| v.rule == "no-unwrap")
        .expect("unwrap violation present");
    assert_eq!(unwrap.file, "crates/core/src/panic_sites.rs");
    assert_eq!(unwrap.line, 5);
    assert!(unwrap.col > 1);
}
