//! The live metrics registry the pipeline publishes into.
//!
//! [`LiveRegistry`] is the bridge between the acquisition pipeline's
//! deterministic merge loop and the `/metrics` endpoint: as each work
//! item's thread-local delta is merged (in attribute order), the loop
//! also calls [`LiveRegistry::publish_item`]; at each epoch boundary it
//! calls [`LiveRegistry::end_epoch`]. Because the registry only ever
//! sees those deterministic deltas — never raw worker-thread or engine
//! cache state — a scrape taken after a run completes is byte-identical
//! at any worker count.
//!
//! Counters live in a lock-free [`SharedMetrics`]; gauges, histograms,
//! and the sliding window sit behind one mutex taken only on publish and
//! scrape (both far off the per-query hot path — the `obs_overhead`
//! bench pins the publish cost under 1% of acquisition wall-clock).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use webiq_trace::{Gauge, GaugeSet, HistSet, MetricSet, SharedMetrics};

use crate::prom;
use crate::window::WindowedMetrics;

/// Epochs a registry's sliding window spans by default.
pub const DEFAULT_WINDOW: usize = 8;

/// Recover a mutex guard even if a panicking thread poisoned the lock —
/// the registry stays scrapeable (this library never panics).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// State behind the registry's single mutex: everything that is not a
/// plain counter.
#[derive(Debug)]
struct Inner {
    gauges: GaugeSet,
    hists: HistSet,
    window: WindowedMetrics,
    epochs: u64,
}

/// Aggregated live metrics, fed by the pipeline and scraped by
/// [`crate::MetricsServer`].
#[derive(Debug)]
pub struct LiveRegistry {
    counters: SharedMetrics,
    items: AtomicU64,
    inner: Mutex<Inner>,
}

impl Default for LiveRegistry {
    fn default() -> Self {
        LiveRegistry::new()
    }
}

impl LiveRegistry {
    /// A registry with the [`DEFAULT_WINDOW`]-epoch sliding window.
    pub fn new() -> Self {
        LiveRegistry::with_window(DEFAULT_WINDOW)
    }

    /// A registry whose sliding window spans `window` epochs.
    pub fn with_window(window: usize) -> Self {
        LiveRegistry {
            counters: SharedMetrics::new(),
            items: AtomicU64::new(0),
            inner: Mutex::new(Inner {
                gauges: GaugeSet::new(),
                hists: HistSet::new(),
                window: WindowedMetrics::new(window),
                epochs: 0,
            }),
        }
    }

    /// Fold one completed work item's counter and histogram deltas into
    /// the registry. Called from the pipeline's merge loop, once per
    /// item, in deterministic order.
    pub fn publish_item(&self, counters: &MetricSet, hists: &HistSet) {
        self.counters.merge(counters);
        if hists != &HistSet::new() {
            lock(&self.inner).hists.merge(hists);
        }
        self.items.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a dataset-shape gauge (max-merged, like the tracer's).
    pub fn gauge(&self, g: Gauge, v: u64) {
        lock(&self.inner).gauges.set(g, v);
    }

    /// Mark an epoch boundary (one domain's acquisition finished): the
    /// current cumulative counters enter the sliding window.
    pub fn end_epoch(&self) {
        let snap = self.counters.snapshot();
        let mut inner = lock(&self.inner);
        inner.window.push(snap);
        inner.epochs = inner.epochs.saturating_add(1);
    }

    /// Work items published so far.
    pub fn items(&self) -> u64 {
        self.items.load(Ordering::Relaxed)
    }

    /// A coherent copy of everything the registry holds.
    pub fn snapshot(&self) -> RegistrySnapshot {
        // Counters first: a concurrent publish between the two reads can
        // only make counters *older* than the locked state, never ahead
        // of histograms they belong with after the run has quiesced.
        let counters = self.counters.snapshot();
        let items = self.items();
        let inner = lock(&self.inner);
        RegistrySnapshot {
            counters,
            gauges: inner.gauges,
            hists: inner.hists,
            window_delta: inner.window.delta(),
            window_epochs: inner.window.len(),
            epochs: inner.epochs,
            items,
        }
    }

    /// The registry rendered in Prometheus text exposition format.
    ///
    /// This render is a pure function of the published deltas — it is
    /// what deterministic artifacts (baselines, trace-diff inputs) must
    /// be built from.
    pub fn render(&self) -> String {
        prom::render(&self.snapshot())
    }

    /// [`render`](LiveRegistry::render) plus the process-wide profiling
    /// appendix (`webiq_prof_*` families from [`webiq_prof::snapshot`]).
    ///
    /// The appendix reports scheduling-dependent facts — lock
    /// contention, cache traffic, per-stage wall-clock — so this render
    /// is **not** deterministic across runs or thread counts. It is what
    /// the live `/metrics` endpoint serves; anything that needs
    /// byte-stable output must use [`render`](LiveRegistry::render) or
    /// strip the `webiq_prof_` families from a scrape.
    pub fn render_live(&self) -> String {
        let mut out = self.render();
        out.push_str(&webiq_prof::snapshot().render_prom());
        out
    }
}

/// A point-in-time copy of a [`LiveRegistry`], ready for rendering.
#[derive(Debug, Clone)]
pub struct RegistrySnapshot {
    /// Cumulative counters.
    pub counters: MetricSet,
    /// Dataset-shape gauges (max-merged).
    pub gauges: GaugeSet,
    /// Cumulative histograms.
    pub hists: HistSet,
    /// Counter deltas across the sliding window.
    pub window_delta: MetricSet,
    /// Epochs the window currently covers.
    pub window_epochs: usize,
    /// Epoch boundaries seen over the registry's lifetime.
    pub epochs: u64,
    /// Work items published.
    pub items: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use webiq_trace::{Counter, HistKey};

    #[test]
    fn publish_accumulates_counters_hists_and_items() {
        let reg = LiveRegistry::new();
        let mut m = MetricSet::new();
        m.add(Counter::ProbesIssued, 3);
        let mut h = HistSet::new();
        h.observe(HistKey::ProbesPerAttr, 3);
        reg.publish_item(&m, &h);
        reg.publish_item(&m, &HistSet::new());
        let snap = reg.snapshot();
        assert_eq!(snap.counters.get(Counter::ProbesIssued), 6);
        assert_eq!(snap.hists.count(HistKey::ProbesPerAttr), 1);
        assert_eq!(snap.items, 2);
    }

    #[test]
    fn gauges_max_merge() {
        let reg = LiveRegistry::new();
        reg.gauge(Gauge::Interfaces, 5);
        reg.gauge(Gauge::Interfaces, 3);
        assert_eq!(reg.snapshot().gauges.get(Gauge::Interfaces), 5);
    }

    #[test]
    fn epochs_feed_the_window() {
        let reg = LiveRegistry::with_window(2);
        let mut m = MetricSet::new();
        m.add(Counter::AttrsTotal, 4);
        reg.publish_item(&m, &HistSet::new());
        reg.end_epoch();
        reg.publish_item(&m, &HistSet::new());
        reg.end_epoch();
        let snap = reg.snapshot();
        assert_eq!(snap.epochs, 2);
        assert_eq!(snap.window_epochs, 2);
        assert_eq!(snap.window_delta.get(Counter::AttrsTotal), 8);
    }
}
