//! Performance attribution and scaling diagnosis over a profile sweep.
//!
//! `experiments profile` runs the acquisition pipeline at several worker
//! counts and records, per point, the wall-clock and a
//! [`ProfSnapshot`] of the process-wide profiling registry. That sweep
//! lands in `PROF_BASELINE.json`; this module is the read side:
//!
//! - [`parse_baseline`] parses the file (hand-rolled JSON, like every
//!   serializer in the dependency-free workspace) into a
//!   [`ProfBaseline`];
//! - [`ScalingFit::fit`] fits the measured speedups with Amdahl's law
//!   (average implied serial fraction) and the Universal Scalability
//!   Law (deterministic grid search over σ/κ), then names the
//!   **dominant scaling limiter** — serial fraction, lock contention,
//!   or worker load imbalance, whichever measured magnitude is largest;
//! - [`render_profile`] renders the deterministic report `webiq-report
//!   profile` prints: a stage-tree attribution table (calls, seconds,
//!   share of wall-clock), cache hit rates, lock contention, worker
//!   balance, and the scaling fit.
//!
//! Everything here is a pure function of the baseline file, so the
//! report is byte-identical across reruns — the wall-clock
//! nondeterminism is confined to the numbers *inside* the file, which
//! is exactly what a diagnosis artifact should preserve.

use webiq_prof::{ProfCounter, ProfSnapshot, Stage};

use crate::error::ObsError;

/// One point of a thread-count sweep: how many workers ran, how long
/// the run took, and what the profiling registry accumulated.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Worker threads the point ran with.
    pub threads: u64,
    /// Wall-clock of the measured run, in seconds.
    pub wall_secs: f64,
    /// Profiling registry delta for the run.
    pub prof: ProfSnapshot,
}

/// A parsed `PROF_BASELINE.json`: sweep points sorted by thread count,
/// plus the run's provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfBaseline {
    /// Where the baseline came from (path, or `-` for stdin).
    pub label: String,
    /// Seed the sweep ran with, when recorded.
    pub seed: Option<u64>,
    /// Domains the sweep acquired.
    pub domains: Vec<String>,
    /// Sweep points, ascending by `threads`.
    pub sweep: Vec<SweepPoint>,
}

/// Scaling-law fit over a sweep, and the diagnosis derived from it.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingFit {
    /// `(threads, speedup)` per point, speedup relative to the
    /// 1-thread point.
    pub speedups: Vec<(u64, f64)>,
    /// Amdahl serial fraction: each n > 1 point implies
    /// `s = (n/S − 1)/(n − 1)`; this is their average, clamped to
    /// `[0, 1]`.
    pub serial_fraction: f64,
    /// USL contention coefficient σ from the grid-search fit of
    /// `S(n) = n / (1 + σ(n−1) + κ·n(n−1))`.
    pub sigma: f64,
    /// USL coherence coefficient κ from the same fit.
    pub kappa: f64,
    /// Shard-lock contention ratio at the largest thread count.
    pub contention_ratio: f64,
    /// Worker load imbalance at the largest thread count.
    pub imbalance: f64,
    /// The dominant limiter: `serial-fraction`, `lock-contention`, or
    /// `load-imbalance` — whichever of the three measured magnitudes
    /// is largest.
    pub limiter: &'static str,
}

impl ScalingFit {
    /// Fit a sweep. Returns `None` without a 1-thread baseline point or
    /// with fewer than two distinct thread counts — there is no scaling
    /// to diagnose in a single point.
    pub fn fit(sweep: &[SweepPoint]) -> Option<ScalingFit> {
        let base = sweep.iter().find(|p| p.threads == 1)?;
        if base.wall_secs <= 0.0 {
            return None;
        }
        let mut points: Vec<&SweepPoint> = sweep.iter().filter(|p| p.wall_secs > 0.0).collect();
        points.sort_by_key(|p| p.threads);
        points.dedup_by_key(|p| p.threads);
        if points.len() < 2 {
            return None;
        }
        let speedups: Vec<(u64, f64)> = points
            .iter()
            .map(|p| (p.threads, base.wall_secs / p.wall_secs))
            .collect();

        // Amdahl: average the serial fraction implied by each n > 1
        // point. S(n) = 1/(s + (1−s)/n) ⇒ s = (n/S − 1)/(n − 1).
        let implied: Vec<f64> = speedups
            .iter()
            .filter(|&&(n, s)| n > 1 && s > 0.0)
            .map(|&(n, s)| ((n as f64 / s) - 1.0) / (n as f64 - 1.0))
            .collect();
        if implied.is_empty() {
            return None;
        }
        let serial_fraction = (implied.iter().sum::<f64>() / implied.len() as f64).clamp(0.0, 1.0);

        // USL: deterministic grid search minimising the sum of squared
        // speedup errors. σ steps of 0.005 over [0, 0.5], κ steps of
        // 0.0005 over [0, 0.05] — coarse, but a diagnosis gate needs a
        // stable verdict, not a publication-grade optimiser.
        let (mut best_sigma, mut best_kappa, mut best_sse) = (0.0f64, 0.0f64, f64::INFINITY);
        for si in 0..=100u32 {
            let sigma = f64::from(si) * 0.005;
            for ki in 0..=100u32 {
                let kappa = f64::from(ki) * 0.0005;
                let sse: f64 = speedups
                    .iter()
                    .map(|&(n, s)| {
                        let n = n as f64;
                        let model = n / (1.0 + sigma * (n - 1.0) + kappa * n * (n - 1.0));
                        (model - s) * (model - s)
                    })
                    .sum();
                if sse < best_sse {
                    best_sse = sse;
                    best_sigma = sigma;
                    best_kappa = kappa;
                }
            }
        }

        // Diagnose against the most parallel point: that is where the
        // limiter bites hardest.
        let top = points.last()?;
        let contention_ratio = top.prof.contention_ratio();
        let imbalance = top.prof.imbalance();
        let limiter = if serial_fraction >= contention_ratio && serial_fraction >= imbalance {
            "serial-fraction"
        } else if contention_ratio >= imbalance {
            "lock-contention"
        } else {
            "load-imbalance"
        };

        Some(ScalingFit {
            speedups,
            serial_fraction,
            sigma: best_sigma,
            kappa: best_kappa,
            contention_ratio,
            imbalance,
            limiter,
        })
    }
}

/// The stage attribution tree: `(stage, depth)` rows in render order.
/// Verify nests inside Extract and Probe inside Borrow, so child shares
/// are also part of their parent's — the table shows the tree rather
/// than pretending the stages tile the wall-clock. [`Stage::EngineQuery`]
/// is cross-cutting (inside whichever stage issued the query) and is
/// rendered separately.
const STAGE_TREE: [(Stage, usize); 6] = [
    (Stage::Extract, 0),
    (Stage::Verify, 1),
    (Stage::Borrow, 0),
    (Stage::Probe, 1),
    (Stage::Bayes, 0),
    (Stage::ClusterMerge, 0),
];

/// Render the full profile report for a parsed baseline. Pure function
/// of its input: byte-identical across reruns.
pub fn render_profile(b: &ProfBaseline) -> String {
    let mut out = String::new();
    out.push_str("webiq profile — stage attribution & scaling diagnosis\n");
    out.push_str(&format!("  source: {}\n", b.label));
    let threads: Vec<String> = b.sweep.iter().map(|p| p.threads.to_string()).collect();
    out.push_str(&format!(
        "  sweep:  {} thread(s), {} domain(s){}\n",
        if threads.is_empty() {
            "no".to_string()
        } else {
            threads.join("/")
        },
        b.domains.len(),
        match b.seed {
            Some(s) => format!(", seed {s}"),
            None => String::new(),
        }
    ));

    let Some(top) = b.sweep.last() else {
        out.push_str("\nempty sweep: nothing to attribute\n");
        return out;
    };
    out.push_str(&render_attribution(top));

    out.push_str("\nscaling:\n");
    match ScalingFit::fit(&b.sweep) {
        Some(fit) => out.push_str(&render_fit(&fit)),
        None => out.push_str(
            "  no fit: need a 1-thread baseline and at least two distinct thread counts\n",
        ),
    }
    out
}

/// The per-point attribution table: stage tree, caches, locks, workers.
fn render_attribution(p: &SweepPoint) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "\nattribution at {} thread(s) (wall {:.4}s):\n",
        p.threads, p.wall_secs
    ));
    out.push_str(&format!(
        "  {:<17} {:>8} {:>10} {:>7}\n",
        "stage", "calls", "secs", "share"
    ));
    for (stage, depth) in STAGE_TREE {
        out.push_str(&stage_row(p, stage, depth));
    }
    let engine = stage_row(p, Stage::EngineQuery, 0);
    out.push_str(engine.trim_end_matches('\n'));
    out.push_str("  (cross-cutting: inside issuing stages)\n");

    out.push_str("\ncaches:\n");
    for (label, hit, miss, evict) in [
        (
            "search_cache",
            ProfCounter::SearchCacheHit,
            ProfCounter::SearchCacheMiss,
            Some(ProfCounter::SearchCacheEvict),
        ),
        (
            "hit_cache",
            ProfCounter::HitCacheHit,
            ProfCounter::HitCacheMiss,
            None,
        ),
        (
            "parse_cache",
            ProfCounter::ParseCacheHit,
            ProfCounter::ParseCacheMiss,
            Some(ProfCounter::ParseCacheEvict),
        ),
    ] {
        let evictions = match evict {
            Some(e) => format!(", evictions {}", p.prof.get(e)),
            None => String::new(),
        };
        out.push_str(&format!(
            "  {:<13} hit {:>6.2}%  (hits {}, misses {}{})\n",
            label,
            p.prof.hit_rate(hit, miss) * 100.0,
            p.prof.get(hit),
            p.prof.get(miss),
            evictions
        ));
    }

    out.push_str(&format!(
        "\nlocks:\n  shard lock acquisitions {}, contended {} (contention {:.2}%)\n",
        p.prof.get(ProfCounter::ShardLockAcquire),
        p.prof.get(ProfCounter::ShardLockContended),
        p.prof.contention_ratio() * 100.0
    ));

    out.push_str(&format!(
        "\nworkers:\n  runs {}, items {} (max {}, imbalance {:.1}%), engine queries {} (max {})\n",
        p.prof.get(ProfCounter::WorkerRuns),
        p.prof.get(ProfCounter::WorkerItems),
        p.prof.get(ProfCounter::WorkerMaxItems),
        p.prof.imbalance() * 100.0,
        p.prof.get(ProfCounter::WorkerQueries),
        p.prof.get(ProfCounter::WorkerMaxQueries)
    ));
    out
}

/// One stage row of the attribution table.
fn stage_row(p: &SweepPoint, stage: Stage, depth: usize) -> String {
    let indent = "  ".repeat(depth);
    let secs = p.prof.stage_secs(stage);
    let share = if p.wall_secs > 0.0 {
        secs / p.wall_secs * 100.0
    } else {
        0.0
    };
    format!(
        "  {:<17} {:>8} {:>10.4} {:>6.1}%\n",
        format!("{indent}{}", stage.name()),
        p.prof.stage_calls(stage),
        secs,
        share
    )
}

/// The scaling table, fit coefficients, and verdict.
fn render_fit(fit: &ScalingFit) -> String {
    let mut out = String::new();
    out.push_str(&format!("  {:>7} {:>9}\n", "threads", "speedup"));
    for &(n, s) in &fit.speedups {
        out.push_str(&format!("  {n:>7} {s:>8.2}x\n"));
    }
    if let Some(&(n, s)) = fit.speedups.last() {
        out.push_str(&format!(
            "  at {n} threads: achieved {s:.2}x of ideal {n}x — lost {:.2}x\n",
            (n as f64 - s).max(0.0)
        ));
    }
    out.push_str(&format!(
        "  amdahl serial fraction: {:.1}%\n  usl fit: sigma={:.3} kappa={:.4}\n",
        fit.serial_fraction * 100.0,
        fit.sigma,
        fit.kappa
    ));
    out.push_str(&format!(
        "  dominant limiter: {} (serial {:.1}% vs contention {:.1}% vs imbalance {:.1}%)\n",
        fit.limiter,
        fit.serial_fraction * 100.0,
        fit.contention_ratio * 100.0,
        fit.imbalance * 100.0
    ));
    out
}

/// Parse a `PROF_BASELINE.json` document. `label` names the source in
/// errors and in the rendered report.
pub fn parse_baseline(label: &str, text: &str) -> Result<ProfBaseline, ObsError> {
    let root = Json::parse(text).map_err(|detail| perr(label, detail))?;
    let Some(sweep_json) = root.get("sweep").and_then(Json::as_arr) else {
        return Err(perr(label, "missing `sweep` array".to_string()));
    };
    let mut sweep = Vec::new();
    for (idx, p) in sweep_json.iter().enumerate() {
        let Some(threads) = p.get("threads").and_then(Json::as_u64) else {
            return Err(perr(label, format!("sweep[{idx}]: missing `threads`")));
        };
        let Some(wall_secs) = p
            .get("wall_secs")
            .and_then(Json::as_f64)
            .filter(|v| v.is_finite() && *v > 0.0)
        else {
            return Err(perr(
                label,
                format!("sweep[{idx}]: missing or non-positive `wall_secs`"),
            ));
        };
        let mut prof = ProfSnapshot::new();
        if let Some(entries) = p.get("counters").and_then(Json::entries) {
            for (name, v) in entries {
                // Unknown names and non-integer values are skipped, like
                // ProfSnapshot::from_prom_text — absent series stay zero.
                if let (Some(c), Some(v)) = (ProfCounter::from_name(name), v.as_u64()) {
                    prof.set(c, v);
                }
            }
        }
        if let Some(entries) = p.get("stages").and_then(Json::entries) {
            for (name, v) in entries {
                if let Some(stage) = Stage::from_name(name) {
                    let nanos = v.get("nanos").and_then(Json::as_u64).unwrap_or(0);
                    let calls = v.get("calls").and_then(Json::as_u64).unwrap_or(0);
                    prof.set_stage(stage, nanos, calls);
                }
            }
        }
        sweep.push(SweepPoint {
            threads,
            wall_secs,
            prof,
        });
    }
    sweep.sort_by_key(|p| p.threads);
    let domains = root
        .get("domains")
        .and_then(Json::as_arr)
        .map(|a| {
            a.iter()
                .filter_map(|d| d.as_str().map(str::to_string))
                .collect()
        })
        .unwrap_or_default();
    Ok(ProfBaseline {
        label: label.to_string(),
        seed: root.get("seed").and_then(Json::as_u64),
        domains,
        sweep,
    })
}

/// Read and parse a baseline file.
pub fn load_baseline(path: &str) -> Result<ProfBaseline, ObsError> {
    let text = std::fs::read_to_string(path).map_err(|e| ObsError::Io {
        path: path.to_string(),
        detail: e.to_string(),
    })?;
    parse_baseline(path, &text)
}

fn perr(label: &str, detail: String) -> ObsError {
    ObsError::Profile {
        path: label.to_string(),
        detail,
    }
}

/// A parsed JSON value — just enough of the grammar to read the
/// baseline files this workspace writes (no external parser in a
/// dependency-free workspace).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one complete JSON document (trailing whitespace allowed).
    fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            b: text.as_bytes(),
            i: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(p.err("trailing garbage"));
        }
        Ok(v)
    }

    /// Object field lookup (first match).
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// A number that is a whole non-negative integer (within f64's
    /// exactly-representable range — plenty for counters).
    fn as_u64(&self) -> Option<u64> {
        let v = self.as_f64()?;
        if v.is_finite() && v >= 0.0 && v.fract() == 0.0 && v <= 9.007_199_254_740_992e15 {
            Some(v as u64)
        } else {
            None
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    fn entries(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(e) => Some(e),
            _ => None,
        }
    }
}

/// Recursive-descent JSON parser over raw bytes.
struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.i)
    }

    fn skip_ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        let matches = self
            .b
            .get(self.i..)
            .is_some_and(|rest| rest.starts_with(word.as_bytes()));
        if matches {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while matches!(
            self.b.get(self.i),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|v| v.is_finite())
            .map(Json::Num)
            .ok_or_else(|| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.i += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            let Some(c) = hex else {
                                return Err(self.err("invalid \\u escape"));
                            };
                            out.push(c);
                            self.i += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input came from &str,
                    // so boundaries are valid).
                    let rest = &self.b[self.i..];
                    let s = String::from_utf8_lossy(rest);
                    let Some(c) = s.chars().next() else {
                        return Err(self.err("unterminated string"));
                    };
                    out.push(c);
                    self.i += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.i += 1; // '['
        let mut out = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.i += 1; // '{'
        let mut out = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            if self.b.get(self.i) != Some(&b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.b.get(self.i) != Some(&b':') {
                return Err(self.err("expected `:`"));
            }
            self.i += 1;
            out.push((key, self.value()?));
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic baseline: perfect Amdahl scaling with serial
    /// fraction `s`, light cache/lock traffic on the top point.
    fn baseline_json(s: f64) -> String {
        let mut sweep = String::new();
        for (i, n) in [1u64, 2, 4, 8].iter().enumerate() {
            if i > 0 {
                sweep.push(',');
            }
            let wall = 4.0 * (s + (1.0 - s) / *n as f64);
            sweep.push_str(&format!(
                "{{\"threads\":{n},\"wall_secs\":{wall},\
                 \"counters\":{{\"lock_shard_acquire\":1000,\"lock_shard_contended\":10,\
                 \"worker_runs\":{n},\"worker_items\":40,\"worker_max_items\":{}}},\
                 \"stages\":{{\"extract\":{{\"nanos\":2000000000,\"calls\":12}},\
                 \"verify\":{{\"nanos\":500000000,\"calls\":12}}}}}}",
                40 / n + 1
            ));
        }
        format!("{{\"seed\":7,\"domains\":[\"airfare\",\"books\"],\"sweep\":[{sweep}]}}")
    }

    #[test]
    fn parses_the_baseline_schema() {
        let b = parse_baseline("t.json", &baseline_json(0.2)).expect("parse");
        assert_eq!(b.seed, Some(7));
        assert_eq!(b.domains, vec!["airfare".to_string(), "books".to_string()]);
        assert_eq!(b.sweep.len(), 4);
        assert_eq!(b.sweep[0].threads, 1);
        assert_eq!(b.sweep[3].threads, 8);
        let top = &b.sweep[3];
        assert_eq!(top.prof.get(ProfCounter::ShardLockAcquire), 1000);
        assert_eq!(top.prof.stage_calls(Stage::Extract), 12);
        assert_eq!(top.prof.stage_nanos(Stage::Verify), 500_000_000);
    }

    #[test]
    fn parse_errors_name_the_problem() {
        match parse_baseline("x", "{}") {
            Err(ObsError::Profile { path, detail }) => {
                assert_eq!(path, "x");
                assert!(detail.contains("sweep"));
            }
            other => panic!("expected Profile error, got {other:?}"),
        }
        assert!(parse_baseline("x", "not json").is_err());
        assert!(parse_baseline("x", "{\"sweep\":[{\"threads\":2}]}").is_err());
        assert!(
            parse_baseline("x", "{\"sweep\":[{\"threads\":2,\"wall_secs\":0}]}").is_err(),
            "zero wall-clock must be rejected"
        );
        // trailing garbage after the document
        assert!(parse_baseline("x", "{\"sweep\":[]} extra").is_err());
    }

    #[test]
    fn unknown_counters_and_stages_are_tolerated() {
        let text = "{\"sweep\":[{\"threads\":1,\"wall_secs\":1.0,\
                    \"counters\":{\"from_the_future\":3,\"worker_items\":5},\
                    \"stages\":{\"warp\":{\"nanos\":1,\"calls\":1}}}]}";
        let b = parse_baseline("t", text).expect("parse");
        assert_eq!(b.sweep[0].prof.get(ProfCounter::WorkerItems), 5);
    }

    #[test]
    fn amdahl_fit_recovers_the_serial_fraction() {
        let b = parse_baseline("t.json", &baseline_json(0.2)).expect("parse");
        let fit = ScalingFit::fit(&b.sweep).expect("fit");
        assert!(
            (fit.serial_fraction - 0.2).abs() < 1e-9,
            "serial {}",
            fit.serial_fraction
        );
        // USL with κ = 0 is algebraically Amdahl: the grid lands on
        // σ ≈ s, κ ≈ 0.
        assert!(
            (fit.sigma - 0.2).abs() <= 0.005 + 1e-12,
            "sigma {}",
            fit.sigma
        );
        assert!(fit.kappa <= 0.0005 + 1e-12, "kappa {}", fit.kappa);
        // serial 20% dwarfs 1% contention and the mild imbalance
        assert_eq!(fit.limiter, "serial-fraction");
    }

    #[test]
    fn limiter_switches_to_the_largest_magnitude() {
        let mut b = parse_baseline("t.json", &baseline_json(0.01)).expect("parse");
        // Make the top point massively imbalanced: one worker did
        // nearly everything.
        let top = b.sweep.last_mut().expect("top point");
        top.prof.set(ProfCounter::WorkerRuns, 8);
        top.prof.set(ProfCounter::WorkerItems, 40);
        top.prof.set(ProfCounter::WorkerMaxItems, 30);
        let fit = ScalingFit::fit(&b.sweep).expect("fit");
        assert!(fit.imbalance > 4.0);
        assert_eq!(fit.limiter, "load-imbalance");

        // Now contention: every other lock acquisition blocked.
        let top = b.sweep.last_mut().expect("top point");
        top.prof.set(ProfCounter::WorkerMaxItems, 5);
        top.prof.set(ProfCounter::ShardLockContended, 500);
        let fit = ScalingFit::fit(&b.sweep).expect("fit");
        assert_eq!(fit.limiter, "lock-contention");
    }

    #[test]
    fn fit_requires_a_single_thread_baseline() {
        let mut b = parse_baseline("t.json", &baseline_json(0.2)).expect("parse");
        b.sweep.remove(0);
        assert_eq!(ScalingFit::fit(&b.sweep), None);
        assert_eq!(ScalingFit::fit(&[]), None);
    }

    #[test]
    fn report_is_deterministic_and_names_the_limiter() {
        let b = parse_baseline("PROF_BASELINE.json", &baseline_json(0.2)).expect("parse");
        let r = render_profile(&b);
        assert_eq!(r, render_profile(&b), "report must be byte-stable");
        assert!(r.contains("attribution at 8 thread(s)"));
        assert!(r.contains("extract"));
        assert!(r.contains("  verify"), "verify is indented under extract");
        assert!(r.contains("cross-cutting"));
        assert!(r.contains("dominant limiter: serial-fraction"));
        assert!(r.contains("amdahl serial fraction: 20.0%"));
        assert!(r.contains("shard lock acquisitions 1000, contended 10"));
    }

    #[test]
    fn empty_sweep_renders_a_stub() {
        let b = ProfBaseline {
            label: "x".into(),
            seed: None,
            domains: vec![],
            sweep: vec![],
        };
        assert!(render_profile(&b).contains("empty sweep"));
    }
}
