//! Sliding-window metric aggregation.
//!
//! [`WindowedMetrics`] keeps a bounded ring of *cumulative* counter
//! snapshots, one per pipeline epoch, and answers "what changed across
//! the last N epochs" via [`MetricSet::diff`]. The pipeline pushes a
//! snapshot at each epoch boundary (an epoch is one domain's
//! acquisition); the window delta is simply `newest.diff(oldest)`, so
//! the structure stores no per-epoch deltas and never loses counts to
//! rounding.

use std::collections::VecDeque;

use webiq_trace::MetricSet;

/// A ring of cumulative counter snapshots covering the last `capacity`
/// epochs.
///
/// The ring holds `capacity + 1` snapshots — the extra slot is the
/// baseline the oldest in-window epoch is diffed against. A fresh window
/// is seeded with a zero snapshot so the first epoch's delta is its full
/// cumulative value.
#[derive(Debug, Clone)]
pub struct WindowedMetrics {
    /// Oldest at the front, newest at the back; cumulative values.
    snaps: VecDeque<MetricSet>,
    /// Number of epochs the window spans.
    capacity: usize,
    /// Epochs pushed over the window's lifetime (not bounded by
    /// `capacity`).
    epochs: u64,
}

impl WindowedMetrics {
    /// A window spanning `capacity` epochs (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let mut snaps = VecDeque::with_capacity(capacity + 1);
        snaps.push_back(MetricSet::new());
        WindowedMetrics {
            snaps,
            capacity,
            epochs: 0,
        }
    }

    /// Record the cumulative counter state at an epoch boundary.
    pub fn push(&mut self, cumulative: MetricSet) {
        self.snaps.push_back(cumulative);
        while self.snaps.len() > self.capacity + 1 {
            self.snaps.pop_front();
        }
        self.epochs = self.epochs.saturating_add(1);
    }

    /// Counter deltas accumulated across the window (newest minus
    /// oldest baseline). Zero for a freshly created window.
    pub fn delta(&self) -> MetricSet {
        match (self.snaps.back(), self.snaps.front()) {
            (Some(newest), Some(oldest)) => newest.diff(oldest),
            _ => MetricSet::new(),
        }
    }

    /// Epochs currently covered by the window (saturates at the
    /// configured capacity).
    pub fn len(&self) -> usize {
        self.snaps.len().saturating_sub(1)
    }

    /// True until the first epoch is pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Epochs pushed over the window's lifetime.
    pub fn total_epochs(&self) -> u64 {
        self.epochs
    }

    /// The window's configured span in epochs.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webiq_trace::Counter;

    fn cum(v: u64) -> MetricSet {
        let mut m = MetricSet::new();
        m.add(Counter::ProbesIssued, v);
        m
    }

    #[test]
    fn empty_window_has_zero_delta() {
        let w = WindowedMetrics::new(4);
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
        assert!(w.delta().is_zero());
    }

    #[test]
    fn first_epoch_delta_is_full_value() {
        let mut w = WindowedMetrics::new(4);
        w.push(cum(10));
        assert_eq!(w.len(), 1);
        assert_eq!(w.delta().get(Counter::ProbesIssued), 10);
    }

    #[test]
    fn window_evicts_old_epochs() {
        let mut w = WindowedMetrics::new(2);
        w.push(cum(10));
        w.push(cum(25));
        w.push(cum(27));
        // Window covers the last two epochs: 27 - 10 = 17.
        assert_eq!(w.len(), 2);
        assert_eq!(w.delta().get(Counter::ProbesIssued), 17);
        assert_eq!(w.total_epochs(), 3);
    }

    #[test]
    fn zero_item_epoch_still_rolls_the_window() {
        // An epoch that published nothing pushes an unchanged cumulative
        // snapshot. It must still advance the ring — occupying a window
        // slot and eventually evicting older epochs — while contributing
        // zero to the delta.
        let mut w = WindowedMetrics::new(2);
        w.push(cum(10));
        w.push(cum(10)); // zero-item epoch: cumulative unchanged
        assert_eq!(w.len(), 2);
        assert_eq!(w.total_epochs(), 2);
        assert_eq!(w.delta().get(Counter::ProbesIssued), 10);
        // A second idle epoch evicts the productive one: the window now
        // spans only the two idle epochs and the delta collapses to zero.
        w.push(cum(10));
        assert_eq!(w.len(), 2);
        assert_eq!(w.total_epochs(), 3);
        assert!(w.delta().is_zero());
    }

    #[test]
    fn capacity_zero_is_clamped_to_one() {
        let mut w = WindowedMetrics::new(0);
        assert_eq!(w.capacity(), 1);
        w.push(cum(5));
        w.push(cum(9));
        assert_eq!(w.delta().get(Counter::ProbesIssued), 4);
    }
}
