//! # webiq-obs — operational monitoring for the WebIQ acquisition stack
//!
//! The layer *above* [`webiq_trace`]: where trace turns a run into a
//! deterministic event stream, obs turns the same typed metrics into
//! things an operator can watch and a CI pipeline can gate on.
//!
//! Three pieces:
//!
//! - **Live exposition** ([`live`], [`prom`], [`server`]): a
//!   [`LiveRegistry`] the acquisition pipeline publishes per-item metric
//!   deltas into, rendered in Prometheus text format and served over a
//!   plain-`std` HTTP endpoint ([`MetricsServer`]) at `/metrics` (plus a
//!   `/healthz` liveness probe). Because the registry is fed from the
//!   pipeline's deterministic merge loop — never from raw worker-thread
//!   state — a scrape taken after a run completes is byte-identical at
//!   any worker count, exactly like the trace itself.
//! - **Windowed aggregation** ([`window`]): [`WindowedMetrics`] keeps a
//!   ring of recent epoch snapshots and reports the counter delta across
//!   the window, so "what happened lately" is answerable without
//!   re-reading a whole trace.
//! - **Regression gating** ([`diff`], [`config`]): [`diff::diff`]
//!   aggregates two JSONL traces ([`webiq_trace::report::aggregate_run`])
//!   and compares funnel-stage rates, counter deltas, and histogram
//!   quantile shifts against configurable [`DiffThresholds`] —
//!   optionally also two `webiq_prof_*` snapshots
//!   ([`DiffReport::with_prof`]), so lock-contention creep gates too.
//!   The `webiq-report diff` subcommand turns the verdict into an exit
//!   code CI can gate merges on.
//! - **Profiling attribution** ([`profile`]): the read side of the
//!   `experiments profile` sweep — parse `PROF_BASELINE.json`, fit the
//!   speedup curve with Amdahl's law and the USL ([`ScalingFit`]), and
//!   render the deterministic stage-tree attribution report naming the
//!   dominant scaling limiter ([`profile::render_profile`]).
//!
//! Like every library crate in the workspace the crate is
//! dependency-free and panic-free: no `unwrap`/`expect`/`panic!`, errors
//! flow through [`ObsError`].
#![forbid(unsafe_code)]

pub mod config;
pub mod diff;
pub mod error;
pub mod live;
pub mod profile;
pub mod prom;
pub mod server;
pub mod window;

pub use config::DiffThresholds;
pub use diff::{diff, diff_events, diff_prof, parse_jsonl, DiffReport};
pub use error::ObsError;
pub use live::{LiveRegistry, RegistrySnapshot};
pub use profile::{ProfBaseline, ScalingFit, SweepPoint};
pub use server::MetricsServer;
pub use window::WindowedMetrics;
