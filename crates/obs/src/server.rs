//! The `/metrics` HTTP endpoint.
//!
//! [`MetricsServer`] is a deliberately tiny HTTP/1.1 server on a plain
//! [`std::net::TcpListener`] — the workspace is dependency-free, and
//! serving two fixed read-only paths does not need more. One background
//! thread accepts connections serially:
//!
//! - `GET /metrics` → the owning [`LiveRegistry`] rendered in
//!   Prometheus text format ([`LiveRegistry::render_live`]: the
//!   deterministic pipeline families plus the `webiq_prof_*` profiling
//!   appendix);
//! - `GET /healthz` → `ok` (liveness probe);
//! - anything else → `404`.
//!
//! Shutdown is cooperative: [`MetricsServer::shutdown`] (also run on
//! drop) raises a stop flag and then connects to the listener itself so
//! the blocking `accept` wakes up and observes the flag. [`http_get`] is
//! the matching one-shot client used by tests and the bench monitor.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::error::ObsError;
use crate::live::LiveRegistry;

/// Per-connection socket timeout: a stalled scraper must not wedge the
/// serve loop.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// Serves a [`LiveRegistry`] over HTTP until shut down or dropped.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start serving `registry` on a background thread.
    pub fn start(addr: &str, registry: Arc<LiveRegistry>) -> Result<MetricsServer, ObsError> {
        let bind_err = |detail: std::io::Error| ObsError::Bind {
            addr: addr.to_string(),
            detail: detail.to_string(),
        };
        let listener = TcpListener::bind(addr).map_err(bind_err)?;
        let local = listener.local_addr().map_err(bind_err)?;
        let stop = Arc::new(AtomicBool::new(false));
        let serve_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("webiq-metrics".into())
            .spawn(move || serve(&listener, &registry, &serve_stop))
            .map_err(bind_err)?;
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the serve loop and join its thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept; the loop re-checks the flag before
        // serving.
        if let Ok(s) = TcpStream::connect(self.addr) {
            drop(s);
        }
        let _ = handle.join();
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Accept-and-respond loop; one connection at a time.
fn serve(listener: &TcpListener, registry: &LiveRegistry, stop: &AtomicBool) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else {
            continue;
        };
        handle_conn(stream, registry);
    }
}

/// Read one request line, write one response, close.
fn handle_conn(mut stream: TcpStream, registry: &LiveRegistry) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let Some(path) = read_request_path(&mut stream) else {
        let _ = write_response(
            &mut stream,
            400,
            "text/plain; charset=utf-8",
            "bad request\n",
        );
        return;
    };
    match path.as_str() {
        "/metrics" => {
            let body = registry.render_live();
            let _ = write_response(
                &mut stream,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            );
        }
        "/healthz" => {
            let _ = write_response(&mut stream, 200, "text/plain; charset=utf-8", "ok\n");
        }
        _ => {
            let _ = write_response(&mut stream, 404, "text/plain; charset=utf-8", "not found\n");
        }
    }
}

/// Parse `GET <path> …` from the request head. Returns `None` for
/// anything that is not a well-formed GET.
///
/// The whole head (request line *and* headers, up to the blank line) is
/// drained before returning: closing a socket with unread bytes in its
/// receive buffer sends an RST, and the client would see "connection
/// reset" instead of the response.
fn read_request_path(stream: &mut TcpStream) -> Option<String> {
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    while head.len() < 8192 && !head.ends_with(b"\r\n\r\n") {
        match stream.read(&mut byte) {
            Ok(1) => head.push(byte[0]),
            _ => break,
        }
    }
    let head = String::from_utf8_lossy(&head);
    let mut parts = head.lines().next()?.split_whitespace();
    match (parts.next(), parts.next()) {
        (Some("GET"), Some(path)) => Some(path.to_string()),
        _ => None,
    }
}

/// Write a minimal HTTP/1.1 response.
fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        _ => "Not Found",
    };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// Fetch `path` from `addr` with a one-shot HTTP/1.1 GET; returns
/// `(status, body)`. The client half of [`MetricsServer`], used by tests
/// and the bench monitor.
pub fn http_get(addr: SocketAddr, path: &str) -> Result<(u16, String), ObsError> {
    let io_err = |detail: std::io::Error| ObsError::Io {
        path: format!("http://{addr}{path}"),
        detail: detail.to_string(),
    };
    let mut stream = TcpStream::connect(addr).map_err(io_err)?;
    stream.set_read_timeout(Some(IO_TIMEOUT)).map_err(io_err)?;
    stream.set_write_timeout(Some(IO_TIMEOUT)).map_err(io_err)?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .map_err(io_err)?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw).map_err(io_err)?;
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .unwrap_or(0);
    let body = match raw.split_once("\r\n\r\n") {
        Some((_, b)) => b.to_string(),
        None => String::new(),
    };
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use webiq_trace::{Counter, HistSet, MetricSet};

    #[test]
    fn serves_metrics_healthz_and_404() {
        let reg = Arc::new(LiveRegistry::new());
        let mut m = MetricSet::new();
        m.add(Counter::ProbesIssued, 9);
        reg.publish_item(&m, &HistSet::new());
        let Ok(server) = MetricsServer::start("127.0.0.1:0", Arc::clone(&reg)) else {
            return; // sandboxed environments may forbid binding
        };
        let addr = server.local_addr();

        let (status, body) = http_get(addr, "/metrics").expect("scrape /metrics");
        assert_eq!(status, 200);
        assert!(body.contains("webiq_probes_issued_total 9\n"));
        // The scrape is the deterministic render plus the profiling
        // appendix (whose values depend on what else ran in-process).
        assert!(body.starts_with(&reg.render()));
        assert!(body.contains("# TYPE webiq_prof_lock_shard_acquire_total counter\n"));

        let (status, body) = http_get(addr, "/healthz").expect("scrape /healthz");
        assert_eq!(status, 200);
        assert_eq!(body, "ok\n");

        let (status, _) = http_get(addr, "/nope").expect("scrape unknown path");
        assert_eq!(status, 404);

        server.shutdown();
    }

    #[test]
    fn metrics_content_type_declares_exposition_version_and_charset() {
        let reg = Arc::new(LiveRegistry::new());
        let Ok(server) = MetricsServer::start("127.0.0.1:0", reg) else {
            return; // sandboxed environments may forbid binding
        };
        let addr = server.local_addr();
        // Raw socket: http_get strips headers, and the Content-Type is
        // exactly what scrapers content-negotiate on.
        let Ok(mut stream) = TcpStream::connect(addr) else {
            return;
        };
        write!(
            stream,
            "GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
        )
        .expect("send request");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read response");
        let head = raw.split("\r\n\r\n").next().unwrap_or("");
        assert!(
            head.contains("Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"),
            "head: {head:?}"
        );
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let reg = Arc::new(LiveRegistry::new());
        let Ok(server) = MetricsServer::start("127.0.0.1:0", reg) else {
            return;
        };
        let addr = server.local_addr();
        server.shutdown();
        // The listener is gone: a fresh connect either fails or is never
        // served. Binding the port again must succeed.
        assert!(TcpListener::bind(addr).is_ok());
    }
}
