//! Trace-diff regression detection.
//!
//! [`diff`] aggregates two JSONL traces into run totals
//! ([`webiq_trace::report::aggregate_run`]) and compares them three
//! ways, each gated by [`DiffThresholds`]:
//!
//! - **counters**: relative change of every [`Counter`], flagged when it
//!   falls or rises past the configured percentages (small baselines are
//!   exempt via the floor);
//! - **funnel stages**: acceptance rates of the five pipeline stages
//!   (surface, verify, borrow, bayes, probe), flagged on an absolute
//!   rate drop;
//! - **quantiles**: per-histogram p50/p90/p99 from the trace layer's
//!   power-of-two buckets, flagged on an upward shift (cost creep).
//!
//! When two `webiq_prof_*` snapshots are attached
//! ([`DiffReport::with_prof`]), a fourth comparison covers the
//! profiling counter families — lock traffic, contention ratio, cache
//! misses — so a contention regression fails the gate even when the
//! deterministic trace is unchanged.
//!
//! The resulting [`DiffReport`] renders as deterministic text
//! ([`DiffReport::render_text`]) and JSON ([`DiffReport::to_json`]);
//! [`DiffReport::regressed`] is what `webiq-report diff` turns into its
//! exit code. Because the pipeline itself is deterministic, two traces
//! of the same code are byte-identical and the report states `zero
//! deltas` — any delta at all is a behaviour change someone made.

use webiq_prof::{ProfCounter, ProfSnapshot};
use webiq_trace::report::aggregate_run;
use webiq_trace::tracer::Totals;
use webiq_trace::{Counter, Event, HistKey, MetricSet};

use crate::config::DiffThresholds;
use crate::error::ObsError;

/// Quantiles compared per histogram.
const QUANTILES: [(f64, &str); 3] = [(0.5, "p50"), (0.9, "p90"), (0.99, "p99")];

/// The five funnel stages a diff compares, as
/// `(name, numerator, denominator)` — rate = accepted / attempted.
const STAGES: [(&str, StageCount, StageCount); 5] = [
    (
        "surface",
        StageCount::One(Counter::SurfaceSuccess),
        StageCount::One(Counter::AttrsNoInstance),
    ),
    (
        "verify",
        StageCount::One(Counter::ValidationAccepted),
        StageCount::Two(Counter::ValidationAccepted, Counter::ValidationRejected),
    ),
    (
        "borrow",
        StageCount::One(Counter::BorrowAccepted),
        StageCount::One(Counter::BorrowProbed),
    ),
    (
        "bayes",
        StageCount::One(Counter::BayesAccepted),
        StageCount::Two(Counter::BayesAccepted, Counter::BayesRejected),
    ),
    (
        "probe",
        StageCount::One(Counter::ProbeMatched),
        StageCount::One(Counter::ProbesIssued),
    ),
];

/// A stage-rate term: one counter, or the sum of two.
#[derive(Clone, Copy)]
enum StageCount {
    One(Counter),
    Two(Counter, Counter),
}

impl StageCount {
    fn value(self, m: &MetricSet) -> u64 {
        match self {
            StageCount::One(c) => m.get(c),
            StageCount::Two(a, b) => m.get(a).saturating_add(m.get(b)),
        }
    }
}

/// One counter's change between baseline and candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterDelta {
    /// Which counter.
    pub counter: Counter,
    /// Baseline value.
    pub baseline: u64,
    /// Candidate value.
    pub candidate: u64,
    /// Relative change in percent (denominator clamped to ≥ 1 so the
    /// value stays finite).
    pub change_pct: f64,
    /// True when the change crossed a threshold.
    pub regressed: bool,
}

/// One funnel stage's acceptance-rate change.
#[derive(Debug, Clone, PartialEq)]
pub struct StageDelta {
    /// Stage name (`surface`, `verify`, `borrow`, `bayes`, `probe`).
    pub stage: &'static str,
    /// Baseline acceptance rate; `None` when the stage never ran.
    pub baseline: Option<f64>,
    /// Candidate acceptance rate; `None` when the stage never ran.
    pub candidate: Option<f64>,
    /// True when the rate dropped past the threshold.
    pub regressed: bool,
}

/// One profiling series' change between baseline and candidate —
/// attached when the diff is given two `webiq_prof_*` snapshots
/// (`webiq-report diff --prof-baseline/--prof-candidate`).
///
/// Only rises gate: falling lock traffic, contention, or cache misses
/// is an improvement. Stage wall-clock never appears here — timing is
/// nondeterministic by nature and must not fail a regression gate.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfDelta {
    /// Series name: a [`ProfCounter`] name, or `contention_ratio`.
    pub name: String,
    /// Baseline value.
    pub baseline: f64,
    /// Candidate value.
    pub candidate: f64,
    /// True when the rise crossed its threshold.
    pub regressed: bool,
}

/// One histogram quantile's shift.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileDelta {
    /// Which histogram.
    pub hist: HistKey,
    /// Quantile label (`p50`, `p90`, `p99`).
    pub quantile: &'static str,
    /// Baseline quantile value; `None` when the histogram is empty.
    pub baseline: Option<f64>,
    /// Candidate quantile value; `None` when the histogram is empty.
    pub candidate: Option<f64>,
    /// True when the quantile rose past the threshold.
    pub regressed: bool,
}

/// The outcome of comparing two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Label of the baseline trace (usually its path).
    pub baseline_label: String,
    /// Label of the candidate trace.
    pub candidate_label: String,
    /// Counters whose values differ (changed counters only).
    pub counters: Vec<CounterDelta>,
    /// All five funnel stages, in fixed order.
    pub stages: Vec<StageDelta>,
    /// Quantiles whose values differ (changed quantiles only).
    pub quantiles: Vec<QuantileDelta>,
    /// Profiling series that differ (empty unless prof snapshots were
    /// attached via [`DiffReport::with_prof`]).
    pub prof: Vec<ProfDelta>,
}

impl DiffReport {
    /// Attach a profiling comparison: non-peak `webiq_prof_*` counters
    /// gated on `prof_counter_rise_pct` (above the shared
    /// `counter_floor`), plus the shard-lock contention ratio gated on
    /// the absolute `prof_contention_rise`.
    #[must_use]
    pub fn with_prof(
        mut self,
        base: &ProfSnapshot,
        cand: &ProfSnapshot,
        t: &DiffThresholds,
    ) -> DiffReport {
        self.prof = diff_prof(base, cand, t);
        self
    }

    /// True when any comparison crossed its threshold — the CI gate.
    pub fn regressed(&self) -> bool {
        self.counters.iter().any(|d| d.regressed)
            || self.stages.iter().any(|d| d.regressed)
            || self.quantiles.iter().any(|d| d.regressed)
            || self.prof.iter().any(|d| d.regressed)
    }

    /// True when the two runs are metric-identical.
    pub fn is_zero(&self) -> bool {
        self.counters.is_empty()
            && self.quantiles.is_empty()
            && self.prof.is_empty()
            && self.stages.iter().all(|d| d.baseline == d.candidate)
    }

    /// Names of everything that regressed, in report order — what the
    /// CLI prints and the gate log shows.
    pub fn regressions(&self) -> Vec<String> {
        let mut out = Vec::new();
        for d in &self.counters {
            if d.regressed {
                out.push(format!("counter {}", d.counter.name()));
            }
        }
        for d in &self.stages {
            if d.regressed {
                out.push(format!("stage {}", d.stage));
            }
        }
        for d in &self.quantiles {
            if d.regressed {
                out.push(format!("quantile {} {}", d.hist.name(), d.quantile));
            }
        }
        for d in &self.prof {
            if d.regressed {
                out.push(format!("prof {}", d.name));
            }
        }
        out
    }

    /// Deterministic human-readable rendering.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "trace diff\n  baseline:  {}\n  candidate: {}\n",
            self.baseline_label, self.candidate_label
        ));
        if self.is_zero() {
            out.push_str("\nzero deltas: runs are metric-identical\nverdict: OK\n");
            return out;
        }
        if !self.counters.is_empty() {
            out.push_str("\ncounters changed:\n");
            for d in &self.counters {
                out.push_str(&format!(
                    "  {:<24} {:>8} -> {:<8} ({:+.1}%){}\n",
                    d.counter.name(),
                    d.baseline,
                    d.candidate,
                    d.change_pct,
                    if d.regressed { "  REGRESSION" } else { "" }
                ));
            }
        }
        out.push_str("\nstage rates:\n");
        for d in &self.stages {
            out.push_str(&format!(
                "  {:<8} {} -> {}{}\n",
                d.stage,
                fmt_rate(d.baseline),
                fmt_rate(d.candidate),
                if d.regressed { "  REGRESSION" } else { "" }
            ));
        }
        if !self.quantiles.is_empty() {
            out.push_str("\nquantiles changed:\n");
            for d in &self.quantiles {
                out.push_str(&format!(
                    "  {} {}  {} -> {}{}\n",
                    d.hist.name(),
                    d.quantile,
                    fmt_opt(d.baseline),
                    fmt_opt(d.candidate),
                    if d.regressed { "  REGRESSION" } else { "" }
                ));
            }
        }
        if !self.prof.is_empty() {
            out.push_str("\nprof series changed:\n");
            for d in &self.prof {
                out.push_str(&format!(
                    "  {:<24} {:>10} -> {:<10}{}\n",
                    d.name,
                    fmt_prof(d.baseline),
                    fmt_prof(d.candidate),
                    if d.regressed { "  REGRESSION" } else { "" }
                ));
            }
        }
        let failing = self.regressions();
        if failing.is_empty() {
            out.push_str("\nverdict: OK (changes within thresholds)\n");
        } else {
            out.push_str(&format!(
                "\nverdict: REGRESSION ({}: {})\n",
                failing.len(),
                failing.join(", ")
            ));
        }
        out
    }

    /// Deterministic machine-readable rendering (hand-rolled JSON, like
    /// the rest of the workspace).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"baseline\":{},\"candidate\":{},\"regressed\":{},\"zero_deltas\":{}",
            json_str(&self.baseline_label),
            json_str(&self.candidate_label),
            self.regressed(),
            self.is_zero()
        ));
        out.push_str(",\"counters\":[");
        for (i, d) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"baseline\":{},\"candidate\":{},\"change_pct\":{:.1},\"regressed\":{}}}",
                d.counter.name(),
                d.baseline,
                d.candidate,
                d.change_pct,
                d.regressed
            ));
        }
        out.push_str("],\"stages\":[");
        for (i, d) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"baseline\":{},\"candidate\":{},\"regressed\":{}}}",
                d.stage,
                json_opt(d.baseline),
                json_opt(d.candidate),
                d.regressed
            ));
        }
        out.push_str("],\"quantiles\":[");
        for (i, d) in self.quantiles.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"hist\":\"{}\",\"q\":\"{}\",\"baseline\":{},\"candidate\":{},\"regressed\":{}}}",
                d.hist.name(),
                d.quantile,
                json_opt(d.baseline),
                json_opt(d.candidate),
                d.regressed
            ));
        }
        out.push_str("],\"prof\":[");
        for (i, d) in self.prof.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"baseline\":{:.4},\"candidate\":{:.4},\"regressed\":{}}}",
                json_str(&d.name),
                d.baseline,
                d.candidate,
                d.regressed
            ));
        }
        out.push_str("],\"failures\":[");
        for (i, f) in self.regressions().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_str(f));
        }
        out.push_str("]}");
        out
    }
}

/// Format a prof value: whole counters as integers, ratios with four
/// decimals.
fn fmt_prof(v: f64) -> String {
    if v.fract() == 0.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.4}")
    }
}

fn fmt_rate(r: Option<f64>) -> String {
    match r {
        Some(v) => format!("{v:.4}"),
        None => "n/a".to_string(),
    }
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v}"),
        None => "n/a".to_string(),
    }
}

fn json_opt(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.4}"),
        None => "null".to_string(),
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parse a JSONL trace, reporting the first malformed line by number.
/// Blank lines are tolerated (a trailing newline is not an error); any
/// other unparseable line is.
pub fn parse_jsonl(label: &str, text: &str) -> Result<Vec<Event>, ObsError> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match Event::parse(line) {
            Some(e) => events.push(e),
            None => {
                return Err(ObsError::MalformedTrace {
                    path: label.to_string(),
                    line: i + 1,
                })
            }
        }
    }
    Ok(events)
}

/// Compare two already-parsed event streams.
pub fn diff_events(
    baseline_label: &str,
    baseline: &[Event],
    candidate_label: &str,
    candidate: &[Event],
    t: &DiffThresholds,
) -> DiffReport {
    let base = aggregate_run(baseline);
    let cand = aggregate_run(candidate);
    diff_totals(baseline_label, &base, candidate_label, &cand, t)
}

/// Compare two aggregated runs (the core of [`diff_events`]).
pub fn diff_totals(
    baseline_label: &str,
    base: &Totals,
    candidate_label: &str,
    cand: &Totals,
    t: &DiffThresholds,
) -> DiffReport {
    let mut counters = Vec::new();
    for c in Counter::ALL {
        let b = base.counters.get(c);
        let v = cand.counters.get(c);
        if b == v {
            continue;
        }
        let change_pct = ((v as f64 - b as f64) / (b.max(1) as f64)) * 100.0;
        let above_floor = b >= t.counter_floor || v >= t.counter_floor;
        let regressed =
            above_floor && (change_pct < -t.counter_drop_pct || change_pct > t.counter_rise_pct);
        counters.push(CounterDelta {
            counter: c,
            baseline: b,
            candidate: v,
            change_pct,
            regressed,
        });
    }

    let mut stages = Vec::new();
    for (name, num, den) in STAGES {
        let b = rate(num.value(&base.counters), den.value(&base.counters));
        let v = rate(num.value(&cand.counters), den.value(&cand.counters));
        let regressed = match (b, v) {
            (Some(b), Some(v)) => b - v > t.rate_drop,
            // A stage that ran at baseline but never ran at candidate is
            // a funnel break — its feeding counters flag too, but name
            // the stage as well.
            (Some(_), None) => true,
            _ => false,
        };
        stages.push(StageDelta {
            stage: name,
            baseline: b,
            candidate: v,
            regressed,
        });
    }

    let mut quantiles = Vec::new();
    for h in HistKey::ALL {
        for (p, label) in QUANTILES {
            let b = base.hists.quantile(h, p);
            let v = cand.hists.quantile(h, p);
            if b == v {
                continue;
            }
            let regressed = match (b, v) {
                (Some(b), Some(v)) => v - b > t.quantile_shift,
                _ => false,
            };
            quantiles.push(QuantileDelta {
                hist: h,
                quantile: label,
                baseline: b,
                candidate: v,
                regressed,
            });
        }
    }

    DiffReport {
        baseline_label: baseline_label.to_string(),
        candidate_label: candidate_label.to_string(),
        counters,
        stages,
        quantiles,
        prof: Vec::new(),
    }
}

/// Compare two profiling snapshots: every non-peak [`ProfCounter`] whose
/// value changed (rises past `prof_counter_rise_pct` gate, small values
/// exempt via the shared `counter_floor`), plus the contention ratio
/// (absolute rise past `prof_contention_rise` gates). Peaks and stage
/// wall-clock are excluded — peaks are not comparable across different
/// worker counts, and timing is nondeterministic.
pub fn diff_prof(base: &ProfSnapshot, cand: &ProfSnapshot, t: &DiffThresholds) -> Vec<ProfDelta> {
    let mut out = Vec::new();
    for c in ProfCounter::ALL {
        if c.is_peak() {
            continue;
        }
        let b = base.get(c);
        let v = cand.get(c);
        if b == v {
            continue;
        }
        let change_pct = ((v as f64 - b as f64) / (b.max(1) as f64)) * 100.0;
        let above_floor = b >= t.counter_floor || v >= t.counter_floor;
        out.push(ProfDelta {
            name: c.name().to_string(),
            baseline: b as f64,
            candidate: v as f64,
            regressed: above_floor && change_pct > t.prof_counter_rise_pct,
        });
    }
    let (b, v) = (base.contention_ratio(), cand.contention_ratio());
    if b != v {
        out.push(ProfDelta {
            name: "contention_ratio".to_string(),
            baseline: b,
            candidate: v,
            regressed: v - b > t.prof_contention_rise,
        });
    }
    out
}

/// `accepted / attempted`, or `None` when the stage never ran.
fn rate(num: u64, den: u64) -> Option<f64> {
    if den == 0 {
        None
    } else {
        Some(num as f64 / den as f64)
    }
}

/// Read, parse, and compare two JSONL trace files.
pub fn diff(
    baseline_path: &str,
    candidate_path: &str,
    t: &DiffThresholds,
) -> Result<DiffReport, ObsError> {
    let read = |path: &str| -> Result<String, ObsError> {
        std::fs::read_to_string(path).map_err(|e| ObsError::Io {
            path: path.to_string(),
            detail: e.to_string(),
        })
    };
    let base = parse_jsonl(baseline_path, &read(baseline_path)?)?;
    let cand = parse_jsonl(candidate_path, &read(candidate_path)?)?;
    Ok(diff_events(baseline_path, &base, candidate_path, &cand, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny synthetic run: one root span whose close carries the
    /// given validation counters and probe histogram.
    fn run(accepted: u64, rejected: u64, probe_val: u64) -> Vec<Event> {
        let mut hist = webiq_trace::HistSet::new();
        hist.observe(HistKey::ProbesPerAttr, probe_val);
        vec![
            Event::Open {
                seq: 0,
                id: 0,
                parent: None,
                name: "acquire".into(),
                attr: Some("book".into()),
            },
            Event::Close {
                seq: 1,
                id: 0,
                metrics: vec![
                    (Counter::ValidationAccepted, accepted),
                    (Counter::ValidationRejected, rejected),
                    (Counter::ProbesIssued, 40),
                    (Counter::ProbeMatched, 30),
                ],
                hists: hist.nonzero(),
            },
        ]
    }

    #[test]
    fn identical_runs_report_zero_deltas() {
        let t = DiffThresholds::default();
        let r = diff_events("a", &run(75, 25, 3), "b", &run(75, 25, 3), &t);
        assert!(r.is_zero());
        assert!(!r.regressed());
        assert!(r.render_text().contains("zero deltas"));
        assert!(r.to_json().contains("\"zero_deltas\":true"));
    }

    #[test]
    fn acceptance_rate_drop_names_the_stage() {
        let t = DiffThresholds::default();
        // verify rate 0.75 -> 0.55: past the 0.05 default drop.
        let r = diff_events("a", &run(75, 25, 3), "b", &run(55, 45, 3), &t);
        assert!(r.regressed());
        assert!(r.regressions().iter().any(|f| f == "stage verify"));
        assert!(r.render_text().contains("verify"));
        assert!(r.render_text().contains("REGRESSION"));
    }

    #[test]
    fn counter_floor_suppresses_noise() {
        let t = DiffThresholds::default();
        // 75 -> 60 accepted is a 20% drop, above floor: flags.
        let r = diff_events("a", &run(75, 25, 3), "b", &run(60, 40, 3), &t);
        assert!(r.counters.iter().any(|d| d.regressed));
        // 4 -> 2 accepted is a 50% drop but below the floor of 20.
        let r = diff_events("a", &run(4, 0, 3), "b", &run(2, 0, 3), &t);
        assert!(r
            .counters
            .iter()
            .all(|d| d.counter != Counter::ValidationAccepted || !d.regressed));
    }

    #[test]
    fn upward_quantile_shift_flags() {
        let t = DiffThresholds::default();
        // Probe histogram value 3 -> 40: p50 bucket moves up.
        let r = diff_events("a", &run(75, 25, 3), "b", &run(75, 25, 40), &t);
        assert!(r
            .quantiles
            .iter()
            .any(|d| d.hist == HistKey::ProbesPerAttr && d.regressed));
        // Downward shifts never flag.
        let r = diff_events("a", &run(75, 25, 40), "b", &run(75, 25, 3), &t);
        assert!(!r.quantiles.is_empty());
        assert!(r.quantiles.iter().all(|d| !d.regressed));
    }

    #[test]
    fn parse_jsonl_reports_line_numbers() {
        let good = run(1, 1, 1);
        let text = format!("{}\n{}\nnot json\n", good[0].to_jsonl(), good[1].to_jsonl());
        match parse_jsonl("t.jsonl", &text) {
            Err(ObsError::MalformedTrace { path, line }) => {
                assert_eq!(path, "t.jsonl");
                assert_eq!(line, 3);
            }
            other => panic!("expected MalformedTrace, got {other:?}"),
        }
        // Blank lines are fine.
        let text = format!("{}\n\n{}\n", good[0].to_jsonl(), good[1].to_jsonl());
        assert_eq!(parse_jsonl("t.jsonl", &text).map(|v| v.len()), Ok(2));
    }

    #[test]
    fn prof_rises_gate_and_drops_do_not() {
        let t = DiffThresholds::default();
        let mut base = ProfSnapshot::new();
        base.set(ProfCounter::ShardLockAcquire, 1000);
        base.set(ProfCounter::ShardLockContended, 10);
        base.set(ProfCounter::SearchCacheMiss, 100);
        let mut cand = base;
        // contention ratio 0.01 -> 0.20: past the 0.05 absolute rise.
        cand.set(ProfCounter::ShardLockContended, 200);
        // misses halve: a drop never regresses.
        cand.set(ProfCounter::SearchCacheMiss, 50);
        let r =
            diff_events("a", &run(75, 25, 3), "b", &run(75, 25, 3), &t).with_prof(&base, &cand, &t);
        assert!(!r.is_zero());
        assert!(r.regressed());
        let names = r.regressions();
        assert!(names.iter().any(|n| n == "prof lock_shard_contended"));
        assert!(names.iter().any(|n| n == "prof contention_ratio"));
        assert!(names.iter().all(|n| n != "prof search_cache_miss"));
        assert!(r.render_text().contains("prof series changed:"));
        assert!(r.to_json().contains("\"name\":\"contention_ratio\""));

        // identical snapshots attach nothing and stay zero-delta
        let r =
            diff_events("a", &run(75, 25, 3), "b", &run(75, 25, 3), &t).with_prof(&base, &base, &t);
        assert!(r.is_zero());
        assert!(!r.regressed());
    }

    #[test]
    fn prof_floor_and_peaks_are_respected() {
        let t = DiffThresholds::default();
        let mut base = ProfSnapshot::new();
        base.set(ProfCounter::ParseCacheEvict, 2);
        base.set(ProfCounter::WorkerMaxItems, 4);
        let mut cand = ProfSnapshot::new();
        // 2 -> 8 is +300% but below the floor of 20: reported, not gated.
        cand.set(ProfCounter::ParseCacheEvict, 8);
        // peaks never enter the comparison at all
        cand.set(ProfCounter::WorkerMaxItems, 40);
        let deltas = diff_prof(&base, &cand, &t);
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].name, "parse_cache_evict");
        assert!(!deltas[0].regressed);
    }

    #[test]
    fn json_rendering_is_deterministic_and_escaped() {
        let t = DiffThresholds::default();
        let r = diff_events("a \"x\"", &run(75, 25, 3), "b", &run(55, 45, 3), &t);
        assert_eq!(r.to_json(), r.to_json());
        assert!(r.to_json().contains("\"baseline\":\"a \\\"x\\\"\""));
        assert!(r.to_json().contains("\"failures\":["));
    }
}
