//! Prometheus text exposition rendering.
//!
//! [`render`] turns a [`RegistrySnapshot`] into the Prometheus text
//! format (version 0.0.4): one `# TYPE` header per family, counters
//! suffixed `_total`, histograms as cumulative `_bucket{le="…"}` series
//! derived from the trace layer's power-of-two buckets, and quantile
//! gauges computed by [`webiq_trace::HistSet::quantile`]. Every family
//! is emitted in a fixed order and zero-valued series are not skipped,
//! so two snapshots with equal contents render byte-identically — the
//! property the `/metrics` determinism test pins.

use std::fmt::Write as _;

use webiq_trace::metrics::{bucket_bounds, NUM_BUCKETS};
use webiq_trace::{Counter, Gauge, HistKey};

use crate::live::RegistrySnapshot;

/// Metric-name prefix for every exported family.
const PREFIX: &str = "webiq";

/// Quantiles exported per histogram.
const QUANTILES: [(f64, &str); 3] = [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")];

/// Render a snapshot in Prometheus text exposition format.
pub fn render(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();

    // Build identity, info-style: a constant `1` whose labels carry the
    // facts (here the crate version), so dashboards can join any series
    // against the version that produced it.
    let _ = writeln!(out, "# TYPE {PREFIX}_build_info gauge");
    let _ = writeln!(
        out,
        "{PREFIX}_build_info{{version=\"{}\"}} 1",
        env!("CARGO_PKG_VERSION")
    );

    // Pipeline counters, cumulative since process start.
    for c in Counter::ALL {
        let name = c.name();
        let _ = writeln!(out, "# TYPE {PREFIX}_{name}_total counter");
        let _ = writeln!(out, "{PREFIX}_{name}_total {}", snap.counters.get(c));
    }

    // Dataset-shape gauges.
    for g in Gauge::ALL {
        let name = g.name();
        let _ = writeln!(out, "# TYPE {PREFIX}_{name} gauge");
        let _ = writeln!(out, "{PREFIX}_{name} {}", snap.gauges.get(g));
    }

    // Progress meta-counters.
    let _ = writeln!(out, "# TYPE {PREFIX}_items_total counter");
    let _ = writeln!(out, "{PREFIX}_items_total {}", snap.items);
    let _ = writeln!(out, "# TYPE {PREFIX}_epochs_total counter");
    let _ = writeln!(out, "{PREFIX}_epochs_total {}", snap.epochs);

    // Sliding-window deltas (counters accumulated across the last N
    // epochs) — gauges, since they can fall as the window slides.
    let _ = writeln!(out, "# TYPE {PREFIX}_window_epochs gauge");
    let _ = writeln!(out, "{PREFIX}_window_epochs {}", snap.window_epochs);
    for c in Counter::ALL {
        let name = c.name();
        let _ = writeln!(out, "# TYPE {PREFIX}_window_{name} gauge");
        let _ = writeln!(out, "{PREFIX}_window_{name} {}", snap.window_delta.get(c));
    }

    // Histograms: cumulative le-buckets from the power-of-two layout,
    // plus nearest-rank quantile gauges (skipped while empty — there is
    // no meaningful quantile of nothing).
    for h in HistKey::ALL {
        let name = h.name();
        let _ = writeln!(out, "# TYPE {PREFIX}_{name} histogram");
        let mut cum = 0u64;
        for b in 0..NUM_BUCKETS {
            cum = cum.saturating_add(snap.hists.bucket(h, b));
            let le = match bucket_bounds(b).1 {
                Some(hi) => hi.to_string(),
                None => "+Inf".to_string(),
            };
            let _ = writeln!(out, "{PREFIX}_{name}_bucket{{le=\"{le}\"}} {cum}");
        }
        let _ = writeln!(out, "{PREFIX}_{name}_count {}", snap.hists.count(h));
        if snap.hists.count(h) > 0 {
            for (p, label) in QUANTILES {
                if let Some(q) = snap.hists.quantile(h, p) {
                    let _ = writeln!(out, "{PREFIX}_{name}_quantile{{q=\"{label}\"}} {q}");
                }
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use webiq_trace::{GaugeSet, HistSet, MetricSet};

    fn snap() -> RegistrySnapshot {
        let mut counters = MetricSet::new();
        counters.add(Counter::ProbesIssued, 12);
        let mut gauges = GaugeSet::new();
        gauges.set(Gauge::Interfaces, 3);
        let mut hists = HistSet::new();
        for v in 1..=10 {
            hists.observe(HistKey::ProbesPerAttr, v);
        }
        RegistrySnapshot {
            counters,
            gauges,
            hists,
            window_delta: MetricSet::new(),
            window_epochs: 0,
            epochs: 1,
            items: 4,
        }
    }

    #[test]
    fn build_info_carries_the_crate_version() {
        let text = render(&snap());
        assert!(text.starts_with("# TYPE webiq_build_info gauge\n"));
        assert!(text.contains(&format!(
            "webiq_build_info{{version=\"{}\"}} 1\n",
            env!("CARGO_PKG_VERSION")
        )));
    }

    #[test]
    fn renders_counters_gauges_and_meta() {
        let text = render(&snap());
        assert!(text.contains("# TYPE webiq_probes_issued_total counter\n"));
        assert!(text.contains("webiq_probes_issued_total 12\n"));
        // Zero-valued families are present, not skipped.
        assert!(text.contains("webiq_cluster_merges_total 0\n"));
        assert!(text.contains("webiq_interfaces 3\n"));
        assert!(text.contains("webiq_items_total 4\n"));
        assert!(text.contains("webiq_epochs_total 1\n"));
    }

    #[test]
    fn renders_cumulative_buckets_and_quantiles() {
        let text = render(&snap());
        // Values 1..=10 land in buckets 1..=4; le-series are cumulative.
        assert!(text.contains("webiq_probes_per_attr_bucket{le=\"0\"} 0\n"));
        assert!(text.contains("webiq_probes_per_attr_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("webiq_probes_per_attr_bucket{le=\"3\"} 3\n"));
        assert!(text.contains("webiq_probes_per_attr_bucket{le=\"7\"} 7\n"));
        assert!(text.contains("webiq_probes_per_attr_bucket{le=\"15\"} 10\n"));
        assert!(text.contains("webiq_probes_per_attr_bucket{le=\"+Inf\"} 10\n"));
        assert!(text.contains("webiq_probes_per_attr_count 10\n"));
        assert!(text.contains("webiq_probes_per_attr_quantile{q=\"0.5\"} 7\n"));
        assert!(text.contains("webiq_probes_per_attr_quantile{q=\"0.99\"} 15\n"));
        // The empty histogram exports buckets but no quantiles.
        assert!(text.contains("webiq_candidates_per_attr_count 0\n"));
        assert!(!text.contains("webiq_candidates_per_attr_quantile"));
    }

    #[test]
    fn equal_snapshots_render_identically() {
        assert_eq!(render(&snap()), render(&snap()));
    }
}
