//! Error type for the observability layer.
//!
//! Everything fallible in `webiq-obs` — reading a trace, parsing a
//! threshold file, binding the metrics listener — reports an
//! [`ObsError`]. The variants carry enough context (path, line number)
//! to print an actionable one-line message; `Display` output is pinned
//! by tests because the `webiq-report` CLI surfaces it verbatim.

use std::fmt;

/// Anything that can go wrong in the observability layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObsError {
    /// Reading or writing a file failed.
    Io {
        /// The offending path (`-` for stdin).
        path: String,
        /// The underlying I/O error, stringified.
        detail: String,
    },
    /// A trace file contained a line that is not a valid trace event.
    MalformedTrace {
        /// The offending path (`-` for stdin).
        path: String,
        /// 1-based line number of the first malformed line.
        line: usize,
    },
    /// A threshold config file contained an invalid line.
    Config {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        detail: String,
    },
    /// Binding the metrics listener failed.
    Bind {
        /// The requested address.
        addr: String,
        /// The underlying error, stringified.
        detail: String,
    },
    /// A profile baseline file could not be parsed.
    Profile {
        /// The offending path (`-` for stdin).
        path: String,
        /// What was wrong with it.
        detail: String,
    },
}

impl fmt::Display for ObsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObsError::Io { path, detail } => write!(f, "cannot read {path}: {detail}"),
            ObsError::MalformedTrace { path, line } => {
                write!(f, "{path}:{line}: not a valid trace event")
            }
            ObsError::Config { line, detail } => {
                write!(f, "threshold config line {line}: {detail}")
            }
            ObsError::Bind { addr, detail } => {
                write!(f, "cannot bind metrics listener on {addr}: {detail}")
            }
            ObsError::Profile { path, detail } => {
                write!(f, "cannot parse profile baseline {path}: {detail}")
            }
        }
    }
}

impl std::error::Error for ObsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_pinned() {
        let e = ObsError::MalformedTrace {
            path: "run.jsonl".into(),
            line: 7,
        };
        assert_eq!(e.to_string(), "run.jsonl:7: not a valid trace event");
        let e = ObsError::Config {
            line: 3,
            detail: "unknown key `frobnicate`".into(),
        };
        assert_eq!(
            e.to_string(),
            "threshold config line 3: unknown key `frobnicate`"
        );
        let e = ObsError::Io {
            path: "-".into(),
            detail: "broken pipe".into(),
        };
        assert_eq!(e.to_string(), "cannot read -: broken pipe");
        let e = ObsError::Bind {
            addr: "127.0.0.1:9".into(),
            detail: "permission denied".into(),
        };
        assert_eq!(
            e.to_string(),
            "cannot bind metrics listener on 127.0.0.1:9: permission denied"
        );
        let e = ObsError::Profile {
            path: "PROF_BASELINE.json".into(),
            detail: "missing `sweep` array".into(),
        };
        assert_eq!(
            e.to_string(),
            "cannot parse profile baseline PROF_BASELINE.json: missing `sweep` array"
        );
    }
}
