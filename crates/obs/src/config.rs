//! Regression-gate thresholds and their config-file parser.
//!
//! [`DiffThresholds`] controls how strict `webiq-report diff` is. The
//! defaults are deliberately tight — the simulated pipeline is fully
//! deterministic, so two runs of the same code differ only when the
//! code's behaviour changed. A `obs.toml`-style file loosens them per
//! project:
//!
//! ```toml
//! # thresholds for webiq-report diff
//! [diff]
//! counter_drop_pct = 10.0
//! counter_rise_pct = 50.0
//! counter_floor = 20
//! rate_drop = 0.05
//! quantile_shift = 0.0
//! prof_counter_rise_pct = 50.0
//! prof_contention_rise = 0.05
//! decision_flips = 0
//! ```
//!
//! The parser is hand-rolled (the workspace is dependency-free) and
//! covers exactly what the file above shows: one optional `[diff]`
//! section, `key = value` pairs, `#` comments. Anything else is an
//! [`ObsError::Config`] carrying the offending line number.

use crate::error::ObsError;

/// Thresholds deciding when a trace diff counts as a regression.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffThresholds {
    /// Flag a counter that *fell* by more than this percentage of its
    /// baseline value.
    pub counter_drop_pct: f64,
    /// Flag a counter that *rose* by more than this percentage of its
    /// baseline value (cost counters creeping up is also a regression).
    pub counter_rise_pct: f64,
    /// Ignore percentage checks for counters whose baseline is below
    /// this floor — tiny denominators make percentages meaningless.
    pub counter_floor: u64,
    /// Flag a funnel-stage acceptance rate that fell by more than this
    /// absolute amount (e.g. 0.05 = five percentage points).
    pub rate_drop: f64,
    /// Flag a histogram quantile that rose by more than this absolute
    /// amount. Zero means any upward shift at bucket resolution flags.
    pub quantile_shift: f64,
    /// Flag a `webiq_prof_*` counter that *rose* by more than this
    /// percentage of its baseline value (lock traffic and cache misses
    /// creeping up is a scalability regression). Drops never flag, and
    /// `counter_floor` exempts tiny baselines here too.
    pub prof_counter_rise_pct: f64,
    /// Flag the shard-lock contention ratio rising by more than this
    /// absolute amount (e.g. 0.05 = five percentage points of
    /// acquisitions newly finding the lock held).
    pub prof_contention_rise: f64,
    /// Flipped decisions tolerated by `webiq-report diff --decisions`
    /// before the run counts as a regression. The pipeline is
    /// deterministic, so the default is zero: any verdict flip between
    /// baseline and candidate decision streams flags.
    pub decision_flips: u64,
}

impl Default for DiffThresholds {
    fn default() -> Self {
        DiffThresholds {
            counter_drop_pct: 10.0,
            counter_rise_pct: 50.0,
            counter_floor: 20,
            rate_drop: 0.05,
            quantile_shift: 0.0,
            prof_counter_rise_pct: 50.0,
            prof_contention_rise: 0.05,
            decision_flips: 0,
        }
    }
}

impl DiffThresholds {
    /// Parse a threshold file's contents. Unknown keys, unknown
    /// sections, and malformed values are hard errors — a typo in a CI
    /// gate must not silently disable it.
    pub fn parse(text: &str) -> Result<DiffThresholds, ObsError> {
        let mut t = DiffThresholds::default();
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = match raw.split_once('#') {
                Some((before, _)) => before.trim(),
                None => raw.trim(),
            };
            if line.is_empty() {
                continue;
            }
            if let Some(section) = line.strip_prefix('[') {
                let Some(name) = section.strip_suffix(']') else {
                    return Err(ObsError::Config {
                        line: lineno,
                        detail: format!("unterminated section header `{line}`"),
                    });
                };
                if name.trim() != "diff" {
                    return Err(ObsError::Config {
                        line: lineno,
                        detail: format!("unknown section `[{}]`", name.trim()),
                    });
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ObsError::Config {
                    line: lineno,
                    detail: format!("expected `key = value`, got `{line}`"),
                });
            };
            let (key, value) = (key.trim(), value.trim());
            let bad = |what: &str| ObsError::Config {
                line: lineno,
                detail: format!("invalid {what} value `{value}` for `{key}`"),
            };
            match key {
                "counter_drop_pct" => {
                    t.counter_drop_pct = parse_pct(value).ok_or_else(|| bad("percentage"))?;
                }
                "counter_rise_pct" => {
                    t.counter_rise_pct = parse_pct(value).ok_or_else(|| bad("percentage"))?;
                }
                "counter_floor" => {
                    t.counter_floor = value.parse().map_err(|_| bad("integer"))?;
                }
                "rate_drop" => {
                    t.rate_drop = parse_pct(value).ok_or_else(|| bad("number"))?;
                }
                "quantile_shift" => {
                    t.quantile_shift = parse_pct(value).ok_or_else(|| bad("number"))?;
                }
                "prof_counter_rise_pct" => {
                    t.prof_counter_rise_pct = parse_pct(value).ok_or_else(|| bad("percentage"))?;
                }
                "prof_contention_rise" => {
                    t.prof_contention_rise = parse_pct(value).ok_or_else(|| bad("number"))?;
                }
                "decision_flips" => {
                    t.decision_flips = value.parse().map_err(|_| bad("integer"))?;
                }
                _ => {
                    return Err(ObsError::Config {
                        line: lineno,
                        detail: format!("unknown key `{key}`"),
                    });
                }
            }
        }
        Ok(t)
    }

    /// Load thresholds from a file.
    pub fn from_file(path: &str) -> Result<DiffThresholds, ObsError> {
        let text = std::fs::read_to_string(path).map_err(|e| ObsError::Io {
            path: path.to_string(),
            detail: e.to_string(),
        })?;
        DiffThresholds::parse(&text)
    }
}

/// A finite, non-negative float — thresholds have no use for NaN,
/// infinities, or negatives.
fn parse_pct(s: &str) -> Option<f64> {
    let v: f64 = s.parse().ok()?;
    if v.is_finite() && v >= 0.0 {
        Some(v)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_text_yields_defaults() {
        assert_eq!(
            DiffThresholds::parse("").ok(),
            Some(DiffThresholds::default())
        );
    }

    #[test]
    fn full_file_round_trips() {
        let text = "\
# thresholds
[diff]
counter_drop_pct = 15.5   # loose
counter_rise_pct = 80
counter_floor = 5
rate_drop = 0.1
quantile_shift = 2.0
prof_counter_rise_pct = 120
prof_contention_rise = 0.2
decision_flips = 1
";
        let t = match DiffThresholds::parse(text) {
            Ok(t) => t,
            Err(e) => panic!("parse failed: {e}"),
        };
        assert_eq!(t.counter_drop_pct, 15.5);
        assert_eq!(t.counter_rise_pct, 80.0);
        assert_eq!(t.counter_floor, 5);
        assert_eq!(t.rate_drop, 0.1);
        assert_eq!(t.quantile_shift, 2.0);
        assert_eq!(t.prof_counter_rise_pct, 120.0);
        assert_eq!(t.prof_contention_rise, 0.2);
        assert_eq!(t.decision_flips, 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        match DiffThresholds::parse("counter_drop_pct = 10\nbogus_key = 3\n") {
            Err(ObsError::Config { line, detail }) => {
                assert_eq!(line, 2);
                assert!(detail.contains("bogus_key"));
            }
            other => panic!("expected Config error, got {other:?}"),
        }
        match DiffThresholds::parse("[nope]\n") {
            Err(ObsError::Config { line, .. }) => assert_eq!(line, 1),
            other => panic!("expected Config error, got {other:?}"),
        }
        match DiffThresholds::parse("rate_drop = NaN\n") {
            Err(ObsError::Config { line, .. }) => assert_eq!(line, 1),
            other => panic!("expected Config error, got {other:?}"),
        }
        match DiffThresholds::parse("counter_floor = -3\n") {
            Err(ObsError::Config { line, .. }) => assert_eq!(line, 1),
            other => panic!("expected Config error, got {other:?}"),
        }
    }
}
