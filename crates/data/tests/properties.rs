//! Property-based tests for dataset generation.

use webiq_data::{generate_domain, gold, kb, GenOptions, Interface};
use webiq_html::form::extract_forms;
use webiq_rng::prop;

/// Any seed yields a structurally valid dataset for every domain.
#[test]
fn any_seed_valid() {
    prop::cases(24, |rng| {
        let seed = rng.next_u64();
        for def in kb::all_domains() {
            let ds = generate_domain(
                def,
                &GenOptions {
                    seed,
                    ..GenOptions::default()
                },
            );
            assert_eq!(ds.interfaces.len(), 20);
            for i in &ds.interfaces {
                assert!(i.attributes.len() >= 2);
                for a in &i.attributes {
                    assert!(!a.label.is_empty());
                    assert!(!a.name.is_empty());
                    assert!(def.concept(&a.concept).is_some());
                }
            }
        }
    });
}

/// HTML round-trip preserves every interface's schema for any seed.
#[test]
fn html_roundtrip_any_seed() {
    prop::cases(24, |rng| {
        let seed = rng.next_u64();
        let def = kb::domain("airfare").expect("domain");
        let ds = generate_domain(
            def,
            &GenOptions {
                seed,
                ..GenOptions::default()
            },
        );
        for iface in &ds.interfaces {
            let html = iface.to_html();
            let forms = extract_forms(&html);
            assert_eq!(forms.len(), 1);
            let mut parsed =
                Interface::from_extracted(iface.id, &iface.domain, &iface.site, &forms[0]);
            parsed.adopt_concepts_from(iface);
            assert_eq!(parsed.attributes.len(), iface.attributes.len());
            for (p, o) in parsed.attributes.iter().zip(&iface.attributes) {
                assert_eq!(&p.name, &o.name);
                assert_eq!(&p.label, &o.label);
                assert_eq!(&p.instances, &o.instances);
                assert_eq!(&p.concept, &o.concept);
            }
        }
    });
}

/// Gold clusters always partition the attribute set.
#[test]
fn gold_partitions() {
    prop::cases(24, |rng| {
        let seed = rng.next_u64();
        let def = kb::domain("job").expect("domain");
        let ds = generate_domain(
            def,
            &GenOptions {
                seed,
                ..GenOptions::default()
            },
        );
        let clusters = gold::gold_clusters(&ds);
        let total: usize = clusters.iter().map(Vec::len).sum();
        assert_eq!(total, ds.attr_count());
    });
}
