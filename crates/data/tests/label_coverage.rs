//! Cross-crate invariant: every label in every knowledge base (paper +
//! extension domains) is analysable by the NLP substrate — it classifies
//! into one of the §2.1 forms, and noun-phrase labels produce non-empty
//! cue phrases.

use webiq_data::kb;
use webiq_nlp::{classify_label, LabelForm};

#[test]
fn every_kb_label_classifies() {
    for def in kb::extended_domains() {
        for concept in def.concepts {
            for label in concept.labels {
                let form = classify_label(label);
                assert!(
                    !matches!(form, LabelForm::Other),
                    "{}/{}: label {label:?} classified as Other",
                    def.key,
                    concept.key
                );
            }
        }
    }
}

#[test]
fn noun_phrase_labels_pluralize_sanely() {
    for def in kb::extended_domains() {
        for concept in def.concepts {
            for label in concept.labels {
                if let LabelForm::NounPhrase(np) = classify_label(label) {
                    let plural = np.plural_text();
                    assert!(!plural.is_empty(), "{label:?} → empty plural");
                    assert!(
                        plural.split_whitespace().count() >= np.words.len(),
                        "{label:?} → {plural:?} lost words"
                    );
                }
            }
        }
    }
}

#[test]
fn instance_pools_have_no_blank_values() {
    for def in kb::extended_domains() {
        for concept in def.concepts {
            for v in concept.instances.iter().chain(concept.instances_alt) {
                assert!(
                    !v.trim().is_empty(),
                    "{}/{} has a blank instance",
                    def.key,
                    concept.key
                );
                assert!(
                    v.len() < 60,
                    "{}/{}: instance {v:?} overlong",
                    def.key,
                    concept.key
                );
            }
        }
    }
}
