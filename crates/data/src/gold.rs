//! Gold-standard matches.
//!
//! The generator stamps each attribute with its concept key; attributes
//! sharing a key match. Evaluation compares a matcher's output clusters
//! against these via pairwise precision/recall (the metrics of §6).

use std::collections::{BTreeMap, BTreeSet};

use crate::interface::{AttrRef, Dataset};

/// Gold clusters: one per concept (only concepts with ≥ 1 attribute).
pub fn gold_clusters(ds: &Dataset) -> Vec<Vec<AttrRef>> {
    let mut by_concept: BTreeMap<&str, Vec<AttrRef>> = BTreeMap::new();
    for (r, a) in ds.attributes() {
        by_concept.entry(a.concept.as_str()).or_default().push(r);
    }
    by_concept.into_values().collect()
}

/// The set of gold matching pairs (unordered, stored with the smaller
/// `AttrRef` first).
pub fn gold_pairs(ds: &Dataset) -> BTreeSet<(AttrRef, AttrRef)> {
    let mut pairs = BTreeSet::new();
    for cluster in gold_clusters(ds) {
        for i in 0..cluster.len() {
            for j in i + 1..cluster.len() {
                pairs.insert(ordered(cluster[i], cluster[j]));
            }
        }
    }
    pairs
}

/// Normalise a pair to `(min, max)` order.
pub fn ordered(a: AttrRef, b: AttrRef) -> (AttrRef, AttrRef) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Pairs induced by arbitrary clusters (matcher output), normalised the
/// same way so sets compare directly with [`gold_pairs`].
pub fn cluster_pairs(clusters: &[Vec<AttrRef>]) -> BTreeSet<(AttrRef, AttrRef)> {
    let mut pairs = BTreeSet::new();
    for cluster in clusters {
        for i in 0..cluster.len() {
            for j in i + 1..cluster.len() {
                pairs.insert(ordered(cluster[i], cluster[j]));
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_domain, GenOptions};
    use crate::kb;

    #[test]
    fn clusters_partition_all_attributes() {
        let ds = generate_domain(kb::domain("auto").expect("d"), &GenOptions::default());
        let clusters = gold_clusters(&ds);
        let total: usize = clusters.iter().map(Vec::len).sum();
        assert_eq!(total, ds.attr_count());
        // no AttrRef appears twice
        let mut seen = BTreeSet::new();
        for c in &clusters {
            for r in c {
                assert!(seen.insert(*r));
            }
        }
    }

    #[test]
    fn pairs_are_normalized_and_symmetric_free() {
        let ds = generate_domain(kb::domain("book").expect("d"), &GenOptions::default());
        for (a, b) in gold_pairs(&ds) {
            assert!(a < b);
        }
    }

    #[test]
    fn cluster_pairs_of_gold_equals_gold_pairs() {
        let ds = generate_domain(kb::domain("job").expect("d"), &GenOptions::default());
        assert_eq!(cluster_pairs(&gold_clusters(&ds)), gold_pairs(&ds));
    }

    #[test]
    fn pair_count_formula() {
        let clusters = vec![vec![(0, 0), (1, 0), (2, 0)], vec![(0, 1), (1, 1)]];
        assert_eq!(cluster_pairs(&clusters).len(), 3 + 1);
    }

    #[test]
    fn ordered_normalizes() {
        assert_eq!(ordered((1, 0), (0, 0)), ((0, 0), (1, 0)));
        assert_eq!(ordered((0, 0), (1, 0)), ((0, 0), (1, 0)));
    }
}
