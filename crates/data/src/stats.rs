//! Dataset characteristics — Table 1, columns 2–5.

use crate::interface::Dataset;
use crate::kb::DomainDef;

/// The per-domain characteristics reported in Table 1 of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct Characteristics {
    /// Column 2: average number of attributes per interface.
    pub avg_attrs: f64,
    /// Column 3: % of interfaces containing at least one attribute without
    /// instances.
    pub pct_interfaces_no_inst: f64,
    /// Column 4: among those interfaces, % of attributes without instances.
    pub pct_attrs_no_inst: f64,
    /// Column 5: among attributes without instances, % whose instances can
    /// reasonably be expected on the Surface Web.
    pub pct_expected_on_web: f64,
}

/// Compute the Table-1 characteristics of a generated dataset.
///
/// Column 5 needs the domain definition: whether instances of an attribute
/// can be *expected* on the Web is a property of its concept (generic
/// attributes like `keyword` cannot), which the paper assessed manually and
/// we record as [`crate::kb::ConceptDef::expect_web`].
pub fn characteristics(ds: &Dataset, def: &DomainDef) -> Characteristics {
    let n_interfaces = ds.interfaces.len().max(1);
    let avg_attrs = ds.attr_count() as f64 / n_interfaces as f64;

    let with_noinst: Vec<_> = ds
        .interfaces
        .iter()
        .filter(|i| i.attrs_without_instances() > 0)
        .collect();
    let pct_interfaces_no_inst = 100.0 * with_noinst.len() as f64 / n_interfaces as f64;

    let (mut attrs_in_those, mut noinst_in_those) = (0usize, 0usize);
    let (mut noinst_total, mut noinst_expected) = (0usize, 0usize);
    for i in &with_noinst {
        attrs_in_those += i.attributes.len();
        noinst_in_those += i.attrs_without_instances();
        for a in &i.attributes {
            if !a.has_instances() {
                noinst_total += 1;
                if def.concept(&a.concept).is_some_and(|c| c.expect_web) {
                    noinst_expected += 1;
                }
            }
        }
    }
    let pct_attrs_no_inst = if attrs_in_those == 0 {
        0.0
    } else {
        100.0 * noinst_in_those as f64 / attrs_in_those as f64
    };
    let pct_expected_on_web = if noinst_total == 0 {
        0.0
    } else {
        100.0 * noinst_expected as f64 / noinst_total as f64
    };

    Characteristics {
        avg_attrs,
        pct_interfaces_no_inst,
        pct_attrs_no_inst,
        pct_expected_on_web,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_domain, GenOptions};
    use crate::kb;

    /// Table 1 of the paper; the generated datasets must land near these.
    /// Tolerances account for 20-interface sampling noise.
    #[test]
    fn generated_datasets_match_table1_profile() {
        let targets = [
            // (domain, avg_attrs, int_no_inst%, attr_no_inst%, exp_inst%)
            ("airfare", 10.7, 85.0, 32.2, 100.0),
            ("auto", 5.1, 95.0, 28.1, 100.0),
            ("book", 5.4, 85.0, 38.6, 98.0),
            ("job", 4.6, 100.0, 74.6, 83.1),
            ("realestate", 6.5, 95.0, 30.0, 66.7),
        ];
        for (key, avg, int_ni, attr_ni, exp) in targets {
            let def = kb::domain(key).expect("domain");
            let ds = generate_domain(def, &GenOptions::default());
            let c = characteristics(&ds, def);
            assert!(
                (c.avg_attrs - avg).abs() <= 1.5,
                "{key}: avg_attrs {:.1} vs {avg}",
                c.avg_attrs
            );
            assert!(
                (c.pct_interfaces_no_inst - int_ni).abs() <= 16.0,
                "{key}: IntNoInst {:.1} vs {int_ni}",
                c.pct_interfaces_no_inst
            );
            assert!(
                (c.pct_attrs_no_inst - attr_ni).abs() <= 12.0,
                "{key}: AttrNoInst {:.1} vs {attr_ni}",
                c.pct_attrs_no_inst
            );
            assert!(
                (c.pct_expected_on_web - exp).abs() <= 15.0,
                "{key}: ExpInst {:.1} vs {exp}",
                c.pct_expected_on_web
            );
        }
    }

    #[test]
    fn empty_dataset_is_safe() {
        let ds = Dataset {
            domain: "airfare".into(),
            interfaces: vec![],
        };
        let def = kb::domain("airfare").expect("domain");
        let c = characteristics(&ds, def);
        assert_eq!(c.avg_attrs, 0.0);
        assert_eq!(c.pct_interfaces_no_inst, 0.0);
        assert_eq!(c.pct_attrs_no_inst, 0.0);
    }

    #[test]
    fn job_is_most_instance_poor() {
        let opts = GenOptions::default();
        let mut worst = ("", 0.0f64);
        for def in kb::all_domains() {
            let ds = generate_domain(def, &opts);
            let c = characteristics(&ds, def);
            if c.pct_attrs_no_inst > worst.1 {
                worst = (def.key, c.pct_attrs_no_inst);
            }
        }
        assert_eq!(worst.0, "job", "job must be the most instance-poor domain");
    }
}
