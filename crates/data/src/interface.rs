//! The query-interface (schema) model.
//!
//! An interface is a web form; its attributes have a label, an optional set
//! of pre-defined instances, and — for evaluation only — the gold concept
//! key assigned by the generator. Interfaces render to HTML and can be
//! re-extracted from HTML, exercising the same parse path a crawler over
//! real Deep-Web sources would run.

use webiq_html::form::{ExtractedForm, FieldKind};

/// Reference to an attribute: `(interface index, attribute index)`.
pub type AttrRef = (usize, usize);

/// One attribute of a query interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Form-control name (the submitted parameter).
    pub name: String,
    /// Human-readable label.
    pub label: String,
    /// Gold concept key (generator-assigned; **evaluation only** — the
    /// matcher never reads this).
    pub concept: String,
    /// Pre-defined instances; empty for free-text controls.
    pub instances: Vec<String>,
    /// Default value, if any.
    pub default: Option<String>,
}

impl Attribute {
    /// Does the attribute carry pre-defined instances?
    pub fn has_instances(&self) -> bool {
        !self.instances.is_empty()
    }
}

/// A query interface (one Deep-Web source's form).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interface {
    /// Index within the dataset.
    pub id: usize,
    /// Domain key.
    pub domain: String,
    /// Source (site) name.
    pub site: String,
    /// Attributes in form order.
    pub attributes: Vec<Attribute>,
}

impl Interface {
    /// Number of attributes without pre-defined instances.
    pub fn attrs_without_instances(&self) -> usize {
        self.attributes
            .iter()
            .filter(|a| !a.has_instances())
            .count()
    }

    /// Render the interface as an HTML form page.
    pub fn to_html(&self) -> String {
        let mut html = String::with_capacity(512);
        html.push_str("<html><head><title>");
        html.push_str(&webiq_html::entities::encode(&self.site));
        html.push_str("</title></head><body><form action=\"/search\" method=\"get\">\n");
        for a in &self.attributes {
            let label = webiq_html::entities::encode(&a.label);
            let name = webiq_html::entities::encode(&a.name);
            if a.has_instances() {
                html.push_str(&format!("{label}: <select name=\"{name}\">\n"));
                html.push_str("<option>-- select --</option>\n");
                for inst in &a.instances {
                    let v = webiq_html::entities::encode(inst);
                    if a.default.as_deref() == Some(inst.as_str()) {
                        html.push_str(&format!("<option selected>{v}</option>\n"));
                    } else {
                        html.push_str(&format!("<option>{v}</option>\n"));
                    }
                }
                html.push_str("</select><br>\n");
            } else {
                match &a.default {
                    Some(d) => html.push_str(&format!(
                        "{label}: <input type=\"text\" name=\"{name}\" value=\"{}\"><br>\n",
                        webiq_html::entities::encode(d)
                    )),
                    None => html.push_str(&format!(
                        "{label}: <input type=\"text\" name=\"{name}\"><br>\n"
                    )),
                }
            }
        }
        html.push_str("<input type=\"submit\" value=\"Search\">\n</form></body></html>");
        html
    }

    /// Reconstruct an interface from an extracted HTML form. Gold concept
    /// keys are unknown from markup alone and left empty; callers holding
    /// the generated dataset can restore them by control name with
    /// [`Interface::adopt_concepts_from`].
    pub fn from_extracted(id: usize, domain: &str, site: &str, form: &ExtractedForm) -> Self {
        let attributes = form
            .fields
            .iter()
            .filter(|f| f.kind != FieldKind::Hidden)
            .map(|f| Attribute {
                name: f.name.clone(),
                label: f.label.clone(),
                concept: String::new(),
                instances: f.options.clone(),
                default: f.default.clone(),
            })
            .collect();
        Interface {
            id,
            domain: domain.to_string(),
            site: site.to_string(),
            attributes,
        }
    }

    /// Copy gold concept keys from `reference` by matching control names.
    pub fn adopt_concepts_from(&mut self, reference: &Interface) {
        for a in &mut self.attributes {
            if let Some(r) = reference.attributes.iter().find(|r| r.name == a.name) {
                a.concept = r.concept.clone();
            }
        }
    }
}

/// A generated dataset: all interfaces of one domain.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Domain key.
    pub domain: String,
    /// The interfaces.
    pub interfaces: Vec<Interface>,
}

impl Dataset {
    /// All attributes as `(AttrRef, &Attribute)` in dataset order.
    pub fn attributes(&self) -> impl Iterator<Item = (AttrRef, &Attribute)> {
        self.interfaces
            .iter()
            .enumerate()
            .flat_map(|(i, interface)| {
                interface
                    .attributes
                    .iter()
                    .enumerate()
                    .map(move |(j, a)| ((i, j), a))
            })
    }

    /// Attribute by reference.
    pub fn attribute(&self, r: AttrRef) -> Option<&Attribute> {
        self.interfaces.get(r.0).and_then(|i| i.attributes.get(r.1))
    }

    /// Total number of attributes.
    pub fn attr_count(&self) -> usize {
        self.interfaces.iter().map(|i| i.attributes.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webiq_html::form::extract_forms;

    fn sample() -> Interface {
        Interface {
            id: 0,
            domain: "airfare".into(),
            site: "SkyQuest Travel".into(),
            attributes: vec![
                Attribute {
                    name: "from".into(),
                    label: "From city".into(),
                    concept: "from_city".into(),
                    instances: vec![],
                    default: None,
                },
                Attribute {
                    name: "airline".into(),
                    label: "Airline".into(),
                    concept: "airline".into(),
                    instances: vec!["Delta".into(), "United".into()],
                    default: Some("Delta".into()),
                },
            ],
        }
    }

    #[test]
    fn html_roundtrip_preserves_schema() {
        let original = sample();
        let html = original.to_html();
        let forms = extract_forms(&html);
        assert_eq!(forms.len(), 1);
        let mut parsed = Interface::from_extracted(0, "airfare", "SkyQuest Travel", &forms[0]);
        parsed.adopt_concepts_from(&original);

        assert_eq!(parsed.attributes.len(), 2);
        assert_eq!(parsed.attributes[0].label, "From city");
        assert_eq!(parsed.attributes[0].name, "from");
        assert!(!parsed.attributes[0].has_instances());
        assert_eq!(parsed.attributes[1].instances, vec!["Delta", "United"]);
        assert_eq!(parsed.attributes[1].default.as_deref(), Some("Delta"));
        assert_eq!(parsed.attributes[1].concept, "airline");
    }

    #[test]
    fn attrs_without_instances_counts() {
        assert_eq!(sample().attrs_without_instances(), 1);
    }

    #[test]
    fn dataset_iteration() {
        let ds = Dataset {
            domain: "airfare".into(),
            interfaces: vec![sample(), sample()],
        };
        assert_eq!(ds.attr_count(), 4);
        assert_eq!(ds.attributes().count(), 4);
        let ((i, j), a) = ds.attributes().nth(3).expect("4 attrs");
        assert_eq!((i, j), (1, 1));
        assert_eq!(a.name, "airline");
        assert!(ds.attribute((1, 1)).is_some());
        assert!(ds.attribute((2, 0)).is_none());
    }

    #[test]
    fn html_escapes_special_chars() {
        let mut iface = sample();
        iface.attributes[0].label = "From <city> & more".into();
        let html = iface.to_html();
        assert!(html.contains("From &lt;city&gt; &amp; more"));
    }
}
