//! Mapping domain knowledge bases to Surface-Web corpus specifications.
//!
//! The simulated Web discusses each concept under its noun-phrase
//! lexicalizations. Label variants that are not noun phrases (`From`,
//! `Depart from`) produce no lexicalization — the Web does not write
//! "*froms such as Boston*" — which is precisely why those labels are hard
//! for Surface extraction (§6, airfare discussion).

use webiq_nlp::chunk::{classify_label, LabelForm};
use webiq_web::gen::ConceptSpec;

use crate::kb::{ConceptDef, DomainDef};

/// Lexicalizations of a concept: the noun phrases among its label variants,
/// lowercased (the text form WebIQ's own label analysis would extract).
pub fn lexicalizations(concept: &ConceptDef) -> Vec<String> {
    let mut out = Vec::new();
    for label in concept.labels {
        let np_text = match classify_label(label) {
            LabelForm::NounPhrase(np) => Some(np.text()),
            // the Web talks about the NP inside a prepositional label
            LabelForm::PrepPhrase { np: Some(np), .. } => Some(np.text()),
            LabelForm::VerbPhrase { np: Some(np), .. } => Some(np.text()),
            LabelForm::Conjunction(nps) => nps.first().map(webiq_nlp::NounPhrase::text),
            _ => None,
        };
        if let Some(t) = np_text {
            if !out.contains(&t) {
                out.push(t);
            }
        }
    }
    out
}

/// Build the corpus concept spec for one KB concept. Returns `None` when
/// the concept has no noun-phrase lexicalization or no instances — the Web
/// simply does not enumerate such things.
pub fn concept_spec(def: &DomainDef, concept: &ConceptDef) -> Option<ConceptSpec> {
    let lexicalizations = lexicalizations(concept);
    if lexicalizations.is_empty() {
        return None;
    }
    // The Web knows the union of both regional pools; interleave them so
    // both regions share the head of the popularity (Zipf) ranking — the
    // real Web talks about Aer Lingus as much as about Air Canada.
    let mut instances: Vec<String> = Vec::new();
    let (a, b) = (concept.instances, concept.instances_alt);
    for i in 0..a.len().max(b.len()) {
        if let Some(v) = a.get(i) {
            instances.push((*v).to_string());
        }
        if let Some(v) = b.get(i) {
            instances.push((*v).to_string());
        }
    }
    if instances.is_empty() {
        return None;
    }
    Some(ConceptSpec {
        key: format!("{}/{}", def.key, concept.key),
        lexicalizations,
        object: def.object.to_string(),
        domain_terms: def.domain_terms.iter().map(|s| (*s).to_string()).collect(),
        instances,
        confusers: concept.confusers.iter().map(|s| (*s).to_string()).collect(),
        richness: concept.web_richness,
    })
}

/// Corpus specs for every concept of a domain (skipping Web-invisible
/// concepts).
pub fn concept_specs(def: &DomainDef) -> Vec<ConceptSpec> {
    def.concepts
        .iter()
        .filter_map(|c| concept_spec(def, c))
        .collect()
}

/// Corpus specs across all five domains — the full simulated Web.
pub fn all_concept_specs() -> Vec<ConceptSpec> {
    crate::kb::all_domains()
        .iter()
        .flat_map(|d| concept_specs(d))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb;

    #[test]
    fn prepositional_labels_contribute_inner_np() {
        let def = kb::domain("airfare").expect("domain");
        let from_city = def.concept("from_city").expect("concept");
        let lex = lexicalizations(from_city);
        // "From" contributes nothing; "From city" contributes "city".
        assert!(lex.contains(&"city".to_string()), "{lex:?}");
        assert!(lex.contains(&"departure city".to_string()), "{lex:?}");
        assert!(!lex.contains(&"from".to_string()));
    }

    #[test]
    fn keyword_concept_is_web_invisible() {
        let def = kb::domain("book").expect("domain");
        let kw = def.concept("keyword").expect("concept");
        assert!(concept_spec(def, kw).is_none());
    }

    #[test]
    fn airline_spec_merges_pools() {
        let def = kb::domain("airfare").expect("domain");
        let airline = def.concept("airline").expect("concept");
        let spec = concept_spec(def, airline).expect("spec");
        assert!(spec.instances.contains(&"Delta".to_string()));
        assert!(spec.instances.contains(&"Aer Lingus".to_string()));
        assert!(spec.lexicalizations.contains(&"airline".to_string()));
        assert!(spec.lexicalizations.contains(&"carrier".to_string()));
    }

    #[test]
    fn all_domains_produce_specs() {
        let specs = all_concept_specs();
        assert!(specs.len() >= 30, "got {}", specs.len());
        // keys are unique
        let mut keys: Vec<&str> = specs.iter().map(|s| s.key.as_str()).collect();
        let n = keys.len();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), n);
    }

    #[test]
    fn class_of_service_lexicalization() {
        let def = kb::domain("airfare").expect("domain");
        let cabin = def.concept("cabin").expect("concept");
        let lex = lexicalizations(cabin);
        assert!(lex.contains(&"class of service".to_string()), "{lex:?}");
    }
}
