//! # webiq-data — domain knowledge bases and the ICQ-profile dataset
//!
//! The paper evaluates over the ICQ dataset: five real-world domains
//! (airfare, automobile, book, job, real estate) with 20 query interfaces
//! each. That dataset is not available, so this crate *regenerates* its
//! statistical profile from per-domain knowledge bases (see DESIGN.md §2):
//!
//! - [`kb`] — the five domain definitions: concepts, label variants
//!   (including the hard prepositional/verb-phrase/ambiguous forms the
//!   paper discusses), instance pools (with the North-American/European
//!   airline split), and generation parameters tuned to Table 1;
//! - [`interface`] — the interface/attribute model, HTML rendering, and
//!   HTML re-extraction;
//! - [`generate`] — the dataset generator (20 interfaces per domain,
//!   deterministic in the seed);
//! - [`gold`] — gold-standard match clusters and pairs;
//! - [`stats`] — Table-1 characteristics of a generated dataset;
//! - [`records`] — backend record stores and simulated Deep-Web sources
//!   per interface;
//! - [`corpus`] — mapping from knowledge bases to the Surface-Web corpus
//!   generator's concept specifications;
//! - [`export`] — persist a generated benchmark as on-disk HTML pages +
//!   gold file, and re-import it through the real extraction path.
#![forbid(unsafe_code)]

pub mod corpus;
pub mod export;
pub mod generate;
pub mod gold;
pub mod interface;
pub mod kb;
pub mod records;
pub mod stats;

pub use generate::{generate_all, generate_domain, GenOptions};
pub use interface::{AttrRef, Attribute, Dataset, Interface};
pub use kb::{all_domains, domain, ConceptDef, DomainDef};
