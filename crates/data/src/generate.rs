//! ICQ-profile dataset generation.
//!
//! Emits, per domain, the 20 query interfaces the paper's ICQ dataset
//! provides, with the statistical profile of Table 1: average attribute
//! counts, the prevalence of instance-less attributes, label heterogeneity
//! (hard prepositional/verb-phrase variants included), and the
//! disjoint-instance split for concepts with two regional pools.

use webiq_rng::{SliceRandom, StdRng};

use crate::interface::{Attribute, Dataset, Interface};
use crate::kb::{ConceptDef, DomainDef};

/// Generation options.
#[derive(Debug, Clone)]
pub struct GenOptions {
    /// RNG seed (per-domain generation derives sub-seeds from it).
    pub seed: u64,
    /// Number of interfaces per domain (the ICQ dataset has 20).
    pub interfaces: usize,
    /// Range of pre-defined instances sampled for a select attribute.
    pub select_min: usize,
    /// Upper bound of the select sample.
    pub select_max: usize,
    /// Probability that an *instance-less* attribute occurrence uses one
    /// of its concept's hard (zero-word-overlap) label variants.
    pub hard_label_rate: f64,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            seed: 0x1ce0,
            interfaces: 20,
            select_min: 4,
            select_max: 10,
            hard_label_rate: 0.5,
        }
    }
}

/// Pick an item with a bias toward the front of the list (weight 1/(i+1)).
fn front_biased<'a>(rng: &mut StdRng, items: &[&'a str]) -> &'a str {
    debug_assert!(!items.is_empty());
    let weights: Vec<f64> = (0..items.len()).map(|i| 1.0 / (i as f64 + 1.0)).collect();
    let total: f64 = weights.iter().sum();
    let mut roll = rng.gen_range(0.0..total);
    for (item, w) in items.iter().zip(&weights) {
        if roll < *w {
            return item;
        }
        roll -= w;
    }
    items.last().copied().unwrap_or("")
}

/// Which instance pool does site `site_idx` use for `concept`?
/// Sites are split into two halves when an alternative pool exists —
/// reproducing the paper's `Airline` (North American) vs. `Carrier`
/// (European) disjoint-instances effect.
pub fn site_pool(concept: &ConceptDef, site_idx: usize) -> &[&str] {
    if !concept.instances_alt.is_empty() && site_idx % 2 == 1 {
        concept.instances_alt
    } else {
        concept.instances
    }
}

/// Generate one attribute occurrence of `concept` for site `site_idx`.
fn generate_attribute(
    rng: &mut StdRng,
    concept: &ConceptDef,
    site_idx: usize,
    all_select: bool,
    opts: &GenOptions,
) -> Attribute {
    let name = concept
        .control_names
        .choose(rng)
        .copied()
        .unwrap_or(concept.key)
        .to_string();
    let pool = site_pool(concept, site_idx);
    let selectable = !pool.is_empty();
    let is_select = selectable && (all_select || rng.gen_bool(concept.select_prob));

    // Label choice models the paper's two difficulty classes. (1) Hard
    // variants (zero word overlap with the canonical label) concentrate on
    // *instance-less* occurrences — `From`, `Depart from`, `Position`. (2)
    // Sites drawing from the alternative regional pool use the regional
    // synonym — `Carrier` with European airlines vs. `Airline` with North
    // American ones — so neither labels nor instances bridge the halves.
    let hard_start = concept.hard_from.min(concept.labels.len());
    let (normal, hard) = concept.labels.split_at(hard_start);
    let uses_alt_pool = !concept.instances_alt.is_empty() && site_idx % 2 == 1;
    let label = if !hard.is_empty()
        && (uses_alt_pool || (!is_select && rng.gen_bool(opts.hard_label_rate)))
    {
        hard.choose(rng).copied().unwrap_or(concept.key)
    } else if normal.is_empty() {
        front_biased(rng, concept.labels)
    } else {
        front_biased(rng, normal)
    }
    .to_string();
    let mut instances = Vec::new();
    let mut default = None;
    if is_select {
        let n = rng
            .gen_range(opts.select_min..=opts.select_max)
            .min(pool.len());
        let mut chosen: Vec<&str> = pool.choose_multiple(rng, n).copied().collect();
        // keep the pool's canonical order for determinism of display
        chosen.sort_by_key(|v| pool.iter().position(|p| p == v));
        instances = chosen.iter().map(|s| (*s).to_string()).collect();
        if rng.gen_bool(0.3) {
            default = instances.first().cloned();
        }
    }
    Attribute {
        name,
        label,
        concept: concept.key.to_string(),
        instances,
        default,
    }
}

/// Generate the dataset for one domain.
pub fn generate_domain(def: &DomainDef, opts: &GenOptions) -> Dataset {
    let mut rng = StdRng::seed_from_u64(opts.seed ^ hash_key(def.key));
    let mut interfaces = Vec::with_capacity(opts.interfaces);
    for i in 0..opts.interfaces {
        let site = def.site_names[i % def.site_names.len()].to_string();
        let all_select = rng.gen_bool(def.all_select_rate);
        let mut attributes = Vec::new();
        for concept in def.concepts {
            if !rng.gen_bool(concept.frequency) {
                continue;
            }
            attributes.push(generate_attribute(&mut rng, concept, i, all_select, opts));
        }
        // An interface needs at least two attributes to be a query form.
        while attributes.len() < 2 && !def.concepts.is_empty() {
            let Some(concept) = def.concepts.choose(&mut rng) else {
                break;
            };
            if attributes.iter().any(|a| a.concept == concept.key) {
                continue;
            }
            attributes.push(generate_attribute(&mut rng, concept, i, all_select, opts));
        }
        interfaces.push(Interface {
            id: i,
            domain: def.key.to_string(),
            site,
            attributes,
        });
    }
    Dataset {
        domain: def.key.to_string(),
        interfaces,
    }
}

/// Generate all five domains.
pub fn generate_all(opts: &GenOptions) -> Vec<Dataset> {
    crate::kb::all_domains()
        .iter()
        .map(|d| generate_domain(d, opts))
        .collect()
}

/// FNV-1a hash of a domain key, for seed derivation.
fn hash_key(key: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in key.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb;

    #[test]
    fn generates_requested_interface_count() {
        let ds = generate_domain(
            kb::domain("airfare").expect("domain"),
            &GenOptions::default(),
        );
        assert_eq!(ds.interfaces.len(), 20);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = kb::domain("book").expect("domain");
        let a = generate_domain(d, &GenOptions::default());
        let b = generate_domain(d, &GenOptions::default());
        assert_eq!(a.interfaces, b.interfaces);
    }

    #[test]
    fn different_seeds_differ() {
        let d = kb::domain("book").expect("domain");
        let a = generate_domain(
            d,
            &GenOptions {
                seed: 1,
                ..GenOptions::default()
            },
        );
        let b = generate_domain(
            d,
            &GenOptions {
                seed: 2,
                ..GenOptions::default()
            },
        );
        assert_ne!(a.interfaces, b.interfaces);
    }

    #[test]
    fn every_interface_has_at_least_two_attributes() {
        for ds in generate_all(&GenOptions::default()) {
            for i in &ds.interfaces {
                assert!(i.attributes.len() >= 2, "{}: interface {}", ds.domain, i.id);
            }
        }
    }

    #[test]
    fn attribute_labels_come_from_kb() {
        let def = kb::domain("auto").expect("domain");
        let ds = generate_domain(def, &GenOptions::default());
        for (_, a) in ds.attributes() {
            let c = def.concept(&a.concept).expect("gold concept exists in KB");
            assert!(
                c.labels.contains(&a.label.as_str()),
                "{} not a label of {}",
                a.label,
                c.key
            );
        }
    }

    #[test]
    fn select_instances_come_from_site_pool() {
        let def = kb::domain("airfare").expect("domain");
        let ds = generate_domain(def, &GenOptions::default());
        for (r, a) in ds.attributes() {
            if a.concept == "airline" && a.has_instances() {
                let c = def.concept("airline").expect("concept");
                let pool = site_pool(c, r.0);
                for inst in &a.instances {
                    assert!(pool.contains(&inst.as_str()), "{inst} not in site pool");
                }
            }
        }
    }

    #[test]
    fn airline_pools_split_across_sites() {
        let def = kb::domain("airfare").expect("domain");
        let ds = generate_domain(def, &GenOptions::default());
        let mut saw_na = false;
        let mut saw_eu = false;
        for (r, a) in ds.attributes() {
            if a.concept == "airline" && a.has_instances() {
                if r.0 % 2 == 0 {
                    saw_na = true;
                    assert!(a
                        .instances
                        .iter()
                        .all(|i| kb::pools::AIRLINES_NA.contains(&i.as_str())));
                } else {
                    saw_eu = true;
                    assert!(a
                        .instances
                        .iter()
                        .all(|i| kb::pools::AIRLINES_EU.contains(&i.as_str())));
                }
            }
        }
        assert!(saw_na && saw_eu, "both pools must be exercised");
    }

    #[test]
    fn no_duplicate_concepts_within_interface() {
        for ds in generate_all(&GenOptions::default()) {
            for i in &ds.interfaces {
                let mut keys: Vec<&str> = i.attributes.iter().map(|a| a.concept.as_str()).collect();
                let n = keys.len();
                keys.sort_unstable();
                keys.dedup();
                assert_eq!(keys.len(), n, "{}: interface {}", ds.domain, i.id);
            }
        }
    }

    #[test]
    fn select_sample_sizes_respect_bounds() {
        let opts = GenOptions::default();
        for ds in generate_all(&opts) {
            for (_, a) in ds.attributes() {
                if a.has_instances() {
                    assert!(a.instances.len() <= opts.select_max);
                }
            }
        }
    }
}
