//! Domain knowledge bases.
//!
//! Each of the paper's five domains (airfare, automobile, book, job, real
//! estate) is described by a [`DomainDef`]: the semantic concepts whose
//! attributes appear on the domain's query interfaces, the label variants
//! each concept goes by (including the syntactically hard ones the paper
//! highlights — prepositions like `From`, verb phrases like `Depart from`,
//! ambiguous forms like `Zip`), instance inventories, and generation
//! parameters tuned so the emitted dataset matches the statistical profile
//! of Table 1.

pub mod airfare;
pub mod auto;
pub mod book;
pub mod job;
pub mod movie;
pub mod pools;
pub mod realestate;

/// One semantic concept of a domain (a gold-standard attribute cluster).
#[derive(Debug, Clone, Copy)]
pub struct ConceptDef {
    /// Stable key, unique within the domain (`"from_city"`).
    pub key: &'static str,
    /// Label variants, most common first. The generator samples these with
    /// a bias toward the front of the list.
    pub labels: &'static [&'static str],
    /// Index into `labels` from which the variants are "hard": zero word
    /// overlap with the canonical label (`Carrier` for `Airline`, `From`
    /// for `From city`). Hard variants are used only by *instance-less*
    /// (free-text) attribute occurrences — the paper's core observation
    /// that the unmatched-instances problem concentrates on exactly the
    /// attributes whose labels are least informative. `usize::MAX` = no
    /// hard variants.
    pub hard_from: usize,
    /// Form-control name variants.
    pub control_names: &'static [&'static str],
    /// Primary instance inventory (pool A).
    pub instances: &'static [&'static str],
    /// Alternative inventory (pool B) used by half the sites when
    /// non-empty — reproduces the Airline-vs-Carrier disjoint-instances
    /// effect.
    pub instances_alt: &'static [&'static str],
    /// Probability the concept appears on an interface (1.0 = always).
    pub frequency: f64,
    /// Probability an occurrence carries pre-defined instances (a select);
    /// otherwise it renders as a free-text control with no instances.
    pub select_prob: f64,
    /// Whether instances for this attribute can reasonably be expected on
    /// the Surface Web (Table 1, column 5 — generic attributes like
    /// `keyword` cannot).
    pub expect_web: bool,
    /// Relative richness of Surface-Web coverage for this concept in the
    /// generated corpus (0 = the Web never talks about it in extractable
    /// patterns, 1 = fully covered). Drives per-domain Surface success
    /// rates (Table 1, column 6).
    pub web_richness: f64,
    /// False completions occasionally emitted after this concept's cue
    /// phrases in the corpus.
    pub confusers: &'static [&'static str],
}

/// A domain definition.
#[derive(Debug, Clone, Copy)]
pub struct DomainDef {
    /// Domain key: `"airfare"`, `"auto"`, `"book"`, `"job"`, `"realestate"`.
    pub key: &'static str,
    /// Display name used in experiment tables.
    pub display: &'static str,
    /// The real-world object queried (`"flight"`, `"book"`).
    pub object: &'static str,
    /// Domain words used for query scoping and corpus scatter.
    pub domain_terms: &'static [&'static str],
    /// The concepts of the domain.
    pub concepts: &'static [ConceptDef],
    /// Source (web-site) names; the generator cycles through these.
    pub site_names: &'static [&'static str],
    /// Fraction of interfaces that render *every* attribute as a select
    /// (dropdown-heavy sites) — controls Table 1 column 3.
    pub all_select_rate: f64,
}

impl DomainDef {
    /// Look up a concept by key.
    pub fn concept(&self, key: &str) -> Option<&ConceptDef> {
        self.concepts.iter().find(|c| c.key == key)
    }
}

/// All five domains, in the paper's order.
pub fn all_domains() -> [&'static DomainDef; 5] {
    [
        &airfare::AIRFARE,
        &auto::AUTO,
        &book::BOOK,
        &job::JOB,
        &realestate::REAL_ESTATE,
    ]
}

/// The paper's five domains plus the extension domains (currently the
/// movie domain) that demonstrate the knowledge-base format generalises
/// beyond the ICQ dataset. Experiments regenerating paper artifacts use
/// [`all_domains`]; anything else may use this.
pub fn extended_domains() -> Vec<&'static DomainDef> {
    let mut v: Vec<&'static DomainDef> = all_domains().to_vec();
    v.push(&movie::MOVIE);
    v
}

/// Look up a domain by key (searches the extended set).
pub fn domain(key: &str) -> Option<&'static DomainDef> {
    extended_domains().into_iter().find(|d| d.key == key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_domains_registered() {
        let keys: Vec<&str> = all_domains().iter().map(|d| d.key).collect();
        assert_eq!(keys, vec!["airfare", "auto", "book", "job", "realestate"]);
    }

    #[test]
    fn lookup_by_key() {
        assert!(domain("airfare").is_some());
        assert!(domain("groceries").is_none());
    }

    #[test]
    fn extension_domains_are_reachable_but_not_in_paper_set() {
        assert!(domain("movie").is_some());
        assert!(!all_domains().iter().any(|d| d.key == "movie"));
        assert_eq!(extended_domains().len(), 6);
    }

    #[test]
    fn concept_keys_unique_within_domain() {
        for d in extended_domains() {
            let mut keys: Vec<&str> = d.concepts.iter().map(|c| c.key).collect();
            let n = keys.len();
            keys.sort_unstable();
            keys.dedup();
            assert_eq!(keys.len(), n, "duplicate concept keys in {}", d.key);
        }
    }

    #[test]
    fn every_concept_has_labels_and_controls() {
        for d in extended_domains() {
            for c in d.concepts {
                assert!(!c.labels.is_empty(), "{}: {}", d.key, c.key);
                assert!(!c.control_names.is_empty(), "{}: {}", d.key, c.key);
                assert!(
                    (0.0..=1.0).contains(&c.frequency),
                    "{}: {} frequency",
                    d.key,
                    c.key
                );
                assert!((0.0..=1.0).contains(&c.select_prob));
                assert!((0.0..=1.5).contains(&c.web_richness));
            }
        }
    }

    #[test]
    fn selectable_concepts_have_instances() {
        for d in extended_domains() {
            for c in d.concepts {
                // Concepts with no pool (keyword, isbn) legitimately stay
                // free-text even on dropdown-heavy sites.
                if c.select_prob > 0.0 {
                    assert!(
                        !c.instances.is_empty(),
                        "{}: {} needs an instance pool",
                        d.key,
                        c.key
                    );
                }
            }
        }
    }

    #[test]
    fn expected_attr_counts_match_table1() {
        // Table 1 column 2: avg attributes per interface.
        let targets = [
            ("airfare", 10.7),
            ("auto", 5.1),
            ("book", 5.4),
            ("job", 4.6),
            ("realestate", 6.5),
        ];
        for (key, target) in targets {
            let d = domain(key).expect("domain");
            let expected: f64 = d.concepts.iter().map(|c| c.frequency).sum();
            assert!(
                (expected - target).abs() < 1.2,
                "{key}: expected attr count {expected:.2} far from Table-1 {target}"
            );
        }
    }

    #[test]
    fn twenty_site_names_each() {
        for d in extended_domains() {
            assert!(
                d.site_names.len() >= 20,
                "{} has {}",
                d.key,
                d.site_names.len()
            );
        }
    }
}
