//! The movie domain — **not part of the paper's evaluation**.
//!
//! The paper's five domains are fixed by the ICQ dataset; this sixth
//! domain exists to demonstrate that the knowledge-base format, the
//! dataset generator, the corpus generator, and the full WebIQ pipeline
//! are domain-agnostic: define concepts, labels, and instance pools, and
//! everything else follows. It is reachable via
//! [`super::extended_domains`] but deliberately excluded from
//! [`super::all_domains`] (and therefore from every Table-1/Figure-6
//! regeneration).

use super::pools;
use super::{ConceptDef, DomainDef};

/// Movie titles.
pub static MOVIE_TITLES: &[&str] = &[
    "The Matrix",
    "Jurassic Park",
    "Casablanca",
    "Vertigo",
    "Jaws",
    "Alien",
    "Amadeus",
    "Rocky",
    "Titanic",
    "Gladiator",
    "Memento",
    "Fargo",
    "Heat",
    "Seven",
    "Chinatown",
    "Goodfellas",
    "Psycho",
    "Rear Window",
    "The Sting",
    "Ben Hur",
];

/// Film directors.
pub static DIRECTORS: &[&str] = &[
    "Steven Spielberg",
    "Alfred Hitchcock",
    "Stanley Kubrick",
    "Martin Scorsese",
    "Ridley Scott",
    "Francis Ford Coppola",
    "Sidney Lumet",
    "Billy Wilder",
    "Robert Altman",
    "John Huston",
    "Orson Welles",
    "Akira Kurosawa",
    "David Lean",
    "Fritz Lang",
];

/// Genres.
pub static GENRES: &[&str] = &[
    "Action",
    "Comedy",
    "Drama",
    "Thriller",
    "Horror",
    "Western",
    "Science Fiction",
    "Documentary",
    "Animation",
    "Musical",
    "Film Noir",
];

/// MPAA-style ratings.
pub static RATINGS: &[&str] = &["G", "PG", "PG-13", "R", "NC-17"];

/// Release years.
pub static MOVIE_YEARS: &[&str] = &[
    "1970", "1975", "1980", "1985", "1990", "1995", "1998", "2000", "2002", "2004", "2005", "2006",
];

/// Movie concepts.
pub static CONCEPTS: &[ConceptDef] = &[
    ConceptDef {
        key: "title",
        labels: &["Title", "Movie title", "Film name"],
        hard_from: 2,
        control_names: &["title", "movie_title", "film"],
        instances: MOVIE_TITLES,
        instances_alt: &[],
        frequency: 1.0,
        select_prob: 0.4,
        expect_web: true,
        web_richness: 1.0,
        confusers: &["many other classics"],
    },
    ConceptDef {
        key: "director",
        labels: &["Director", "Directed by", "Filmmaker"],
        hard_from: 2,
        control_names: &["director", "dir"],
        instances: DIRECTORS,
        instances_alt: &[],
        frequency: 0.8,
        select_prob: 0.5,
        expect_web: true,
        web_richness: 1.1,
        confusers: &[],
    },
    ConceptDef {
        key: "genre",
        labels: &["Genre", "Category", "Type of film"],
        hard_from: 1,
        control_names: &["genre", "category"],
        instances: GENRES,
        instances_alt: &[],
        frequency: 0.8,
        select_prob: 0.9,
        expect_web: true,
        web_richness: 0.9,
        confusers: &[],
    },
    ConceptDef {
        key: "year",
        labels: &["Year", "Release year", "Released in"],
        hard_from: usize::MAX,
        control_names: &["year", "rel_year"],
        instances: MOVIE_YEARS,
        instances_alt: &[],
        frequency: 0.7,
        select_prob: 0.8,
        expect_web: true,
        web_richness: 0.6,
        confusers: &[],
    },
    ConceptDef {
        key: "rating",
        labels: &["Rating", "MPAA rating"],
        hard_from: usize::MAX,
        control_names: &["rating", "mpaa"],
        instances: RATINGS,
        instances_alt: &[],
        frequency: 0.5,
        select_prob: 0.9,
        expect_web: true,
        web_richness: 0.5,
        confusers: &[],
    },
    ConceptDef {
        key: "keyword",
        labels: &["Keywords", "Keyword"],
        hard_from: usize::MAX,
        control_names: &["keywords", "kw"],
        instances: &[],
        instances_alt: &[],
        frequency: 0.3,
        select_prob: 0.0,
        expect_web: false,
        web_richness: 0.0,
        confusers: &[],
    },
    ConceptDef {
        key: "state",
        labels: &["State"],
        hard_from: usize::MAX,
        control_names: &["state"],
        instances: pools::STATES,
        instances_alt: &[],
        frequency: 0.2,
        select_prob: 0.8,
        expect_web: true,
        web_richness: 0.8,
        confusers: &[],
    },
];

/// Movie site names.
pub static SITES: &[&str] = &[
    "ReelFinder",
    "CineSearch",
    "FlickBase",
    "ScreenScout",
    "FilmFolio",
    "MovieMill",
    "PopcornPicks",
    "SilverScreen Search",
    "ClapboardCat",
    "MatineeMart",
    "TrailerTrove",
    "CelluloidCity",
    "ProjectorPal",
    "BoxOfficeBay",
    "DirectorDex",
    "SceneSeeker",
    "FeatureFind",
    "CreditRoll",
    "CastCatalog",
    "PremierePages",
];

/// The movie domain definition.
pub static MOVIE: DomainDef = DomainDef {
    key: "movie",
    display: "Movie",
    object: "movie",
    domain_terms: &["movie", "film", "cinema"],
    concepts: CONCEPTS,
    site_names: SITES,
    all_select_rate: 0.1,
};
