//! The book domain.
//!
//! The easiest domain for Surface extraction in the paper (84.4 %): the
//! instance-less attributes carry plain noun labels (`author`,
//! `publisher`, `title`) for which the Hearst-style extraction patterns
//! are highly effective. The generic `keyword` concept is the one
//! attribute class whose instances cannot be expected on the Web
//! (Table 1 column 5 = 98 %).

use super::pools;
use super::{ConceptDef, DomainDef};

/// Book concepts.
pub static CONCEPTS: &[ConceptDef] = &[
    ConceptDef {
        key: "title",
        labels: &["Title", "Book title", "Name of book"],
        hard_from: 2,
        control_names: &["title", "book_title", "btitle"],
        instances: pools::BOOK_TITLES,
        instances_alt: &[],
        frequency: 1.0,
        select_prob: 0.5,
        expect_web: true,
        web_richness: 1.0,
        confusers: &["many other bestsellers"],
    },
    ConceptDef {
        key: "author",
        labels: &["Author", "Author name", "Written by"],
        hard_from: 2,
        control_names: &["author", "author_name", "writer"],
        instances: pools::AUTHORS,
        instances_alt: &[],
        frequency: 1.0,
        select_prob: 0.6,
        expect_web: true,
        web_richness: 1.2,
        confusers: &["numerous award winners"],
    },
    ConceptDef {
        key: "keyword",
        labels: &["Keyword", "Keywords", "Search terms"],
        hard_from: usize::MAX,
        control_names: &["keyword", "kw", "terms"],
        instances: &[],
        instances_alt: &[],
        frequency: 0.15,
        select_prob: 0.0,
        expect_web: false,
        web_richness: 0.0,
        confusers: &[],
    },
    ConceptDef {
        key: "isbn",
        labels: &["ISBN", "ISBN number"],
        hard_from: usize::MAX,
        control_names: &["isbn", "isbn_no"],
        instances: &[],
        instances_alt: &[],
        frequency: 0.5,
        select_prob: 0.0,
        expect_web: true,
        web_richness: 0.6,
        confusers: &[],
    },
    ConceptDef {
        key: "publisher",
        labels: &["Publisher", "Publishing house"],
        hard_from: usize::MAX,
        control_names: &["publisher", "pub", "pub_name"],
        instances: pools::PUBLISHERS,
        instances_alt: &[],
        frequency: 0.5,
        select_prob: 0.6,
        expect_web: true,
        web_richness: 1.1,
        confusers: &[],
    },
    ConceptDef {
        key: "subject",
        labels: &["Subject", "Category", "Genre"],
        hard_from: 2,
        control_names: &["subject", "category", "genre"],
        instances: pools::BOOK_SUBJECTS,
        instances_alt: &[],
        frequency: 0.6,
        select_prob: 0.9,
        expect_web: true,
        web_richness: 0.9,
        confusers: &[],
    },
    ConceptDef {
        key: "price",
        labels: &["Price", "Maximum price"],
        hard_from: 3,
        control_names: &["price", "max_price"],
        instances: pools::BOOK_PRICES,
        instances_alt: &[],
        frequency: 0.4,
        select_prob: 0.85,
        expect_web: true,
        web_richness: 0.6,
        confusers: &[],
    },
    ConceptDef {
        key: "format",
        labels: &["Format", "Binding"],
        hard_from: usize::MAX,
        control_names: &["format", "binding"],
        instances: pools::BOOK_FORMATS,
        instances_alt: &[],
        frequency: 0.4,
        select_prob: 0.9,
        expect_web: true,
        web_richness: 0.8,
        confusers: &[],
    },
];

/// Book site names.
pub static SITES: &[&str] = &[
    "PageTurner Books",
    "InkWell Shop",
    "Bindery Lane",
    "NovelIdea Store",
    "ChapterHouse",
    "BookBarn Online",
    "ReadersNook",
    "SpineStreet",
    "FolioFinder",
    "PaperbackPlaza",
    "TomeTraders",
    "LibrettoBooks",
    "QuillQuarters",
    "VellumVault",
    "HardcoverHaven",
    "ProloguePress Shop",
    "EpilogueEmporium",
    "MarginaliaMart",
    "DustJacketDepot",
    "Bibliotheca Plus",
];

/// The book domain definition.
pub static BOOK: DomainDef = DomainDef {
    key: "book",
    display: "Book",
    object: "book",
    domain_terms: &["book", "bookstore", "reading"],
    concepts: CONCEPTS,
    site_names: SITES,
    all_select_rate: 0.15,
};
