//! The job domain.
//!
//! The most instance-poor domain (74.6 % of attributes have no instances;
//! every interface has some) and the one where the paper's Attr-Deep step
//! had its largest impact. Labels are mostly plain nouns, so Surface
//! extraction succeeds often (72.2 %); the generic `keyword` attribute is
//! the main exception (column 5 = 83.1 %).

use super::pools;
use super::{ConceptDef, DomainDef};

/// Job concepts.
pub static CONCEPTS: &[ConceptDef] = &[
    ConceptDef {
        key: "job_title",
        labels: &["Job title", "Title", "Position"],
        hard_from: 2,
        control_names: &["jobtitle", "title", "position"],
        instances: pools::JOB_TITLES,
        instances_alt: &[],
        frequency: 0.9,
        select_prob: 0.1,
        expect_web: true,
        web_richness: 1.0,
        confusers: &["various open positions"],
    },
    ConceptDef {
        key: "keyword",
        labels: &["Keywords", "Keyword", "Skills"],
        hard_from: 2,
        control_names: &["keywords", "kw", "skills"],
        instances: &[],
        instances_alt: &[],
        frequency: 0.8,
        select_prob: 0.0,
        expect_web: false,
        web_richness: 0.0,
        confusers: &[],
    },
    ConceptDef {
        key: "category",
        labels: &["Job category", "Category", "Industry"],
        hard_from: 2,
        control_names: &["category", "industry", "jobcat"],
        instances: pools::JOB_CATEGORIES,
        instances_alt: &[],
        frequency: 0.7,
        select_prob: 0.5,
        expect_web: true,
        web_richness: 1.0,
        confusers: &[],
    },
    ConceptDef {
        key: "city",
        labels: &["Location", "Job location", "City"],
        hard_from: 2,
        control_names: &["city", "location", "loc"],
        instances: pools::CITIES,
        instances_alt: &[],
        frequency: 0.8,
        select_prob: 0.1,
        expect_web: true,
        // Job-scoped extraction queries ("cities such as" +job) find next
        // to nothing: the Web does not enumerate cities in job context.
        // These attributes are the ones Attr-Deep rescues — the paper's
        // largest Attr-Deep contribution is in this domain.
        web_richness: 0.02,
        confusers: &[],
    },
    ConceptDef {
        key: "state",
        labels: &["State"],
        hard_from: usize::MAX,
        control_names: &["state", "st"],
        instances: pools::STATES,
        instances_alt: &[],
        frequency: 0.5,
        select_prob: 0.6,
        expect_web: true,
        web_richness: 1.0,
        confusers: &[],
    },
    ConceptDef {
        key: "company",
        labels: &["Company name", "Company", "Employer"],
        hard_from: 2,
        control_names: &["company", "employer", "co_name"],
        instances: pools::COMPANIES,
        instances_alt: &[],
        frequency: 0.4,
        select_prob: 0.05,
        expect_web: true,
        web_richness: 0.9,
        confusers: &[],
    },
    ConceptDef {
        key: "salary",
        labels: &["Salary", "Minimum salary", "Annual salary"],
        hard_from: usize::MAX,
        control_names: &["salary", "min_salary", "pay"],
        instances: pools::SALARIES,
        instances_alt: &[],
        frequency: 0.3,
        select_prob: 0.5,
        expect_web: true,
        web_richness: 0.6,
        confusers: &[],
    },
    ConceptDef {
        key: "job_type",
        labels: &["Job type", "Employment type", "Position type"],
        hard_from: usize::MAX,
        control_names: &["jobtype", "emp_type"],
        instances: pools::JOB_TYPES,
        instances_alt: &[],
        frequency: 0.3,
        select_prob: 0.7,
        expect_web: true,
        web_richness: 0.7,
        confusers: &[],
    },
    ConceptDef {
        key: "experience",
        labels: &["Experience level", "Experience"],
        hard_from: usize::MAX,
        control_names: &["experience", "exp_level"],
        instances: pools::EXPERIENCE_LEVELS,
        instances_alt: &[],
        frequency: 0.2,
        select_prob: 0.7,
        expect_web: true,
        web_richness: 0.6,
        confusers: &[],
    },
];

/// Job site names.
pub static SITES: &[&str] = &[
    "CareerCompass",
    "JobJunction",
    "HireWire",
    "WorkWave",
    "TalentTrail",
    "VocationVault",
    "EmployMe Now",
    "GigGateway",
    "ProfessionPort",
    "LaborLink",
    "SkillSeeker",
    "ResumeRoad",
    "OccupationOasis",
    "WorkforceWell",
    "CareerCurrent",
    "JobJetty",
    "PositionPilot",
    "StaffingStream",
    "RecruitRiver",
    "OpportunityOutpost",
];

/// The job domain definition.
pub static JOB: DomainDef = DomainDef {
    key: "job",
    display: "Job",
    object: "job",
    domain_terms: &["job", "career", "employment"],
    concepts: CONCEPTS,
    site_names: SITES,
    all_select_rate: 0.0,
};
